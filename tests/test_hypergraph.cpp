#include "mmlp/graph/hypergraph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

Hypergraph triangle_plus_tail() {
  // Edges: {0,1,2} (a 3-hyperedge), {2,3}, {3,4}.
  return Hypergraph::from_edges(5, {{0, 1, 2}, {2, 3}, {3, 4}});
}

TEST(Hypergraph, BasicCounts) {
  const auto h = triangle_plus_tail();
  EXPECT_EQ(h.num_nodes(), 5);
  EXPECT_EQ(h.num_edges(), 3);
  EXPECT_EQ(h.edge_size(0), 3u);
  EXPECT_EQ(h.edge_size(1), 2u);
  EXPECT_EQ(h.max_edge_size(), 3u);
}

TEST(Hypergraph, EdgeMembersSorted) {
  const auto h = Hypergraph::from_edges(4, {{3, 1, 2}});
  const auto members = h.edge(0);
  EXPECT_EQ(std::vector<NodeId>(members.begin(), members.end()),
            (std::vector<NodeId>{1, 2, 3}));
}

TEST(Hypergraph, NodeIncidence) {
  const auto h = triangle_plus_tail();
  EXPECT_EQ(h.degree(0), 1u);
  EXPECT_EQ(h.degree(2), 2u);
  EXPECT_EQ(h.degree(3), 2u);
  const auto edges = h.edges_of(2);
  EXPECT_EQ(std::vector<EdgeId>(edges.begin(), edges.end()),
            (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(h.max_degree(), 2u);
}

TEST(Hypergraph, Neighbors) {
  const auto h = triangle_plus_tail();
  EXPECT_EQ(h.neighbors(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(h.neighbors(2), (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(h.neighbors(4), (std::vector<NodeId>{3}));
}

TEST(Hypergraph, Adjacency) {
  const auto h = triangle_plus_tail();
  EXPECT_TRUE(h.adjacent(0, 1));
  EXPECT_TRUE(h.adjacent(2, 3));
  EXPECT_FALSE(h.adjacent(0, 3));
  EXPECT_FALSE(h.adjacent(1, 1));  // no self-adjacency by convention
}

TEST(Hypergraph, ConnectivityAndComponents) {
  const auto connected = triangle_plus_tail();
  EXPECT_TRUE(connected.connected());

  const auto split = Hypergraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(split.connected());
  const auto comp = split.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Hypergraph, IsolatedNodesAreOwnComponents) {
  const auto h = Hypergraph::from_edges(3, {{0, 1}});
  const auto comp = h.components();
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(h.connected());
}

TEST(Hypergraph, EmptyGraph) {
  const auto h = Hypergraph::from_edges(0, {});
  EXPECT_EQ(h.num_nodes(), 0);
  EXPECT_EQ(h.num_edges(), 0);
  EXPECT_TRUE(h.connected());
}

TEST(Hypergraph, SingletonEdgeAllowed) {
  const auto h = Hypergraph::from_edges(2, {{0}, {0, 1}});
  EXPECT_EQ(h.edge_size(0), 1u);
  EXPECT_TRUE(h.connected());
}

TEST(Hypergraph, RejectsEmptyEdge) {
  EXPECT_THROW(Hypergraph::from_edges(2, {{}}), CheckError);
}

TEST(Hypergraph, RejectsDuplicateMember) {
  EXPECT_THROW(Hypergraph::from_edges(2, {{0, 0}}), CheckError);
}

TEST(Hypergraph, RejectsOutOfRangeMember) {
  EXPECT_THROW(Hypergraph::from_edges(2, {{0, 2}}), CheckError);
  EXPECT_THROW(Hypergraph::from_edges(2, {{-1}}), CheckError);
}

TEST(Hypergraph, RejectsBadQueries) {
  const auto h = triangle_plus_tail();
  EXPECT_THROW(h.edge(3), CheckError);
  EXPECT_THROW(h.edges_of(5), CheckError);
  EXPECT_THROW(h.edges_of(-1), CheckError);
}

}  // namespace
}  // namespace mmlp

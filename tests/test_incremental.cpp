// The update pipeline, end to end: Session::apply must leave every
// cached structure element-for-element equal to a from-scratch
// recompute on the mutated instance (repair == recompute), stale
// entries must never be served (revision-mismatch assert), and the
// incremental solve paths must splice to *bitwise* the same solution a
// cold session computes — for safe, averaging and distributed
// averaging, dedup on and off, on grid/random/hypertree at R ∈ {1, 2},
// across value edits, membership edits, entity additions and (via the
// full-invalidation fallback) agent removals.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/core/view_class.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/engine/wire.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

Instance make_hypertree_instance(std::int32_t d, std::int32_t D,
                                 std::int32_t height) {
  const Hypertree tree = Hypertree::complete(d, D, height);
  Instance::Builder builder;
  for (std::int32_t node = 0; node < tree.num_nodes(); ++node) {
    builder.add_agent();
  }
  for (const HypertreeEdge& edge : tree.edges()) {
    if (edge.type == HyperedgeType::kTypeI) {
      const ResourceId i = builder.add_resource();
      builder.set_usage(i, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_usage(i, child, 1.0);
      }
    } else {
      const PartyId k = builder.add_party();
      builder.set_benefit(k, edge.parent, 1.0 / static_cast<double>(D));
      for (const std::int32_t child : edge.children) {
        builder.set_benefit(k, child, 1.0 / static_cast<double>(D));
      }
    }
  }
  return std::move(builder).build();
}

std::vector<std::pair<std::string, Instance>> test_instances() {
  std::vector<std::pair<std::string, Instance>> instances;
  instances.emplace_back(
      "grid", make_grid_instance(
                  {.dims = {6, 6}, .torus = true, .randomize = true, .seed = 3}));
  instances.emplace_back("random", make_random_instance({
                                       .num_agents = 60,
                                       .resources_per_agent = 3,
                                       .parties_per_agent = 2,
                                       .max_support = 4,
                                       .seed = 9,
                                   }));
  instances.emplace_back("hypertree", make_hypertree_instance(2, 2, 3));
  return instances;
}

/// The delta sequence each test walks: a value edit, a membership edit
/// (insert), an erase of that entry again, and an entity addition. Each
/// step is one apply.
std::vector<InstanceDelta> delta_sequence(const Instance& instance) {
  std::vector<InstanceDelta> deltas;
  const Coef first = instance.resource_support(0)[0];
  deltas.emplace_back().set_usage(0, first.id, first.value * 1.25);
  // An absent (i, v): the last agent is never in resource 0's support on
  // these generators... unless it is — search for an absent pair.
  ResourceId absent_i = -1;
  AgentId absent_v = -1;
  for (ResourceId i = 0; i < instance.num_resources() && absent_i < 0; ++i) {
    for (AgentId v = instance.num_agents() - 1; v >= 0; --v) {
      if (instance.usage(i, v) == 0.0) {
        absent_i = i;
        absent_v = v;
        break;
      }
    }
  }
  MMLP_CHECK_GE(absent_i, 0);
  deltas.emplace_back().set_usage(absent_i, absent_v, 0.7);
  deltas.emplace_back().erase_usage(absent_i, absent_v);
  // A new agent wired into existing structure plus a fresh resource.
  InstanceDelta grow;
  grow.add_agents(1).add_resources(1);
  const AgentId new_agent = instance.num_agents();
  grow.set_usage(instance.num_resources(), new_agent, 1.0);
  grow.set_usage(0, new_agent, 0.4);
  grow.set_benefit(0, new_agent, 0.2);
  deltas.push_back(grow);
  return deltas;
}

// ---------------------------------------------------------------------
// Session cache repair == from-scratch recompute.

TEST(SessionApply, RepairedCachesMatchFromScratchRecompute) {
  for (auto& [name, original] : test_instances()) {
    Instance working = original;
    engine::Session session(working);
    // Prime every cache at both radii (full mode; growth sets require
    // party hyperedges) plus oblivious balls.
    for (const std::int32_t r : {1, 2}) {
      (void)session.balls(r, false);
      (void)session.balls(r, true);
      (void)session.growth_sets(r, false);
      (void)session.view_classes(r, false);
    }
    for (const InstanceDelta& delta : delta_sequence(original)) {
      const engine::Session::ApplyReport report = session.apply(delta);
      EXPECT_EQ(report.revision, working.revision()) << name;
      EXPECT_EQ(session.revision(), working.revision()) << name;
      for (const std::int32_t r : {1, 2}) {
        for (const bool oblivious : {false, true}) {
          const Hypergraph fresh_graph =
              working.communication_graph(oblivious);
          EXPECT_EQ(session.balls(r, oblivious), all_balls(fresh_graph, r))
              << name << " r=" << r << " oblivious=" << oblivious;
        }
        const std::vector<std::vector<AgentId>>& balls =
            session.balls(r, false);
        const GrowthSets fresh = compute_growth_sets(working, balls);
        const GrowthSets& repaired = session.growth_sets(r, false);
        EXPECT_EQ(repaired.ball_size, fresh.ball_size) << name << " r=" << r;
        EXPECT_EQ(repaired.m_k, fresh.m_k) << name << " r=" << r;
        EXPECT_EQ(repaired.M_k, fresh.M_k) << name << " r=" << r;
        EXPECT_EQ(repaired.N_i, fresh.N_i) << name << " r=" << r;
        EXPECT_EQ(repaired.n_i, fresh.n_i) << name << " r=" << r;
        EXPECT_EQ(repaired.beta, fresh.beta) << name << " r=" << r;

        const ViewClassIndex rebuilt =
            build_view_class_index(working, balls, r, false);
        const ViewClassIndex& index = session.view_classes(r, false);
        EXPECT_EQ(index.class_of, rebuilt.class_of) << name << " r=" << r;
        EXPECT_EQ(index.orbit_of, rebuilt.orbit_of) << name << " r=" << r;
        EXPECT_EQ(index.class_rep, rebuilt.class_rep) << name << " r=" << r;
        EXPECT_EQ(index.orbit_rep, rebuilt.orbit_rep) << name << " r=" << r;
        EXPECT_EQ(index.class_size, rebuilt.class_size) << name << " r=" << r;
        EXPECT_EQ(index.orbit_size, rebuilt.orbit_size) << name << " r=" << r;
        EXPECT_EQ(index.perm_offset, rebuilt.perm_offset) << name;
        EXPECT_EQ(index.perms, rebuilt.perms) << name;
      }
    }
  }
}

TEST(SessionApply, RemovalDropsCachesAndStillServesFreshOnes) {
  Instance working = make_grid_instance({.dims = {5, 5}, .torus = true});
  engine::Session session(working);
  (void)session.balls(1, false);
  (void)session.growth_sets(1, false);
  const std::uint64_t before = session.revision();

  InstanceDelta removal;
  removal.remove_agent(7);
  const engine::Session::ApplyReport report = session.apply(removal);
  EXPECT_TRUE(report.rebuilt);
  EXPECT_EQ(session.dirty_since(before, 1, false), std::nullopt);

  // Rebuilt-on-demand caches describe the compacted instance.
  const Hypergraph fresh = working.communication_graph(false);
  EXPECT_EQ(session.balls(1, false), all_balls(fresh, 1));
}

TEST(SessionApply, MutatingBehindTheSessionsBackTripsTheStaleAssert) {
  Instance working = make_grid_instance({.dims = {4, 4}});
  engine::Session session(working);
  (void)session.balls(1, false);
  InstanceDelta delta;
  const Coef first = working.resource_support(0)[0];
  delta.set_usage(0, first.id, first.value * 2.0);
  (void)working.apply(delta);  // NOT via session.apply
  EXPECT_THROW(session.balls(1, false), CheckError);
}

TEST(SessionApply, ConstBoundSessionRejectsApply) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  InstanceDelta delta;
  const Coef first = instance.resource_support(0)[0];
  delta.set_usage(0, first.id, first.value * 2.0);
  EXPECT_THROW(session.apply(delta), CheckError);
}

// ---------------------------------------------------------------------
// Incremental solve == cold full solve, bitwise.

TEST(IncrementalSolve, MatchesColdSolveBitwiseAcrossDeltas) {
  for (auto& [name, original] : test_instances()) {
    for (const std::int32_t R : {1, 2}) {
      for (const bool dedup : {false, true}) {
        Instance working = original;
        engine::Session session(working);
        LocalAveragingOptions options;
        options.R = R;
        options.deduplicate = dedup;
        const SafeOptions safe_options{.deduplicate = dedup};

        // Prime the memos (full solves).
        (void)safe_solution_incremental(session, safe_options);
        (void)local_averaging_incremental(session, options);
        (void)distributed_local_averaging_incremental(session, options);

        int step = 0;
        for (const InstanceDelta& delta : delta_sequence(original)) {
          (void)session.apply(delta);
          ++step;
          const std::string context = name + " R=" + std::to_string(R) +
                                      " dedup=" + std::to_string(dedup) +
                                      " step=" + std::to_string(step);

          engine::Session cold(static_cast<const Instance&>(working));

          IncrementalStats safe_stats;
          const std::vector<double> safe_inc =
              safe_solution_incremental(session, safe_options, &safe_stats);
          EXPECT_TRUE(safe_stats.incremental) << context;
          EXPECT_EQ(safe_inc, safe_solution_with(cold, safe_options))
              << context;

          IncrementalStats avg_stats;
          const LocalAveragingResult avg_inc =
              local_averaging_incremental(session, options, &avg_stats);
          EXPECT_TRUE(avg_stats.incremental) << context;
          const LocalAveragingResult avg_cold =
              local_averaging_with(cold, options);
          EXPECT_EQ(avg_inc.x, avg_cold.x) << context;
          EXPECT_EQ(avg_inc.view_omega, avg_cold.view_omega) << context;
          EXPECT_EQ(avg_inc.beta, avg_cold.beta) << context;
          EXPECT_EQ(avg_inc.ball_size, avg_cold.ball_size) << context;
          EXPECT_EQ(avg_inc.ratio_bound, avg_cold.ratio_bound) << context;
          // The incremental run solves only the dirty region — strictly
          // less than the instance for a radius-1 single-value edit; at
          // R=2 the dirty ball can legitimately cover these small test
          // instances entirely.
          if (R == 1 && step == 1) {
            EXPECT_LT(avg_stats.dirty_agents,
                      static_cast<std::size_t>(working.num_agents()))
                << context;
          } else {
            EXPECT_LE(avg_stats.dirty_agents,
                      static_cast<std::size_t>(working.num_agents()))
                << context;
          }

          IncrementalStats dist_stats;
          const std::vector<double> dist_inc =
              distributed_local_averaging_incremental(session, options,
                                                      nullptr, &dist_stats);
          EXPECT_TRUE(dist_stats.incremental) << context;
          EXPECT_EQ(dist_inc, distributed_local_averaging_with(cold, options))
              << context;
        }
      }
    }
  }
}

TEST(IncrementalSolve, RemovalFallsBackToAFullSolveAndStaysExact) {
  Instance working = make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(working);
  LocalAveragingOptions options;
  (void)local_averaging_incremental(session, options);
  (void)safe_solution_incremental(session);

  InstanceDelta removal;
  removal.remove_agent(10);
  (void)session.apply(removal);

  engine::Session cold(static_cast<const Instance&>(working));
  IncrementalStats stats;
  const LocalAveragingResult inc =
      local_averaging_incremental(session, options, &stats);
  EXPECT_FALSE(stats.incremental);  // full-invalidation fallback
  EXPECT_EQ(inc.x, local_averaging_with(cold, options).x);
  IncrementalStats safe_stats;
  const std::vector<double> safe_inc =
      safe_solution_incremental(session, {}, &safe_stats);
  EXPECT_FALSE(safe_stats.incremental);
  EXPECT_EQ(safe_inc, safe_solution_with(cold, {}));
}

TEST(IncrementalSolve, NonLocalOptionsAlwaysRunTheFullAlgorithm) {
  Instance working = make_grid_instance({.dims = {5, 5}, .torus = true});
  engine::Session session(working);
  LocalAveragingOptions global_damping;
  global_damping.damping = AveragingDamping::kBetaGlobal;
  IncrementalStats stats;
  (void)local_averaging_incremental(session, global_damping, &stats);
  EXPECT_FALSE(stats.incremental);

  InstanceDelta delta;
  const Coef first = working.resource_support(0)[0];
  delta.set_usage(0, first.id, first.value * 3.0);
  (void)session.apply(delta);
  const LocalAveragingResult inc =
      local_averaging_incremental(session, global_damping, &stats);
  EXPECT_FALSE(stats.incremental);
  engine::Session cold(static_cast<const Instance&>(working));
  EXPECT_EQ(inc.x, local_averaging_with(cold, global_damping).x);
}

TEST(IncrementalSolve, PrunedEditLogFallsBackToAFullSolveAndStaysExact) {
  // The session caps its edit log; a memo that sleeps through more
  // applies than the cap can no longer assemble its dirty region and
  // must fall back to a full solve (never a wrong splice).
  Instance working = make_grid_instance({.dims = {5, 5}, .torus = true});
  engine::Session session(working);
  (void)local_averaging_incremental(session, {});  // memo at revision 0

  const Coef first = working.resource_support(0)[0];
  for (int edit = 0; edit < 1100; ++edit) {  // > the 1024-record cap
    InstanceDelta delta;
    delta.set_usage(0, first.id, first.value * (1.0 + (edit % 7) * 0.01));
    (void)session.apply(delta);
  }

  IncrementalStats stats;
  const LocalAveragingResult inc =
      local_averaging_incremental(session, {}, &stats);
  EXPECT_FALSE(stats.incremental);  // log floor rose past the memo
  engine::Session cold(static_cast<const Instance&>(working));
  EXPECT_EQ(inc.x, local_averaging_with(cold, {}).x);

  // The refreshed memo splices again on the next edit.
  InstanceDelta delta;
  delta.set_usage(0, first.id, first.value * 2.0);
  (void)session.apply(delta);
  const LocalAveragingResult again =
      local_averaging_incremental(session, {}, &stats);
  EXPECT_TRUE(stats.incremental);
  engine::Session cold2(static_cast<const Instance&>(working));
  EXPECT_EQ(again.x, local_averaging_with(cold2, {}).x);
}

TEST(IncrementalSolve, NoOpReSolveTouchesNothing) {
  Instance working = make_grid_instance({.dims = {5, 5}, .torus = true});
  engine::Session session(working);
  const LocalAveragingResult first =
      local_averaging_incremental(session, {});
  IncrementalStats stats;
  const LocalAveragingResult again =
      local_averaging_incremental(session, {}, &stats);
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.dirty_agents, 0u);
  EXPECT_EQ(stats.resolved_agents, 0u);
  EXPECT_EQ(again.x, first.x);
}

// ---------------------------------------------------------------------
// The engine request surface.

TEST(EngineRequest, IncrementalRequestMatchesColdRequestAfterUpdates) {
  Instance working = make_grid_instance(
      {.dims = {6, 6}, .torus = true, .randomize = true, .seed = 5});
  engine::Session session(working);
  for (const char* algorithm :
       {"safe", "averaging", "distributed-averaging"}) {
    engine::SolveRequest request;
    request.algorithm = algorithm;
    request.incremental = true;
    (void)engine::solve(session, request);  // prime

    InstanceDelta delta;
    const Coef first = working.resource_support(3)[0];
    delta.set_usage(3, first.id, first.value * 1.5);
    (void)session.apply(delta);

    const engine::SolveResult inc = engine::solve(session, request);
    EXPECT_EQ(inc.diagnostics.at("incremental"), 1.0) << algorithm;
    EXPECT_GT(inc.diagnostics.at("resolved_agents"), 0.0) << algorithm;

    engine::Session cold(static_cast<const Instance&>(working));
    engine::SolveRequest full = request;
    full.incremental = false;
    const engine::SolveResult cold_result = engine::solve(cold, full);
    EXPECT_EQ(inc.x, cold_result.x) << algorithm;
    EXPECT_EQ(inc.omega, cold_result.omega) << algorithm;
  }
}

// ---------------------------------------------------------------------
// Wire: update commands.

TEST(Wire, ParsesAnUpdateCommand) {
  const engine::WireCommand command = engine::parse_command_line(
      R"({"op": "update", "set_usage": [{"i": 3, "v": 7, "a": 0.5}], )"
      R"("erase_benefit": [{"k": 1, "v": 2}], "add_agents": 2, )"
      R"("remove_agents": [4, 5], "id": 9})");
  EXPECT_EQ(command.kind, engine::WireCommand::Kind::kUpdate);
  EXPECT_EQ(command.id, "9");
  ASSERT_EQ(command.delta.usages.size(), 1u);
  EXPECT_EQ(command.delta.usages[0].row, 3);
  EXPECT_EQ(command.delta.usages[0].v, 7);
  EXPECT_EQ(command.delta.usages[0].value, 0.5);
  ASSERT_EQ(command.delta.benefits.size(), 1u);
  EXPECT_EQ(command.delta.benefits[0].row, 1);
  EXPECT_EQ(command.delta.benefits[0].value, 0.0);  // erase marker
  EXPECT_EQ(command.delta.new_agents, 2);
  EXPECT_EQ(command.delta.removed_agents, (std::vector<AgentId>{4, 5}));
}

TEST(Wire, SolveLinesStillParseAndCarryIncremental) {
  const engine::WireCommand command = engine::parse_command_line(
      R"({"algorithm": "averaging", "R": 2, "incremental": true})");
  EXPECT_EQ(command.kind, engine::WireCommand::Kind::kSolve);
  EXPECT_EQ(command.request.algorithm, "averaging");
  EXPECT_EQ(command.request.R, 2);
  EXPECT_TRUE(command.request.incremental);
}

TEST(Wire, RejectsBadUpdateLines) {
  // Unknown op.
  EXPECT_THROW(engine::parse_command_line(R"({"op": "mutate"})"), CheckError);
  // Unknown update key.
  EXPECT_THROW(
      engine::parse_command_line(R"({"op": "update", "frobnicate": 1})"),
      CheckError);
  // Solve keys on an update line.
  EXPECT_THROW(
      engine::parse_command_line(R"({"op": "update", "algorithm": "safe"})"),
      CheckError);
  // Unknown field inside an edit object.
  EXPECT_THROW(engine::parse_command_line(
                   R"({"op": "update", "set_usage": [{"i": 1, "v": 2, "x": 3}]})"),
               CheckError);
  // Missing field inside an edit object.
  EXPECT_THROW(engine::parse_command_line(
                   R"({"op": "update", "set_usage": [{"i": 1, "a": 0.5}]})"),
               CheckError);
  // Mixed array element kinds.
  EXPECT_THROW(engine::parse_command_line(
                   R"({"op": "update", "remove_agents": [1, {"v": 2}]})"),
               CheckError);
  // Arrays on solve lines.
  EXPECT_THROW(engine::parse_command_line(R"({"algorithm": "safe", "R": [1]})"),
               CheckError);
  // parse_request_line refuses updates.
  EXPECT_THROW(engine::parse_request_line(R"({"op": "update"})"), CheckError);
}

TEST(Wire, ApplyReportSerialises) {
  engine::Session::ApplyReport report;
  report.revision = 3;
  report.structural = true;
  report.touched_agents = 5;
  report.repaired_entries = 2;
  report.apply_ms = 1.5;
  const std::string line = engine::apply_report_to_json_line(report, "7");
  EXPECT_EQ(line,
            "{\"id\": 7, \"op\": \"update\", \"revision\": 3, "
            "\"structural\": true, \"rebuilt\": false, "
            "\"touched_agents\": 5, \"repaired_entries\": 2, "
            "\"apply_ms\": 1.5}");
}

}  // namespace
}  // namespace mmlp

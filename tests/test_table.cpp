#include "mmlp/util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(TableWriter, RejectsEmptyHeadersAndMismatchedRows) {
  EXPECT_THROW(TableWriter({}), CheckError);
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.add_row({std::int64_t{1}}), CheckError);
}

TEST(TableWriter, RendersAlignedText) {
  TableWriter table({"name", "n"});
  table.add_row({std::string("alpha"), std::int64_t{1}});
  table.add_row({std::string("b"), std::int64_t{1000}});
  const std::string text = table.to_text("Title");
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableWriter, DoublePrecisionRespected) {
  TableWriter table({"x"}, 2);
  table.add_row({3.14159});
  EXPECT_NE(table.to_text().find("3.14"), std::string::npos);
  EXPECT_EQ(table.to_text().find("3.142"), std::string::npos);
}

TEST(TableWriter, CsvEscapesSpecials) {
  TableWriter table({"label", "v"});
  table.add_row({std::string("a,b"), std::int64_t{1}});
  table.add_row({std::string("quote\"inside"), std::int64_t{2}});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableWriter, CsvRoundTripLineCount) {
  TableWriter table({"a"});
  table.add_row({std::int64_t{1}});
  table.add_row({std::int64_t{2}});
  const std::string csv = table.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(TableWriter, WriteCsvCreatesFile) {
  TableWriter table({"a", "b"});
  table.add_row({std::int64_t{1}, 2.5});
  const std::string path = ::testing::TempDir() + "/mmlp_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "a,b");
  std::remove(path.c_str());
}

TEST(TableWriter, NumRows) {
  TableWriter table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.add_row({std::int64_t{5}});
  EXPECT_EQ(table.num_rows(), 1u);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/dist/algorithms.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/gen/sensor.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(DistributedSafe, MatchesCentralisedExactly) {
  const auto instance = make_random_instance({.num_agents = 60, .seed = 21});
  EXPECT_EQ(distributed_safe(instance), safe_solution(instance));
}

TEST(DistributedSafe, MatchesOnGrid) {
  const auto instance = make_grid_instance(
      {.dims = {5, 5}, .torus = true, .randomize = true, .seed = 4});
  EXPECT_EQ(distributed_safe(instance), safe_solution(instance));
}

TEST(DistributedSafe, CollaborationObliviousModeStillMatches) {
  // The safe rule only reads resource data, so the hypergraph mode must
  // not change the outcome.
  const auto instance = make_random_instance({.num_agents = 30, .seed = 22});
  EXPECT_EQ(distributed_safe(instance, true), safe_solution(instance));
}

class DistributedAveraging : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(DistributedAveraging, MatchesCentralisedBitForBit) {
  // Section 5.1: each agent recomputes the view LPs with the same
  // deterministic solver, so the distributed execution must equal the
  // centralised simulation exactly.
  const std::int32_t R = GetParam();
  const auto instance = testing::path_instance(8);
  const auto central = local_averaging(instance, {.R = R});
  const auto distributed = distributed_local_averaging(instance, {.R = R});
  ASSERT_EQ(distributed.size(), central.x.size());
  for (std::size_t v = 0; v < central.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(distributed[v], central.x[v]) << "agent " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, DistributedAveraging, ::testing::Values(1, 2));

TEST(DistributedAveragingMore, MatchesOnSmallGrid) {
  const auto instance = make_grid_instance(
      {.dims = {4, 4}, .torus = true, .randomize = true, .seed = 13});
  const auto central = local_averaging(instance, {.R = 1});
  const auto distributed = distributed_local_averaging(instance, {.R = 1});
  for (std::size_t v = 0; v < central.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(distributed[v], central.x[v]) << "agent " << v;
  }
}

TEST(DistributedAveragingMore, MatchesOnRandomInstance) {
  const auto instance = make_random_instance({.num_agents = 25, .seed = 31});
  const auto central = local_averaging(instance, {.R = 1});
  const auto distributed = distributed_local_averaging(instance, {.R = 1});
  for (std::size_t v = 0; v < central.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(distributed[v], central.x[v]);
  }
}

TEST(DistributedAveragingMore, MatchesOnSensorNetwork) {
  SensorNetworkOptions options;
  options.num_sensors = 25;
  options.num_relays = 8;
  options.num_areas = 4;
  options.radio_range = 0.35;
  options.seed = 41;
  const auto net = make_sensor_network(options);
  const auto central = local_averaging(net.instance, {.R = 1});
  const auto distributed = distributed_local_averaging(net.instance, {.R = 1});
  for (std::size_t v = 0; v < central.x.size(); ++v) {
    EXPECT_DOUBLE_EQ(distributed[v], central.x[v]);
  }
}

TEST(DistributedAveragingMore, OutputIsFeasible) {
  const auto instance = make_random_instance({.num_agents = 30, .seed = 51});
  const auto x = distributed_local_averaging(instance, {.R = 1});
  EXPECT_TRUE(evaluate(instance, x).feasible());
}

}  // namespace
}  // namespace mmlp

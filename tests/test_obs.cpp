// The observability subsystem: tracer spans and Chrome Trace export,
// histogram percentiles against the exact quantile of util/stats.hpp,
// and registry thread-safety under the repo's own parallel loops. The
// tracer tests run serialized against each other (the tracer and the
// registry are process-global) — gtest runs tests in one thread, so
// that holds by construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/rng.hpp"
#include "mmlp/util/stats.hpp"

namespace mmlp {
namespace {

/// RAII guard: every tracer test leaves the global tracer disabled and
/// empty so later tests (and the engine tests) see a clean slate.
class TracerSandbox {
 public:
  TracerSandbox() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
  ~TracerSandbox() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

TEST(ObsTracer, DisabledSpansRecordNothing) {
  TracerSandbox sandbox;
  {
    obs::ObsSpan outer("outer", "test");
    obs::ObsSpan inner("inner", "test");
  }
  EXPECT_TRUE(obs::Tracer::instance().events().empty());
}

TEST(ObsTracer, RecordsNestedSpansInnermostFirst) {
  TracerSandbox sandbox;
  obs::Tracer::instance().set_enabled(true);
  {
    obs::ObsSpan outer("outer", "test");
    {
      obs::ObsSpan inner("inner", "test");
    }
  }
  obs::Tracer::instance().set_enabled(false);

  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // RAII order: the inner span destructs (and records) first.
  const obs::TraceEvent& inner = events[0].second;
  const obs::TraceEvent& outer = events[1].second;
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.category, "test");
  // Proper nesting: the inner span lies inside the outer one.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  // Both spans ran on this thread, so they share a thread index.
  EXPECT_EQ(events[0].first, events[1].first);
}

TEST(ObsTracer, ChromeJsonIsWellFormedAndCarriesTheSpans) {
  TracerSandbox sandbox;
  obs::Tracer::instance().set_enabled(true);
  {
    obs::ObsSpan span("chrome_span", "test");
  }
  obs::Tracer::instance().set_enabled(false);

  const std::string json = obs::Tracer::instance().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"chrome_span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  // Balanced braces/brackets — the cheap well-formedness proxy a C++
  // test can check without a JSON parser (the Python validator in
  // tools/validate_trace_json.py does the real parse in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ObsTracer, ClearDropsCollectedEvents) {
  TracerSandbox sandbox;
  obs::Tracer::instance().set_enabled(true);
  {
    obs::ObsSpan span("to_be_cleared", "test");
  }
  obs::Tracer::instance().set_enabled(false);
  ASSERT_FALSE(obs::Tracer::instance().events().empty());
  obs::Tracer::instance().clear();
  EXPECT_TRUE(obs::Tracer::instance().events().empty());
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST(ObsHistogram, PercentilesTrackTheExactQuantile) {
  // A log-uniform latency-like sample across four decades: the
  // histogram's geometric interpolation must land within one bucket
  // width (factor 10^(1/8)) of the exact linear-interpolation quantile.
  Rng rng(4242u);
  obs::Histogram hist;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double value = std::pow(10.0, rng.uniform(-2.0, 2.0));
    values.push_back(value);
    hist.observe(value);
  }
  const double bucket_factor =
      std::pow(10.0, 1.0 / obs::Histogram::kBucketsPerDecade);
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = percentile(values, q);
    const double approx = hist.percentile(q);
    EXPECT_LE(approx, exact * bucket_factor) << "q=" << q;
    EXPECT_GE(approx, exact / bucket_factor) << "q=" << q;
  }
  // The extreme quantiles return the recorded min/max exactly.
  const auto [min_it, max_it] = std::minmax_element(values.begin(),
                                                    values.end());
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), *min_it);
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), *max_it);
  EXPECT_EQ(hist.count(), 20000);
}

TEST(ObsHistogram, PercentilesAreMonotoneAndEmptyIsZero) {
  const obs::Histogram empty;
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  obs::Histogram hist;
  for (const double v : {0.5, 1.0, 2.0, 4.0, 100.0}) {
    hist.observe(v);
  }
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = hist.percentile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(ObsHistogram, ClampsOutOfRangeSamplesInsteadOfLosingThem) {
  obs::Histogram hist;
  hist.observe(1e-9);   // below the grid: clamps into bucket 0
  hist.observe(1e9);    // above the grid: clamps into the last bucket
  hist.observe(-3.0);   // non-positive: bucket 0
  EXPECT_EQ(hist.count(), 3);
  const std::vector<std::int64_t> buckets = hist.bucket_counts();
  EXPECT_EQ(buckets.front(), 2);
  EXPECT_EQ(buckets.back(), 1);
  EXPECT_DOUBLE_EQ(hist.min(), -3.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1e9);
}

TEST(ObsRegistry, CountersSurviveChunkedParallelHammering) {
  obs::Registry registry;
  obs::Counter& total = registry.counter("test.total");
  obs::Histogram& hist = registry.histogram("test.hist");
  constexpr std::size_t kItems = 100000;
  // Every iteration bumps the shared counter and observes into the
  // shared histogram — the loss-free contract of the relaxed atomics.
  chunked_parallel_for(kItems, [&](std::size_t begin, std::size_t end) {
    // Lookup from inside workers too: registration is mutex-guarded.
    obs::Counter& chunk_counter = registry.counter("test.chunks");
    chunk_counter.increment();
    for (std::size_t i = begin; i < end; ++i) {
      total.increment();
      hist.observe(1.0);
    }
  });
  EXPECT_EQ(total.value(), static_cast<std::int64_t>(kItems));
  EXPECT_EQ(hist.count(), static_cast<std::int64_t>(kItems));
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("test.total"),
            static_cast<std::int64_t>(kItems));
  EXPECT_GE(snapshot.counters.at("test.chunks"), 1);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsReferencesValid) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("reset.counter");
  obs::Gauge& gauge = registry.gauge("reset.gauge");
  obs::Histogram& hist = registry.histogram("reset.hist");
  counter.add(7);
  gauge.set(9);
  hist.observe(1.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.count(), 0);
  // The same references keep working after reset.
  counter.increment();
  EXPECT_EQ(registry.snapshot().counters.at("reset.counter"), 1);
}

TEST(ObsRegistry, JsonLineCarriesAllThreeMetricKinds) {
  obs::Registry registry;
  registry.counter("json.counter").add(3);
  registry.gauge("json.gauge").set(-2);
  registry.histogram("json.hist").observe(10.0);
  const std::string json = registry.to_json_line();
  EXPECT_NE(json.find("\"json.counter\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"json.gauge\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace mmlp

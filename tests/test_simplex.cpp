#include "mmlp/lp/simplex.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include <cmath>

namespace mmlp {
namespace {

/// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 — classic textbook LP:
/// optimum 12 at (4, 0).
LpProblem textbook() {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3.0, 2.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 4.0);
  r0.vars = {0, 1};
  r0.coeffs = {1.0, 1.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 6.0);
  r1.vars = {0, 1};
  r1.coeffs = {1.0, 3.0};
  return lp;
}

TEST(Simplex, TextbookOptimum) {
  const auto result = solve_lp(textbook());
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 12.0, 1e-9);
  EXPECT_NEAR(result.x[0], 4.0, 1e-9);
  EXPECT_NEAR(result.x[1], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 3, x + 2y <= 3: optimum 2 at (1, 1).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 3.0);
  r0.vars = {0, 1};
  r0.coeffs = {2.0, 1.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 3.0);
  r1.vars = {0, 1};
  r1.coeffs = {1.0, 2.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
  EXPECT_NEAR(result.x[1], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // max -x - y s.t. x + y >= 2, x = 0.5  -> x=0.5, y=1.5, objective -2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  auto& r0 = lp.add_row(ConstraintSense::kGe, 2.0);
  r0.vars = {0, 1};
  r0.coeffs = {1.0, 1.0};
  auto& r1 = lp.add_row(ConstraintSense::kEq, 0.5);
  r1.vars = {0};
  r1.coeffs = {1.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -2.0, 1e-9);
  EXPECT_NEAR(result.x[0], 0.5, 1e-9);
  EXPECT_NEAR(result.x[1], 1.5, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 1.0);
  r0.vars = {0};
  r0.coeffs = {1.0};
  auto& r1 = lp.add_row(ConstraintSense::kGe, 2.0);
  r1.vars = {0};
  r1.coeffs = {1.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with only y constrained.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 1.0);
  r0.vars = {1};
  r0.coeffs = {1.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalisation) {
  // max -x s.t. -x <= -2  (i.e. x >= 2): optimum -2 at x = 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, -2.0);
  r0.vars = {0};
  r0.coeffs = {-1.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -2.0, 1e-9);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
}

TEST(Simplex, NoConstraintsZeroOrUnbounded) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, 0.0};
  const auto bounded = solve_lp(lp);
  EXPECT_EQ(bounded.status, LpStatus::kOptimal);
  EXPECT_NEAR(bounded.objective, 0.0, 1e-12);

  lp.objective = {1.0, 0.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 1 twice plus max x: optimum 1.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  for (int rep = 0; rep < 2; ++rep) {
    auto& row = lp.add_row(ConstraintSense::kEq, 1.0);
    row.vars = {0, 1};
    row.coeffs = {1.0, 1.0};
  }
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // A classic degenerate LP (multiple constraints through the origin).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 0.0);
  r0.vars = {0, 1};
  r0.coeffs = {1.0, -1.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 0.0);
  r1.vars = {0, 1};
  r1.coeffs = {-1.0, 1.0};
  auto& r2 = lp.add_row(ConstraintSense::kLe, 2.0);
  r2.vars = {0, 1};
  r2.coeffs = {1.0, 1.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
}

TEST(Simplex, TightEqualityAtZeroRhs) {
  // max x s.t. x - y = 0, x + y <= 2: optimum 1 at (1,1).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  auto& r0 = lp.add_row(ConstraintSense::kEq, 0.0);
  r0.vars = {0, 1};
  r0.coeffs = {1.0, -1.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 2.0);
  r1.vars = {0, 1};
  r1.coeffs = {1.0, 1.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(Simplex, SolutionSatisfiesConstraints) {
  const auto lp = textbook();
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(max_violation(lp, result.x), 0.0, 1e-9);
}

TEST(Simplex, MaxViolationReportsBreaches) {
  const auto lp = textbook();
  EXPECT_GT(max_violation(lp, {10.0, 10.0}), 0.0);
  EXPECT_GT(max_violation(lp, {-1.0, 0.0}), 0.0);  // negativity
  EXPECT_DOUBLE_EQ(max_violation(lp, {0.0, 0.0}), 0.0);
}

TEST(Simplex, ValidateRejectsBadRows) {
  LpProblem lp;
  lp.num_vars = 1;
  auto& row = lp.add_row(ConstraintSense::kLe, 1.0);
  row.vars = {1};  // out of range
  row.coeffs = {1.0};
  EXPECT_THROW(solve_lp(lp), CheckError);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP: Dantzig's rule alone cycles forever at
  // the degenerate origin; the Bland fallback must break the cycle.
  //   max 0.75x1 − 150x2 + 0.02x3 − 6x4
  //   s.t. 0.25x1 − 60x2 − 0.04x3 + 9x4 ≤ 0
  //        0.50x1 − 90x2 − 0.02x3 + 3x4 ≤ 0
  //        x3 ≤ 1
  // Optimum: 0.05 at x = (0.04, 0, 1, 0) (scaled classic form).
  LpProblem lp;
  lp.num_vars = 4;
  lp.objective = {0.75, -150.0, 0.02, -6.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 0.0);
  r0.vars = {0, 1, 2, 3};
  r0.coeffs = {0.25, -60.0, -0.04, 9.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 0.0);
  r1.vars = {0, 1, 2, 3};
  r1.coeffs = {0.5, -90.0, -0.02, 3.0};
  auto& r2 = lp.add_row(ConstraintSense::kLe, 1.0);
  r2.vars = {2};
  r2.coeffs = {1.0};
  const auto result = solve_lp(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 0.05, 1e-9);
  EXPECT_LT(result.iterations, 1000);  // no cycling
}

TEST(Simplex, StatusToString) {
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterLimit), "iteration-limit");
}

}  // namespace
}  // namespace mmlp

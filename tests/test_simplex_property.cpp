// Property suite: the simplex must agree with an independent brute-force
// vertex enumerator on random two-variable LPs, across many seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>

#include "mmlp/lp/simplex.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {
namespace {

struct DenseLp {
  // max c·x s.t. A x <= b, x >= 0, two variables.
  double c[2];
  double a[4][2];
  double b[4];
  int rows;
};

/// Enumerate all candidate vertices: pairwise intersections of the
/// constraint lines and the axes; keep feasible ones; return the best
/// objective (nullopt if the feasible set is empty — cannot happen here
/// since 0 is feasible for b >= 0).
std::optional<double> brute_force(const DenseLp& lp) {
  std::vector<std::array<double, 2>> candidates;
  candidates.push_back({0.0, 0.0});

  // Collect all lines: constraint rows plus x0 = 0 and x1 = 0.
  struct Line {
    double a0, a1, rhs;
  };
  std::vector<Line> lines;
  for (int r = 0; r < lp.rows; ++r) {
    lines.push_back({lp.a[r][0], lp.a[r][1], lp.b[r]});
  }
  lines.push_back({1.0, 0.0, 0.0});
  lines.push_back({0.0, 1.0, 0.0});

  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a0 * lines[j].a1 - lines[i].a1 * lines[j].a0;
      if (std::abs(det) < 1e-12) {
        continue;
      }
      const double x0 = (lines[i].rhs * lines[j].a1 - lines[i].a1 * lines[j].rhs) / det;
      const double x1 = (lines[i].a0 * lines[j].rhs - lines[i].rhs * lines[j].a0) / det;
      candidates.push_back({x0, x1});
    }
  }

  std::optional<double> best;
  for (const auto& cand : candidates) {
    if (cand[0] < -1e-9 || cand[1] < -1e-9) {
      continue;
    }
    bool feasible = true;
    for (int r = 0; r < lp.rows; ++r) {
      if (lp.a[r][0] * cand[0] + lp.a[r][1] * cand[1] > lp.b[r] + 1e-9) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      continue;
    }
    const double objective = lp.c[0] * cand[0] + lp.c[1] * cand[1];
    if (!best.has_value() || objective > *best) {
      best = objective;
    }
  }
  return best;
}

LpProblem to_problem(const DenseLp& lp) {
  LpProblem problem;
  problem.num_vars = 2;
  problem.objective = {lp.c[0], lp.c[1]};
  for (int r = 0; r < lp.rows; ++r) {
    auto& row = problem.add_row(ConstraintSense::kLe, lp.b[r]);
    row.vars = {0, 1};
    row.coeffs = {lp.a[r][0], lp.a[r][1]};
  }
  return problem;
}

class SimplexRandomLp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomLp, MatchesBruteForceVertexEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    DenseLp lp;
    lp.rows = static_cast<int>(rng.uniform_int(1, 4));
    // Strictly positive coefficients keep the LP bounded; b >= 0 keeps
    // the origin feasible, so the optimum always exists.
    lp.c[0] = rng.uniform(0.1, 2.0);
    lp.c[1] = rng.uniform(0.1, 2.0);
    for (int r = 0; r < lp.rows; ++r) {
      lp.a[r][0] = rng.uniform(0.1, 2.0);
      lp.a[r][1] = rng.uniform(0.1, 2.0);
      lp.b[r] = rng.uniform(0.0, 3.0);
    }
    const auto expected = brute_force(lp);
    ASSERT_TRUE(expected.has_value());
    const auto result = solve_lp(to_problem(lp));
    ASSERT_EQ(result.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(result.objective, *expected, 1e-6) << "trial " << trial;
    EXPECT_NEAR(max_violation(to_problem(lp), result.x), 0.0, 1e-7);
  }
}

TEST_P(SimplexRandomLp, MixedSensesStayConsistentWithLeOnlyRelaxation) {
  // Adding a redundant >= 0-sum row must not change the optimum.
  Rng rng(GetParam() ^ 0x5bd1e995);
  for (int trial = 0; trial < 25; ++trial) {
    DenseLp lp;
    lp.rows = static_cast<int>(rng.uniform_int(1, 3));
    lp.c[0] = rng.uniform(0.1, 2.0);
    lp.c[1] = rng.uniform(0.1, 2.0);
    for (int r = 0; r < lp.rows; ++r) {
      lp.a[r][0] = rng.uniform(0.1, 2.0);
      lp.a[r][1] = rng.uniform(0.1, 2.0);
      lp.b[r] = rng.uniform(0.5, 3.0);
    }
    auto problem = to_problem(lp);
    const double base = solve_lp(problem).objective;
    auto& row = problem.add_row(ConstraintSense::kGe, 0.0);
    row.vars = {0, 1};
    row.coeffs = {1.0, 1.0};
    const auto result = solve_lp(problem);
    ASSERT_EQ(result.status, LpStatus::kOptimal);
    EXPECT_NEAR(result.objective, base, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace mmlp

#include "mmlp/graph/simple_graph.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

SimpleGraph cycle(std::int32_t n) {
  SimpleGraph g(n);
  for (std::int32_t v = 0; v < n; ++v) {
    g.add_edge(v, (v + 1) % n);
  }
  return g;
}

TEST(SimpleGraph, AddRemoveEdges) {
  SimpleGraph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_undirected_edges(), 1);
  g.remove_edge(1, 0);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_undirected_edges(), 0);
}

TEST(SimpleGraph, RejectsSelfLoopAndParallel) {
  SimpleGraph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 0), CheckError);
  EXPECT_THROW(g.add_edge(1, 0), CheckError);
  EXPECT_THROW(g.remove_edge(0, 2), CheckError);
}

TEST(SimpleGraph, DegreeAndNeighbors) {
  const auto g = cycle(5);
  for (std::int32_t v = 0; v < 5; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_FALSE(g.is_regular(3));
}

TEST(SimpleGraph, BipartitionOfEvenCycle) {
  const auto g = cycle(6);
  const auto coloring = g.bipartition();
  ASSERT_TRUE(coloring.has_value());
  for (std::int32_t v = 0; v < 6; ++v) {
    for (const std::int32_t u : g.neighbors(v)) {
      EXPECT_NE((*coloring)[static_cast<std::size_t>(v)],
                (*coloring)[static_cast<std::size_t>(u)]);
    }
  }
}

TEST(SimpleGraph, OddCycleNotBipartite) {
  EXPECT_FALSE(cycle(5).bipartition().has_value());
}

TEST(SimpleGraph, GirthOfCycles) {
  EXPECT_EQ(cycle(4).girth().value(), 4);
  EXPECT_EQ(cycle(7).girth().value(), 7);
  EXPECT_EQ(cycle(10).girth().value(), 10);
}

TEST(SimpleGraph, ForestHasNoGirth) {
  SimpleGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_FALSE(g.girth().has_value());
}

TEST(SimpleGraph, GirthDetectsChordShortcut) {
  auto g = cycle(8);
  g.add_edge(0, 3);  // creates a 4-cycle 0-1-2-3
  EXPECT_EQ(g.girth().value(), 4);
}

TEST(SimpleGraph, CompleteGraphGirth3) {
  SimpleGraph g(4);
  for (std::int32_t u = 0; u < 4; ++u) {
    for (std::int32_t v = u + 1; v < 4; ++v) {
      g.add_edge(u, v);
    }
  }
  EXPECT_EQ(g.girth().value(), 3);
}

TEST(SimpleGraph, BallAndBfs) {
  const auto g = cycle(10);
  EXPECT_EQ(g.ball(0, 0), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(g.ball(0, 1), (std::vector<std::int32_t>{0, 1, 9}));
  const auto dist = g.bfs(0);
  EXPECT_EQ(dist[5], 5);
  EXPECT_EQ(dist[9], 1);
  const auto capped = g.bfs(0, 2);
  EXPECT_EQ(capped[5], -1);
}

TEST(SimpleGraph, BallAcyclicityOnCycle) {
  const auto g = cycle(12);
  EXPECT_TRUE(g.ball_is_acyclic(0, 2));   // arc of 5 nodes: a path
  EXPECT_TRUE(g.ball_is_acyclic(0, 5));   // 11 of 12 nodes: still a path
  EXPECT_FALSE(g.ball_is_acyclic(0, 6));  // whole cycle
}

TEST(SimpleGraph, ShortestCycleThroughUpperBoundsGirth) {
  auto g = cycle(8);
  g.add_edge(0, 3);
  std::int32_t best = 1 << 30;
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const auto candidate = g.shortest_cycle_through(v);
    if (candidate.has_value()) {
      EXPECT_GE(*candidate, 4);  // no candidate may undercut the girth
      best = std::min(best, *candidate);
    }
  }
  EXPECT_EQ(best, 4);  // and the minimum attains it
}

}  // namespace
}  // namespace mmlp

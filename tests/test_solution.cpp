#include "mmlp/core/solution.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include <cmath>
#include <limits>

#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Solution, PartyBenefitAndResourceLoad) {
  const auto instance = testing::two_agent_instance();
  const std::vector<double> x{0.25, 0.5};
  EXPECT_DOUBLE_EQ(party_benefit(instance, x, 0), 0.25);
  EXPECT_DOUBLE_EQ(party_benefit(instance, x, 1), 0.5);
  EXPECT_DOUBLE_EQ(resource_load(instance, x, 0), 0.75);
}

TEST(Solution, ObjectiveIsMinOverParties) {
  const auto instance = testing::two_agent_instance();
  EXPECT_DOUBLE_EQ(objective_omega(instance, {0.25, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(objective_omega(instance, {0.5, 0.1}), 0.1);
}

TEST(Solution, EvaluateTracksArgmins) {
  const auto instance = testing::two_agent_instance();
  const auto eval = evaluate(instance, {0.25, 0.5});
  EXPECT_DOUBLE_EQ(eval.omega, 0.25);
  EXPECT_EQ(eval.argmin_party, 0);
  EXPECT_EQ(eval.argmax_resource, 0);
  EXPECT_TRUE(eval.feasible());
  EXPECT_DOUBLE_EQ(eval.worst_violation, 0.0);
}

TEST(Solution, EvaluateFlagsOverload) {
  const auto instance = testing::two_agent_instance();
  const auto eval = evaluate(instance, {1.0, 0.5});
  EXPECT_FALSE(eval.feasible());
  EXPECT_NEAR(eval.worst_violation, 0.5, 1e-12);
}

TEST(Solution, EvaluateFlagsNegativity) {
  const auto instance = testing::two_agent_instance();
  const auto eval = evaluate(instance, {-0.1, 0.2});
  EXPECT_FALSE(eval.feasible());
  EXPECT_NEAR(eval.worst_violation, 0.1, 1e-12);
}

TEST(Solution, FeasibleWithinTolerance) {
  const auto instance = testing::two_agent_instance();
  const auto eval = evaluate(instance, {0.5, 0.5 + 0.5e-7});
  EXPECT_TRUE(eval.feasible(kFeasTol));
  EXPECT_FALSE(eval.feasible(1e-9));
}

TEST(Solution, ScaleToFeasibleShrinksOverloaded) {
  const auto instance = testing::two_agent_instance();
  std::vector<double> x{2.0, 2.0};  // load 4
  const double scale = scale_to_feasible(instance, x);
  EXPECT_NEAR(scale, 0.25, 1e-12);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_TRUE(evaluate(instance, x).feasible());
}

TEST(Solution, ScaleToFeasibleLeavesFeasibleAlone) {
  const auto instance = testing::two_agent_instance();
  std::vector<double> x{0.25, 0.25};
  EXPECT_DOUBLE_EQ(scale_to_feasible(instance, x), 1.0);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
}

TEST(Solution, ScaleToFeasibleClampsNegatives) {
  const auto instance = testing::two_agent_instance();
  std::vector<double> x{-1.0, 0.5};
  scale_to_feasible(instance, x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(Solution, NoPartiesMeansInfiniteOmega) {
  Instance::Builder builder;
  const AgentId v = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v, 1.0);
  const auto instance = std::move(builder).build();
  EXPECT_TRUE(std::isinf(objective_omega(instance, {0.0})));
  EXPECT_EQ(evaluate(instance, {0.0}).argmin_party, -1);
}

TEST(Solution, ApproximationRatioConventions) {
  EXPECT_DOUBLE_EQ(approximation_ratio(1.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(approximation_ratio(0.0, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(approximation_ratio(1.0, 0.0)));
  EXPECT_THROW(approximation_ratio(-1.0, 0.5), CheckError);
}

TEST(Solution, SizeMismatchThrows) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(objective_omega(instance, {0.1}), CheckError);
  EXPECT_THROW(evaluate(instance, {0.1, 0.2, 0.3}), CheckError);
}

}  // namespace
}  // namespace mmlp

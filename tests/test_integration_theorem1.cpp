// End-to-end validation of Theorem 1's proof pipeline: build S, run a
// horizon-r algorithm, pick p by δ, build S', and verify the algorithm's
// forced solution on S' is bounded away from the optimum.
#include <gtest/gtest.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"

namespace mmlp {
namespace {

struct Params {
  std::int32_t d;
  std::int32_t D;
  std::int32_t R;
};

class Theorem1Pipeline : public ::testing::TestWithParam<Params> {};

TEST_P(Theorem1Pipeline, SafeRatioOnSPrimeExceedsFiniteBound) {
  const auto [d, D, R] = GetParam();
  LowerBoundParams params;
  params.d = d;
  params.D = D;
  params.r = 1;
  params.R = R;
  params.seed = 17;
  const auto lb = build_lower_bound_instance(params);

  // Step 1-2 of the proof: apply the algorithm to S, select p with
  // δ(p) >= 0.
  const auto x_s = safe_solution(lb.instance);
  EXPECT_TRUE(evaluate(lb.instance, x_s).feasible());
  const std::int32_t p = select_p(compute_delta(lb, x_s));

  // Step 3: restrict to S'.
  const auto sub = build_s_prime(lb, p);

  // Step 4: ω*(S') >= 1 via the alternating solution.
  const auto x_hat = alternating_solution(sub);
  ASSERT_NEAR(evaluate(sub.instance, x_hat).omega, 1.0, 1e-12);

  // Step 5: the horizon-1 algorithm repeats its choices on S'; its ω on
  // S' then cannot exceed ω*/(finite bound). We run it on S' directly
  // (identical views force identical output; asserted in unit tests).
  const auto x_sub = safe_solution(sub.instance);
  const double achieved = objective_omega(sub.instance, x_sub);
  ASSERT_GT(achieved, 0.0);
  const double ratio_lower_bound = 1.0 / achieved;  // since ω*(S') >= 1

  const double bound = theorem1_bound_finite(d, D, R);
  EXPECT_GE(ratio_lower_bound, bound - 1e-9)
      << "d=" << d << " D=" << D << " R=" << R;
}

TEST_P(Theorem1Pipeline, SafeRatioFormulaOnSPrime) {
  // The safe solution on the construction is analysable in closed form:
  // every agent picks 1/(d+1); type II parties receive (D+1)/(D(d+1)),
  // type III parties 2/(d+1); so ω_safe = (D+1)/(D(d+1)) and the ratio
  // against ω* >= 1 is at least D(d+1)/(D+1).
  const auto [d, D, R] = GetParam();
  LowerBoundParams params;
  params.d = d;
  params.D = D;
  params.r = 1;
  params.R = R;
  params.seed = 29;
  const auto lb = build_lower_bound_instance(params);
  const auto sub = build_s_prime(lb, 0);
  const auto x_sub = safe_solution(sub.instance);
  const double expected_omega =
      static_cast<double>(D + 1) / (static_cast<double>(D) * (d + 1));
  EXPECT_NEAR(objective_omega(sub.instance, x_sub), expected_omega, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Constructions, Theorem1Pipeline,
    ::testing::Values(Params{2, 2, 2},   // Δ = 8 (PG(2,7))
                      Params{2, 3, 2},   // Δ = 12 (PG(2,11))
                      Params{3, 2, 2},   // Δ = 18 (PG(2,17))
                      Params{2, 1, 2},   // Corollary 2, Δ = 4 (PG(2,3))
                      Params{2, 1, 3})); // Corollary 2, Δ = 8 (PG(2,7))

TEST(Theorem1Claim, NoLocalSchemeWhenDeltaExceedsTwo) {
  // The theorem's qualitative content: for Δ_I^V >= 3 (d >= 2) the bound
  // is strictly above 1, so no local approximation scheme exists.
  EXPECT_GT(theorem1_bound(2, 1), 1.0);
  EXPECT_GT(theorem1_bound(2, 2), 1.0);
  EXPECT_GT(theorem1_bound(1, 2), 1.0);  // Δ_K^V >= 3 likewise
}

TEST(Theorem1Claim, BoundApproachesHalfDeltaVI) {
  // As Δ_K^V → ∞ the bound tends to Δ_I^V/2 + 1/2.
  const double d = 4;
  EXPECT_NEAR(theorem1_bound(4, 1000), d / 2.0 + 1.0, 1e-3);
}

}  // namespace
}  // namespace mmlp

// The differential recovery bar for the self-stabilizing solvers
// (Section 1.1 realized on the paper's actual algorithms): from ANY
// corrupted state — a replayable FaultPlan applied over a faulty
// prefix, or every table fully randomized — after at most horizon + 1
// fault-free rounds the output is BITWISE equal to the fault-free
// distributed execution. Property-tested across generator scenarios ×
// {safe, averaging R=1, averaging R=2} × seeded fault plans.
#include "mmlp/dist/self_stabilizing_solver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "mmlp/dist/algorithms.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/util/fault.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

// The Section 4 shape without the template-graph pairing: agents are
// the nodes of a complete (d, D)-ary hypertree, type I hyperedges
// become unit resources, type II hyperedges become parties.
Instance make_hypertree_instance(std::int32_t d, std::int32_t D,
                                 std::int32_t height) {
  const Hypertree tree = Hypertree::complete(d, D, height);
  Instance::Builder builder;
  for (std::int32_t node = 0; node < tree.num_nodes(); ++node) {
    builder.add_agent();
  }
  for (const HypertreeEdge& edge : tree.edges()) {
    if (edge.type == HyperedgeType::kTypeI) {
      const ResourceId i = builder.add_resource();
      builder.set_usage(i, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_usage(i, child, 1.0);
      }
    } else {
      const PartyId k = builder.add_party();
      builder.set_benefit(k, edge.parent, 1.0 / static_cast<double>(D));
      for (const std::int32_t child : edge.children) {
        builder.set_benefit(k, child, 1.0 / static_cast<double>(D));
      }
    }
  }
  return std::move(builder).build();
}

struct Scenario {
  const char* name;
  Instance instance;
};

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario>* cases = [] {
    auto* list = new std::vector<Scenario>();
    list->push_back({"grid_torus", make_grid_instance({.dims = {5, 5},
                                                       .torus = true,
                                                       .randomize = true,
                                                       .seed = 3})});
    list->push_back(
        {"random", make_random_instance({.num_agents = 36, .seed = 9})});
    list->push_back({"hypertree", make_hypertree_instance(2, 2, 3)});
    return list;
  }();
  return *cases;
}

struct Config {
  SelfStabilizingSolver::Algorithm algorithm;
  std::int32_t R;  // read by kAveraging only
};

std::vector<double> fault_free_output(const Instance& instance,
                                      const Config& config,
                                      const LocalAveragingOptions& options) {
  if (config.algorithm == SelfStabilizingSolver::Algorithm::kSafe) {
    return distributed_safe(instance);
  }
  return distributed_local_averaging(instance, options);
}

// (scenario index, algorithm+R index, fault seed)
using RecoveryParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

const std::vector<Config>& configs() {
  static const std::vector<Config> list = {
      {SelfStabilizingSolver::Algorithm::kSafe, 1},
      {SelfStabilizingSolver::Algorithm::kAveraging, 1},
      {SelfStabilizingSolver::Algorithm::kAveraging, 2},
  };
  return list;
}

class SelfStabSolverRecovery
    : public ::testing::TestWithParam<RecoveryParam> {};

TEST_P(SelfStabSolverRecovery, FaultPlanThenCleanRoundsMatchesFaultFree) {
  const auto& [scenario_index, config_index, fault_seed] = GetParam();
  const Scenario& scenario = scenarios()[scenario_index];
  const Config& config = configs()[config_index];
  LocalAveragingOptions options;
  options.R = config.R;

  SelfStabilizingSolver solver(scenario.instance, config.algorithm, options);
  EXPECT_TRUE(solver.is_legitimate());

  // A faulty prefix: a seeded random schedule of 18 events over 3
  // rounds, drawn from the full taxonomy.
  FaultInjector faults(FaultPlan::random(
      fault_seed, 3, scenario.instance.num_agents(), 18));
  const std::int32_t faulty_rounds = solver.run_plan(faults);
  EXPECT_EQ(faulty_rounds, faults.plan().rounds());

  // The stabilization contract: at most horizon + 1 fault-free rounds
  // from ANY state, then the legitimate fixed point.
  const std::int32_t rounds = solver.stabilize(solver.horizon() + 1);
  EXPECT_LE(rounds, solver.horizon() + 1);
  ASSERT_TRUE(solver.is_legitimate())
      << scenario.name << " seed " << fault_seed;

  // The differential bar: bitwise equality with the fault-free run.
  EXPECT_EQ(solver.output(),
            fault_free_output(scenario.instance, config, options))
      << scenario.name << " seed " << fault_seed;
}

TEST_P(SelfStabSolverRecovery, MaximalCorruptionThenCleanRoundsMatches) {
  const auto& [scenario_index, config_index, fault_seed] = GetParam();
  const Scenario& scenario = scenarios()[scenario_index];
  const Config& config = configs()[config_index];
  LocalAveragingOptions options;
  options.R = config.R;

  SelfStabilizingSolver solver(scenario.instance, config.algorithm, options);
  // The strongest transient state: EVERY table replaced by a fully
  // random one — nothing of the legitimate state survives.
  Rng rng(fault_seed);
  solver.knowledge().corrupt_all(rng);
  EXPECT_FALSE(solver.is_legitimate());

  for (std::int32_t round = 0; round < solver.horizon() + 1; ++round) {
    solver.knowledge().step();
  }
  ASSERT_TRUE(solver.is_legitimate())
      << scenario.name << " seed " << fault_seed;
  EXPECT_EQ(solver.output(),
            fault_free_output(scenario.instance, config, options))
      << scenario.name << " seed " << fault_seed;
}

std::string recovery_param_name(
    const ::testing::TestParamInfo<RecoveryParam>& info) {
  const auto& [scenario_index, config_index, fault_seed] = info.param;
  static const char* const config_names[] = {"safe", "averagingR1",
                                             "averagingR2"};
  return std::string(scenarios()[scenario_index].name) + "_" +
         config_names[config_index] + "_s" + std::to_string(fault_seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SelfStabSolverRecovery,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{23})),
    recovery_param_name);

TEST(SelfStabSolver, HorizonMatchesTheAlgorithm) {
  const auto instance = testing::path_instance(6);
  LocalAveragingOptions options;
  options.R = 2;
  SelfStabilizingSolver safe(instance,
                             SelfStabilizingSolver::Algorithm::kSafe);
  EXPECT_EQ(safe.horizon(), 1);
  SelfStabilizingSolver averaging(
      instance, SelfStabilizingSolver::Algorithm::kAveraging, options);
  EXPECT_EQ(averaging.horizon(), 2 * options.R + 1);
}

TEST(SelfStabSolver, LegitimateOutputNeedsNoRounds) {
  // Constructed in the legitimate state, the output is immediately the
  // fault-free execution — zero rounds, nothing carried over.
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  SelfStabilizingSolver solver(instance,
                               SelfStabilizingSolver::Algorithm::kSafe);
  EXPECT_EQ(solver.output(), distributed_safe(instance));
  EXPECT_EQ(solver.stabilize(3), 1);  // only the no-change detection round
}

TEST(SelfStabSolver, EmptyPlanLeavesTheLegitimateState) {
  const auto instance = testing::path_instance(5);
  SelfStabilizingSolver solver(instance,
                               SelfStabilizingSolver::Algorithm::kSafe);
  FaultInjector faults{FaultPlan{}};
  EXPECT_EQ(solver.run_plan(faults), 0);
  EXPECT_TRUE(solver.is_legitimate());
  EXPECT_EQ(faults.faults_injected(), 0);
}

TEST(SelfStabSolver, FaultyExecutionReplaysBitwise) {
  // The same plan against the same instance yields the same transient
  // tables and the same output trajectory — fault schedules are test
  // vectors, not noise.
  const auto instance = make_random_instance({.num_agents = 30, .seed = 5});
  const FaultPlan plan = FaultPlan::random(7, 2, instance.num_agents(), 12);
  std::vector<std::vector<AgentId>> first_knowledge;
  std::vector<std::vector<AgentId>> second_knowledge;
  for (auto* sink : {&first_knowledge, &second_knowledge}) {
    SelfStabilizingSolver solver(instance,
                                 SelfStabilizingSolver::Algorithm::kSafe);
    FaultInjector faults(plan);
    solver.run_plan(faults);
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      sink->push_back(solver.knowledge().knowledge(v));
    }
  }
  EXPECT_EQ(first_knowledge, second_knowledge);
}

}  // namespace
}  // namespace mmlp

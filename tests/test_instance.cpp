#include "mmlp/core/instance.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Instance, BuilderProducesExpectedCounts) {
  const auto instance = testing::two_agent_instance();
  EXPECT_EQ(instance.num_agents(), 2);
  EXPECT_EQ(instance.num_resources(), 1);
  EXPECT_EQ(instance.num_parties(), 2);
  EXPECT_EQ(instance.num_nonzeros(), 4u);
}

TEST(Instance, SupportsAreSortedAndConsistent) {
  Instance::Builder builder;
  builder.reserve(3, 0, 0);
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, 2, 3.0);
  builder.set_usage(i, 0, 1.0);
  builder.set_usage(i, 1, 2.0);
  const PartyId k = builder.add_party();
  builder.set_benefit(k, 1, 5.0);
  const auto instance = std::move(builder).build();
  const auto& support = instance.resource_support(i);
  ASSERT_EQ(support.size(), 3u);
  EXPECT_EQ(support[0].id, 0);
  EXPECT_EQ(support[1].id, 1);
  EXPECT_EQ(support[2].id, 2);
  EXPECT_DOUBLE_EQ(instance.usage(i, 2), 3.0);
  EXPECT_DOUBLE_EQ(instance.usage(i, 1), 2.0);
  EXPECT_DOUBLE_EQ(instance.benefit(k, 1), 5.0);
  EXPECT_DOUBLE_EQ(instance.benefit(k, 0), 0.0);  // not in V_k
}

TEST(Instance, TransposedViewsMatch) {
  const auto instance = testing::single_party_instance();
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    for (const Coef& entry : instance.agent_resources(v)) {
      EXPECT_DOUBLE_EQ(instance.usage(entry.id, v), entry.value);
    }
    for (const Coef& entry : instance.agent_parties(v)) {
      EXPECT_DOUBLE_EQ(instance.benefit(entry.id, v), entry.value);
    }
  }
}

TEST(Instance, DegreeBounds) {
  const auto instance = testing::single_party_instance();
  const auto bounds = instance.degree_bounds();
  EXPECT_EQ(bounds.delta_V_of_I, 2u);  // each resource couples 2 agents
  EXPECT_EQ(bounds.delta_V_of_K, 3u);  // the sole party has all 3 agents
  EXPECT_EQ(bounds.delta_I_of_V, 2u);  // middle agent is in 2 resources
  EXPECT_EQ(bounds.delta_K_of_V, 1u);
}

TEST(Instance, CommunicationGraphFull) {
  const auto instance = testing::two_agent_instance();
  const auto h = instance.communication_graph();
  EXPECT_EQ(h.num_nodes(), 2);
  EXPECT_EQ(h.num_edges(), 3);  // V_i plus both V_k
  EXPECT_TRUE(h.adjacent(0, 1));
}

TEST(Instance, CommunicationGraphCollaborationOblivious) {
  const auto instance = testing::two_agent_instance();
  const auto h = instance.communication_graph(/*collaboration_oblivious=*/true);
  EXPECT_EQ(h.num_edges(), 1);  // only the resource hyperedge
}

TEST(Instance, PartyEdgesConnectInFullGraphOnly) {
  // Two agents share only a party, plus private resources.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i0 = builder.add_resource();
  const ResourceId i1 = builder.add_resource();
  builder.set_usage(i0, v0, 1.0);
  builder.set_usage(i1, v1, 1.0);
  const PartyId k = builder.add_party();
  builder.set_benefit(k, v0, 1.0).set_benefit(k, v1, 1.0);
  const auto instance = std::move(builder).build();
  EXPECT_TRUE(instance.communication_graph(false).adjacent(0, 1));
  EXPECT_FALSE(instance.communication_graph(true).adjacent(0, 1));
}

TEST(Instance, BuilderRejectsNonPositiveCoefficients) {
  Instance::Builder builder;
  builder.add_agent();
  builder.add_resource();
  EXPECT_THROW(builder.set_usage(0, 0, 0.0), CheckError);
  EXPECT_THROW(builder.set_usage(0, 0, -1.0), CheckError);
  builder.add_party();
  EXPECT_THROW(builder.set_benefit(0, 0, 0.0), CheckError);
}

TEST(Instance, BuilderRejectsDuplicateCoefficient) {
  Instance::Builder builder;
  builder.add_agent();
  builder.add_resource();
  builder.set_usage(0, 0, 1.0);
  builder.set_usage(0, 0, 2.0);
  EXPECT_THROW(std::move(builder).build(), CheckError);
}

/// Run fn and return the CheckError message (fails the test if nothing
/// is thrown).
template <typename Fn>
std::string check_error_message(Fn fn) {
  try {
    fn();
  } catch (const CheckError& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return {};
}

TEST(Instance, BuilderErrorsNameTheOffendingIds) {
  // A bad entry inside a large generated instance must be attributable:
  // every rejection names the agent/resource/party ids involved.
  {
    Instance::Builder builder;
    const auto message =
        check_error_message([&] { builder.set_usage(3, 7, -1.0); });
    EXPECT_NE(message.find("i=3"), std::string::npos) << message;
    EXPECT_NE(message.find("v=7"), std::string::npos) << message;
  }
  {
    Instance::Builder builder;
    const auto message =
        check_error_message([&] { builder.set_benefit(5, 9, 0.0); });
    EXPECT_NE(message.find("k=5"), std::string::npos) << message;
    EXPECT_NE(message.find("v=9"), std::string::npos) << message;
  }
  {
    Instance::Builder builder;
    builder.reserve(8, 4, 0);
    for (AgentId v = 0; v < 8; ++v) {
      builder.set_usage(v / 2, v, 1.0);
    }
    builder.set_usage(2, 5, 2.0);  // duplicate of the (2, 5) entry above
    const auto message =
        check_error_message([&] { std::move(builder).build(); });
    EXPECT_NE(message.find("duplicate"), std::string::npos) << message;
    EXPECT_NE(message.find("2"), std::string::npos) << message;
    EXPECT_NE(message.find("5"), std::string::npos) << message;
  }
}

TEST(Instance, AccessorRangeErrorsNameTheIndex) {
  const auto instance = testing::two_agent_instance();
  const auto message = check_error_message(
      [&] { instance.resource_support(42); });
  EXPECT_NE(message.find("42"), std::string::npos) << message;
  const auto agent_message =
      check_error_message([&] { instance.agent_resources(-1); });
  EXPECT_NE(agent_message.find("-1"), std::string::npos) << agent_message;
}

TEST(Instance, BuildRejectsEmptyIv) {
  // An agent with no resource violates the standing assumptions.
  Instance::Builder builder;
  builder.add_agent();
  builder.add_agent();
  builder.add_resource();
  builder.set_usage(0, 0, 1.0);  // agent 1 left without a resource
  EXPECT_THROW(std::move(builder).build(), CheckError);
}

TEST(Instance, BuildRejectsEmptyResource) {
  Instance::Builder builder;
  builder.add_agent();
  const ResourceId i0 = builder.add_resource();
  builder.add_resource();  // never touched
  builder.set_usage(i0, 0, 1.0);
  EXPECT_THROW(std::move(builder).build(), CheckError);
}

TEST(Instance, SerializeRoundTrip) {
  const auto original = testing::single_party_instance();
  const auto restored = Instance::deserialize(original.serialize());
  EXPECT_TRUE(original == restored);
  EXPECT_EQ(restored.num_agents(), original.num_agents());
  EXPECT_EQ(restored.num_nonzeros(), original.num_nonzeros());
}

TEST(Instance, DeserializeRejectsGarbage) {
  EXPECT_THROW(Instance::deserialize("bogus 1 1 1"), CheckError);
  EXPECT_THROW(Instance::deserialize("mmlp 1 1 1\nz 0 0 1.0"), CheckError);
}

TEST(Instance, EqualityDistinguishesCoefficients) {
  const auto a = testing::two_agent_instance();
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v0, 1.0).set_usage(i, v1, 2.0);  // differs here
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 1.0).set_benefit(k1, v1, 1.0);
  const auto b = std::move(builder).build();
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/view.hpp"

#include <gtest/gtest.h>

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/growth.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(LocalView, PathViewRadiusOne) {
  const auto instance = testing::path_instance(5);
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 2, 1);
  EXPECT_EQ(view.center, 2);
  EXPECT_EQ(view.agents, (std::vector<AgentId>{1, 2, 3}));
  // I^u: resources touching {1,2,3} = resources 0..3 (couples 0-1 ... 3-4).
  EXPECT_EQ(view.resources.size(), 4u);
  // K^u: singleton parties of 1, 2, 3 are fully visible.
  EXPECT_EQ(view.parties, (std::vector<PartyId>{1, 2, 3}));
}

TEST(LocalView, LocalIndexing) {
  const auto instance = testing::path_instance(5);
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 2, 1);
  EXPECT_EQ(view.local_index(1), 0);
  EXPECT_EQ(view.local_index(2), 1);
  EXPECT_EQ(view.local_index(3), 2);
  EXPECT_EQ(view.local_index(0), -1);
}

TEST(LocalView, ResourceEntriesRestrictedToBall) {
  const auto instance = testing::path_instance(5);
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 2, 1);
  // Resource 0 couples agents {0, 1}; only agent 1 is in the ball.
  const auto it = std::find(view.resources.begin(), view.resources.end(), 0);
  ASSERT_NE(it, view.resources.end());
  const auto& entries =
      view.resource_entries(static_cast<std::size_t>(it - view.resources.begin()));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(view.agents[static_cast<std::size_t>(entries[0].id)], 1);
}

TEST(LocalView, FullRadiusSeesWholeInstance) {
  const auto instance = testing::path_instance(5);
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 0, 10);
  EXPECT_EQ(view.agents.size(), 5u);
  EXPECT_EQ(view.resources.size(), 4u);
  EXPECT_EQ(view.parties.size(), 5u);
}

TEST(ViewLp, FullViewMatchesGlobalOptimum) {
  const auto instance = testing::two_agent_instance();
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 0, 2);
  const auto solution = solve_view_lp(view);
  EXPECT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.omega, 0.5, 1e-9);
}

TEST(ViewLp, EmptyPartySetGivesZero) {
  // Radius-1 view of an end agent of a long path where all parties are
  // out of sight: build a path with parties only at the far end.
  Instance::Builder builder;
  for (AgentId v = 0; v < 4; ++v) {
    builder.add_agent();
  }
  for (AgentId v = 0; v + 1 < 4; ++v) {
    const ResourceId i = builder.add_resource();
    builder.set_usage(i, v, 1.0).set_usage(i, v + 1, 1.0);
  }
  const PartyId k = builder.add_party();
  builder.set_benefit(k, 3, 1.0);
  const auto instance = std::move(builder).build();
  const auto h = instance.communication_graph();
  const auto view = extract_view(instance, h, 0, 1);
  EXPECT_TRUE(view.parties.empty());
  const auto solution = solve_view_lp(view);
  for (const double value : solution.x) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(ViewLp, ViewOmegaAtLeastGlobalOmega) {
  // (13): the global optimum is feasible for every view LP, so
  // ω^u >= ω*.
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto h = instance.communication_graph();
  // Global optimum on a uniform torus: symmetry gives ω* = 1 (x = 1/5).
  for (const AgentId u : {0, 7, 12}) {
    const auto view = extract_view(instance, h, u, 2);
    const auto solution = solve_view_lp(view);
    EXPECT_GE(solution.omega, 1.0 - 1e-7);
  }
}

TEST(GrowthSets, PathSetsByHand) {
  const auto instance = testing::path_instance(4);
  const auto h = instance.communication_graph();
  const auto balls = all_balls(h, 1);
  const auto sets = compute_growth_sets(instance, balls);
  // Ball sizes on the path 0-1-2-3: 2, 3, 3, 2.
  EXPECT_EQ(sets.ball_size, (std::vector<std::size_t>{2, 3, 3, 2}));
  // Resource 0 couples {0,1}: U = B(0)∪B(1) = {0,1,2}, n = 2.
  EXPECT_EQ(sets.N_i[0], 3u);
  EXPECT_EQ(sets.n_i[0], 2u);
  // Singleton party of agent 0: S_k = B(0) of size 2, M_k = 2.
  EXPECT_EQ(sets.m_k[0], 2u);
  EXPECT_EQ(sets.M_k[0], 2u);
  // β_0 = min over resources of agent 0 = 2/3.
  EXPECT_NEAR(sets.beta[0], 2.0 / 3.0, 1e-12);
  // β_1: resources {0,1}: n/N = 2/3 (res 0: balls 2,3 → N=3) and res 1
  // couples {1,2}: U = B(1)∪B(2) = {0..3}, n = 3 → 3/4. β_1 = 2/3.
  EXPECT_NEAR(sets.beta[1], 2.0 / 3.0, 1e-12);
}

TEST(GrowthSets, TheoremBoundsHold) {
  // Theorem 3's internal inequalities: max_k M_k/m_k <= γ(R−1) and
  // max_i N_i/n_i <= γ(R).
  const auto instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  const auto h = instance.communication_graph();
  for (const std::int32_t R : {1, 2}) {
    const auto balls = all_balls(h, R);
    const auto sets = compute_growth_sets(instance, balls);
    const double gamma_r_minus_1 = growth_gamma(h, R - 1);
    const double gamma_r = growth_gamma(h, R);
    EXPECT_LE(sets.max_party_ratio(), gamma_r_minus_1 + 1e-9) << "R=" << R;
    EXPECT_LE(sets.max_resource_ratio(), gamma_r + 1e-9) << "R=" << R;
    EXPECT_LE(sets.ratio_bound(), gamma_r_minus_1 * gamma_r + 1e-9);
  }
}

TEST(GrowthSets, SkIncludesVk) {
  // With party hyperedges in H, V_k is a clique, so S_k ⊇ V_k.
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  const auto h = instance.communication_graph();
  const auto balls = all_balls(h, 1);
  const auto sets = compute_growth_sets(instance, balls);
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    EXPECT_GE(sets.m_k[static_cast<std::size_t>(k)],
              instance.party_support(k).size());
  }
}

}  // namespace
}  // namespace mmlp

// The fault-injection substrate: FaultPlan as a replayable test vector
// (serialize ∘ parse identity, loud rejection of malformed tokens,
// deterministic random plans) and the injector's per-round semantics —
// message fates, crash/state flags, drop-beats-dup — plus the bar that
// matters for everything downstream: a faulty flood is bitwise
// replayable, and an empty plan is bitwise identical to no injector at
// all.
#include "mmlp/util/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmlp/dist/runtime.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/check.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(FaultPlan, SerializeParseRoundTrip) {
  FaultPlan plan;
  plan.seed = 42;
  plan.events = {
      {.round = 0, .kind = FaultKind::kDropMessage, .agent = 5, .peer = 2},
      {.round = 1, .kind = FaultKind::kCrashAgent, .agent = 7},
      {.round = 2, .kind = FaultKind::kCorruptState, .agent = 3},
      {.round = 2, .kind = FaultKind::kDelayMessage, .agent = 1, .peer = 0},
      {.round = 3, .kind = FaultKind::kDuplicateMessage, .agent = 0, .peer = 4},
      {.round = 3, .kind = FaultKind::kCorruptMessage, .agent = 9, .peer = 8},
  };
  plan.normalize();
  const std::string token = plan.serialize();
  const FaultPlan parsed = FaultPlan::parse(token);
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_EQ(parsed.events, plan.events);
  // The token is stable: parse ∘ serialize is the identity on tokens too.
  EXPECT_EQ(parsed.serialize(), token);
}

TEST(FaultPlan, SerializeUsesTheDocumentedGrammar) {
  FaultPlan plan;
  plan.seed = 7;
  plan.events = {
      {.round = 0, .kind = FaultKind::kDropMessage, .agent = 3, .peer = 5},
      {.round = 1, .kind = FaultKind::kCrashAgent, .agent = 2},
  };
  EXPECT_EQ(plan.serialize(), "s7;0:drop:3:5;1:crash:2");
  EXPECT_EQ(FaultPlan{}.serialize(), "s0");
}

TEST(FaultPlan, MalformedTokensAreCheckErrors) {
  const std::vector<std::string> malformed = {
      "",                   // no seed prefix
      "x7;0:drop:3:5",      // wrong prefix letter
      "s",                  // empty seed
      "sfoo",               // non-numeric seed
      "s-3",                // negative seed
      "s7;0:drop:3",        // message fault without a peer
      "s7;0:crash:3:5",     // agent fault with a peer
      "s7;0:flood:3:5",     // unknown kind
      "s7;-1:drop:3:5",     // negative round
      "s7;0:drop:-3:5",     // negative agent
      "s7;0:drop:3:-5",     // negative peer
      "s7;0:drop",          // too few fields
      "s7;0:drop:3:5:9",    // too many fields
      "s7;zero:drop:3:5",   // non-numeric round
      "s7;;1:crash:2",      // empty event
  };
  for (const std::string& token : malformed) {
    EXPECT_THROW((void)FaultPlan::parse(token), CheckError) << token;
  }
}

TEST(FaultPlan, RoundsSpansTheLastEvent) {
  EXPECT_EQ(FaultPlan{}.rounds(), 0);
  EXPECT_EQ(FaultPlan::parse("s1;4:crash:0").rounds(), 5);
  EXPECT_EQ(FaultPlan::parse("s1;0:drop:1:0;2:state:1").rounds(), 3);
}

TEST(FaultPlan, RandomIsDeterministicAndInRange) {
  const FaultPlan a = FaultPlan::random(99, 4, 10, 25);
  const FaultPlan b = FaultPlan::random(99, 4, 10, 25);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.events.size(), 25u);
  for (const FaultEvent& event : a.events) {
    EXPECT_GE(event.round, 0);
    EXPECT_LT(event.round, 4);
    EXPECT_GE(event.agent, 0);
    EXPECT_LT(event.agent, 10);
    if (event.peer != -1) {
      EXPECT_NE(event.peer, event.agent);  // no self-messages faulted
      EXPECT_LT(event.peer, 10);
    }
  }
  // A different seed produces a different schedule.
  EXPECT_NE(FaultPlan::random(100, 4, 10, 25).events, a.events);
  // Random plans survive the wire round-trip too.
  EXPECT_EQ(FaultPlan::parse(a.serialize()).events, a.events);
}

TEST(FaultInjector, CrashAndStateFlagsFireOnTheirRoundOnly) {
  FaultInjector faults(FaultPlan::parse("s1;1:crash:3;2:state:5"));
  faults.begin_round(0);
  EXPECT_FALSE(faults.crashed(3));
  EXPECT_FALSE(faults.state_corrupted(5));
  faults.begin_round(1);
  EXPECT_TRUE(faults.crashed(3));
  EXPECT_FALSE(faults.crashed(5));
  EXPECT_FALSE(faults.state_corrupted(3));
  faults.begin_round(2);
  EXPECT_FALSE(faults.crashed(3));
  EXPECT_TRUE(faults.state_corrupted(5));
  // Rounds may be revisited — the cursor is recomputed, not advanced.
  faults.begin_round(1);
  EXPECT_TRUE(faults.crashed(3));
}

TEST(FaultInjector, MessageFatesMatchThePlan) {
  FaultInjector faults(
      FaultPlan::parse("s1;0:drop:2:1;0:dup:4:3;0:corrupt:6:5;0:delay:8:7"));
  faults.begin_round(0);
  EXPECT_EQ(faults.message_fate(2, 1).copies, 0);
  EXPECT_EQ(faults.message_fate(4, 3).copies, 2);
  EXPECT_TRUE(faults.message_fate(6, 5).corrupt);
  EXPECT_TRUE(faults.message_fate(8, 7).delay);
  EXPECT_TRUE(faults.round_has_delay());
  // Direction matters: the reversed packet is unharmed.
  const FaultInjector::MessageFate reversed = faults.message_fate(1, 2);
  EXPECT_EQ(reversed.copies, 1);
  EXPECT_FALSE(reversed.corrupt);
  EXPECT_FALSE(reversed.delay);
  faults.begin_round(1);
  EXPECT_EQ(faults.message_fate(2, 1).copies, 1);
  EXPECT_FALSE(faults.round_has_delay());
}

TEST(FaultInjector, DropBeatsDuplicateAndSuppressesTheRest) {
  // All four fates on the same packet: the packet is simply lost.
  FaultInjector faults(
      FaultPlan::parse("s1;0:drop:2:1;0:dup:2:1;0:corrupt:2:1;0:delay:2:1"));
  faults.begin_round(0);
  const FaultInjector::MessageFate fate = faults.message_fate(2, 1);
  EXPECT_EQ(fate.copies, 0);
  EXPECT_FALSE(fate.corrupt);
  EXPECT_FALSE(fate.delay);
}

TEST(FaultInjector, CountsInjectedFaults) {
  FaultInjector faults(FaultPlan::parse("s1;0:crash:0;0:drop:2:1;1:state:3"));
  EXPECT_EQ(faults.faults_injected(), 0);
  faults.begin_round(0);
  EXPECT_EQ(faults.faults_injected(), 1);  // the crash fires on entry
  (void)faults.message_fate(2, 1);
  EXPECT_EQ(faults.faults_injected(), 2);  // the drop was served
  (void)faults.message_fate(5, 4);  // unfaulted packet: no count
  EXPECT_EQ(faults.faults_injected(), 2);
  faults.begin_round(1);
  EXPECT_EQ(faults.faults_injected(), 3);
}

TEST(FaultInjector, EventRngIsReplayableAndPerEventIndependent) {
  FaultInjector faults(FaultPlan::parse("s5;0:corrupt:2:1"));
  faults.begin_round(0);
  Rng a = faults.event_rng(2, 1);
  Rng b = faults.event_rng(2, 1);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different (agent, peer) → an independent stream.
  Rng c = faults.event_rng(1, 2);
  Rng d = faults.event_rng(2, 1);
  EXPECT_NE(c.next_u64(), d.next_u64());
}

// ---------------------------------------------------------------------------
// Faulty flooding: replayable, and an empty plan is a no-op
// ---------------------------------------------------------------------------

TEST(FaultFlood, EmptyPlanMatchesFaultFreeFloodBitwise) {
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  LocalRuntime runtime(instance);
  FaultInjector faults{FaultPlan{}};
  EXPECT_EQ(runtime.flood(3, &faults), runtime.flood(3));
  EXPECT_EQ(runtime.flood(3, nullptr), runtime.flood(3));
}

TEST(FaultFlood, FaultyExecutionReplaysBitwise) {
  const auto instance = make_random_instance({.num_agents = 40, .seed = 13});
  LocalRuntime runtime(instance);
  const FaultPlan plan =
      FaultPlan::random(17, 3, instance.num_agents(), 20);
  FaultInjector first(plan);
  FaultInjector second(FaultPlan::parse(plan.serialize()));
  const auto knowledge_first = runtime.flood(3, &first);
  const auto knowledge_second = runtime.flood(3, &second);
  EXPECT_EQ(knowledge_first, knowledge_second);
  EXPECT_EQ(first.faults_injected(), second.faults_injected());
  EXPECT_GT(first.faults_injected(), 0);
}

TEST(FaultFlood, DroppedPacketsLoseKnowledge) {
  // A 3-node path 0–1–2; dropping every packet into agent 1 for two
  // rounds leaves agent 1 knowing only itself — and since agent 1 is
  // the relay, agent 0 never hears about agent 2 either.
  const auto instance = testing::path_instance(3);
  LocalRuntime runtime(instance);
  FaultInjector faults(
      FaultPlan::parse("s1;0:drop:1:0;0:drop:1:2;1:drop:1:0;1:drop:1:2"));
  const auto knowledge = runtime.flood(2, &faults);
  EXPECT_EQ(knowledge[1], (std::vector<AgentId>{1}));
  EXPECT_EQ(knowledge[0], (std::vector<AgentId>{0, 1}));
  // The fault-free flood reaches the full path in two rounds.
  EXPECT_EQ(runtime.flood(2)[0], (std::vector<AgentId>{0, 1, 2}));
}

TEST(FaultFlood, CrashShrinksTheVictimsPacket) {
  // A crash resets the victim BEFORE the exchange, so its round-1
  // packet carries only itself: on the path 0–1–2–3–4, crashing the
  // relay (agent 1) at round 1 means agent 0 never learns agent 2.
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  FaultInjector faults(FaultPlan::parse("s1;1:crash:1"));
  const auto knowledge = runtime.flood(2, &faults);
  EXPECT_EQ(knowledge[0], (std::vector<AgentId>{0, 1}));
  // The crashed agent itself re-merges its neighbours' packets in the
  // same round, so it still ends the round with a full table.
  EXPECT_EQ(knowledge[1], (std::vector<AgentId>{0, 1, 2, 3}));
  // The far end of the path is out of the blast radius.
  EXPECT_EQ(knowledge[4], (std::vector<AgentId>{2, 3, 4}));
}

}  // namespace
}  // namespace mmlp

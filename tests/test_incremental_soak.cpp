// Long-chain incremental soak.
//
// One session survives 200 seeded random deltas — coefficient edits,
// support inserts and erases, agent births and deaths — with an
// incremental re-solve after every step. The test is that drift is
// impossible: after the full chain, the incrementally-maintained
// answer is bitwise-equal to a cold solve of the final instance on a
// fresh session. A splice that leaked one stale view anywhere in the
// chain shows up here as a solution mismatch.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {
namespace {

using engine::Session;
using engine::SolveRequest;
using engine::SolveResult;

AgentId pick_agent(Rng& rng, const Instance& instance) {
  return static_cast<AgentId>(
      rng.next_below(static_cast<std::uint64_t>(instance.num_agents())));
}

/// True when removing v keeps every incident resource and party
/// support nonempty (the builder's standing assumption).
bool removable(const Instance& instance, AgentId v) {
  for (const Coef& entry : instance.agent_resources(v)) {
    if (instance.resource_support(entry.id).size() < 2) {
      return false;
    }
  }
  for (const Coef& entry : instance.agent_parties(v)) {
    if (instance.party_support(entry.id).size() < 2) {
      return false;
    }
  }
  return true;
}

/// One random, always-valid delta. Mostly value edits (the common
/// case incremental splicing is built for), with a steady trickle of
/// structural churn.
InstanceDelta random_delta(Rng& rng, const Instance& instance) {
  InstanceDelta delta;
  const std::uint64_t kind = rng.next_below(100);
  if (kind < 55) {  // re-weight an existing usage entry
    const AgentId v = pick_agent(rng, instance);
    const CoefSpan row = instance.agent_resources(v);
    const Coef& entry = row[rng.next_below(row.size())];
    delta.set_usage(entry.id, v, rng.uniform(0.1, 2.0));
  } else if (kind < 70) {  // re-weight an existing benefit entry
    const AgentId v = pick_agent(rng, instance);
    const CoefSpan row = instance.agent_parties(v);
    if (row.empty()) {
      return random_delta(rng, instance);
    }
    const Coef& entry = row[rng.next_below(row.size())];
    delta.set_benefit(entry.id, v, rng.uniform(0.1, 1.0));
  } else if (kind < 80) {  // grow a support: new (resource, agent) pair
    const AgentId v = pick_agent(rng, instance);
    const ResourceId i = static_cast<ResourceId>(
        rng.next_below(static_cast<std::uint64_t>(instance.num_resources())));
    bool present = false;
    for (const Coef& entry : instance.agent_resources(v)) {
      present = present || entry.id == i;
    }
    if (present) {
      return random_delta(rng, instance);
    }
    delta.set_usage(i, v, rng.uniform(0.1, 1.0));
  } else if (kind < 88) {  // shrink a support, keeping both sides nonempty
    const AgentId v = pick_agent(rng, instance);
    const CoefSpan row = instance.agent_resources(v);
    if (row.size() < 2) {
      return random_delta(rng, instance);
    }
    const Coef& entry = row[rng.next_below(row.size())];
    if (instance.resource_support(entry.id).size() < 2) {
      return random_delta(rng, instance);
    }
    delta.erase_usage(entry.id, v);
  } else if (kind < 94) {  // a new agent, attached to a random neighborhood
    const AgentId anchor = pick_agent(rng, instance);
    const AgentId fresh = instance.num_agents();
    delta.add_agents(1);
    delta.set_usage(instance.agent_resources(anchor).front().id, fresh,
                    rng.uniform(0.1, 1.0));
    const CoefSpan parties = instance.agent_parties(anchor);
    if (!parties.empty()) {
      delta.set_benefit(parties.front().id, fresh, rng.uniform(0.1, 1.0));
    }
  } else {  // an agent leaves (ids remap; the session rebuilds)
    const AgentId v = pick_agent(rng, instance);
    if (!removable(instance, v) || instance.num_agents() < 20) {
      return random_delta(rng, instance);
    }
    delta.remove_agent(v);
  }
  return delta;
}

TEST(IncrementalSoak, TwoHundredDeltasNeverDrift) {
  Instance instance = make_grid_instance(
      {.dims = {10, 10}, .torus = true, .randomize = true, .seed = 21});
  Session session(instance);

  SolveRequest averaging;
  averaging.algorithm = "averaging";
  averaging.R = 1;
  averaging.incremental = true;
  SolveRequest safe;
  safe.algorithm = "safe";
  safe.incremental = true;

  // Prime the memo the splices build on.
  SolveResult latest = engine::solve(session, averaging);
  ASSERT_TRUE(latest.has_solution);

  Rng rng(1234);
  std::size_t incremental_solves = 0;
  std::size_t structural_deltas = 0;
  for (std::size_t step = 0; step < 200; ++step) {
    const InstanceDelta delta = random_delta(rng, instance);
    const Session::ApplyReport report = session.apply(delta);
    structural_deltas += report.structural ? 1 : 0;

    latest = engine::solve(session, averaging);
    ASSERT_TRUE(latest.has_solution) << "step " << step;
    if (latest.diagnostics.at("incremental") == 1.0) {
      ++incremental_solves;
    }
    if (step % 10 == 9) {  // interleave another algorithm on the same caches
      const SolveResult check = engine::solve(session, safe);
      ASSERT_TRUE(check.feasible) << "step " << step;
    }
  }

  // The chain must have exercised both paths: plenty of genuine
  // incremental splices AND structural fallbacks.
  EXPECT_GT(incremental_solves, 100u);
  EXPECT_GT(structural_deltas, 5u);

  // The verdict: a cold solve of the final instance, on a fresh
  // session, bit for bit.
  Session cold_session(instance);
  SolveRequest cold = averaging;
  cold.incremental = false;
  const SolveResult expected = engine::solve(cold_session, cold);
  ASSERT_EQ(expected.x.size(), latest.x.size());
  for (std::size_t v = 0; v < expected.x.size(); ++v) {
    ASSERT_EQ(expected.x[v], latest.x[v]) << "agent " << v;
  }
  EXPECT_EQ(expected.omega, latest.omega);
  EXPECT_EQ(expected.feasible, latest.feasible);
  ASSERT_EQ(expected.party_benefit, latest.party_benefit);
}

TEST(IncrementalSoak, ShardedSessionSurvivesTheSameChain) {
  // A shorter chain through the sharded front end: value edits only
  // (the routed fast path), checked against a monolithic twin every
  // step — the routing itself is the thing under soak here.
  Instance flat_instance = make_grid_instance(
      {.dims = {10, 10}, .torus = true, .randomize = true, .seed = 21});
  Instance sharded_instance = flat_instance;
  Session flat(flat_instance);
  engine::ShardedSession sharded(
      sharded_instance, engine::ShardedOptions{.shards = 4, .halo_radius = 3});

  SolveRequest request;
  request.algorithm = "averaging";
  request.R = 1;
  request.incremental = true;

  Rng rng(77);
  for (std::size_t step = 0; step < 40; ++step) {
    const AgentId v = pick_agent(rng, flat_instance);
    const CoefSpan row = flat_instance.agent_resources(v);
    const Coef& entry = row[rng.next_below(row.size())];
    InstanceDelta delta;
    delta.set_usage(entry.id, v, rng.uniform(0.1, 2.0));
    (void)flat.apply(delta);
    (void)sharded.apply(delta);

    const SolveResult expected = engine::solve(flat, request);
    const SolveResult actual = sharded.solve(request);
    ASSERT_EQ(expected.x.size(), actual.x.size()) << "step " << step;
    for (std::size_t a = 0; a < expected.x.size(); ++a) {
      ASSERT_EQ(expected.x[a], actual.x[a])
          << "step " << step << " agent " << a;
    }
    ASSERT_EQ(expected.omega, actual.omega) << "step " << step;
  }
}

}  // namespace
}  // namespace mmlp

#include "mmlp/graph/growth.hpp"

#include <gtest/gtest.h>

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"

namespace mmlp {
namespace {

Hypergraph cycle(std::int32_t n) {
  std::vector<std::vector<NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    edges.push_back({v, (v + 1) % n});
  }
  return Hypergraph::from_edges(n, edges);
}

TEST(BallProfile, CycleBallSizes) {
  const auto h = cycle(12);
  const auto profile = ball_size_profile(h, 0, 4);
  // On a cycle |B(v, r)| = 2r + 1 while 2r + 1 <= n.
  EXPECT_EQ(profile, (std::vector<std::size_t>{1, 3, 5, 7, 9}));
}

TEST(BallProfile, SaturatesAtComponentSize) {
  const auto h = cycle(6);
  const auto profile = ball_size_profile(h, 0, 5);
  EXPECT_EQ(profile.back(), 6u);
  EXPECT_EQ(profile[3], 6u);  // saturated at r = 3 already
}

TEST(Growth, CycleGamma) {
  const auto h = cycle(64);
  // γ(r) = (2r+3)/(2r+1) on a long cycle.
  EXPECT_NEAR(growth_gamma(h, 0), 3.0, 1e-12);
  EXPECT_NEAR(growth_gamma(h, 1), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(growth_gamma(h, 2), 7.0 / 5.0, 1e-12);
}

TEST(Growth, ProfileMatchesPointwiseGamma) {
  const auto h = cycle(32);
  const auto profile = growth_profile(h, 3);
  for (std::int32_t r = 0; r <= 3; ++r) {
    EXPECT_NEAR(profile[static_cast<std::size_t>(r)], growth_gamma(h, r), 1e-12);
  }
}

TEST(Growth, GammaDecreasesOnGrids) {
  // The paper's point: on d-dimensional grids γ(r) = 1 + Θ(1/r).
  const auto instance = make_grid_instance({.dims = {9, 9}, .torus = true});
  const auto h = instance.communication_graph();
  const auto profile = growth_profile(h, 3);
  EXPECT_GT(profile[0], profile[1]);
  EXPECT_GT(profile[1], profile[2]);
  EXPECT_GE(profile[2], 1.0);
}

TEST(Growth, Theorem3BoundIsProductOfGammas) {
  const auto h = cycle(64);
  const auto profile = growth_profile(h, 2);
  EXPECT_NEAR(theorem3_bound(h, 2), profile[1] * profile[2], 1e-12);
  EXPECT_NEAR(theorem3_bound(h, 1), profile[0] * profile[1], 1e-12);
}

TEST(Growth, CliqueSaturatesImmediately) {
  const auto h = Hypergraph::from_edges(5, {{0, 1, 2, 3, 4}});
  EXPECT_NEAR(growth_gamma(h, 1), 1.0, 1e-12);  // B(v,1) is already everything
  EXPECT_NEAR(growth_gamma(h, 0), 5.0, 1e-12);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/optimal.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Optimal, SimplexPathOnSmallInstance) {
  const auto instance = testing::two_agent_instance();
  const auto result = solve_optimal(instance);
  EXPECT_EQ(result.method_used, OptimalMethod::kSimplex);
  EXPECT_TRUE(result.exact);
  EXPECT_NEAR(result.omega, 0.5, 1e-9);
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
}

TEST(Optimal, AutoFallsBackToMwuOnLargeInstances) {
  const auto instance = make_random_instance({.num_agents = 300, .seed = 3});
  OptimalOptions options;
  options.simplex_agent_limit = 100;  // force the MWU path
  options.mwu.epsilon = 0.1;
  const auto result = solve_optimal(instance, options);
  EXPECT_EQ(result.method_used, OptimalMethod::kMwu);
  EXPECT_FALSE(result.exact);
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  EXPECT_GT(result.omega, 0.0);
}

TEST(Optimal, ForcedMethodsAgree) {
  const auto instance = make_random_instance({.num_agents = 60, .seed = 11});
  OptimalOptions simplex_options;
  simplex_options.method = OptimalMethod::kSimplex;
  const auto exact = solve_optimal(instance, simplex_options);

  OptimalOptions mwu_options;
  mwu_options.method = OptimalMethod::kMwu;
  mwu_options.mwu.epsilon = 0.05;
  const auto approx = solve_optimal(instance, mwu_options);

  EXPECT_LE(approx.omega, exact.omega + 1e-7);
  EXPECT_GE(approx.omega, exact.omega * 0.8);
}

TEST(Optimal, UniformTorusHasSymmetricOptimum) {
  // Every resource couples 5 agents with a = 1, every party 5 with c = 1:
  // x = 1/5 gives ω = 1 and saturates everything, so ω* = 1 exactly.
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto result = solve_optimal(instance);
  EXPECT_NEAR(result.omega, 1.0, 1e-7);
}

TEST(Optimal, RequiresParties) {
  Instance::Builder builder;
  const AgentId v = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v, 1.0);
  const auto instance = std::move(builder).build();
  EXPECT_THROW(solve_optimal(instance), CheckError);
}

}  // namespace
}  // namespace mmlp

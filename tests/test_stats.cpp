#include "mmlp/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_THROW(stats.min(), CheckError);
  EXPECT_THROW(stats.max(), CheckError);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats stats;
  stats.add(-3.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  // Sorted: 1, 2, 3, 4; q=0.5 sits halfway between 2 and 3.
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> values{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 9.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), CheckError);
  EXPECT_THROW(percentile({1.0}, -0.1), CheckError);
  EXPECT_THROW(percentile({1.0}, 1.1), CheckError);
}

TEST(Summarize, EmptyVector) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, ConsistentFields) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), CheckError);
  EXPECT_THROW(geometric_mean({}), CheckError);
}

}  // namespace
}  // namespace mmlp

// Identifier-model invariance (Section 1.5): the paper's algorithms do
// not read identifier *values*, only use them to tell agents apart, so
// their outputs must be equivariant under agent relabelling. This is a
// property of our implementations too — verified here for both
// algorithms across instance families.
#include <gtest/gtest.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/core/transform.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/gen/sensor.hpp"

namespace mmlp {
namespace {

void expect_equivariant_safe(const Instance& instance, std::uint64_t seed) {
  Rng rng(seed);
  const auto perm = rng.permutation(instance.num_agents());
  const auto relabeled = relabel_agents(instance, perm);
  const auto mapped = relabel_solution(safe_solution(instance), perm);
  const auto direct = safe_solution(relabeled);
  ASSERT_EQ(mapped.size(), direct.size());
  for (std::size_t v = 0; v < direct.size(); ++v) {
    EXPECT_DOUBLE_EQ(direct[v], mapped[v]) << "agent " << v;
  }
}

void expect_equivariant_averaging(const Instance& instance,
                                  std::uint64_t seed, std::int32_t R) {
  // The paper's eq. (9) only asks for *an* optimal view solution; the
  // simplex breaks ties by variable order, which relabelling permutes, so
  // strict per-coordinate equivariance does not hold. What is invariant
  // is the algorithm's quality and guarantee: the achieved ω and the
  // ratio bound must be (near-)identical, and both runs feasible.
  Rng rng(seed);
  const auto perm = rng.permutation(instance.num_agents());
  const auto relabeled = relabel_agents(instance, perm);
  const auto base = local_averaging(instance, {.R = R});
  const auto mapped_run = local_averaging(relabeled, {.R = R});
  EXPECT_TRUE(evaluate(instance, base.x).feasible());
  EXPECT_TRUE(evaluate(relabeled, mapped_run.x).feasible());
  EXPECT_NEAR(base.ratio_bound, mapped_run.ratio_bound, 1e-9);
  const double omega_base = objective_omega(instance, base.x);
  const double omega_mapped = objective_omega(relabeled, mapped_run.x);
  EXPECT_NEAR(omega_base, omega_mapped, 0.05 * omega_base + 1e-9);
  // β and ball sizes are purely structural: exactly equivariant.
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    const auto target = static_cast<std::size_t>(perm[static_cast<std::size_t>(v)]);
    EXPECT_EQ(base.ball_size[static_cast<std::size_t>(v)],
              mapped_run.ball_size[target]);
    EXPECT_NEAR(base.beta[static_cast<std::size_t>(v)],
                mapped_run.beta[target], 1e-12);
  }
}

TEST(Invariance, SafeOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_equivariant_safe(
        make_random_instance({.num_agents = 40, .seed = seed}), seed * 13);
  }
}

TEST(Invariance, SafeOnGrid) {
  expect_equivariant_safe(
      make_grid_instance(
          {.dims = {5, 5}, .torus = true, .randomize = true, .seed = 3}),
      17);
}

TEST(Invariance, SafeOnSensorNetwork) {
  SensorNetworkOptions options;
  options.num_sensors = 30;
  options.num_relays = 10;
  options.num_areas = 4;
  options.radio_range = 0.35;
  options.seed = 5;
  expect_equivariant_safe(make_sensor_network(options).instance, 23);
}

TEST(Invariance, AveragingOnSmallGrid) {
  expect_equivariant_averaging(
      make_grid_instance(
          {.dims = {4, 4}, .torus = true, .randomize = true, .seed = 7}),
      29, 1);
}

TEST(Invariance, AveragingOnRandomInstance) {
  expect_equivariant_averaging(
      make_random_instance({.num_agents = 24, .seed = 9}), 31, 1);
}

TEST(Invariance, OmegaIsLabelFree) {
  // The objective itself is invariant: same multiset of benefits.
  const auto instance = make_random_instance({.num_agents = 30, .seed = 11});
  Rng rng(37);
  const auto perm = rng.permutation(instance.num_agents());
  const auto relabeled = relabel_agents(instance, perm);
  const auto x = safe_solution(instance);
  EXPECT_NEAR(objective_omega(instance, x),
              objective_omega(relabeled, relabel_solution(x, perm)), 1e-12);
}

}  // namespace
}  // namespace mmlp

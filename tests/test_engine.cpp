// The engine layer: registry dispatch, the Session cache, and the
// warm == cold equivalence bar — for every registered solver, a solve
// on a hot session must be bitwise identical to the classic cold
// free-function path (the free functions are thin wrappers over a
// throwaway session, and cached balls/growth sets/scratch only donate
// capacity, never state).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "mmlp/core/baselines.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/sublinear.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/engine/wire.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"

namespace mmlp {
namespace {

// A pure hypertree instance: agents are the nodes of a complete
// (d, D)-ary hypertree, type I hyperedges become unit resources and
// type II hyperedges become parties (the Section 4 shape without the
// template-graph pairing).
Instance make_hypertree_instance(std::int32_t d, std::int32_t D,
                                 std::int32_t height) {
  const Hypertree tree = Hypertree::complete(d, D, height);
  Instance::Builder builder;
  for (std::int32_t node = 0; node < tree.num_nodes(); ++node) {
    builder.add_agent();
  }
  for (const HypertreeEdge& edge : tree.edges()) {
    if (edge.type == HyperedgeType::kTypeI) {
      const ResourceId i = builder.add_resource();
      builder.set_usage(i, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_usage(i, child, 1.0);
      }
    } else {
      const PartyId k = builder.add_party();
      builder.set_benefit(k, edge.parent, 1.0 / static_cast<double>(D));
      for (const std::int32_t child : edge.children) {
        builder.set_benefit(k, child, 1.0 / static_cast<double>(D));
      }
    }
  }
  return std::move(builder).build();
}

std::vector<Instance> test_instances() {
  std::vector<Instance> instances;
  instances.push_back(make_grid_instance(
      {.dims = {6, 6}, .torus = true, .randomize = true, .seed = 3}));
  instances.push_back(make_random_instance({
      .num_agents = 60,
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = 9,
  }));
  instances.push_back(make_hypertree_instance(2, 2, 3));
  return instances;
}

TEST(SolverRegistry, BuiltinRegistersTheExpectedAlgorithms) {
  const auto& registry = engine::SolverRegistry::builtin();
  const std::vector<std::string> expected = {
      "averaging",          "distributed-averaging",
      "distributed-safe",   "greedy",
      "optimal",            "safe",
      "selfstab-averaging", "selfstab-safe",
      "sublinear",          "uniform"};
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name));
    EXPECT_FALSE(registry.find(name).description.empty());
  }
}

TEST(SolverRegistry, UnknownAlgorithmErrorNamesItAndTheRegisteredOnes) {
  const auto& registry = engine::SolverRegistry::builtin();
  EXPECT_FALSE(registry.contains("waterfall"));
  try {
    registry.find("waterfall");
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown algorithm 'waterfall'"), std::string::npos)
        << message;
    // The message lists what IS registered, so the caller can self-serve.
    EXPECT_NE(message.find("averaging"), std::string::npos) << message;
    EXPECT_NE(message.find("distributed-safe"), std::string::npos) << message;
  }
}

TEST(SolverRegistry, DuplicateRegistrationFails) {
  engine::SolverRegistry registry;
  const auto noop = [](engine::Session&, const engine::SolveRequest&,
                       engine::SolveResult&) {};
  registry.add({.name = "x", .description = "first", .run = noop});
  EXPECT_THROW(
      registry.add({.name = "x", .description = "again", .run = noop}),
      CheckError);
}

TEST(EngineSolve, ThreadCountMismatchFailsLoudly) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "safe"};
  request.threads = session.thread_count() + 5;
  EXPECT_THROW(engine::solve(session, request), CheckError);
}

// Warm solves must be bitwise equal to the cold free-function paths for
// every solver that returns a solution vector, on every instance family.
TEST(EngineSolve, WarmSessionMatchesColdFreeFunctionsBitwise) {
  for (const Instance& instance : test_instances()) {
    engine::Session session(instance);

    // Solve everything once to heat every cache the solvers touch …
    for (const std::string& name : engine::SolverRegistry::builtin().names()) {
      (void)engine::solve(session, {.algorithm = name, .R = 1});
    }

    // … then compare the *second* (fully warm) solves against cold runs.
    const auto warm = [&](const std::string& name) {
      return engine::solve(session, {.algorithm = name, .R = 1});
    };

    EXPECT_EQ(warm("safe").x, safe_solution(instance));
    EXPECT_EQ(warm("averaging").x, local_averaging(instance, {.R = 1}).x);
    EXPECT_EQ(warm("uniform").x, uniform_solution(instance));
    EXPECT_EQ(warm("greedy").x, greedy_waterfill(instance).x);
    EXPECT_EQ(warm("optimal").x, solve_optimal(instance).x);
    EXPECT_EQ(warm("distributed-safe").x, distributed_safe(instance));
    EXPECT_EQ(warm("distributed-averaging").x,
              distributed_local_averaging(instance, {.R = 1}));
    // The self-stabilizing executions start legitimate, so a fault-free
    // request is the fault-free distributed run, bitwise.
    EXPECT_EQ(warm("selfstab-safe").x, distributed_safe(instance));
    EXPECT_EQ(warm("selfstab-averaging").x,
              distributed_local_averaging(instance, {.R = 1}));

    const engine::SolveResult sublinear = warm("sublinear");
    const SublinearEstimate cold =
        estimate_mean_party_benefit(instance, {.samples = 64, .seed = 1});
    EXPECT_EQ(sublinear.diagnostics.at("mean_benefit"), cold.mean_benefit);
    EXPECT_EQ(sublinear.diagnostics.at("half_width"), cold.half_width);
    EXPECT_FALSE(sublinear.has_solution);
  }
}

TEST(EngineSolve, RepeatSolvesHitTheCaches) {
  const Instance instance = make_grid_instance({.dims = {8, 8}, .torus = true});
  engine::Session session(instance);
  const engine::SolveRequest request{.algorithm = "averaging", .R = 2};

  const engine::SolveResult first = engine::solve(session, request);
  EXPECT_GT(first.cache_misses, 0);
  EXPECT_TRUE(first.feasible);

  const engine::SolveResult second = engine::solve(session, request);
  EXPECT_EQ(second.cache_misses, 0);
  EXPECT_GT(second.cache_hits, 0);
  EXPECT_EQ(second.cache_build_ms, 0.0);
  EXPECT_EQ(second.x, first.x);

  // A new radius builds its own entries without disturbing the old ones.
  const engine::SolveResult radius3 =
      engine::solve(session, {.algorithm = "averaging", .R = 3});
  EXPECT_GT(radius3.cache_misses, 0);
  const engine::SolveResult again = engine::solve(session, request);
  EXPECT_EQ(again.cache_misses, 0);
  EXPECT_EQ(again.x, first.x);
}

TEST(EngineSolve, ResultCarriesEvaluationAndDiagnostics) {
  const Instance instance = make_grid_instance({.dims = {5, 5}});
  engine::Session session(instance);

  const engine::SolveResult averaging =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  EXPECT_TRUE(averaging.has_solution);
  EXPECT_TRUE(averaging.feasible);
  EXPECT_GT(averaging.omega, 0.0);
  EXPECT_EQ(averaging.party_benefit.size(),
            static_cast<std::size_t>(instance.num_parties()));
  EXPECT_GT(averaging.diagnostics.at("ratio_bound"), 0.0);
  EXPECT_EQ(averaging.diagnostics.at("R"), 1.0);
  EXPECT_GE(averaging.total_ms, averaging.cache_build_ms);

  const engine::SolveResult greedy =
      engine::solve(session, {.algorithm = "greedy"});
  EXPECT_GT(greedy.diagnostics.at("steps"), 0.0);

  const engine::SolveResult optimal =
      engine::solve(session, {.algorithm = "optimal"});
  EXPECT_EQ(optimal.diagnostics.at("exact"), 1.0);
  // ω* dominates every other feasible answer.
  EXPECT_GE(optimal.omega, averaging.omega);
  EXPECT_GE(optimal.omega, greedy.omega);
}

TEST(SessionCache, SharedAcrossSolverFamilies) {
  // distributed-safe needs radius-1 balls; averaging at R then needs its
  // own radius but shares the graph. The cache keys must not collide.
  const Instance instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  engine::Session session(instance);
  (void)engine::solve(session, {.algorithm = "distributed-safe"});
  const engine::SolveResult averaging =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  EXPECT_TRUE(averaging.feasible);
  EXPECT_EQ(averaging.x, local_averaging(instance, {.R = 1}).x);

  // Oblivious and full-graph entries are distinct cache keys.
  const engine::SolveResult oblivious = engine::solve(
      session,
      {.algorithm = "averaging", .R = 1, .collaboration_oblivious = true});
  LocalAveragingOptions cold_options;
  cold_options.R = 1;
  cold_options.collaboration_oblivious = true;
  EXPECT_EQ(oblivious.x, local_averaging(instance, cold_options).x);
}

TEST(SessionCache, BallsBuildIncrementallyFromSmallerRadii) {
  // Requesting a larger radius after a smaller one goes through the
  // expand_balls path; the result must be element-for-element identical
  // to a cold from-scratch build.
  const Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  for (const bool oblivious : {false, true}) {
    engine::Session incremental(instance);
    (void)incremental.balls(1, oblivious);  // seeds the expansion base
    (void)incremental.balls(2, oblivious);  // frontier = r2 \ r1 next time
    const auto& expanded = incremental.balls(3, oblivious);
    engine::Session cold(instance);
    EXPECT_EQ(expanded, cold.balls(3, oblivious));
  }
}

TEST(EngineSolve, DeduplicateRequestMatchesBitwiseAndReportsDiagnostics) {
  const Instance instance =
      make_grid_instance({.dims = {16, 16}, .torus = true});
  engine::Session session(instance);
  for (const char* const name :
       {"safe", "averaging", "distributed-averaging"}) {
    const std::string algorithm(name);
    const engine::SolveResult off =
        engine::solve(session, {.algorithm = algorithm, .R = 1});
    const engine::SolveResult on = engine::solve(
        session, {.algorithm = algorithm, .R = 1, .deduplicate = true});
    EXPECT_EQ(on.x, off.x) << algorithm;
    if (algorithm != "safe") {
      EXPECT_GT(on.diagnostics.at("view_classes"), 0.0) << algorithm;
      // The exact-orbit count is side-independent (49 at radius 1, 225
      // at the distributed horizon 3), so the ratio grows with the
      // torus; at 16x16 the radius-1 solves already dedup strongly,
      // the horizon-3 worlds mildly.
      EXPECT_GT(on.diagnostics.at("dedup_ratio"),
                algorithm == "averaging" ? 0.5 : 0.05)
          << algorithm;
    }
  }
  // The class partition is cached: a repeat dedup solve misses nothing.
  const engine::SolveResult again = engine::solve(
      session, {.algorithm = "averaging", .R = 1, .deduplicate = true});
  EXPECT_EQ(again.cache_misses, 0);
}

TEST(Wire, ParsesEveryDocumentedKey) {
  const engine::WireRequest wire = engine::parse_request_line(
      R"({"algorithm": "averaging", "R": 2, "damping": "beta-global", )"
      R"("collaboration_oblivious": true, "deduplicate": true, )"
      R"("threads": 0, "seed": 7, )"
      R"("samples": 128, "confidence": 0.99, "greedy_max_steps": 500, )"
      R"("greedy_step_fraction": 0.25, "greedy_min_gain": 0.001, )"
      R"("simplex_max_iterations": 1000, "trace": true, "id": "req-1"})");
  EXPECT_EQ(wire.request.algorithm, "averaging");
  EXPECT_EQ(wire.request.R, 2);
  EXPECT_EQ(wire.request.damping, AveragingDamping::kBetaGlobal);
  EXPECT_TRUE(wire.request.collaboration_oblivious);
  EXPECT_TRUE(wire.request.deduplicate);
  EXPECT_EQ(wire.request.seed, 7u);
  EXPECT_EQ(wire.request.samples, 128);
  EXPECT_DOUBLE_EQ(wire.request.confidence, 0.99);
  EXPECT_EQ(wire.request.greedy.max_steps, 500);
  EXPECT_DOUBLE_EQ(wire.request.greedy.step_fraction, 0.25);
  EXPECT_DOUBLE_EQ(wire.request.greedy.min_gain, 0.001);
  EXPECT_EQ(wire.request.simplex.max_iterations, 1000);
  EXPECT_TRUE(wire.request.trace);
  EXPECT_EQ(wire.id, "\"req-1\"");  // echoed verbatim, quotes included
}

TEST(Wire, StatsOpRoundTrips) {
  const engine::WireCommand command =
      engine::parse_command_line(R"({"op": "stats", "id": 42})");
  EXPECT_EQ(command.kind, engine::WireCommand::Kind::kStats);
  EXPECT_EQ(command.id, "42");
  // Solve keys on a stats line fail loudly, like everywhere else.
  EXPECT_THROW(engine::parse_command_line(R"({"op": "stats", "R": 2})"),
               CheckError);

  Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(instance);
  (void)engine::solve(session, {.algorithm = "averaging", .R = 1});
  const std::string line = engine::stats_to_json_line(session, "42");
  EXPECT_NE(line.find("\"id\": 42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"op\": \"stats\""), std::string::npos);
  EXPECT_NE(line.find("\"cache_hits\": "), std::string::npos);
  EXPECT_NE(line.find("\"workers\": ["), std::string::npos);
  // The embedded registry snapshot carries the engine's own metrics.
  EXPECT_NE(line.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(line.find("\"engine.requests\""), std::string::npos);
  // Balanced braces — the line must embed the snapshot as valid JSON.
  EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
            std::count(line.begin(), line.end(), '}'));
}

TEST(Engine, SolveSurfacesObsCounterDeltas) {
  Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(instance);
  const engine::SolveResult result =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  // An averaging solve runs one view LP per agent, so the per-request
  // simplex delta must cover all of them (the counters are process-wide
  // and monotone, so concurrent tests can only push the delta up).
  ASSERT_TRUE(result.counters.count("simplex_solves"));
  EXPECT_GE(result.counters.at("simplex_solves"),
            static_cast<std::int64_t>(instance.num_agents()));
  ASSERT_TRUE(result.counters.count("bfs_ball_expansions"));
  EXPECT_GE(result.counters.at("bfs_ball_expansions"),
            static_cast<std::int64_t>(instance.num_agents()));

  const std::string line =
      engine::result_to_json_line(result, "", /*emit_x=*/false);
  EXPECT_NE(line.find("\"counters\": {"), std::string::npos) << line;
  EXPECT_NE(line.find("\"simplex_solves\": "), std::string::npos);
}

TEST(Engine, TraceRequestCollectsSpansAndRestoresTheSwitch) {
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
  Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(instance);
  ASSERT_FALSE(obs::tracing_enabled());
  (void)engine::solve(session,
                      {.algorithm = "averaging", .R = 1, .trace = true});
  // The scoped enable turned tracing off again on exit...
  EXPECT_FALSE(obs::tracing_enabled());
  // ...but the spans of the traced request were collected: the cold
  // solve builds caches and runs the view-LP stage.
  const auto events = obs::Tracer::instance().events();
  ASSERT_FALSE(events.empty());
  bool saw_view_lps = false;
  bool saw_build = false;
  for (const auto& [tid, event] : events) {
    saw_view_lps = saw_view_lps ||
                   std::string_view(event.name) == "averaging.view_lps";
    saw_build = saw_build ||
                std::string_view(event.name) == "session.build_balls";
  }
  EXPECT_TRUE(saw_view_lps);
  EXPECT_TRUE(saw_build);
  obs::Tracer::instance().clear();
}

TEST(Wire, RejectsUnknownKeysAndMalformedLines) {
  EXPECT_THROW(engine::parse_request_line(R"({"algoritm": "safe"})"),
               CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"R": "two"})"), CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"R": 1.5})"), CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"damping": "sideways"})"),
               CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"algorithm": "safe"} trailing)"),
               CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"x": [1, 2]})"), CheckError);
  EXPECT_THROW(engine::parse_request_line("not json"), CheckError);
}

TEST(Wire, RejectsIntegersOutsideInt64Range) {
  // 1e19 > 2^63: the cast would be UB, so the parser must throw instead.
  EXPECT_THROW(engine::parse_request_line(R"({"seed": 10000000000000000000})"),
               CheckError);
  EXPECT_THROW(engine::parse_request_line(R"({"samples": 1e30})"), CheckError);
  EXPECT_EQ(engine::parse_request_line(R"({"seed": 4000000000000000000})")
                .request.seed,
            4000000000000000000ull);
}

TEST(Wire, JsonEscapeCoversQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(engine::json_escape("plain"), "plain");
  EXPECT_EQ(engine::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  // Control characters (e.g. a tab inside a CheckError message echoed
  // into an {"error": ...} line) must become \u escapes, not raw bytes.
  EXPECT_EQ(engine::json_escape("tab\there"), "tab\\u0009here");
  EXPECT_EQ(engine::json_escape("nl\n"), "nl\\u000a");
}

TEST(Wire, DampingNamesRoundTrip) {
  for (const AveragingDamping damping :
       {AveragingDamping::kBetaPerAgent, AveragingDamping::kBetaGlobal,
        AveragingDamping::kNone, AveragingDamping::kNoneThenScale}) {
    EXPECT_EQ(engine::damping_from_name(engine::to_name(damping)), damping);
  }
}

TEST(Wire, ResultSerialisesTheBreakdownAndOptionalX) {
  engine::SolveResult result;
  result.algorithm = "safe";
  result.has_solution = true;
  result.x = {0.5, 0.25};
  result.omega = 0.75;
  result.feasible = true;
  result.total_ms = 1.5;
  result.cache_build_ms = 0.5;
  result.solve_ms = 1.0;
  result.cache_hits = 3;
  result.diagnostics["steps"] = 4.0;

  const std::string without_x =
      engine::result_to_json_line(result, "7", /*emit_x=*/false);
  EXPECT_NE(without_x.find("\"id\": 7"), std::string::npos) << without_x;
  EXPECT_NE(without_x.find("\"algorithm\": \"safe\""), std::string::npos);
  EXPECT_NE(without_x.find("\"omega\": 0.75"), std::string::npos);
  EXPECT_NE(without_x.find("\"cache_build_ms\": 0.5"), std::string::npos);
  EXPECT_NE(without_x.find("\"steps\": 4"), std::string::npos);
  EXPECT_EQ(without_x.find("\"x\""), std::string::npos);

  const std::string with_x =
      engine::result_to_json_line(result, "", /*emit_x=*/true);
  EXPECT_EQ(with_x.find("\"id\""), std::string::npos);
  EXPECT_NE(with_x.find("\"x\": [0.5, 0.25]"), std::string::npos) << with_x;
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/baselines.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Uniform, TwoAgentValue) {
  // Row sum is 2 ⇒ t = 1/2 everywhere.
  const auto instance = testing::two_agent_instance();
  const auto x = uniform_solution(instance);
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_TRUE(evaluate(instance, x).feasible());
}

TEST(Uniform, FeasibleAcrossGenerators) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = make_random_instance({.num_agents = 50, .seed = seed});
    EXPECT_TRUE(evaluate(instance, uniform_solution(instance)).feasible());
  }
}

TEST(Uniform, SaturatesTightestResource) {
  const auto instance = testing::single_party_instance();
  const auto x = uniform_solution(instance);
  // Tightest row: x0 + 2x1 <= 1 has sum 3 ⇒ t = 1/3; that row is tight.
  EXPECT_NEAR(resource_load(instance, x, 0), 1.0, 1e-12);
}

TEST(Greedy, FeasibleAndReportsConsistentOmega) {
  const auto instance = make_random_instance({.num_agents = 60, .seed = 3});
  const auto result = greedy_waterfill(instance);
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  EXPECT_NEAR(result.omega, objective_omega(instance, result.x), 1e-12);
  EXPECT_GT(result.steps, 0);
}

TEST(Greedy, OptimalOnTwoAgentInstance) {
  const auto instance = testing::two_agent_instance();
  const auto result = greedy_waterfill(instance);
  EXPECT_NEAR(result.omega, 0.5, 1e-6);
}

class GreedyVsBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyVsBounds, BetweenZeroAndOptimum) {
  const auto instance = make_random_instance({
      .num_agents = 40,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = GetParam(),
  });
  const auto result = greedy_waterfill(instance);
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  EXPECT_GT(result.omega, 0.0);
  EXPECT_LE(result.omega, exact.omega + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsBounds,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Greedy, BeatsUniformOnAverage) {
  // Greedy is a heuristic: it can lose to the uniform point on an odd
  // seed, but must win in aggregate.
  double greedy_total = 0.0;
  double uniform_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = make_random_instance({
        .num_agents = 40,
        .resources_per_agent = 2,
        .parties_per_agent = 1,
        .max_support = 3,
        .seed = seed ^ 0x77,
    });
    greedy_total += greedy_waterfill(instance).omega;
    uniform_total += objective_omega(instance, uniform_solution(instance));
  }
  EXPECT_GT(greedy_total, uniform_total);
}

TEST(Greedy, StepFractionOneStillTerminates) {
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto result = greedy_waterfill(instance, {.step_fraction = 1.0});
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  EXPECT_LT(result.steps, 100000);
}

TEST(Greedy, RejectsBadOptions) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(greedy_waterfill(instance, {.step_fraction = 0.0}), CheckError);
  EXPECT_THROW(greedy_waterfill(instance, {.step_fraction = 1.5}), CheckError);
}

TEST(Greedy, RequiresParties) {
  Instance::Builder builder;
  const AgentId v = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v, 1.0);
  const auto instance = std::move(builder).build();
  EXPECT_THROW(greedy_waterfill(instance), CheckError);
}

}  // namespace
}  // namespace mmlp

// Thread-count invariance across the whole registry.
//
// The engine's contract is that the worker pool is an implementation
// detail: the same request on the same instance returns a bitwise-
// identical SolveResult whether the session runs 1, 2, or 8 workers.
// test_local_averaging pins this for the averaging solver; this file
// extends the matrix to every registered solver on a grid and a random
// scenario. Estimator solvers (sublinear) carry their answer in
// diagnostics instead of x, so diagnostics are compared bitwise too —
// timing-dependent entries excepted.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mmlp/engine/session.hpp"
#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"

namespace mmlp {
namespace {

using engine::Session;
using engine::SessionOptions;
using engine::SolveRequest;
using engine::SolveResult;
using engine::SolverRegistry;

// Diagnostics that measure the run instead of describing the answer.
bool timing_dependent(const std::string& key) {
  return key.find("_ms") != std::string::npos ||
         key.find("wall") != std::string::npos;
}

void expect_same_answer(const SolveResult& base, const SolveResult& other,
                        const std::string& label) {
  ASSERT_EQ(base.has_solution, other.has_solution) << label;
  ASSERT_EQ(base.x.size(), other.x.size()) << label;
  for (std::size_t v = 0; v < base.x.size(); ++v) {
    ASSERT_EQ(base.x[v], other.x[v]) << label << " at agent " << v;
  }
  EXPECT_EQ(base.omega, other.omega) << label;
  EXPECT_EQ(base.feasible, other.feasible) << label;
  ASSERT_EQ(base.party_benefit, other.party_benefit) << label;
  for (const auto& [key, value] : base.diagnostics) {
    if (timing_dependent(key)) {
      continue;
    }
    const auto found = other.diagnostics.find(key);
    ASSERT_NE(found, other.diagnostics.end()) << label << " missing " << key;
    EXPECT_EQ(value, found->second) << label << " diagnostics[" << key << "]";
  }
}

SolveRequest request_for(const std::string& algorithm) {
  SolveRequest request;
  request.algorithm = algorithm;
  request.R = 1;
  if (algorithm == "sublinear") {
    request.seed = 17;  // the estimate is a function of (instance, seed)
    request.samples = 64;
  }
  return request;
}

TEST(ThreadInvariance, EveryRegistrySolverOnEveryPoolSize) {
  const std::vector<std::pair<std::string, Instance>> scenarios = {
      {"grid", make_grid_instance({.dims = {6, 6},
                                   .torus = true,
                                   .randomize = true,
                                   .seed = 3})},
      {"random", make_random_instance({
                     .num_agents = 60,
                     .resources_per_agent = 3,
                     .parties_per_agent = 2,
                     .max_support = 4,
                     .seed = 9,
                 })},
  };
  const std::vector<std::string> algorithms = SolverRegistry::builtin().names();
  ASSERT_EQ(algorithms.size(), 10u);  // incl. the selfstab-* executions

  for (const auto& [scenario, instance] : scenarios) {
    for (const std::string& algorithm : algorithms) {
      const SolveRequest request = request_for(algorithm);
      Session reference(instance, SessionOptions{.threads = 1});
      const SolveResult base = engine::solve(reference, request);
      for (const std::size_t threads : {2u, 8u}) {
        Session session(instance, SessionOptions{.threads = threads});
        const SolveResult other = engine::solve(session, request);
        expect_same_answer(base, other,
                           scenario + "/" + algorithm + "/threads=" +
                               std::to_string(threads));
      }
    }
  }
}

TEST(ThreadInvariance, DedupAndObliviousVariantsToo) {
  // The two request knobs that reroute the parallel loops most: view
  // deduplication (one LP per class, scattered back) and oblivious mode
  // (different communication graph).
  const Instance instance = make_grid_instance(
      {.dims = {6, 6}, .torus = true, .randomize = true, .seed = 3});
  for (const bool deduplicate : {false, true}) {
    for (const bool oblivious : {false, true}) {
      SolveRequest request;
      request.algorithm = "averaging";
      request.R = 1;
      request.deduplicate = deduplicate;
      request.collaboration_oblivious = oblivious;
      Session reference(instance, SessionOptions{.threads = 1});
      const SolveResult base = engine::solve(reference, request);
      for (const std::size_t threads : {2u, 8u}) {
        Session session(instance, SessionOptions{.threads = threads});
        expect_same_answer(base, engine::solve(session, request),
                           "dedup=" + std::to_string(deduplicate) +
                               "/oblivious=" + std::to_string(oblivious) +
                               "/threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ThreadInvariance, ShardedSessionSharedPoolSizesToo) {
  // The sharded path runs every shard session plus the fan-out on ONE
  // shared cooperative pool (nested bulk regions), so its thread budget
  // is a second scheduler shape to pin: T=1 vs T=8 on the same
  // partition must stitch bitwise-identical answers.
  const Instance instance = make_grid_instance(
      {.dims = {8, 8}, .torus = true, .randomize = true, .seed = 3});
  for (const char* algorithm : {"safe", "averaging"}) {
    const SolveRequest request = request_for(algorithm);
    engine::ShardedSession reference(
        instance,
        engine::ShardedOptions{.shards = 4, .halo_radius = 3, .threads = 1});
    const SolveResult base = reference.solve(request);
    for (const std::size_t threads : {2u, 8u}) {
      engine::ShardedSession sharded(
          instance, engine::ShardedOptions{.shards = 4,
                                           .halo_radius = 3,
                                           .threads = threads});
      expect_same_answer(base, sharded.solve(request),
                         std::string("sharded/") + algorithm +
                             "/threads=" + std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace mmlp

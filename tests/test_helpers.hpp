// Shared fixtures and builders for the mmlp test suite.
#pragma once

#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp::testing {

/// The simplest nontrivial instance: two agents sharing one resource,
/// two singleton parties.
///   max min(x0, x1)  s.t.  x0 + x1 <= 1  =>  ω* = 1/2 at x = (1/2, 1/2).
inline Instance two_agent_instance() {
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v0, 1.0).set_usage(i, v1, 1.0);
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 1.0).set_benefit(k1, v1, 1.0);
  return std::move(builder).build();
}

/// A path of `n` agents: resource i_j couples agents j and j+1
/// (a = 1), and every agent has its own singleton party (c = 1).
/// The communication graph is a path, useful for ball/growth tests.
inline Instance path_instance(AgentId n) {
  Instance::Builder builder;
  for (AgentId v = 0; v < n; ++v) {
    builder.add_agent();
  }
  for (AgentId v = 0; v + 1 < n; ++v) {
    const ResourceId i = builder.add_resource();
    builder.set_usage(i, v, 1.0).set_usage(i, v + 1, 1.0);
  }
  if (n == 1) {  // keep I_v nonempty
    const ResourceId i = builder.add_resource();
    builder.set_usage(i, 0, 1.0);
  }
  for (AgentId v = 0; v < n; ++v) {
    const PartyId k = builder.add_party();
    builder.set_benefit(k, v, 1.0);
  }
  return std::move(builder).build();
}

/// The packing special case |K| = 1 (Section 1.3): maximise c·x subject
/// to Ax <= 1 with every agent benefitting the sole party.
inline Instance single_party_instance() {
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const AgentId v2 = builder.add_agent();
  const ResourceId i0 = builder.add_resource();
  const ResourceId i1 = builder.add_resource();
  builder.set_usage(i0, v0, 1.0).set_usage(i0, v1, 2.0);
  builder.set_usage(i1, v1, 1.0).set_usage(i1, v2, 1.0);
  const PartyId k = builder.add_party();
  builder.set_benefit(k, v0, 1.0);
  builder.set_benefit(k, v1, 1.0);
  builder.set_benefit(k, v2, 1.0);
  return std::move(builder).build();
}

}  // namespace mmlp::testing

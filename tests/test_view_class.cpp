// The view-canonicalization layer (core/view_class): key soundness
// (equal canonical keys must come with a genuine center-preserving view
// isomorphism — the keys are serialized structures, not hashes, so this
// is provable per pair), class collapse on symmetric instances, and the
// dedup solve paths' equality contracts: kExact output is bitwise equal
// to the dedup-off run on *every* instance, kCanonical output is exactly
// feasible and keeps the Theorem 3 guarantee.
#include "mmlp/core/view_class.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

/// Rows of a view as a sorted multiset of (is_party, entries) with the
/// local agent ids relabeled through `relabel` (identity = the view's
/// own indexing). The comparison object behind the isomorphism check.
using Row = std::pair<int, std::vector<std::pair<std::int32_t, double>>>;

std::vector<Row> relabeled_rows(const LocalView& view,
                                const std::vector<std::int32_t>& relabel) {
  std::vector<Row> rows;
  const auto relabeled = [&](CoefSpan entries, int is_party) {
    Row row{is_party, {}};
    for (const Coef& entry : entries) {
      row.second.emplace_back(relabel[static_cast<std::size_t>(entry.id)],
                              entry.value);
    }
    std::sort(row.second.begin(), row.second.end());
    return row;
  };
  for (std::size_t r = 0; r < view.resources.size(); ++r) {
    rows.push_back(relabeled(view.resource_entries(r), 0));
  }
  for (std::size_t p = 0; p < view.parties.size(); ++p) {
    rows.push_back(relabeled(view.party_entries(p), 1));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::int32_t> identity_relabel(std::size_t n) {
  std::vector<std::int32_t> relabel(n);
  for (std::size_t i = 0; i < n; ++i) {
    relabel[i] = static_cast<std::int32_t>(i);
  }
  return relabel;
}

TEST(CanonicalizeView, DeterministicAndPermutationValid) {
  const Instance instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const Hypergraph h = instance.communication_graph();
  const LocalView view = extract_view(instance, h, 12, 1);
  const ViewCanonicalForm a = canonicalize_view(view);
  const ViewCanonicalForm b = canonicalize_view(view);
  EXPECT_EQ(a.exact_key, b.exact_key);
  EXPECT_EQ(a.canonical_key, b.canonical_key);
  EXPECT_EQ(a.canon_to_local, b.canon_to_local);
  // canon_to_local is a permutation of the local indices.
  std::vector<std::int32_t> sorted = a.canon_to_local;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity_relabel(view.agents.size()));
}

TEST(ViewClassIndex, GridTorusCollapsesToFewClasses) {
  const Instance instance =
      make_grid_instance({.dims = {20, 20}, .torus = true});
  engine::Session session(instance);
  const ViewClassIndex& index = session.view_classes(1, false);
  ASSERT_EQ(index.num_agents(), 400u);
  // A uniform torus is vertex-transitive: every view is isomorphic, so
  // the canonical labeling should land on O(1) classes. The exact
  // orbits split further by the sorted-global-id ordering patterns near
  // the wrap — into a side-independent number of categories (measured:
  // 49 for the R=1 von-Neumann structure), so the exact dedup ratio
  // approaches 1 as the torus grows.
  EXPECT_LE(index.num_classes(), 8u);
  EXPECT_LE(index.num_orbits(), 64u);
  EXPECT_LE(index.num_classes(), index.num_orbits());
  EXPECT_GE(index.dedup_ratio(DedupScatter::kExact), 0.85);
  // Orbit structure: sizes sum to n, representatives are members.
  std::int64_t total = 0;
  for (const std::int32_t size : index.orbit_size) {
    total += size;
  }
  EXPECT_EQ(total, 400);
  for (std::size_t g = 0; g < index.num_orbits(); ++g) {
    EXPECT_EQ(index.orbit_of[static_cast<std::size_t>(index.orbit_rep[g])],
              static_cast<std::int32_t>(g));
  }
}

TEST(ViewClassIndex, OrbitCountIsSideIndependentOnTori) {
  // The wrap-ordering orbit categories do not multiply with the torus
  // size — the lever behind the 1e5-agent dedup ratio in BENCH_engine.
  std::size_t orbits_small = 0;
  std::size_t orbits_large = 0;
  {
    const Instance instance =
        make_grid_instance({.dims = {12, 12}, .torus = true});
    engine::Session session(instance);
    orbits_small = session.view_classes(1, false).num_orbits();
  }
  {
    const Instance instance =
        make_grid_instance({.dims = {24, 24}, .torus = true});
    engine::Session session(instance);
    orbits_large = session.view_classes(1, false).num_orbits();
  }
  EXPECT_EQ(orbits_small, orbits_large);
}

TEST(ViewClassIndex, OrbitsNestInsideClasses) {
  const Instance instance = make_random_instance({.num_agents = 60, .seed = 3});
  engine::Session session(instance);
  const ViewClassIndex& index = session.view_classes(1, false);
  for (std::size_t u = 0; u < index.num_agents(); ++u) {
    EXPECT_EQ(index.orbit_class[static_cast<std::size_t>(index.orbit_of[u])],
              index.class_of[u]);
  }
}

// Equal canonical keys must certify a genuine center-preserving
// isomorphism — the anti-false-sharing property. For every non-rep
// member, relabel both the representative's view and the member's view
// into canonical indexing via their stored permutations and compare the
// full row multisets plus the center position.
TEST(ViewClassIndex, EqualKeysImplyGenuineIsomorphism) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const Instance instance = make_random_instance({
        .num_agents = 70,
        .resources_per_agent = 2,
        .parties_per_agent = 2,
        .max_support = 3,
        .seed = seed,
    });
    engine::Session session(instance);
    for (const std::int32_t radius : {1, 2}) {
      const ViewClassIndex& index = session.view_classes(radius, false);
      const auto& balls = session.balls(radius, false);
      for (std::size_t u = 0; u < index.num_agents(); ++u) {
        const AgentId rep =
            index.class_rep[static_cast<std::size_t>(index.class_of[u])];
        if (rep == static_cast<AgentId>(u)) {
          continue;
        }
        const LocalView member_view = extract_view(
            instance, static_cast<AgentId>(u), radius, balls[u]);
        const LocalView rep_view =
            extract_view(instance, rep, radius,
                         balls[static_cast<std::size_t>(rep)]);
        ASSERT_EQ(member_view.agents.size(), rep_view.agents.size());
        // local -> canonical relabelings from the stored permutations.
        const auto to_canon = [&](std::span<const std::int32_t> perm) {
          std::vector<std::int32_t> relabel(perm.size());
          for (std::size_t c = 0; c < perm.size(); ++c) {
            relabel[static_cast<std::size_t>(perm[c])] =
                static_cast<std::int32_t>(c);
          }
          return relabel;
        };
        const auto member_relabel = to_canon(index.perm(static_cast<AgentId>(u)));
        const auto rep_relabel = to_canon(index.perm(rep));
        EXPECT_EQ(relabeled_rows(member_view, member_relabel),
                  relabeled_rows(rep_view, rep_relabel))
            << "seed " << seed << " R " << radius << " agent " << u;
        EXPECT_EQ(member_relabel[static_cast<std::size_t>(
                      member_view.local_index(member_view.center))],
                  rep_relabel[static_cast<std::size_t>(
                      rep_view.local_index(rep_view.center))]);
      }
    }
  }
}

// Members of one exact orbit carry bit-identical local structures (the
// basis of the bitwise dedup guarantee).
TEST(ViewClassIndex, OrbitMembersShareExactStructure) {
  const Instance instance = make_grid_instance({.dims = {9, 9}, .torus = false});
  engine::Session session(instance);
  const ViewClassIndex& index = session.view_classes(1, false);
  const auto& balls = session.balls(1, false);
  for (std::size_t u = 0; u < index.num_agents(); ++u) {
    const AgentId rep =
        index.orbit_rep[static_cast<std::size_t>(index.orbit_of[u])];
    const LocalView member_view =
        extract_view(instance, static_cast<AgentId>(u), 1, balls[u]);
    const LocalView rep_view = extract_view(
        instance, rep, 1, balls[static_cast<std::size_t>(rep)]);
    const auto identity = identity_relabel(member_view.agents.size());
    EXPECT_EQ(relabeled_rows(member_view, identity),
              relabeled_rows(rep_view, identity));
    EXPECT_EQ(member_view.local_index(member_view.center),
              rep_view.local_index(rep_view.center));
  }
}

// The headline contract: deduplicated averaging with exact scatter is
// bitwise equal to the per-agent run — on symmetric *and* unstructured
// instances (orbit members share byte-identical LPs, and the
// deterministic simplex maps identical input to identical output).
TEST(DedupAveraging, ExactScatterBitwiseEqualEverywhere) {
  std::vector<std::pair<const char*, Instance>> instances;
  instances.emplace_back(
      "grid", make_grid_instance({.dims = {7, 7}, .torus = false}));
  instances.emplace_back(
      "torus", make_grid_instance({.dims = {8, 8}, .torus = true}));
  instances.emplace_back("random",
                         make_random_instance({.num_agents = 60, .seed = 11}));
  instances.emplace_back("path", testing::path_instance(12));
  for (const auto& [name, instance] : instances) {
    for (const std::int32_t R : {1, 2}) {
      engine::Session session(instance);
      const LocalAveragingResult off =
          local_averaging_with(session, {.R = R});
      const LocalAveragingResult on =
          local_averaging_with(session, {.R = R, .deduplicate = true});
      EXPECT_EQ(on.x, off.x) << name << " R=" << R;
      EXPECT_EQ(on.view_omega, off.view_omega) << name << " R=" << R;
      EXPECT_EQ(on.beta, off.beta) << name << " R=" << R;
      EXPECT_LE(on.lp_solves, off.lp_solves) << name << " R=" << R;
      EXPECT_GT(on.view_classes, 0u) << name << " R=" << R;
    }
  }
}

// Canonical scatter hands every member an exactly optimal, exactly
// feasible solution of its own view LP, so x̃ stays feasible and the
// Theorem 3 ratio guarantee still holds (the solution itself may differ
// from the per-agent run within the degenerate-optimum freedom).
TEST(DedupAveraging, CanonicalScatterKeepsTheorem3Guarantee) {
  const Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  engine::Session session(instance);
  const LocalAveragingResult result = local_averaging_with(
      session, {.R = 1,
                .deduplicate = true,
                .dedup_scatter = DedupScatter::kCanonical});
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  const double achieved = objective_omega(instance, result.x);
  ASSERT_GT(achieved, 0.0);
  EXPECT_LE(exact.omega / achieved, result.ratio_bound + 1e-6);
  // Canonical grouping can only merge orbits further.
  const ViewClassIndex& index = session.view_classes(1, false);
  EXPECT_LE(index.num_classes(), index.num_orbits());
  EXPECT_EQ(result.lp_solves, index.num_classes());
}

TEST(DedupAveraging, SingletonClassesFallBackToPerAgentSolves) {
  // A random instance with large supports has essentially no view
  // symmetry: dedup must degrade to ~per-agent solves and still match.
  const Instance instance = make_random_instance({
      .num_agents = 40,
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 5,
      .seed = 29,
  });
  engine::Session session(instance);
  const LocalAveragingResult off = local_averaging_with(session, {.R = 1});
  const LocalAveragingResult on =
      local_averaging_with(session, {.R = 1, .deduplicate = true});
  EXPECT_EQ(on.x, off.x);
  EXPECT_GE(on.lp_solves, on.view_classes);
  EXPECT_LE(on.lp_solves, 40u);
}

TEST(DedupSafe, BitwiseEqualToPerAgentRule) {
  for (const auto& instance :
       {make_grid_instance({.dims = {10, 10}, .torus = true}),
        make_random_instance({.num_agents = 80, .seed = 5})}) {
    engine::Session session(instance);
    EXPECT_EQ(safe_solution_with(session, {.deduplicate = true}),
              safe_solution_with(session));
  }
}

TEST(DedupDistributedAveraging, ExactScatterBitwiseEqual) {
  const Instance instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(instance);
  const std::vector<double> off =
      distributed_local_averaging_with(session, {.R = 1});
  const std::vector<double> on = distributed_local_averaging_with(
      session, {.R = 1, .deduplicate = true});
  EXPECT_EQ(on, off);
  // And both match the centralized algorithm, dedup or not.
  EXPECT_EQ(on, local_averaging_with(session, {.R = 1, .deduplicate = true}).x);
}

TEST(DedupAveraging, ObliviousModeMatchesToo) {
  const Instance instance = make_random_instance({.num_agents = 50, .seed = 13});
  engine::Session session(instance);
  const LocalAveragingResult off = local_averaging_with(
      session, {.R = 1, .collaboration_oblivious = true});
  const LocalAveragingResult on = local_averaging_with(
      session,
      {.R = 1, .collaboration_oblivious = true, .deduplicate = true});
  EXPECT_EQ(on.x, off.x);
}

}  // namespace
}  // namespace mmlp

// Engine guardrails: cooperative cancellation and deadlines (the
// SolveStatus taxonomy), the invariant that a timed-out or cancelled
// solve leaves every session cache valid — the next request is
// bitwise-equal to a fresh-session run — and the apply() integrity
// spot-check whose divergence fallback trades a poisoned cache for a
// cold but correct one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/engine/wire.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/util/cancel.hpp"
#include "mmlp/util/check.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(CancelToken, StartsLive) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.raise_if_expired());
}

TEST(CancelToken, CancelExpiresImmediately) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  try {
    token.raise_if_expired();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.reason(), CancelReason::kCancelled);
    EXPECT_STREQ(error.what(), "operation cancelled");
  }
}

TEST(CancelToken, ZeroDeadlineMeansUnlimited) {
  CancelToken token;
  token.set_deadline_after_ms(0);
  EXPECT_FALSE(token.deadline_passed());
  EXPECT_FALSE(token.expired());
}

TEST(CancelToken, PassedDeadlineExpiresWithTimeoutReason) {
  CancelToken token;
  token.set_deadline_after_ms(1);
  while (!token.deadline_passed()) {
    // Busy-wait the 1 ms out; steady_clock makes this finite.
  }
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  // An explicit cancel is the stronger signal even with the deadline
  // already passed.
  token.cancel();
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
}

TEST(CancelToken, CheckpointIsANoOpWithoutAScope) {
  EXPECT_NO_THROW(cancel::checkpoint());
  EXPECT_EQ(cancel::current_token(), nullptr);
}

TEST(CancelToken, ScopeInstallsAndRestores) {
  CancelToken token;
  EXPECT_EQ(cancel::current_token(), nullptr);
  {
    const cancel::CancelScope scope(&token);
    EXPECT_EQ(cancel::current_token(), &token);
    token.cancel();
    EXPECT_THROW(cancel::checkpoint(), CancelledError);
  }
  EXPECT_EQ(cancel::current_token(), nullptr);
  EXPECT_NO_THROW(cancel::checkpoint());
}

TEST(SolveStatus, NamesAreStable) {
  EXPECT_STREQ(engine::solve_status_name(engine::SolveStatus::kOk), "ok");
  EXPECT_STREQ(engine::solve_status_name(engine::SolveStatus::kTimeout),
               "timeout");
  EXPECT_STREQ(engine::solve_status_name(engine::SolveStatus::kCancelled),
               "cancelled");
}

TEST(Guardrails, PreCancelledTokenShortCircuits) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  CancelToken token;
  token.cancel();
  const engine::SolveResult result =
      engine::solve(session, {.algorithm = "averaging", .R = 1}, &token);
  EXPECT_EQ(result.status, engine::SolveStatus::kCancelled);
  EXPECT_FALSE(result.has_solution);
  EXPECT_TRUE(result.x.empty());
  EXPECT_EQ(result.error, "operation cancelled");
  // The cancelled request must not poison the session: the next solve
  // matches a fresh session bitwise.
  const engine::SolveResult after =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  EXPECT_EQ(after.status, engine::SolveStatus::kOk);
  engine::Session fresh(instance);
  EXPECT_EQ(after.x,
            engine::solve(fresh, {.algorithm = "averaging", .R = 1}).x);
}

TEST(Guardrails, DeadlineTimesOutAndSessionStaysValid) {
  // 2500 agents × per-view LPs: far beyond a 1 ms budget, so the
  // deadline reliably fires at a cancellation checkpoint.
  const Instance instance =
      make_grid_instance({.dims = {50, 50}, .torus = true});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "averaging", .R = 1};
  request.deadline_ms = 1;
  const engine::SolveResult timed_out = engine::solve(session, request);
  ASSERT_EQ(timed_out.status, engine::SolveStatus::kTimeout);
  EXPECT_FALSE(timed_out.has_solution);
  EXPECT_TRUE(timed_out.x.empty());
  EXPECT_EQ(timed_out.error, "deadline exceeded");
  EXPECT_TRUE(timed_out.diagnostics.empty());

  // The caches-stay-valid invariant: the same request without the
  // deadline, on the SAME session, is bitwise-equal to a fresh run.
  request.deadline_ms = 0;
  const engine::SolveResult retried = engine::solve(session, request);
  ASSERT_EQ(retried.status, engine::SolveStatus::kOk);
  engine::Session fresh(instance);
  EXPECT_EQ(retried.x, engine::solve(fresh, request).x);
}

TEST(Guardrails, TimedOutIncrementalSolveLeavesMemoValid) {
  // The sharpest cache-validity case: a warmed incremental memo, a
  // delta, then a timeout that lands mid-splice. The half-mutated memo
  // must be invalid (not half-trusted), so the clean retry falls back
  // to a full solve and matches a fresh session bitwise.
  Instance instance = make_grid_instance({.dims = {50, 50}, .torus = true});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "averaging", .R = 1};
  request.incremental = true;
  ASSERT_EQ(engine::solve(session, request).status, engine::SolveStatus::kOk);

  // Edits scattered across the whole torus: the dirty region covers
  // most of the 2500 agents, so the splice costs roughly a full solve —
  // orders of magnitude beyond the 1 ms budget.
  InstanceDelta delta;
  for (std::int32_t e = 0; e < 40; ++e) {
    delta.set_usage((e * 61) % instance.num_resources(),
                    (e * 63) % instance.num_agents(), 0.5 + 0.01 * e);
  }
  session.apply(delta);

  request.deadline_ms = 1;
  const engine::SolveResult timed_out = engine::solve(session, request);
  ASSERT_EQ(timed_out.status, engine::SolveStatus::kTimeout);

  request.deadline_ms = 0;
  const engine::SolveResult retried = engine::solve(session, request);
  ASSERT_EQ(retried.status, engine::SolveStatus::kOk);
  engine::Session fresh(instance);
  EXPECT_EQ(retried.x, engine::solve(fresh, request).x);
}

TEST(Guardrails, NegativeDeadlineRejected) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "safe"};
  request.deadline_ms = -5;
  EXPECT_THROW((void)engine::solve(session, request), CheckError);
}

TEST(Guardrails, FaultPlanOnNonFaultableAlgorithmRejected) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "averaging"};
  request.fault_plan = "s1;0:crash:0";
  EXPECT_THROW((void)engine::solve(session, request), CheckError);
}

TEST(Guardrails, MalformedFaultPlanRejected) {
  const Instance instance = make_grid_instance({.dims = {4, 4}});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "selfstab-safe"};
  request.fault_plan = "0:crash:0";  // missing the s<seed> prefix
  EXPECT_THROW((void)engine::solve(session, request), CheckError);
}

TEST(Guardrails, SelfstabSolveRecoversAndReportsDiagnostics) {
  const Instance instance =
      make_grid_instance({.dims = {6, 6}, .torus = true});
  engine::Session session(instance);
  engine::SolveRequest request{.algorithm = "selfstab-averaging", .R = 1};
  request.fault_plan = "s9;0:crash:3;0:drop:5:4;1:state:7;2:corrupt:2:1";
  const engine::SolveResult result = engine::solve(session, request);
  ASSERT_EQ(result.status, engine::SolveStatus::kOk);
  EXPECT_GT(result.diagnostics.at("faulty_rounds"), 0.0);
  EXPECT_GT(result.diagnostics.at("faults_injected"), 0.0);
  EXPECT_EQ(result.diagnostics.at("horizon"), 3.0);  // 2R+1
  const double recovery = result.diagnostics.at("rounds_to_legitimate");
  EXPECT_GE(recovery, 0.0);
  EXPECT_LE(recovery, result.diagnostics.at("horizon") + 1.0);
  // The differential bar through the engine path.
  EXPECT_EQ(result.x, distributed_local_averaging(instance, {.R = 1}));
}

// ---------------------------------------------------------------------------
// apply() integrity spot-check
// ---------------------------------------------------------------------------

TEST(IntegrityFallback, CleanApplyVerifiesWithoutFallback) {
  Instance instance = make_grid_instance({.dims = {6, 6}});
  engine::Session session(instance);
  ASSERT_EQ(engine::solve(session, {.algorithm = "distributed-safe"}).status,
            engine::SolveStatus::kOk);
  InstanceDelta delta;
  delta.set_usage(0, 0, 0.5);
  const engine::Session::ApplyReport report = session.apply(delta);
  EXPECT_GT(report.verified_balls, 0u);
  EXPECT_FALSE(report.integrity_fallback);
  EXPECT_EQ(session.stats().integrity_fallbacks, 0);
}

TEST(IntegrityFallback, CorruptedCacheTriggersWholesaleFallback) {
  // Corrupt agent 0's cached radius-1 ball, then edit the FAR corner of
  // a non-torus grid so the surgical repair never touches agent 0: only
  // the integrity spot-check (which always samples agent 0) can notice.
  Instance instance = make_grid_instance({.dims = {6, 6}});
  engine::Session session(instance);
  ASSERT_EQ(engine::solve(session, {.algorithm = "distributed-safe"}).status,
            engine::SolveStatus::kOk);
  session.corrupt_cached_ball_for_test(1, false, 0);

  InstanceDelta delta;
  delta.set_usage(instance.num_resources() - 1, instance.num_agents() - 1,
                  0.9);
  const engine::Session::ApplyReport report = session.apply(delta);
  EXPECT_TRUE(report.integrity_fallback);
  EXPECT_TRUE(report.rebuilt);
  EXPECT_EQ(session.stats().integrity_fallbacks, 1);

  // Cold but correct: the next solve rebuilds from scratch and matches
  // a fresh session over the mutated instance bitwise.
  const engine::SolveResult after =
      engine::solve(session, {.algorithm = "distributed-safe"});
  ASSERT_EQ(after.status, engine::SolveStatus::kOk);
  engine::Session fresh(instance);
  EXPECT_EQ(after.x,
            engine::solve(fresh, {.algorithm = "distributed-safe"}).x);
}

// ---------------------------------------------------------------------------
// Wire surface of the taxonomy
// ---------------------------------------------------------------------------

TEST(WireErrors, ErrorLineCarriesCodeAndLineNumber) {
  const std::string line =
      engine::error_to_json_line("timeout", "deadline exceeded", 7);
  EXPECT_NE(line.find("\"error\": \"deadline exceeded\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"code\": \"timeout\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"line\": 7"), std::string::npos) << line;
}

TEST(WireErrors, ResultLineCarriesStatus) {
  engine::SolveResult result;
  result.algorithm = "averaging";
  result.status = engine::SolveStatus::kOk;
  const std::string ok = engine::result_to_json_line(result, "1", false);
  EXPECT_NE(ok.find("\"status\": \"ok\""), std::string::npos) << ok;

  result.status = engine::SolveStatus::kTimeout;
  result.error = "deadline exceeded";
  const std::string timed_out =
      engine::result_to_json_line(result, "1", false);
  EXPECT_NE(timed_out.find("\"status\": \"timeout\""), std::string::npos)
      << timed_out;
  EXPECT_NE(timed_out.find("\"error\": \"deadline exceeded\""),
            std::string::npos)
      << timed_out;
}

}  // namespace
}  // namespace mmlp

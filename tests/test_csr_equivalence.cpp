// CSR equivalence suite: the flat-CSR Instance must be observationally
// identical to the nested-list storage it replaced. Random instances are
// built through the Builder while the test tracks every coefficient in
// a reference map; the four CSR directions, the O(1) size accessors, the
// degree bounds and the solver outputs are then checked against that
// reference and across the serialize/deserialize round trip.
#include <algorithm>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {
namespace {

/// Reference model: plain sorted maps, filled alongside the Builder.
struct Reference {
  std::map<std::pair<std::int32_t, std::int32_t>, double> usage;    // (i, v)
  std::map<std::pair<std::int32_t, std::int32_t>, double> benefit;  // (k, v)

  std::vector<Coef> row(bool usages, bool by_first, std::int32_t key) const {
    std::vector<Coef> entries;
    for (const auto& [ids, value] : usages ? usage : benefit) {
      const auto [first, second] = ids;
      if ((by_first ? first : second) == key) {
        entries.push_back({by_first ? second : first, value});
      }
    }
    // std::map iterates (first, second) lexicographically, so the
    // transposed rows arrive sorted by the id we keep — matching the
    // CSR in-row ordering.
    std::sort(entries.begin(), entries.end(),
              [](const Coef& x, const Coef& y) { return x.id < y.id; });
    return entries;
  }
};

void expect_span_eq(CoefSpan actual, const std::vector<Coef>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t idx = 0; idx < expected.size(); ++idx) {
    EXPECT_EQ(actual[idx].id, expected[idx].id);
    EXPECT_DOUBLE_EQ(actual[idx].value, expected[idx].value);
  }
}

/// Random instance + reference built from one coefficient stream, with
/// the standing assumptions (I_v, V_i, V_k nonempty) enforced.
std::pair<Instance, Reference> make_tracked_instance(std::uint64_t seed) {
  Rng rng(seed);
  const std::int32_t num_agents = 40;
  const std::int32_t num_resources = 25;
  const std::int32_t num_parties = 15;

  Reference reference;
  Instance::Builder builder;
  builder.reserve(num_agents, num_resources, num_parties);

  const auto random_value = [&rng] {
    return 0.25 + static_cast<double>(rng.next_u64() % 1000) / 500.0;
  };
  // Every agent joins 1–3 resources; every resource then gets a member
  // for free once some agent picked it, and leftovers are filled below.
  for (std::int32_t v = 0; v < num_agents; ++v) {
    const auto count = 1 + static_cast<std::int32_t>(rng.next_u64() % 3);
    for (std::int32_t pick = 0; pick < count; ++pick) {
      const auto i = static_cast<std::int32_t>(rng.next_u64() %
                                               static_cast<std::uint64_t>(num_resources));
      reference.usage[{i, v}] = 0.0;  // placeholder; value set once below
    }
  }
  for (std::int32_t i = 0; i < num_resources; ++i) {
    bool covered = false;
    for (const auto& [ids, value] : reference.usage) {
      covered = covered || ids.first == i;
    }
    if (!covered) {
      const auto v = static_cast<std::int32_t>(rng.next_u64() %
                                               static_cast<std::uint64_t>(num_agents));
      reference.usage[{i, v}] = 0.0;
    }
  }
  for (std::int32_t k = 0; k < num_parties; ++k) {
    const auto count = 1 + static_cast<std::int32_t>(rng.next_u64() % 3);
    for (std::int32_t pick = 0; pick < count; ++pick) {
      const auto v = static_cast<std::int32_t>(rng.next_u64() %
                                               static_cast<std::uint64_t>(num_agents));
      reference.benefit[{k, v}] = 0.0;
    }
  }
  for (auto& [ids, value] : reference.usage) {
    value = random_value();
    builder.set_usage(ids.first, ids.second, value);
  }
  for (auto& [ids, value] : reference.benefit) {
    value = random_value();
    builder.set_benefit(ids.first, ids.second, value);
  }
  return {std::move(builder).build(), std::move(reference)};
}

TEST(CsrEquivalence, AllFourDirectionsMatchReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto [instance, reference] = make_tracked_instance(seed);
    std::size_t usage_total = 0;
    for (ResourceId i = 0; i < instance.num_resources(); ++i) {
      const auto expected = reference.row(/*usages=*/true, /*by_first=*/true, i);
      expect_span_eq(instance.resource_support(i), expected);
      EXPECT_EQ(instance.resource_support_size(i), expected.size());
      usage_total += expected.size();
    }
    for (PartyId k = 0; k < instance.num_parties(); ++k) {
      const auto expected = reference.row(/*usages=*/false, /*by_first=*/true, k);
      expect_span_eq(instance.party_support(k), expected);
      EXPECT_EQ(instance.party_support_size(k), expected.size());
    }
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      expect_span_eq(instance.agent_resources(v),
                     reference.row(/*usages=*/true, /*by_first=*/false, v));
      expect_span_eq(instance.agent_parties(v),
                     reference.row(/*usages=*/false, /*by_first=*/false, v));
    }
    EXPECT_EQ(instance.num_nonzeros(),
              reference.usage.size() + reference.benefit.size());
    EXPECT_EQ(usage_total, reference.usage.size());
  }
}

TEST(CsrEquivalence, PointLookupsMatchReference) {
  const auto [instance, reference] = make_tracked_instance(11);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      const auto it = reference.usage.find({i, v});
      EXPECT_DOUBLE_EQ(instance.usage(i, v),
                       it == reference.usage.end() ? 0.0 : it->second);
    }
  }
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      const auto it = reference.benefit.find({k, v});
      EXPECT_DOUBLE_EQ(instance.benefit(k, v),
                       it == reference.benefit.end() ? 0.0 : it->second);
    }
  }
}

TEST(CsrEquivalence, SerializeRoundTripPreservesSolverOutputsExactly) {
  for (const std::uint64_t seed : {7u, 8u}) {
    const auto instance = make_random_instance({
        .num_agents = 50,
        .resources_per_agent = 2,
        .parties_per_agent = 2,
        .max_support = 3,
        .seed = seed,
    });
    const Instance restored = Instance::deserialize(instance.serialize());
    EXPECT_TRUE(instance == restored);
    // Bitwise-equal outputs: the CSR round trip must not perturb the
    // deterministic solvers in any way.
    EXPECT_EQ(safe_solution(instance), safe_solution(restored));
    const auto lhs = local_averaging(instance, {.R = 1});
    const auto rhs = local_averaging(restored, {.R = 1});
    EXPECT_EQ(lhs.x, rhs.x);
    EXPECT_EQ(lhs.view_omega, rhs.view_omega);
    EXPECT_EQ(lhs.beta, rhs.beta);
  }
}

TEST(CsrEquivalence, SafeMatchesAccessorOnlyReference) {
  const auto [instance, reference] = make_tracked_instance(21);
  const auto fast = safe_solution(instance);
  ASSERT_EQ(fast.size(), static_cast<std::size_t>(instance.num_agents()));
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    // eq. (2) recomputed through the span accessors, one entry at a time.
    double expected = std::numeric_limits<double>::infinity();
    for (const Coef& entry : instance.agent_resources(v)) {
      expected = std::min(
          expected, 1.0 / (entry.value *
                           static_cast<double>(
                               instance.resource_support(entry.id).size())));
    }
    EXPECT_DOUBLE_EQ(fast[static_cast<std::size_t>(v)], expected);
  }
}

TEST(CsrEquivalence, DistributedRunsStillMatchCentralizedBitForBit) {
  const auto [instance, reference] = make_tracked_instance(31);
  EXPECT_EQ(distributed_safe(instance), safe_solution(instance));
  EXPECT_EQ(distributed_local_averaging(instance, {.R = 1}),
            local_averaging(instance, {.R = 1}).x);
}

}  // namespace
}  // namespace mmlp

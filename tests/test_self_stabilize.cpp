#include "mmlp/dist/self_stabilize.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/gen/sensor.hpp"
#include "mmlp/util/check.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(SelfStabilize, ColdStartConvergesWithinHorizonRounds) {
  const auto instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  for (const std::int32_t horizon : {1, 2, 3}) {
    SelfStabilizingFlood flood(instance, horizon);
    flood.clear();
    // At most `horizon` growth rounds plus the no-change detection round.
    const std::int32_t rounds = flood.run_until_stable(horizon + 1);
    EXPECT_LE(rounds, horizon + 1) << "horizon " << horizon;
    EXPECT_TRUE(flood.is_legitimate()) << "horizon " << horizon;
  }
}

TEST(SelfStabilize, LegitimateStateIsAFixedPoint) {
  const auto instance = testing::path_instance(7);
  SelfStabilizingFlood flood(instance, 2);
  flood.reset_legitimate();
  EXPECT_EQ(flood.step(), 0);
  EXPECT_TRUE(flood.is_legitimate());
}

TEST(SelfStabilize, KnowledgeMatchesRuntimeFlood) {
  const auto instance = make_random_instance({.num_agents = 40, .seed = 13});
  const std::int32_t horizon = 2;
  SelfStabilizingFlood flood(instance, horizon);
  flood.clear();
  flood.run_until_stable(horizon + 1);
  LocalRuntime runtime(instance);
  const auto expected = runtime.flood(horizon);
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    EXPECT_EQ(flood.knowledge(v), expected[static_cast<std::size_t>(v)])
        << "agent " << v;
  }
}

class SelfStabilizeCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfStabilizeCorruption, RecoversFromArbitraryCorruption) {
  // The Section 1.1 claim: stabilisation in a constant number of rounds
  // (horizon + 1), from ANY initial state.
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const std::int32_t horizon = 2;
  SelfStabilizingFlood flood(instance, horizon);
  Rng rng(GetParam());
  flood.corrupt(rng, 12);
  for (std::int32_t round = 0; round < horizon + 1; ++round) {
    flood.step();
  }
  EXPECT_TRUE(flood.is_legitimate()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfStabilizeCorruption,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(SelfStabilize, StabilisationTimeIndependentOfSize) {
  // Constant-time stabilisation: rounds-to-stable must not grow with n.
  const std::int32_t horizon = 2;
  for (const std::int32_t side : {4, 8, 16}) {
    const auto instance =
        make_grid_instance({.dims = {side, side}, .torus = true});
    SelfStabilizingFlood flood(instance, horizon);
    Rng rng(7);
    flood.corrupt(rng, 8);
    std::int32_t rounds = 0;
    while (!flood.is_legitimate() && rounds < 10) {
      flood.step();
      ++rounds;
    }
    EXPECT_LE(rounds, horizon + 1) << "side " << side;
  }
}

TEST(SelfStabilize, SafeOutputMatchesDirectAlgorithm) {
  const auto instance = make_random_instance({.num_agents = 30, .seed = 5});
  SelfStabilizingFlood flood(instance, 1);
  Rng rng(3);
  flood.corrupt(rng, 6);
  flood.run_until_stable(4);
  EXPECT_EQ(flood.safe_output(), safe_solution(instance));
}

TEST(SelfStabilize, GhostEntriesAgeOut) {
  // A corrupted far-away origin must vanish, not circulate.
  const auto instance = testing::path_instance(10);
  const std::int32_t horizon = 2;
  SelfStabilizingFlood flood(instance, horizon);
  flood.reset_legitimate();
  // Inject one ghost by corrupting and restabilising; afterwards agent 0
  // must not know agent 9 (distance 9 > horizon).
  Rng rng(11);
  flood.corrupt(rng, 20);
  for (std::int32_t round = 0; round < horizon + 1; ++round) {
    flood.step();
  }
  const auto known = flood.knowledge(0);
  EXPECT_FALSE(std::binary_search(known.begin(), known.end(), AgentId{9}));
  EXPECT_TRUE(std::binary_search(known.begin(), known.end(), AgentId{2}));
}

TEST(SelfStabilize, SafeOutputFromClearedStateThrowsCatchably) {
  // Before any round runs, agents know nothing — not even themselves —
  // so the safe rule must fail loudly (and catchably, despite running
  // under parallel_for) rather than fabricate an output.
  const auto instance = testing::path_instance(5);
  SelfStabilizingFlood flood(instance, 1);
  flood.clear();
  EXPECT_THROW(flood.safe_output(), CheckError);
  flood.run_until_stable(2);
  EXPECT_EQ(flood.safe_output(), safe_solution(instance));
}

// Maximal corruption: corrupt_all replaces EVERY table with a fully
// random one — nothing of the legitimate state survives — and the
// horizon + 1 bound must still hold on every generator family the repo
// ships, not just the symmetric constructions.
const std::vector<Instance>& generator_scenarios() {
  static const std::vector<Instance>* instances = [] {
    auto* list = new std::vector<Instance>();
    list->push_back(make_grid_instance(
        {.dims = {5, 5}, .torus = true, .randomize = true, .seed = 2}));
    list->push_back(make_random_instance({.num_agents = 30, .seed = 1}));
    list->push_back(
        make_geometric_instance({.num_agents = 40, .seed = 3}).instance);
    list->push_back(make_sensor_network({.num_sensors = 25,
                                         .num_relays = 8,
                                         .num_areas = 4,
                                         .radio_range = 0.4,
                                         .seed = 4})
                        .instance);
    list->push_back(make_isp_network({.num_customers = 5, .seed = 5}).instance);
    return list;
  }();
  return *instances;
}

class SelfStabilizeMaximalCorruption
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelfStabilizeMaximalCorruption, RecoversOnEveryGeneratorFamily) {
  const Instance& instance = generator_scenarios()[GetParam()];
  for (const std::int32_t horizon : {1, 3}) {
    SelfStabilizingFlood flood(instance, horizon);
    Rng rng(29 + GetParam());
    flood.corrupt_all(rng);
    EXPECT_FALSE(flood.is_legitimate()) << "horizon " << horizon;
    for (std::int32_t round = 0; round < horizon + 1; ++round) {
      flood.step();
    }
    EXPECT_TRUE(flood.is_legitimate())
        << "scenario " << GetParam() << " horizon " << horizon;
  }
  // The recovered radius-1 tables reproduce the safe solution bitwise.
  SelfStabilizingFlood flood(instance, 1);
  Rng rng(77 + GetParam());
  flood.corrupt_all(rng);
  flood.run_until_stable(2);
  EXPECT_EQ(flood.safe_output(), safe_solution(instance));
}

std::string generator_scenario_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* const names[] = {"grid", "random", "geometric", "sensor",
                                      "isp"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Generators, SelfStabilizeMaximalCorruption,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}, std::size_t{3},
                                           std::size_t{4}),
                         generator_scenario_name);

TEST(SelfStabilize, HorizonZeroKnowsOnlySelf) {
  const auto instance = testing::path_instance(4);
  SelfStabilizingFlood flood(instance, 0);
  Rng rng(1);
  flood.corrupt(rng, 5);
  flood.step();
  for (AgentId v = 0; v < 4; ++v) {
    EXPECT_EQ(flood.knowledge(v), (std::vector<AgentId>{v}));
  }
}

}  // namespace
}  // namespace mmlp

// Cross-family property sweep: on every instance family × seed, the full
// algorithm hierarchy must satisfy the paper's ordering and guarantees:
//
//   feasible(safe), feasible(averaging), feasible(greedy), feasible(uniform)
//   ω(uniform), ω(safe), ω(greedy), ω(averaging) ≤ ω*            (optimality)
//   ω* ≤ Δ_I^V · ω(safe)                                          (§4 bound)
//   ω* ≤ ratio_bound · ω(averaging)                               (Thm 3 bound)
//
// This is the repository's broadest single net: any regression in a
// generator, a solver or an algorithm trips it.
#include <gtest/gtest.h>

#include <functional>

#include "mmlp/core/baselines.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/gen/sensor.hpp"

namespace mmlp {
namespace {

struct Family {
  const char* name;
  std::function<Instance(std::uint64_t seed)> make;
};

const Family kFamilies[] = {
    {"random",
     [](std::uint64_t seed) {
       return make_random_instance({.num_agents = 50,
                                    .resources_per_agent = 2,
                                    .parties_per_agent = 1,
                                    .max_support = 3,
                                    .seed = seed});
     }},
    {"grid",
     [](std::uint64_t seed) {
       return make_grid_instance({.dims = {6, 6},
                                  .torus = (seed % 2 == 0),
                                  .randomize = true,
                                  .seed = seed});
     }},
    {"geometric",
     [](std::uint64_t seed) {
       return make_geometric_instance({.num_agents = 80,
                                       .radius = 0.15,
                                       .max_support = 4,
                                       .seed = seed})
           .instance;
     }},
    {"sensor",
     [](std::uint64_t seed) {
       SensorNetworkOptions options;
       options.num_sensors = 35;
       options.num_relays = 10;
       options.num_areas = 4;
       options.radio_range = 0.35;
       options.seed = seed;
       return make_sensor_network(options).instance;
     }},
    {"isp",
     [](std::uint64_t seed) {
       IspOptions options;
       options.num_customers = 8;
       options.num_routers = 5;
       options.seed = seed;
       return make_isp_network(options).instance;
     }},
};

class Hierarchy
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Hierarchy, GuaranteesHoldEverywhere) {
  const auto [family_index, seed] = GetParam();
  const Family& family = kFamilies[family_index];
  const Instance instance = family.make(seed);
  SCOPED_TRACE(::testing::Message() << family.name << " seed " << seed);

  const auto exact = solve_optimal(instance);
  ASSERT_TRUE(evaluate(instance, exact.x).feasible());

  // Safe.
  const auto x_safe = safe_solution(instance);
  ASSERT_TRUE(evaluate(instance, x_safe).feasible());
  const double omega_safe = objective_omega(instance, x_safe);
  EXPECT_LE(omega_safe, exact.omega + 1e-6);
  const double delta =
      static_cast<double>(instance.degree_bounds().delta_V_of_I);
  EXPECT_LE(exact.omega, delta * omega_safe + 1e-6);

  // Averaging (R = 1).
  const auto averaging = local_averaging(instance, {.R = 1});
  ASSERT_TRUE(evaluate(instance, averaging.x).feasible());
  const double omega_avg = objective_omega(instance, averaging.x);
  EXPECT_LE(omega_avg, exact.omega + 1e-6);
  if (omega_avg > 0.0 && averaging.ratio_bound < 1e17) {
    EXPECT_LE(exact.omega, averaging.ratio_bound * omega_avg + 1e-6);
  }

  // Baselines.
  const auto x_uniform = uniform_solution(instance);
  EXPECT_TRUE(evaluate(instance, x_uniform).feasible());
  EXPECT_LE(objective_omega(instance, x_uniform), exact.omega + 1e-6);
  const auto greedy = greedy_waterfill(instance);
  EXPECT_TRUE(evaluate(instance, greedy.x).feasible());
  EXPECT_LE(greedy.omega, exact.omega + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Families, Hierarchy,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return std::string(kFamilies[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mmlp

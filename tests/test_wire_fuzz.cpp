// Wire-layer robustness: no input line may take the batch down.
//
// Two layers of the same property. In-process: a seeded generator
// mutates valid JSONL commands into truncations, type confusions,
// huge numbers, control characters, deep nesting, and raw garbage,
// and parse_command_line must either return a command or throw
// CheckError — never any other exception type, never crash. End to
// end (when the ctest environment carries MMLP_BATCH_BIN): mmlp_batch
// fed a batch interleaving valid and malformed lines must emit one
// {"error": ..., "line": N} object per bad line, keep serving the
// rest, and exit 0 — and flip to a nonzero exit only under
// --fail-fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mmlp/engine/wire.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {
namespace {

const std::vector<std::string>& seed_lines() {
  static const std::vector<std::string> lines = {
      R"({"algorithm": "averaging", "R": 2, "deduplicate": true})",
      R"({"algorithm": "safe", "id": 7})",
      R"({"algorithm": "sublinear", "seed": 3, "samples": 40})",
      R"({"op": "update", "set_usage": [{"i": 3, "v": 7, "a": 0.5}]})",
      R"({"op": "update", "add_agents": 2, "remove_agents": [4, 5]})",
      R"({"op": "stats", "id": "q"})",
      R"({"algorithm": "averaging", "damping": "beta-per-agent"})",
      R"({"algorithm": "safe", "shards": 4, "threads": 2})",
      R"({"algorithm": "averaging", "deadline_ms": 250})",
      R"({"algorithm": "selfstab-safe", "fault_plan": "s7;0:drop:3:5;1:crash:2"})",
  };
  return lines;
}

std::string random_garbage(Rng& rng, std::size_t length) {
  std::string line;
  line.reserve(length);
  for (std::size_t c = 0; c < length; ++c) {
    line.push_back(static_cast<char>(1 + rng.next_below(255)));
  }
  return line;
}

/// One mutated line per call; cycles through the failure families.
std::string mutate(Rng& rng, std::uint64_t kind) {
  const std::vector<std::string>& seeds = seed_lines();
  const std::string& base =
      seeds[static_cast<std::size_t>(rng.next_below(seeds.size()))];
  switch (kind % 13) {
    case 0: {  // truncation: cut anywhere, including mid-token
      const std::size_t cut = 1 + rng.next_below(base.size() - 1);
      return base.substr(0, cut);
    }
    case 1:  // wrong value types
      return R"({"algorithm": 3})";
    case 2:  // string where a number belongs / bad enum name
      return rng.next_below(2) == 0 ? R"({"R": "two"})"
                                    : R"({"damping": "overdamped"})";
    case 3:  // huge and non-integral numbers
      switch (rng.next_below(3)) {
        case 0: return R"({"R": 99999999999999999999999999})";
        case 1: return R"({"threads": 1e999})";
        default: return R"({"samples": 2.5})";
      }
    case 4: {  // raw control characters inside a token
      std::string line = base;
      line[1 + rng.next_below(line.size() - 2)] =
          static_cast<char>(rng.next_below(32));
      return line;
    }
    case 5:  // unknown keys fail loudly
      return rng.next_below(2) == 0 ? R"({"algorithmm": "safe"})"
                                    : R"({"op": "stats", "frobnicate": 1})";
    case 6:  // nesting beyond the one level updates allow
      switch (rng.next_below(3)) {
        case 0: return R"({"op": "update", "set_usage": {"i": 1}})";
        case 1: return R"({"set_usage": [[1, 2]]})";
        default: return R"({"a": {"b": {"c": 1}}})";
      }
    case 7:  // non-object toplevels
      switch (rng.next_below(4)) {
        case 0: return "[1, 2]";
        case 1: return "42";
        case 2: return "\"averaging\"";
        default: return "null";
      }
    case 8: {  // random byte flip in a valid line
      std::string line = base;
      line[rng.next_below(line.size())] =
          static_cast<char>(1 + rng.next_below(255));
      return line;
    }
    case 9:  // solve keys on an update line and vice versa
      return rng.next_below(2) == 0
                 ? R"({"op": "update", "algorithm": "safe"})"
                 : R"({"algorithm": "safe", "set_usage": [{"i": 1, "v": 2, "a": 3}]})";
    case 10:  // unterminated structures
      switch (rng.next_below(3)) {
        case 0: return R"({"algorithm": "safe")";
        case 1: return R"({"op": "update", "remove_agents": [1, 2)";
        default: return R"({"id": "unterminated)";
      }
    case 11:  // bad deadlines and fault plans
      switch (rng.next_below(6)) {
        case 0: return R"({"algorithm": "safe", "deadline_ms": -1})";
        case 1:
          return R"({"deadline_ms": 99999999999999999999999999})";
        case 2: return R"({"deadline_ms": 2.5})";
        case 3: return R"({"algorithm": "selfstab-safe", "fault_plan": "nope"})";
        case 4:
          return R"({"fault_plan": "s7;0:drop:3"})";  // message fault, no peer
        default:
          return R"({"fault_plan": "s7;0:flood:1:2"})";  // unknown kind
      }
    default:  // pure garbage bytes
      return random_garbage(rng, 1 + rng.next_below(120));
  }
}

TEST(WireFuzz, ParserOnlyEverThrowsCheckError) {
  std::uint64_t parsed = 0;
  std::uint64_t rejected = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    for (std::uint64_t round = 0; round < 600; ++round) {
      const std::string line = mutate(rng, round);
      try {
        (void)engine::parse_command_line(line);
        ++parsed;  // some mutations stay valid — that is fine
      } catch (const CheckError&) {
        ++rejected;  // the only exception type the wire layer may emit
      }
      // Anything else (std::out_of_range, std::bad_alloc from a bogus
      // length, a segfault) escapes and fails the test run.
    }
  }
  // The generator must actually exercise both sides of the property.
  EXPECT_GT(rejected, 1000u);
  EXPECT_GT(parsed, 0u);
}

TEST(WireFuzz, ValidSeedsStillParse) {
  for (const std::string& line : seed_lines()) {
    EXPECT_NO_THROW((void)engine::parse_command_line(line)) << line;
  }
}

TEST(WireFuzz, DeadlineAndFaultPlanKeysParse) {
  const engine::WireCommand deadline = engine::parse_command_line(
      R"({"algorithm": "averaging", "deadline_ms": 250})");
  EXPECT_EQ(deadline.request.deadline_ms, 250);
  // Absent keys keep the unlimited / fault-free defaults.
  EXPECT_EQ(engine::parse_command_line(R"({"algorithm": "safe"})")
                .request.deadline_ms,
            0);
  const engine::WireCommand faulty = engine::parse_command_line(
      R"({"algorithm": "selfstab-safe", "fault_plan": "s7;0:drop:3:5"})");
  EXPECT_EQ(faulty.request.fault_plan, "s7;0:drop:3:5");
}

TEST(WireFuzz, BadDeadlinesAndPlansAreValidateNotParse) {
  // Well-formed JSON whose content is rejected stays a plain
  // CheckError (wire code "validate"), never a WireParseError.
  const std::vector<std::string> semantic = {
      R"({"algorithm": "safe", "deadline_ms": -1})",
      R"({"deadline_ms": 99999999999999999999999999})",
      R"({"deadline_ms": 2.5})",
      R"({"fault_plan": "nope"})",
      R"({"fault_plan": "s7;0:drop:3"})",
      R"({"fault_plan": "s7;0:flood:1:2"})",
  };
  for (const std::string& line : semantic) {
    try {
      (void)engine::parse_command_line(line);
      FAIL() << "expected CheckError: " << line;
    } catch (const engine::WireParseError&) {
      FAIL() << "semantic rejection misclassified as parse error: " << line;
    } catch (const CheckError&) {
      // expected: wire code "validate"
    }
  }
}

TEST(WireFuzz, MalformedJsonIsAWireParseError) {
  const std::vector<std::string> malformed = {
      R"({"algorithm": "safe")",  // unterminated object
      "[1, 2]",                   // non-object toplevel
      "{bad json",                // raw garbage
  };
  for (const std::string& line : malformed) {
    EXPECT_THROW((void)engine::parse_command_line(line),
                 engine::WireParseError)
        << line;
  }
}

// ---------------------------------------------------------------------------
// End to end: a poisoned batch never kills mmlp_batch
// ---------------------------------------------------------------------------

int run_batch(const std::string& binary, const std::string& extra_flags,
              const std::string& requests_path, const std::string& out_path) {
  const std::string command = binary +
                              " --generate grid_torus --agents 64 --requests " +
                              requests_path + " --out " + out_path + " " +
                              extra_flags + " 2> /dev/null";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(WireFuzz, BatchSurvivesPoisonedRequestStream) {
  const char* binary = std::getenv("MMLP_BATCH_BIN");
  if (binary == nullptr || *binary == '\0') {
    GTEST_SKIP() << "MMLP_BATCH_BIN not set (tools not built)";
  }

  const std::string requests_path = "wire_fuzz_requests.jsonl";
  const std::string out_path = "wire_fuzz_results.jsonl";
  {
    std::ofstream requests(requests_path);
    ASSERT_TRUE(requests.good());
    requests << R"({"algorithm": "safe", "id": 1})" << "\n";
    Rng rng(42);
    for (std::uint64_t round = 0; round < 50; ++round) {
      std::string line = mutate(rng, round);
      for (char& c : line) {
        if (c == '\n') {
          c = ' ';  // keep one command per line
        }
      }
      requests << line << "\n";
    }
    requests << "# a comment, then a final valid request\n";
    requests << R"({"algorithm": "averaging", "R": 1, "id": 2})" << "\n";
  }

  // Default mode: errors are per-line results, the process exits 0.
  ASSERT_EQ(run_batch(binary, "", requests_path, out_path), 0);
  std::ifstream results(out_path);
  ASSERT_TRUE(results.good());
  std::uint64_t error_lines = 0;
  std::uint64_t ok_lines = 0;
  std::string line;
  std::string last_line;
  while (std::getline(results, line)) {
    if (line.rfind("{\"error\":", 0) == 0) {
      ++error_lines;
      // Every error line carries a stable dispatch code.
      EXPECT_NE(line.find("\"code\": \""), std::string::npos) << line;
    } else {
      ++ok_lines;
    }
    last_line = line;
  }
  EXPECT_GT(error_lines, 10u);  // the poison was actually served
  EXPECT_GE(ok_lines, 2u);      // both valid requests got answers
  // The final valid request survived everything before it.
  EXPECT_NE(last_line.find("\"id\": 2"), std::string::npos) << last_line;

  // --fail-fast flips the contract: first poison line is fatal.
  EXPECT_NE(run_batch(binary, "--fail-fast", requests_path, out_path), 0);

  std::remove(requests_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace mmlp

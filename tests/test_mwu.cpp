#include "mmlp/lp/mwu.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Mwu, SolutionAlwaysFeasible) {
  const auto instance = make_random_instance({.num_agents = 60, .seed = 3});
  const auto result = solve_maxmin_mwu(instance, {.epsilon = 0.1});
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  EXPECT_NEAR(objective_omega(instance, result.x), result.omega, 1e-9);
}

TEST(Mwu, TwoAgentInstanceNearOptimal) {
  const auto instance = testing::two_agent_instance();
  const auto result = solve_maxmin_mwu(instance, {.epsilon = 0.05});
  EXPECT_GE(result.omega, 0.5 / (1.0 + 3 * 0.05));
  EXPECT_LE(result.omega, 0.5 + 1e-9);
}

class MwuVsSimplex : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwuVsSimplex, WithinEpsilonOfExactOptimum) {
  const auto instance = make_random_instance({
      .num_agents = 50,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = GetParam(),
  });
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const double epsilon = 0.05;
  const auto approx = solve_maxmin_mwu(instance, {.epsilon = epsilon});
  // Lower bound always valid; target is (1 − O(ε)) ω*.
  EXPECT_LE(approx.omega, exact.omega + 1e-7);
  EXPECT_GE(approx.omega, exact.omega * (1.0 - 4 * epsilon))
      << "seed " << GetParam() << ": mwu " << approx.omega << " vs exact "
      << exact.omega;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwuVsSimplex,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u));

TEST(Mwu, GridInstanceNearOptimal) {
  const auto instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const auto approx = solve_maxmin_mwu(instance, {.epsilon = 0.05});
  EXPECT_GE(approx.omega, exact.omega * (1.0 - 0.2));
  EXPECT_LE(approx.omega, exact.omega + 1e-7);
}

TEST(Mwu, ReportsConvergenceAndWork) {
  const auto instance = testing::two_agent_instance();
  const auto result = solve_maxmin_mwu(instance, {.epsilon = 0.1});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.bisection_steps, 0);
  EXPECT_GT(result.total_phases, 0);
}

TEST(Mwu, WarmStartMatchesColdWithinTolerance) {
  const auto instance = make_random_instance({.num_agents = 40, .seed = 5});
  const auto warm = solve_maxmin_mwu(instance, {.epsilon = 0.1, .warm_start = true});
  const auto cold = solve_maxmin_mwu(instance, {.epsilon = 0.1, .warm_start = false});
  EXPECT_NEAR(warm.omega, cold.omega, 0.3 * std::max(warm.omega, cold.omega));
}

TEST(Mwu, RequiresParties) {
  Instance::Builder builder;
  const AgentId v = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v, 1.0);
  const auto instance = std::move(builder).build();
  EXPECT_THROW(solve_maxmin_mwu(instance), CheckError);
}

TEST(Mwu, RejectsBadEpsilon) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(solve_maxmin_mwu(instance, {.epsilon = 0.0}), CheckError);
  EXPECT_THROW(solve_maxmin_mwu(instance, {.epsilon = 1.0}), CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/safe.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Safe, TwoAgentValues) {
  // |V_i| = 2, a = 1 ⇒ x_v = 1/2 for both agents.
  const auto instance = testing::two_agent_instance();
  const auto x = safe_solution(instance);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 0.5, 1e-12);
  // Here the safe solution happens to be optimal.
  EXPECT_NEAR(objective_omega(instance, x), 0.5, 1e-12);
}

TEST(Safe, MinimumOverResources) {
  // Middle agent of single_party_instance: resources with a=2,|V_i|=2 and
  // a=1,|V_i|=2 ⇒ x = min(1/4, 1/2) = 1/4.
  const auto instance = testing::single_party_instance();
  const auto x = safe_solution(instance);
  EXPECT_NEAR(x[0], 0.5, 1e-12);   // a=1, |V_i|=2
  EXPECT_NEAR(x[1], 0.25, 1e-12);  // min over both resources
  EXPECT_NEAR(x[2], 0.5, 1e-12);
}

TEST(Safe, ChoiceHelperMatches) {
  const std::vector<Coef> resources{{0, 2.0}, {1, 1.0}};
  const std::vector<std::size_t> sizes{2, 2};
  EXPECT_NEAR(safe_choice(resources, sizes), 0.25, 1e-12);
}

TEST(Safe, ChoiceHelperValidatesInput) {
  EXPECT_THROW(safe_choice({}, {}), CheckError);
  const std::vector<Coef> one_resource{{0, 1.0}};
  const std::vector<std::size_t> two_sizes{1, 2};
  EXPECT_THROW(safe_choice(one_resource, two_sizes), CheckError);
}

class SafeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafeProperty, AlwaysFeasible) {
  const auto instance = make_random_instance({
      .num_agents = 80,
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = GetParam(),
  });
  const auto x = safe_solution(instance);
  EXPECT_TRUE(evaluate(instance, x).feasible());
}

TEST_P(SafeProperty, RatioWithinDeltaVI) {
  // Section 4: ω* <= Δ_I^V · ω_safe.
  const auto instance = make_random_instance({
      .num_agents = 40,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 4,
      .seed = GetParam() ^ 0xabcdef,
  });
  const auto x = safe_solution(instance);
  const double safe_omega = objective_omega(instance, x);
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const double delta = static_cast<double>(instance.degree_bounds().delta_V_of_I);
  EXPECT_LE(exact.omega, delta * safe_omega + 1e-7)
      << "Δ_I^V = " << delta << ", safe ω = " << safe_omega;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Safe, FeasibleOnGrids) {
  for (const bool torus : {true, false}) {
    const auto instance = make_grid_instance(
        {.dims = {5, 5}, .torus = torus, .randomize = true, .seed = 11});
    const auto x = safe_solution(instance);
    EXPECT_TRUE(evaluate(instance, x).feasible());
  }
}

TEST(Safe, ExactlySaturatesUniformResources) {
  // On a torus grid with a = 1 everywhere, every resource has the same
  // support size s, all agents pick 1/s, and every load is exactly 1.
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  const auto x = safe_solution(instance);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    EXPECT_NEAR(resource_load(instance, x, i), 1.0, 1e-12);
  }
}

TEST(Safe, TightOnWorstCaseStar) {
  // One central resource shared by Δ agents, each its own party: safe
  // gives each 1/Δ; the optimum is also 1/Δ (fair split), but when only
  // one party exists the gap appears: ω* = 1 vs safe ω = 1/Δ... Exercise
  // the single-party gap explicitly.
  constexpr std::int32_t kDelta = 5;
  Instance::Builder builder;
  const ResourceId i = builder.add_resource();
  const PartyId k = builder.add_party();
  for (std::int32_t v = 0; v < kDelta; ++v) {
    const AgentId agent = builder.add_agent();
    builder.set_usage(i, agent, 1.0);
    if (v == 0) {
      builder.set_benefit(k, agent, 1.0);
    }
  }
  const auto instance = std::move(builder).build();
  const auto x = safe_solution(instance);
  const double safe_omega = objective_omega(instance, x);
  EXPECT_NEAR(safe_omega, 1.0 / kDelta, 1e-12);
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  EXPECT_NEAR(exact.omega, 1.0, 1e-9);  // the ratio Δ_I^V is attained
}

}  // namespace
}  // namespace mmlp

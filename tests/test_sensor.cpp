#include "mmlp/gen/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmlp/core/solution.hpp"
#include "mmlp/core/safe.hpp"

namespace mmlp {
namespace {

SensorNetworkOptions default_options(std::uint64_t seed) {
  SensorNetworkOptions options;
  options.num_sensors = 60;
  options.num_relays = 15;
  options.num_areas = 9;
  options.radio_range = 0.3;
  options.sensing_range = 0.4;
  options.seed = seed;
  return options;
}

TEST(Sensor, InstancePassesValidation) {
  const auto net = make_sensor_network(default_options(1));
  net.instance.validate();
  EXPECT_GT(net.instance.num_agents(), 0);
  EXPECT_GT(net.instance.num_parties(), 0);
}

TEST(Sensor, AgentsAreLinks) {
  const auto net = make_sensor_network(default_options(2));
  EXPECT_EQ(static_cast<std::size_t>(net.instance.num_agents()),
            net.links.size());
}

TEST(Sensor, EveryLinkConsumesSensorAndRelay) {
  const auto net = make_sensor_network(default_options(3));
  for (AgentId v = 0; v < net.instance.num_agents(); ++v) {
    const auto& resources = net.instance.agent_resources(v);
    ASSERT_EQ(resources.size(), 2u) << "link " << v;
    const auto [s, t] = net.links[static_cast<std::size_t>(v)];
    const ResourceId sensor_res = net.sensor_resource[static_cast<std::size_t>(s)];
    const ResourceId relay_res = net.relay_resource[static_cast<std::size_t>(t)];
    EXPECT_TRUE(resources[0].id == sensor_res || resources[1].id == sensor_res);
    EXPECT_TRUE(resources[0].id == relay_res || resources[1].id == relay_res);
  }
}

TEST(Sensor, LinkLengthRespectsRadioRange) {
  const auto options = default_options(4);
  const auto net = make_sensor_network(options);
  for (const auto& [s, t] : net.links) {
    const auto& sp = net.sensor_pos[static_cast<std::size_t>(s)];
    const auto& tp = net.relay_pos[static_cast<std::size_t>(t)];
    const double dist = std::hypot(sp.first - tp.first, sp.second - tp.second);
    EXPECT_LE(dist, options.radio_range + 1e-12);
  }
}

TEST(Sensor, MaxLinksPerSensorHonored) {
  const auto options = default_options(5);
  const auto net = make_sensor_network(options);
  std::vector<int> link_count(static_cast<std::size_t>(options.num_sensors), 0);
  for (const auto& [s, t] : net.links) {
    ++link_count[static_cast<std::size_t>(s)];
  }
  for (const int count : link_count) {
    EXPECT_LE(count, options.max_links_per_sensor);
  }
}

TEST(Sensor, SensorEnergyGrowsWithDistance) {
  const auto options = default_options(6);
  const auto net = make_sensor_network(options);
  for (AgentId v = 0; v < net.instance.num_agents(); ++v) {
    const auto [s, t] = net.links[static_cast<std::size_t>(v)];
    const ResourceId res = net.sensor_resource[static_cast<std::size_t>(s)];
    const auto& sp = net.sensor_pos[static_cast<std::size_t>(s)];
    const auto& tp = net.relay_pos[static_cast<std::size_t>(t)];
    const double d2 = std::pow(sp.first - tp.first, 2) +
                      std::pow(sp.second - tp.second, 2);
    EXPECT_NEAR(net.instance.usage(res, v),
                options.transmit_cost + options.distance_cost * d2, 1e-12);
    const ResourceId relay_res = net.relay_resource[static_cast<std::size_t>(t)];
    EXPECT_NEAR(net.instance.usage(relay_res, v), options.relay_cost, 1e-12);
  }
}

TEST(Sensor, PartiesAreCoveredAreas) {
  const auto net = make_sensor_network(default_options(7));
  for (PartyId k = 0; k < net.instance.num_parties(); ++k) {
    for (const Coef& entry : net.instance.party_support(k)) {
      EXPECT_DOUBLE_EQ(entry.value, 1.0);  // c_kv = 1 per the paper
    }
  }
  // area_party markers map back onto real parties.
  int covered = 0;
  for (const PartyId party : net.area_party) {
    if (party >= 0) {
      ++covered;
      EXPECT_LT(party, net.instance.num_parties());
    }
  }
  EXPECT_EQ(covered, net.instance.num_parties());
}

TEST(Sensor, DeterministicBySeed) {
  const auto a = make_sensor_network(default_options(8));
  const auto b = make_sensor_network(default_options(8));
  EXPECT_TRUE(a.instance == b.instance);
  EXPECT_EQ(a.links, b.links);
}

TEST(Sensor, DifferentSeedsDiffer) {
  const auto a = make_sensor_network(default_options(9));
  const auto b = make_sensor_network(default_options(10));
  EXPECT_FALSE(a.instance == b.instance);
}

TEST(Sensor, SafeSolutionFeasibleOnNetwork) {
  const auto net = make_sensor_network(default_options(11));
  const auto x = safe_solution(net.instance);
  EXPECT_TRUE(evaluate(net.instance, x).feasible());
}

TEST(Sensor, SparseGeometryStillValid) {
  auto options = default_options(12);
  options.num_sensors = 20;
  options.num_relays = 6;
  options.radio_range = 0.35;
  const auto net = make_sensor_network(options);
  net.instance.validate();
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/sublinear.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(LocalOutput, SafePerAgentMatchesFullRun) {
  const auto instance = make_random_instance({.num_agents = 50, .seed = 3});
  const auto full = safe_solution(instance);
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    EXPECT_DOUBLE_EQ(local_output_safe(instance, v),
                     full[static_cast<std::size_t>(v)]);
  }
}

TEST(LocalOutput, AveragingPerAgentMatchesFullRun) {
  const auto instance = make_grid_instance(
      {.dims = {5, 5}, .torus = true, .randomize = true, .seed = 7});
  const auto h = instance.communication_graph();
  const auto full = local_averaging(instance, {.R = 1});
  LocalAveragingOptions options;
  options.R = 1;
  for (const AgentId v : {0, 6, 12, 24}) {
    EXPECT_DOUBLE_EQ(local_output_averaging(instance, h, v, options),
                     full.x[static_cast<std::size_t>(v)])
        << "agent " << v;
  }
}

double exact_mean_benefit(const Instance& instance,
                          const std::vector<double>& x) {
  double total = 0.0;
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    total += party_benefit(instance, x, k);
  }
  return total / static_cast<double>(instance.num_parties());
}

TEST(Sublinear, EstimateWithinConfidenceInterval) {
  const auto instance = make_random_instance({.num_agents = 300, .seed = 9});
  const auto exact = exact_mean_benefit(instance, safe_solution(instance));
  const auto estimate = estimate_mean_party_benefit(
      instance, {.algorithm = LocalAlgorithmKind::kSafe, .samples = 200,
                 .seed = 5});
  EXPECT_NEAR(estimate.mean_benefit, exact, estimate.half_width)
      << "exact " << exact << " est " << estimate.mean_benefit << " ± "
      << estimate.half_width;
  EXPECT_GT(estimate.half_width, 0.0);
  EXPECT_GT(estimate.value_bound, 0.0);
}

TEST(Sublinear, AveragingEstimateWithinInterval) {
  const auto instance = make_grid_instance(
      {.dims = {8, 8}, .torus = true, .randomize = true, .seed = 3});
  const auto full = local_averaging(instance, {.R = 1});
  const auto exact = exact_mean_benefit(instance, full.x);
  const auto estimate = estimate_mean_party_benefit(
      instance, {.algorithm = LocalAlgorithmKind::kAveraging, .samples = 64,
                 .R = 1, .seed = 2});
  EXPECT_NEAR(estimate.mean_benefit, exact, estimate.half_width);
}

TEST(Sublinear, WorkScalesWithSamplesNotWithN) {
  // The defining property: doubling n (at fixed samples) must not double
  // the number of per-agent evaluations.
  SublinearOptions options;
  options.samples = 32;
  options.seed = 4;
  const auto small = make_random_instance({.num_agents = 200, .seed = 6});
  const auto large = make_random_instance({.num_agents = 2000, .seed = 6});
  const auto est_small = estimate_mean_party_benefit(small, options);
  const auto est_large = estimate_mean_party_benefit(large, options);
  // Each sampled party touches at most max_support agents.
  EXPECT_LE(est_small.agents_evaluated, 32 * 3);
  EXPECT_LE(est_large.agents_evaluated, 32 * 3);
}

TEST(Sublinear, HalfWidthShrinksWithSamples) {
  const auto instance = make_random_instance({.num_agents = 100, .seed = 8});
  const auto few = estimate_mean_party_benefit(instance, {.samples = 16});
  const auto many = estimate_mean_party_benefit(instance, {.samples = 256});
  EXPECT_LT(many.half_width, few.half_width);
  // Hoeffding: quadrupling samples halves the width.
  EXPECT_NEAR(many.half_width, few.half_width / 4.0, 1e-9);
}

TEST(Sublinear, DeterministicBySeed) {
  const auto instance = make_random_instance({.num_agents = 100, .seed = 8});
  const auto a = estimate_mean_party_benefit(instance, {.samples = 50, .seed = 3});
  const auto b = estimate_mean_party_benefit(instance, {.samples = 50, .seed = 3});
  EXPECT_DOUBLE_EQ(a.mean_benefit, b.mean_benefit);
}

TEST(Sublinear, RejectsBadOptions) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(estimate_mean_party_benefit(instance, {.samples = 0}),
               CheckError);
  EXPECT_THROW(
      estimate_mean_party_benefit(instance, {.samples = 10, .confidence = 1.0}),
      CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/graph/bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mmlp {
namespace {

/// Path 0-1-2-3-4 as pairwise hyperedges.
Hypergraph path5() {
  return Hypergraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

/// One big hyperedge makes everything pairwise adjacent.
Hypergraph clique_edge() { return Hypergraph::from_edges(4, {{0, 1, 2, 3}}); }

TEST(Bfs, DistancesOnPath) {
  const auto h = path5();
  const auto dist = bfs_distances(h, 0);
  EXPECT_EQ(dist, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(Bfs, DistancesFromMiddle) {
  const auto h = path5();
  const auto dist = bfs_distances(h, 2);
  EXPECT_EQ(dist, (std::vector<std::int32_t>{2, 1, 0, 1, 2}));
}

TEST(Bfs, RadiusCapLeavesFarNodesUnreached) {
  const auto h = path5();
  const auto dist = bfs_distances(h, 0, 2);
  EXPECT_EQ(dist, (std::vector<std::int32_t>{0, 1, 2, -1, -1}));
}

TEST(Bfs, HyperedgeMembersAreMutuallyAdjacent) {
  const auto h = clique_edge();
  const auto dist = bfs_distances(h, 0);
  EXPECT_EQ(dist, (std::vector<std::int32_t>{0, 1, 1, 1}));
}

TEST(Bfs, UnreachableNodesStayMinusOne) {
  const auto h = Hypergraph::from_edges(3, {{0, 1}});
  const auto dist = bfs_distances(h, 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(Ball, RadiusZeroIsSelf) {
  const auto h = path5();
  EXPECT_EQ(ball(h, 2, 0), (std::vector<NodeId>{2}));
}

TEST(Ball, GrowsAlongPath) {
  const auto h = path5();
  EXPECT_EQ(ball(h, 2, 1), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(ball(h, 2, 2), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ball(h, 0, 1), (std::vector<NodeId>{0, 1}));
}

TEST(Ball, SizeMatchesBall) {
  const auto h = path5();
  for (NodeId v = 0; v < 5; ++v) {
    for (std::int32_t r = 0; r <= 4; ++r) {
      EXPECT_EQ(ball_size(h, v, r), ball(h, v, r).size());
    }
  }
}

TEST(BallCollector, ReusableAcrossCalls) {
  const auto h = path5();
  BallCollector collector(h);
  EXPECT_EQ(collector.collect(0, 1), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(collector.collect(4, 1), (std::vector<NodeId>{3, 4}));
  // Second call must fully reset: node 0 no longer present.
  EXPECT_EQ(collector.last_distance(0), -1);
  EXPECT_EQ(collector.last_distance(3), 1);
  EXPECT_EQ(collector.last_distance(4), 0);
}

TEST(BallCollector, MatchesFreeFunction) {
  const auto h = clique_edge();
  BallCollector collector(h);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(collector.collect(v, 1), ball(h, v, 1));
  }
}

TEST(AllBalls, MatchesPerNodeBalls) {
  const auto h = path5();
  for (std::int32_t r = 0; r <= 3; ++r) {
    const auto balls = all_balls(h, r);
    ASSERT_EQ(balls.size(), 5u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_EQ(balls[static_cast<std::size_t>(v)], ball(h, v, r));
    }
  }
}

TEST(AllBalls, BallMembershipIsSymmetric) {
  const auto h = path5();
  const auto balls = all_balls(h, 2);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      const bool u_in_v = std::binary_search(
          balls[static_cast<std::size_t>(v)].begin(),
          balls[static_cast<std::size_t>(v)].end(), u);
      const bool v_in_u = std::binary_search(
          balls[static_cast<std::size_t>(u)].begin(),
          balls[static_cast<std::size_t>(u)].end(), v);
      EXPECT_EQ(u_in_v, v_in_u);
    }
  }
}

TEST(ExpandBalls, MatchesFromScratchBuildOnPath) {
  const auto h = path5();
  for (std::int32_t from = 0; from <= 3; ++from) {
    const auto from_balls = all_balls(h, from);
    for (std::int32_t to = from; to <= 4; ++to) {
      // Without the inner frontier: the whole cached ball is rescanned.
      EXPECT_EQ(expand_balls(h, from_balls, from, nullptr, to),
                all_balls(h, to))
          << "from " << from << " to " << to;
      // With the exact frontier from the next-smaller cached radius.
      if (from > 0) {
        const auto inner = all_balls(h, from - 1);
        EXPECT_EQ(expand_balls(h, from_balls, from, &inner, to),
                  all_balls(h, to))
            << "from " << from << " to " << to << " (frontier)";
      }
    }
  }
}

TEST(ExpandBalls, MatchesFromScratchBuildOnCliqueEdge) {
  const auto h = clique_edge();
  const auto r1 = all_balls(h, 1);
  const auto r0 = all_balls(h, 0);
  EXPECT_EQ(expand_balls(h, r1, 1, &r0, 3), all_balls(h, 3));
  EXPECT_EQ(expand_balls(h, r1, 1, nullptr, 2), all_balls(h, 2));
  // Degenerate expansion (to == from) returns the input unchanged.
  EXPECT_EQ(expand_balls(h, r1, 1, nullptr, 1), r1);
}

TEST(MultiSourceBall, MatchesUnionOfSingleSourceBalls) {
  const auto h = path5();
  const std::vector<NodeId> sources = {0, 3};
  for (std::int32_t r = 0; r <= 4; ++r) {
    std::vector<NodeId> expected;
    for (const NodeId s : sources) {
      const auto b = ball(h, s, r);
      expected.insert(expected.end(), b.begin(), b.end());
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(multi_source_ball(h, sources, r), expected) << "r=" << r;
  }
}

TEST(MultiSourceBall, RadiusZeroIsTheDedupedSourceSet) {
  const auto h = path5();
  const std::vector<NodeId> sources = {4, 1, 1};
  EXPECT_EQ(multi_source_ball(h, sources, 0), (std::vector<NodeId>{1, 4}));
  EXPECT_TRUE(multi_source_ball(h, {}, 2).empty());
}

TEST(RepairBalls, DirtyRegionRepairMatchesFromScratch) {
  // Path 0-1-2-3-4 gains a chord hyperedge {0, 4}: both endpoints of the
  // new adjacency form the touched set, and the radius-r dirty region
  // around it is exactly what repair must recompute.
  const auto h_old = path5();
  const Hypergraph h_new =
      Hypergraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  const std::vector<NodeId> touched = {0, 4};
  for (std::int32_t r = 0; r <= 4; ++r) {
    auto balls = all_balls(h_old, r);
    const auto dirty = multi_source_ball(h_new, touched, r);
    repair_balls(h_new, r, dirty, balls);
    EXPECT_EQ(balls, all_balls(h_new, r)) << "r=" << r;
  }
}

TEST(RepairBalls, EdgeRemovalIsCoveredByTheTouchedClosure) {
  // Reverse direction: the chord disappears. A single BFS on the *new*
  // graph from the removed edge's members still covers every node whose
  // ball shrank, because both endpoints of every removed adjacency are
  // sources.
  const Hypergraph h_old =
      Hypergraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  const auto h_new = path5();
  const std::vector<NodeId> touched = {0, 4};
  for (std::int32_t r = 0; r <= 4; ++r) {
    auto balls = all_balls(h_old, r);
    const auto dirty = multi_source_ball(h_new, touched, r);
    repair_balls(h_new, r, dirty, balls);
    EXPECT_EQ(balls, all_balls(h_new, r)) << "r=" << r;
  }
}

TEST(RepairBalls, GrowsTheCacheForAddedNodes) {
  const auto h_old = path5();
  // Node 5 joins via a new hyperedge {4, 5}.
  const Hypergraph h_new =
      Hypergraph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const std::vector<NodeId> touched = {4, 5};
  for (std::int32_t r = 0; r <= 3; ++r) {
    auto balls = all_balls(h_old, r);
    const auto dirty = multi_source_ball(h_new, touched, r);
    repair_balls(h_new, r, dirty, balls);
    EXPECT_EQ(balls, all_balls(h_new, r)) << "r=" << r;
  }
}

TEST(Distance, PairwiseDistances) {
  const auto h = path5();
  EXPECT_EQ(hypergraph_distance(h, 0, 4), 4);
  EXPECT_EQ(hypergraph_distance(h, 1, 1), 0);
  const auto split = Hypergraph::from_edges(3, {{0, 1}});
  EXPECT_EQ(hypergraph_distance(split, 0, 2), -1);
}

TEST(Eccentricity, PathEnds) {
  const auto h = path5();
  EXPECT_EQ(eccentricity(h, 0), 4);
  EXPECT_EQ(eccentricity(h, 2), 2);
}

}  // namespace
}  // namespace mmlp

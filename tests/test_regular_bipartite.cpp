#include "mmlp/graph/regular_bipartite.hpp"

#include <gtest/gtest.h>

namespace mmlp {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(7));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(31));
  EXPECT_FALSE(is_prime(33));
}

TEST(ProjectivePlane, Fano) {
  // PG(2, 2): the Fano plane, 7 points/lines, 3-regular, girth 6.
  const auto g = projective_plane_incidence(2);
  EXPECT_EQ(g.num_vertices(), 14);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(g.bipartition().has_value());
  EXPECT_EQ(g.girth().value(), 6);
}

TEST(ProjectivePlane, OrderThree) {
  const auto g = projective_plane_incidence(3);
  EXPECT_EQ(g.num_vertices(), 26);  // 13 per side
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_EQ(g.girth().value(), 6);
}

TEST(ProjectivePlane, OrderSevenStructure) {
  const auto g = projective_plane_incidence(7);
  EXPECT_EQ(g.num_vertices(), 2 * 57);
  EXPECT_TRUE(check_regular_bipartite(g, 57, 8, 6));
}

TEST(RandomRegularBipartite, DegreeTwoLongGirth) {
  Rng rng(7);
  RegularBipartiteConfig config;
  config.nodes_per_side = 64;
  config.degree = 2;
  config.min_girth = 6;
  const auto result = random_regular_bipartite(config, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(check_regular_bipartite(result->graph, 64, 2, 6));
}

TEST(RandomRegularBipartite, DegreeThreeGirthSix) {
  Rng rng(11);
  RegularBipartiteConfig config;
  config.nodes_per_side = 128;
  config.degree = 3;
  config.min_girth = 6;
  const auto result = random_regular_bipartite(config, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(check_regular_bipartite(result->graph, 128, 3, 6));
}

TEST(RandomRegularBipartite, GirthFourIsEasy) {
  Rng rng(13);
  RegularBipartiteConfig config;
  config.nodes_per_side = 16;
  config.degree = 4;
  config.min_girth = 4;  // only parallel edges are forbidden
  const auto result = random_regular_bipartite(config, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(check_regular_bipartite(result->graph, 16, 4, 4));
}

TEST(RandomRegularBipartite, FullDegreeIsCompleteBipartite) {
  Rng rng(17);
  RegularBipartiteConfig config;
  config.nodes_per_side = 3;
  config.degree = 3;
  config.min_girth = 4;
  const auto result = random_regular_bipartite(config, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->graph.num_undirected_edges(), 9);
}

TEST(RandomRegularBipartite, RejectsBadConfig) {
  Rng rng(1);
  RegularBipartiteConfig config;
  config.nodes_per_side = 4;
  config.degree = 5;  // degree > n impossible
  EXPECT_THROW(random_regular_bipartite(config, rng), CheckError);
  config.degree = 2;
  config.min_girth = 5;  // odd girth impossible in bipartite graphs
  EXPECT_THROW(random_regular_bipartite(config, rng), CheckError);
}

TEST(HighGirthBipartite, UsesProjectivePlaneForPrimeMinusOne) {
  Rng rng(3);
  const auto result = high_girth_bipartite(8, 6, 0, rng);
  ASSERT_TRUE(result.has_value());
  // PG(2,7): 57 per side, deterministic (0 attempts recorded).
  EXPECT_EQ(result->graph.num_vertices(), 114);
  EXPECT_TRUE(check_regular_bipartite(result->graph, 57, 8, 6));
}

TEST(HighGirthBipartite, FallsBackToSamplerOtherwise) {
  Rng rng(5);
  const auto result = high_girth_bipartite(2, 6, 48, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(check_regular_bipartite(result->graph, 48, 2, 6));
}

TEST(CheckRegularBipartite, DetectsViolations) {
  SimpleGraph bad(4);  // 2 per side, but a left-left edge
  bad.add_edge(0, 1);
  EXPECT_FALSE(check_regular_bipartite(bad, 2, 1, 4));
  SimpleGraph irregular(4);
  irregular.add_edge(0, 2);
  irregular.add_edge(0, 3);
  irregular.add_edge(1, 2);
  EXPECT_FALSE(check_regular_bipartite(irregular, 2, 2, 4));
}

}  // namespace
}  // namespace mmlp

#include "mmlp/gen/isp.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/core/solution.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"

namespace mmlp {
namespace {

TEST(Isp, CountsMatchOptions) {
  IspOptions options;
  options.num_customers = 4;
  options.links_per_customer = 2;
  options.num_routers = 3;
  options.routers_per_link = 2;
  options.seed = 1;
  const auto net = make_isp_network(options);
  EXPECT_EQ(net.num_links, 8);
  EXPECT_EQ(net.instance.num_parties(), 4);
  // 8 link resources plus one per *used* router (≤ 3).
  EXPECT_GE(net.instance.num_resources(), 8 + 1);
  EXPECT_LE(net.instance.num_resources(), 8 + 3);
  EXPECT_EQ(net.instance.num_agents(), 8 * 2);  // one agent per (link, router)
  EXPECT_EQ(net.paths.size(), 16u);
}

TEST(Isp, PathsConsumeTheirLinkAndRouter) {
  const auto net = make_isp_network({.num_customers = 3, .seed = 2});
  for (AgentId v = 0; v < net.instance.num_agents(); ++v) {
    const auto [l, t] = net.paths[static_cast<std::size_t>(v)];
    EXPECT_NEAR(net.instance.usage(l, v),
                1.0 / net.link_capacity[static_cast<std::size_t>(l)], 1e-12);
    const ResourceId router_res =
        net.router_resource[static_cast<std::size_t>(t)];
    ASSERT_GE(router_res, 0);
    EXPECT_NEAR(net.instance.usage(router_res, v),
                1.0 / net.router_capacity[static_cast<std::size_t>(t)], 1e-12);
    EXPECT_EQ(net.instance.agent_resources(v).size(), 2u);
  }
}

TEST(Isp, CustomerBenefitsFromItsOwnPathsOnly) {
  IspOptions options;
  options.num_customers = 5;
  options.links_per_customer = 2;
  options.seed = 3;
  const auto net = make_isp_network(options);
  for (AgentId v = 0; v < net.instance.num_agents(); ++v) {
    const auto& parties = net.instance.agent_parties(v);
    ASSERT_EQ(parties.size(), 1u);
    const std::int32_t link = net.paths[static_cast<std::size_t>(v)].first;
    EXPECT_EQ(parties[0].id, link / options.links_per_customer);
  }
}

TEST(Isp, RoutersPerLinkDistinct) {
  const auto net = make_isp_network(
      {.num_customers = 4, .links_per_customer = 1, .num_routers = 5,
       .routers_per_link = 3, .seed = 4});
  for (std::int32_t l = 0; l < net.num_links; ++l) {
    std::vector<std::int32_t> routers;
    for (std::size_t v = 0; v < net.paths.size(); ++v) {
      if (net.paths[v].first == l) {
        routers.push_back(net.paths[v].second);
      }
    }
    EXPECT_EQ(routers.size(), 3u);
    std::sort(routers.begin(), routers.end());
    EXPECT_EQ(std::adjacent_find(routers.begin(), routers.end()), routers.end());
  }
}

TEST(Isp, CapacitiesWithinSpread) {
  IspOptions options;
  options.capacity_spread = 0.2;
  options.seed = 5;
  const auto net = make_isp_network(options);
  for (const double capacity : net.link_capacity) {
    EXPECT_GE(capacity, options.link_capacity * 0.8 - 1e-12);
    EXPECT_LE(capacity, options.link_capacity * 1.2 + 1e-12);
  }
  for (const double capacity : net.router_capacity) {
    EXPECT_GE(capacity, options.router_capacity * 0.8 - 1e-12);
    EXPECT_LE(capacity, options.router_capacity * 1.2 + 1e-12);
  }
}

TEST(Isp, ZeroSpreadIsExact) {
  const auto net = make_isp_network({.capacity_spread = 0.0, .seed = 6});
  for (const double capacity : net.link_capacity) {
    EXPECT_DOUBLE_EQ(capacity, 1.0);
  }
}

TEST(Isp, DeterministicBySeed) {
  const IspOptions options{.num_customers = 6, .seed = 7};
  EXPECT_TRUE(make_isp_network(options).instance ==
              make_isp_network(options).instance);
}

TEST(Isp, FairShareIsSolvable) {
  const auto net = make_isp_network({.num_customers = 6, .seed = 8});
  const auto result = solve_maxmin_simplex(net.instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_GT(result.omega, 0.0);
  EXPECT_TRUE(evaluate(net.instance, result.x).feasible());
}

TEST(Isp, SymmetricUniformCaseHasKnownOptimum) {
  // 2 customers, 1 link each (capacity 1), 1 router shared by all links
  // with ample capacity: each customer is limited by its own link:
  // fair share = 1 per customer.
  IspOptions options;
  options.num_customers = 2;
  options.links_per_customer = 1;
  options.num_routers = 1;
  options.routers_per_link = 1;
  options.link_capacity = 1.0;
  options.router_capacity = 10.0;
  options.capacity_spread = 0.0;
  options.seed = 9;
  const auto net = make_isp_network(options);
  const auto result = solve_maxmin_simplex(net.instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.omega, 1.0, 1e-9);
}

TEST(Isp, RejectsBadOptions) {
  EXPECT_THROW(make_isp_network({.num_customers = 0}), CheckError);
  EXPECT_THROW(make_isp_network({.num_routers = 2, .routers_per_link = 3}),
               CheckError);
  EXPECT_THROW(make_isp_network({.capacity_spread = 1.0}), CheckError);
}

}  // namespace
}  // namespace mmlp

// The umbrella header must compile standalone and expose the whole API.
#include "mmlp/api.hpp"

#include <gtest/gtest.h>

namespace mmlp {
namespace {

TEST(Api, UmbrellaHeaderExposesEveryting) {
  // One end-to-end flow touching each subsystem through the umbrella.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v0, 1.0).set_usage(i, v1, 1.0);
  const PartyId k = builder.add_party();
  builder.set_benefit(k, v0, 1.0).set_benefit(k, v1, 1.0);
  const Instance instance = std::move(builder).build();

  const Hypergraph h = instance.communication_graph();
  EXPECT_EQ(ball(h, 0, 1).size(), 2u);
  EXPECT_GT(growth_gamma(h, 0), 1.0);

  const auto x = safe_solution(instance);
  EXPECT_TRUE(evaluate(instance, x).feasible());
  const auto exact = solve_optimal(instance);
  EXPECT_NEAR(exact.omega, 1.0, 1e-9);  // x0 + x1 = 1, c = 1 each
  EXPECT_EQ(distributed_safe(instance), x);

  Rng rng(1);
  EXPECT_LT(rng.uniform01(), 1.0);
  WallTimer timer;
  EXPECT_GE(timer.seconds(), 0.0);
}

TEST(Api, SolverStackAgreesThroughUmbrella) {
  const auto instance = make_random_instance({.num_agents = 30, .seed = 2});
  const auto simplex = solve_maxmin_simplex(instance);
  const auto mwu = solve_maxmin_mwu(instance, {.epsilon = 0.1});
  ASSERT_EQ(simplex.status, LpStatus::kOptimal);
  EXPECT_LE(mwu.omega, simplex.omega + 1e-7);
  EXPECT_GE(mwu.omega, 0.5 * simplex.omega);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/gen/geometric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

GeometricOptions default_options(std::uint64_t seed) {
  GeometricOptions options;
  options.num_agents = 120;
  options.dim = 2;
  options.radius = 0.15;
  options.max_support = 5;
  options.seed = seed;
  return options;
}

TEST(Geometric, ValidInstanceWithPositions) {
  const auto result = make_geometric_instance(default_options(1));
  result.instance.validate();
  EXPECT_EQ(result.instance.num_agents(), 120);
  EXPECT_EQ(result.points.size(), 120u);
  for (const auto& point : result.points) {
    EXPECT_EQ(point.size(), 2u);
    for (const double coord : point) {
      EXPECT_GE(coord, 0.0);
      EXPECT_LT(coord, 1.0);
    }
  }
}

TEST(Geometric, DegreeBoundsRespectMaxSupport) {
  const auto result = make_geometric_instance(default_options(2));
  const auto bounds = result.instance.degree_bounds();
  EXPECT_LE(bounds.delta_V_of_I, 5u);
  EXPECT_LE(bounds.delta_V_of_K, 5u);
}

TEST(Geometric, SupportMembersAreWithinRange) {
  const auto options = default_options(3);
  const auto result = make_geometric_instance(options);
  const double r2 = options.radius * options.radius;
  for (ResourceId i = 0; i < result.instance.num_resources(); ++i) {
    // Resource i is hosted by agent i; members must be in range of it.
    for (const Coef& entry : result.instance.resource_support(i)) {
      double d2 = 0.0;
      for (std::size_t axis = 0; axis < 2; ++axis) {
        const double diff =
            result.points[static_cast<std::size_t>(i)][axis] -
            result.points[static_cast<std::size_t>(entry.id)][axis];
        d2 += diff * diff;
      }
      EXPECT_LE(d2, r2 + 1e-12);
    }
  }
}

TEST(Geometric, IsolatedAgentsStillValid) {
  auto options = default_options(4);
  options.num_agents = 20;
  options.radius = 0.01;  // almost everyone isolated
  const auto result = make_geometric_instance(options);
  result.instance.validate();  // singleton supports are fine
}

TEST(Geometric, PartyStride) {
  auto options = default_options(5);
  options.party_stride = 4;
  const auto result = make_geometric_instance(options);
  EXPECT_EQ(result.instance.num_parties(), 30);
}

TEST(Geometric, OneAndThreeDimensions) {
  for (const std::int32_t dim : {1, 3}) {
    auto options = default_options(6);
    options.dim = dim;
    options.radius = dim == 1 ? 0.05 : 0.25;
    const auto result = make_geometric_instance(options);
    result.instance.validate();
    EXPECT_EQ(result.points.front().size(), static_cast<std::size_t>(dim));
  }
}

TEST(Geometric, DeterministicBySeed) {
  const auto a = make_geometric_instance(default_options(7));
  const auto b = make_geometric_instance(default_options(7));
  EXPECT_TRUE(a.instance == b.instance);
  EXPECT_EQ(a.points, b.points);
}

TEST(Geometric, GrowthDecaysOnDenseDeployments) {
  // The Section 5 motivation: physical deployments have polynomial
  // growth, so γ falls with r.
  auto options = default_options(8);
  options.num_agents = 400;
  options.radius = 0.08;
  const auto result = make_geometric_instance(options);
  const auto h = result.instance.communication_graph();
  const auto profile = growth_profile(h, 3);
  EXPECT_LT(profile[2], profile[0]);
}

TEST(Geometric, LocalAlgorithmsRunAndStayFeasible) {
  const auto result = make_geometric_instance(default_options(9));
  EXPECT_TRUE(
      evaluate(result.instance, safe_solution(result.instance)).feasible());
  const auto averaging = local_averaging(result.instance, {.R = 1});
  EXPECT_TRUE(evaluate(result.instance, averaging.x).feasible());
}

TEST(Geometric, RandomizedCoefficientsInRange) {
  auto options = default_options(10);
  options.randomize = true;
  const auto result = make_geometric_instance(options);
  for (ResourceId i = 0; i < result.instance.num_resources(); ++i) {
    for (const Coef& entry : result.instance.resource_support(i)) {
      EXPECT_GE(entry.value, 0.5);
      EXPECT_LE(entry.value, 1.5);
    }
  }
}

TEST(Geometric, RejectsBadOptions) {
  EXPECT_THROW(make_geometric_instance({.num_agents = 0}), CheckError);
  EXPECT_THROW(make_geometric_instance({.dim = 4}), CheckError);
  EXPECT_THROW(make_geometric_instance({.radius = 0.0}), CheckError);
  EXPECT_THROW(make_geometric_instance({.max_support = 0}), CheckError);
}

}  // namespace
}  // namespace mmlp

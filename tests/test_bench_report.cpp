// mmlp::bench report layer: case timing, counters, and the
// mmlp-bench-v1 JSON serialisation the CI smoke job validates.
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "mmlp/util/bench_report.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp::bench {
namespace {

TEST(BenchReport, RunCaseRecordsTimingAndNormalises) {
  Report report("unit", "smoke");
  int calls = 0;
  const CaseResult& entry =
      report.run_case("grid_torus", 1000, 3, [&] { ++calls; });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(entry.scenario, "grid_torus");
  EXPECT_EQ(entry.agents, 1000);
  EXPECT_EQ(entry.repetitions, 3);
  EXPECT_GE(entry.wall_ms, 0.0);
  EXPECT_NEAR(entry.ns_per_agent, entry.wall_ms * 1e6 / 1000.0, 1e-9);
}

TEST(BenchReport, RejectsInvalidCases) {
  Report report("unit", "smoke");
  EXPECT_THROW(report.run_case("x", 10, 0, [] {}), CheckError);
  EXPECT_THROW(report.run_case("x", 0, 1, [] {}), CheckError);
}

TEST(BenchReport, JsonCarriesSchemaNameScaleAndCounters) {
  Report report("safe", "smoke");
  CaseResult& entry = report.run_case("isp", 512, 1, [] {});
  entry.counters["messages_per_round"] = 2048;
  entry.counters["peak_support"] = 15;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"mmlp-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"safe\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\": \"smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"isp\""), std::string::npos);
  EXPECT_NE(json.find("\"agents\": 512"), std::string::npos);
  EXPECT_NE(json.find("\"messages_per_round\": 2048"), std::string::npos);
  EXPECT_NE(json.find("\"peak_support\": 15"), std::string::npos);
}

TEST(BenchReport, JsonEscapesStringsAndRejectsNonFiniteMetrics) {
  Report report("quo\"te", "smoke");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\": \"quo\\\"te\""), std::string::npos);

  Report bad("nan", "smoke");
  CaseResult& entry = bad.run_case("x", 1, 1, [] {});
  entry.counters["bad"] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.to_json(), CheckError);
}

TEST(BenchReport, WriteProducesAReadableFile) {
  Report report("roundtrip", "smoke");
  report.run_case("grid_torus", 64, 1, [] {});
  const std::string path = ::testing::TempDir() + "BENCH_roundtrip.json";
  report.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
  std::remove(path.c_str());
}

TEST(BenchReport, WriteToUnwritablePathThrows) {
  Report report("nowhere", "smoke");
  EXPECT_THROW(report.write("/nonexistent-dir/BENCH_x.json"), CheckError);
}

}  // namespace
}  // namespace mmlp::bench

// mmlp::bench report layer: case timing, counters, and the
// mmlp-bench-v1 JSON serialisation the CI smoke job validates.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mmlp/util/bench_report.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp::bench {
namespace {

TEST(BenchReport, RunCaseRecordsTimingAndNormalises) {
  Report report("unit", "smoke");
  int calls = 0;
  const CaseResult& entry =
      report.run_case("grid_torus", 1000, 3, [&] { ++calls; });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(entry.scenario, "grid_torus");
  EXPECT_EQ(entry.agents, 1000);
  EXPECT_EQ(entry.repetitions, 3);
  EXPECT_GE(entry.wall_ms, 0.0);
  EXPECT_NEAR(entry.ns_per_agent, entry.wall_ms * 1e6 / 1000.0, 1e-9);
}

TEST(BenchReport, RejectsInvalidCases) {
  Report report("unit", "smoke");
  EXPECT_THROW(report.run_case("x", 10, 0, [] {}), CheckError);
  EXPECT_THROW(report.run_case("x", 0, 1, [] {}), CheckError);
}

TEST(BenchReport, JsonCarriesSchemaNameScaleAndCounters) {
  Report report("safe", "smoke");
  CaseResult& entry = report.run_case("isp", 512, 1, [] {});
  entry.counters["messages_per_round"] = 2048;
  entry.counters["peak_support"] = 15;
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"mmlp-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"safe\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\": \"smoke\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"isp\""), std::string::npos);
  EXPECT_NE(json.find("\"agents\": 512"), std::string::npos);
  EXPECT_NE(json.find("\"messages_per_round\": 2048"), std::string::npos);
  EXPECT_NE(json.find("\"peak_support\": 15"), std::string::npos);
}

TEST(BenchReport, JsonRecordsThreadsOnlyWhenSet) {
  Report report("pooled", "smoke");
  report.run_case("grid_torus", 16, 1, [] {});
  EXPECT_EQ(report.to_json().find("\"threads\""), std::string::npos);

  report.set_threads(4);
  EXPECT_EQ(report.threads(), 4);
  EXPECT_NE(report.to_json().find("\"threads\": 4"), std::string::npos);
}

TEST(BenchReport, JsonEscapesStringsAndRejectsNonFiniteMetrics) {
  Report report("quo\"te", "smoke");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\": \"quo\\\"te\""), std::string::npos);

  Report bad("nan", "smoke");
  CaseResult& entry = bad.run_case("x", 1, 1, [] {});
  entry.counters["bad"] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.to_json(), CheckError);
}

TEST(BenchReport, WriteProducesAReadableFile) {
  Report report("roundtrip", "smoke");
  report.run_case("grid_torus", 64, 1, [] {});
  const std::string path = ::testing::TempDir() + "BENCH_roundtrip.json";
  report.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
  std::remove(path.c_str());
}

TEST(BenchReport, WriteToUnwritablePathThrows) {
  Report report("nowhere", "smoke");
  EXPECT_THROW(report.write("/nonexistent-dir/BENCH_x.json"), CheckError);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_bench_main(const std::vector<std::string>& extra_args,
                   const std::string& out_path) {
  std::vector<std::string> args = {"bench_unit", "--out=" + out_path,
                                   "--scale=smoke", "--reps=1"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::vector<const char*> argv;
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  return bench_main(static_cast<int>(argv.size()), argv.data(), "unit",
                    [](Report& report, const std::string&, int reps) {
                      report.run_case("noop", 1, reps, [] {});
                    });
}

TEST(BenchMain, ThreadsFlagWinsOverEnvAndLandsInTheJson) {
  // The global pool exists by the time tests run, so the only accepted
  // sizes are its current one — which is exactly what makes precedence
  // observable: the bogus MMLP_THREADS below would abort the run if the
  // flag did not shadow it.
  const std::size_t current = ThreadPool::global().size();
  const std::string path = ::testing::TempDir() + "BENCH_unit_flag.json";
  ::setenv("MMLP_THREADS", "9999", 1);
  const int code =
      run_bench_main({"--threads=" + std::to_string(current)}, path);
  ::unsetenv("MMLP_THREADS");
  EXPECT_EQ(code, 0);
  EXPECT_NE(
      read_file(path).find("\"threads\": " + std::to_string(current)),
      std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchMain, MmlpThreadsEnvIsHonouredWhenNoFlagIsGiven) {
  const std::size_t current = ThreadPool::global().size();
  const std::string path = ::testing::TempDir() + "BENCH_unit_env.json";
  ::setenv("MMLP_THREADS", std::to_string(current).c_str(), 1);
  const int code = run_bench_main({}, path);
  ::unsetenv("MMLP_THREADS");
  EXPECT_EQ(code, 0);
  EXPECT_NE(
      read_file(path).find("\"threads\": " + std::to_string(current)),
      std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchMain, RejectsMalformedMmlpThreadsEnv) {
  const std::string path = ::testing::TempDir() + "BENCH_unit_bad.json";
  ::setenv("MMLP_THREADS", "lots", 1);
  const int code = run_bench_main({}, path);
  ::unsetenv("MMLP_THREADS");
  EXPECT_EQ(code, 1);
}

}  // namespace
}  // namespace mmlp::bench

#include "mmlp/lp/maxmin_reduction.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/solution.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(MaxMinLp, StructureOfBuiltLp) {
  const auto instance = testing::two_agent_instance();
  const auto lp = maxmin_to_lp(instance);
  EXPECT_EQ(lp.num_vars, 3);  // x0, x1, ω
  EXPECT_EQ(lp.rows.size(), 3u);  // 1 resource + 2 parties
  EXPECT_DOUBLE_EQ(lp.objective.back(), 1.0);
  // Party rows carry the −ω column.
  EXPECT_EQ(lp.rows[1].sense, ConstraintSense::kGe);
  EXPECT_DOUBLE_EQ(lp.rows[1].coeffs.back(), -1.0);
  EXPECT_EQ(lp.rows[1].vars.back(), 2);
}

TEST(MaxMinLp, TwoAgentOptimum) {
  const auto instance = testing::two_agent_instance();
  const auto result = solve_maxmin_simplex(instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.omega, 0.5, 1e-9);
  EXPECT_NEAR(result.x[0], 0.5, 1e-9);
  EXPECT_NEAR(result.x[1], 0.5, 1e-9);
}

TEST(MaxMinLp, SinglePartyIsPackingLp) {
  // max x0 + x1 + x2 s.t. x0 + 2x1 <= 1, x1 + x2 <= 1: optimum 2 at
  // x = (1, 0, 1).
  const auto instance = testing::single_party_instance();
  const auto result = solve_maxmin_simplex(instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.omega, 2.0, 1e-9);
}

TEST(MaxMinLp, SolutionIsFeasibleAndAttainsOmega) {
  const auto instance = make_random_instance({.num_agents = 40, .seed = 9});
  const auto result = solve_maxmin_simplex(instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  const auto eval = evaluate(instance, result.x);
  EXPECT_TRUE(eval.feasible());
  EXPECT_NEAR(eval.omega, result.omega, 1e-7);
}

TEST(MaxMinLp, OmegaAtLeastAnyFeasibleSolution) {
  const auto instance = testing::path_instance(6);
  const auto result = solve_maxmin_simplex(instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  // The uniform x = 1/2 is feasible on a path (each resource couples two
  // agents with a = 1), giving ω = 1/2.
  EXPECT_GE(result.omega, 0.5 - 1e-9);
}

TEST(MaxMinLp, ScalingCoefficientsScalesOmega) {
  // Doubling all c_kv doubles ω*.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v0, 1.0).set_usage(i, v1, 1.0);
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 2.0).set_benefit(k1, v1, 2.0);
  const auto instance = std::move(builder).build();
  const auto result = solve_maxmin_simplex(instance);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.omega, 1.0, 1e-9);
}

TEST(MaxMinLp, AsymmetricBenefitBalances) {
  // Party 0 served only by v0 (c=1), party 1 only by v1 (c=3); both agents
  // share one unit of resource. Optimum equalises: x0 + x1 = 1,
  // x0 = 3x1 ⇒ ω = 3/4.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const ResourceId i = builder.add_resource();
  builder.set_usage(i, v0, 1.0).set_usage(i, v1, 1.0);
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 1.0).set_benefit(k1, v1, 3.0);
  const auto result = std::move(builder).build();
  const auto solved = solve_maxmin_simplex(result);
  ASSERT_EQ(solved.status, LpStatus::kOptimal);
  EXPECT_NEAR(solved.omega, 0.75, 1e-9);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/gen/lowerbound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {
namespace {

/// Shared construction (d=2, D=2, r=1, R=2): Δ = 8, Q = PG(2,7) incidence
/// (57 per side), 114 hypertrees of 15 nodes each.
class LowerBoundFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LowerBoundParams params;
    params.d = 2;
    params.D = 2;
    params.r = 1;
    params.R = 2;
    params.seed = 5;
    lb_ = new LowerBoundInstance(build_lower_bound_instance(params));
  }
  static void TearDownTestSuite() {
    delete lb_;
    lb_ = nullptr;
  }
  static LowerBoundInstance* lb_;
};

LowerBoundInstance* LowerBoundFixture::lb_ = nullptr;

TEST_F(LowerBoundFixture, DegreeAndSizes) {
  EXPECT_EQ(lb_->degree, 8);  // d^R D^(R-1) = 4·2
  EXPECT_EQ(lb_->num_trees, 114);
  EXPECT_EQ(lb_->tree_size, 15);  // 1+2+4+8
  EXPECT_EQ(lb_->instance.num_agents(), 114 * 15);
}

TEST_F(LowerBoundFixture, QHasRequiredGirth) {
  // r = 1 ⇒ no cycles shorter than 6.
  const auto girth = lb_->q.girth();
  ASSERT_TRUE(girth.has_value());
  EXPECT_GE(*girth, 6);
  EXPECT_TRUE(lb_->q.is_regular(8));
}

TEST_F(LowerBoundFixture, PaperDegreeBounds) {
  // Theorem 1's restrictions: a_iv ∈ {0,1}, Δ_V^I = Δ_V^K = 1,
  // |V_i| = d+1, |V_k| ≤ D+1.
  const auto bounds = lb_->instance.degree_bounds();
  EXPECT_EQ(bounds.delta_I_of_V, 1u);
  EXPECT_EQ(bounds.delta_K_of_V, 1u);
  EXPECT_EQ(bounds.delta_V_of_I, 3u);
  EXPECT_EQ(bounds.delta_V_of_K, 3u);
  for (ResourceId i = 0; i < lb_->instance.num_resources(); ++i) {
    EXPECT_EQ(lb_->instance.resource_support(i).size(), 3u);
    for (const Coef& entry : lb_->instance.resource_support(i)) {
      EXPECT_DOUBLE_EQ(entry.value, 1.0);
    }
  }
}

TEST_F(LowerBoundFixture, PartyCoefficientsByType) {
  // Type II parties have D+1 members with c = 1/D; type III have 2
  // members with c = 1.
  for (PartyId k = 0; k < lb_->instance.num_parties(); ++k) {
    const auto& support = lb_->instance.party_support(k);
    if (support.size() == 2u) {
      for (const Coef& entry : support) {
        EXPECT_DOUBLE_EQ(entry.value, 1.0);
      }
    } else {
      ASSERT_EQ(support.size(), 3u);  // D + 1
      for (const Coef& entry : support) {
        EXPECT_DOUBLE_EQ(entry.value, 0.5);  // 1/D
      }
    }
  }
}

TEST_F(LowerBoundFixture, TypeIIIPartyCountMatchesQEdges) {
  std::int64_t type3 = 0;
  for (PartyId k = 0; k < lb_->instance.num_parties(); ++k) {
    if (lb_->instance.party_support(k).size() == 2u) {
      ++type3;
    }
  }
  EXPECT_EQ(type3, lb_->q.num_undirected_edges());
  EXPECT_EQ(type3, 57 * 8);  // n_side · Δ
}

TEST_F(LowerBoundFixture, PairingIsFixedPointFreeInvolutionOnLeaves) {
  std::int64_t leaf_count = 0;
  for (AgentId v = 0; v < lb_->instance.num_agents(); ++v) {
    const AgentId partner = lb_->pairing[static_cast<std::size_t>(v)];
    if (lb_->level_of(v) == 2 * lb_->params.R - 1) {
      ++leaf_count;
      EXPECT_NE(partner, v);
      EXPECT_EQ(lb_->pairing[static_cast<std::size_t>(partner)], v);
      // Partners live in different trees (leaf pairs cross trees).
      EXPECT_NE(lb_->tree_of(v), lb_->tree_of(partner));
    } else {
      EXPECT_EQ(partner, v);  // identity off the leaves
    }
  }
  EXPECT_EQ(leaf_count, static_cast<std::int64_t>(lb_->num_trees) * lb_->degree);
}

TEST_F(LowerBoundFixture, DeltaSumsToZero) {
  // Eq. (3): f is an involution, so Σ_q δ(q) = 0 for any x.
  Rng rng(99);
  std::vector<double> x(static_cast<std::size_t>(lb_->instance.num_agents()));
  for (double& value : x) {
    value = rng.uniform01();
  }
  const auto delta = compute_delta(*lb_, x);
  const double total = std::accumulate(delta.begin(), delta.end(), 0.0);
  EXPECT_NEAR(total, 0.0, 1e-9);
  EXPECT_GE(delta[static_cast<std::size_t>(select_p(delta))], 0.0);
}

TEST_F(LowerBoundFixture, SelectPPicksArgmax) {
  EXPECT_EQ(select_p({-1.0, 3.0, 2.0}), 1);
  EXPECT_EQ(select_p({0.0}), 0);
}

TEST_F(LowerBoundFixture, SPrimeIsValidAndConnected) {
  const auto sub = build_s_prime(*lb_, 3);
  sub.instance.validate();
  EXPECT_GT(sub.instance.num_agents(), lb_->tree_size);
  EXPECT_TRUE(sub.instance.communication_graph(false).connected());
  EXPECT_EQ(sub.tp_local.size(), static_cast<std::size_t>(lb_->tree_size));
}

TEST_F(LowerBoundFixture, SPrimeIsTreeLike) {
  // Section 4.4: H' has no cycles. For a connected Berge-acyclic
  // hypergraph the incidence bipartite graph is a tree:
  // Σ_e |e| = (#agents + #edges) − 1.
  const auto sub = build_s_prime(*lb_, 7);
  std::int64_t incidences = 0;
  const std::int64_t num_edges =
      sub.instance.num_resources() + sub.instance.num_parties();
  for (ResourceId i = 0; i < sub.instance.num_resources(); ++i) {
    incidences += static_cast<std::int64_t>(sub.instance.resource_support(i).size());
  }
  for (PartyId k = 0; k < sub.instance.num_parties(); ++k) {
    incidences += static_cast<std::int64_t>(sub.instance.party_support(k).size());
  }
  EXPECT_EQ(incidences, sub.instance.num_agents() + num_edges - 1);
}

TEST_F(LowerBoundFixture, AlternatingSolutionFeasibleWithOmegaOne) {
  // Section 4.5: x̂ saturates every resource and yields exactly 1 for
  // every beneficiary party.
  const auto sub = build_s_prime(*lb_, 11);
  const auto x_hat = alternating_solution(sub);
  for (ResourceId i = 0; i < sub.instance.num_resources(); ++i) {
    EXPECT_NEAR(resource_load(sub.instance, x_hat, i), 1.0, 1e-12);
  }
  for (PartyId k = 0; k < sub.instance.num_parties(); ++k) {
    EXPECT_NEAR(party_benefit(sub.instance, x_hat, k), 1.0, 1e-12);
  }
  const auto eval = evaluate(sub.instance, x_hat);
  EXPECT_TRUE(eval.feasible());
  EXPECT_NEAR(eval.omega, 1.0, 1e-12);
}

TEST_F(LowerBoundFixture, RadiusRViewsOfTpAreIdenticalInSAndSPrime) {
  // Section 4.6: every hyperedge visible within distance r of a T_p agent
  // must be fully contained in V', with identical coefficients — then a
  // deterministic horizon-r algorithm cannot distinguish S from S'.
  const std::int32_t p = 23;
  const auto sub = build_s_prime(*lb_, p);
  const auto h = lb_->instance.communication_graph(false);
  for (std::int32_t local = 0; local < lb_->tree_size; ++local) {
    const AgentId v = lb_->agent_id(p, local);
    for (const AgentId w : ball(h, v, lb_->params.r)) {
      for (const Coef& entry : lb_->instance.agent_resources(w)) {
        for (const Coef& member : lb_->instance.resource_support(entry.id)) {
          EXPECT_GE(sub.local_agent(member.id), 0)
              << "resource " << entry.id << " of agent " << w
              << " leaks outside V'";
        }
      }
      for (const Coef& entry : lb_->instance.agent_parties(w)) {
        for (const Coef& member : lb_->instance.party_support(entry.id)) {
          EXPECT_GE(sub.local_agent(member.id), 0)
              << "party " << entry.id << " of agent " << w
              << " leaks outside V'";
        }
      }
    }
  }
  // And the number of fully contained resources/parties matches what S'
  // retained (no spurious extras beyond V'-contained ones).
  EXPECT_EQ(sub.global_resources.size(),
            static_cast<std::size_t>(sub.instance.num_resources()));
}

TEST_F(LowerBoundFixture, SafeDecisionsCoincideOnTp) {
  // The safe algorithm has horizon 1 = r, so its T_p choices in S and S'
  // must be identical.
  const std::int32_t p = select_p(compute_delta(*lb_, safe_solution(lb_->instance)));
  const auto sub = build_s_prime(*lb_, p);
  const auto x_s = safe_solution(lb_->instance);
  const auto x_sub = safe_solution(sub.instance);
  for (std::int32_t local = 0; local < lb_->tree_size; ++local) {
    const AgentId global = lb_->agent_id(p, local);
    const std::int32_t mapped = sub.local_agent(global);
    ASSERT_GE(mapped, 0);
    EXPECT_DOUBLE_EQ(x_s[static_cast<std::size_t>(global)],
                     x_sub[static_cast<std::size_t>(mapped)]);
  }
}

TEST(LowerBoundBounds, TheoremFormulas) {
  // Δ_I^V/2 + 1/2 − 1/(2Δ_K^V−2) with Δ_I^V = d+1, Δ_K^V = D+1.
  EXPECT_NEAR(theorem1_bound(2, 2), 1.75, 1e-12);
  EXPECT_NEAR(theorem1_bound(2, 3), 2.0 - 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(theorem1_bound(4, 1), 2.5, 1e-12);  // Corollary 2: Δ_I^V/2
  // The finite-R correction is negative and vanishes as R grows.
  EXPECT_LT(theorem1_bound_finite(2, 2, 2), theorem1_bound(2, 2));
  EXPECT_LT(theorem1_bound_finite(2, 2, 3), theorem1_bound(2, 2));
  EXPECT_GT(theorem1_bound_finite(2, 2, 5), theorem1_bound(2, 2) - 0.01);
}

TEST(LowerBoundCorollary2, BinaryCoefficientConstruction) {
  // D = 1: both a and c are 0/1 (type II parties have c = 1/D = 1).
  LowerBoundParams params;
  params.d = 2;
  params.D = 1;
  params.r = 1;
  params.R = 2;
  params.seed = 3;
  const auto lb = build_lower_bound_instance(params);
  EXPECT_EQ(lb.degree, 4);  // 2²·1
  for (PartyId k = 0; k < lb.instance.num_parties(); ++k) {
    for (const Coef& entry : lb.instance.party_support(k)) {
      EXPECT_DOUBLE_EQ(entry.value, 1.0);
    }
  }
  const auto bounds = lb.instance.degree_bounds();
  EXPECT_EQ(bounds.delta_V_of_K, 2u);  // Δ_K^V = D+1 = 2
  // The S' machinery works here too.
  const auto sub = build_s_prime(lb, 1);
  const auto x_hat = alternating_solution(sub);
  EXPECT_NEAR(evaluate(sub.instance, x_hat).omega, 1.0, 1e-12);
}

TEST(LowerBoundParamsValidation, RejectsBadInput) {
  LowerBoundParams params;
  params.d = 1;
  params.D = 1;  // dD = 1: no content
  EXPECT_THROW(build_lower_bound_instance(params), CheckError);
  params.D = 2;
  params.r = 2;
  params.R = 2;  // R must exceed r
  EXPECT_THROW(build_lower_bound_instance(params), CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/local_averaging.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(LocalAveraging, FeasibleOnTwoAgentInstance) {
  const auto instance = testing::two_agent_instance();
  const auto result = local_averaging(instance, {.R = 1});
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
  // Both views see everything: ratio bound is 1 and the output optimal.
  EXPECT_NEAR(result.ratio_bound, 1.0, 1e-12);
  EXPECT_NEAR(objective_omega(instance, result.x), 0.5, 1e-7);
}

TEST(LocalAveraging, ReportsPerAgentMetadata) {
  const auto instance = testing::path_instance(6);
  const auto result = local_averaging(instance, {.R = 1});
  EXPECT_EQ(result.x.size(), 6u);
  EXPECT_EQ(result.beta.size(), 6u);
  EXPECT_EQ(result.ball_size.size(), 6u);
  EXPECT_EQ(result.view_omega.size(), 6u);
  for (const double beta : result.beta) {
    EXPECT_GT(beta, 0.0);
    EXPECT_LE(beta, 1.0 + 1e-12);
  }
}

class AveragingFeasibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AveragingFeasibility, FeasibleOnRandomInstances) {
  const auto instance = make_random_instance({
      .num_agents = 50,
      .resources_per_agent = 2,
      .parties_per_agent = 2,
      .max_support = 3,
      .seed = GetParam(),
  });
  for (const std::int32_t R : {1, 2}) {
    const auto result = local_averaging(instance, {.R = R});
    EXPECT_TRUE(evaluate(instance, result.x).feasible())
        << "seed " << GetParam() << " R " << R;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AveragingFeasibility,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LocalAveraging, Theorem3RatioGuaranteeOnGrid) {
  const auto instance = make_grid_instance(
      {.dims = {6, 6}, .torus = true, .randomize = true, .seed = 7});
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const auto h = instance.communication_graph();
  for (const std::int32_t R : {1, 2}) {
    const auto result = local_averaging(instance, {.R = R});
    const double achieved = objective_omega(instance, result.x);
    ASSERT_GT(achieved, 0.0);
    const double measured_ratio = exact.omega / achieved;
    // Theorem 3: ratio <= max_k M_k/m_k · max_i N_i/n_i <= γ(R−1)γ(R).
    EXPECT_LE(measured_ratio, result.ratio_bound + 1e-6) << "R=" << R;
    EXPECT_LE(result.ratio_bound, theorem3_bound(h, R) + 1e-9) << "R=" << R;
  }
}

TEST(LocalAveraging, RatioImprovesWithRadiusOnGrid) {
  const auto instance = make_grid_instance({.dims = {8, 8}, .torus = true});
  // Uniform torus: ω* = 1 by symmetry (x = 1/5 saturates every resource).
  const double omega_r1 =
      objective_omega(instance, local_averaging(instance, {.R = 1}).x);
  const double omega_r2 =
      objective_omega(instance, local_averaging(instance, {.R = 2}).x);
  EXPECT_GT(omega_r2, omega_r1 - 1e-9);
  EXPECT_LE(omega_r2, 1.0 + 1e-7);
}

TEST(LocalAveraging, BoundTightensWithRadius) {
  const auto instance = make_grid_instance({.dims = {10, 10}, .torus = true});
  const auto r1 = local_averaging(instance, {.R = 1});
  const auto r2 = local_averaging(instance, {.R = 2});
  EXPECT_LT(r2.ratio_bound, r1.ratio_bound);
}

TEST(LocalAveraging, CollaborationObliviousStillFeasible) {
  const auto instance = make_random_instance({.num_agents = 30, .seed = 17});
  const auto result =
      local_averaging(instance, {.R = 1, .collaboration_oblivious = true});
  EXPECT_TRUE(evaluate(instance, result.x).feasible());
}

TEST(LocalAveraging, ViewOmegaUpperBoundsOptimum) {
  // (13): every view LP value is >= ω*.
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto exact = solve_maxmin_simplex(instance);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  const auto result = local_averaging(instance, {.R = 1});
  for (const double view_omega : result.view_omega) {
    EXPECT_GE(view_omega, exact.omega - 1e-7);
  }
}

TEST(LocalAveraging, AccumulationIsThreadCountInvariantBitwise) {
  // The eq. (10) accumulation runs as a parallel gather whose per-agent
  // addition order is fixed (ascending u), so the output must not move
  // by a single bit across pool sizes — with and without dedup.
  const auto instance = make_grid_instance(
      {.dims = {7, 7}, .torus = true, .randomize = true, .seed = 3});
  engine::Session one(instance, {.threads = 1});
  engine::Session many(instance, {.threads = 3});
  for (const bool dedup : {false, true}) {
    const auto a =
        local_averaging_with(one, {.R = 1, .deduplicate = dedup});
    const auto b =
        local_averaging_with(many, {.R = 1, .deduplicate = dedup});
    EXPECT_EQ(a.x, b.x) << "dedup " << dedup;
    EXPECT_EQ(a.view_omega, b.view_omega) << "dedup " << dedup;
  }
}

TEST(LocalAveraging, RejectsNonPositiveRadius) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(local_averaging(instance, {.R = 0}), CheckError);
}

}  // namespace
}  // namespace mmlp

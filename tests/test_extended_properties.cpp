// Deeper cross-cutting properties tying the subsystems together.
#include <gtest/gtest.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/gen/sensor.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"

namespace mmlp {
namespace {

TEST(FullViewLimit, AveragingWithGlobalViewsIsOptimal) {
  // When R covers the whole (connected) graph, every view LP is the
  // global LP, S_k = U_i = V so β_j = 1, and x̃ equals the common optimal
  // solution: the averaging algorithm degenerates to the exact optimum.
  // This is the R → ∞ limit of Theorem 3 (γ(∞) = 1).
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto instance = make_random_instance({
        .num_agents = 20,
        .resources_per_agent = 2,
        .parties_per_agent = 1,
        .max_support = 3,
        .seed = seed,
    });
    const auto h = instance.communication_graph();
    if (!h.connected()) {
      continue;  // the limit statement needs one component
    }
    const auto exact = solve_maxmin_simplex(instance);
    ASSERT_EQ(exact.status, LpStatus::kOptimal);
    const auto result = local_averaging(instance, {.R = 25});
    EXPECT_NEAR(result.ratio_bound, 1.0, 1e-12) << "seed " << seed;
    EXPECT_NEAR(objective_omega(instance, result.x), exact.omega, 1e-6)
        << "seed " << seed;
  }
}

TEST(Serialization, RoundTripAcrossEveryFamily) {
  const Instance instances[] = {
      make_random_instance({.num_agents = 30, .seed = 1}),
      make_grid_instance(
          {.dims = {4, 4}, .torus = true, .randomize = true, .seed = 2}),
      make_geometric_instance({.num_agents = 40, .seed = 3}).instance,
      make_sensor_network({.num_sensors = 25,
                           .num_relays = 8,
                           .num_areas = 4,
                           .radio_range = 0.4,
                           .seed = 4})
          .instance,
      make_isp_network({.num_customers = 5, .seed = 5}).instance,
  };
  for (const Instance& instance : instances) {
    const auto restored = Instance::deserialize(instance.serialize());
    EXPECT_TRUE(instance == restored);
    // Exact coefficient fidelity (full double precision).
    for (ResourceId i = 0; i < instance.num_resources(); ++i) {
      for (const Coef& entry : instance.resource_support(i)) {
        EXPECT_EQ(restored.usage(i, entry.id), entry.value);
      }
    }
  }
}

TEST(ViewConsistency, ViewOfViewIsStable) {
  // Extracting a view from a materialised view (same center, same R)
  // reproduces the same local LP: extract is idempotent on its image.
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto h = instance.communication_graph();
  const AgentId center = 12;
  const std::int32_t R = 1;
  const auto view = extract_view(instance, h, center, R);
  // Build a standalone instance out of the view (resources restricted,
  // parties full) and re-extract with full radius.
  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(view.agents.size()), 0, 0);
  for (std::size_t r = 0; r < view.resources.size(); ++r) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : view.resource_entries(r)) {
      builder.set_usage(id, entry.id, entry.value);
    }
  }
  for (std::size_t p = 0; p < view.parties.size(); ++p) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : view.party_entries(p)) {
      builder.set_benefit(id, entry.id, entry.value);
    }
  }
  const auto materialised = std::move(builder).build();
  // Same LP ⇒ same optimal value.
  const auto direct = solve_view_lp(view);
  const auto relifted = solve_maxmin_simplex(materialised);
  ASSERT_EQ(relifted.status, LpStatus::kOptimal);
  EXPECT_NEAR(direct.omega, relifted.omega, 1e-9);
}

struct LbConfig {
  std::int32_t d, D, R;
};

class LowerBoundStructure : public ::testing::TestWithParam<LbConfig> {};

TEST_P(LowerBoundStructure, InvariantsAcrossParameters) {
  const auto [d, D, R] = GetParam();
  LowerBoundParams params;
  params.d = d;
  params.D = D;
  params.r = 1;
  params.R = R;
  params.seed = 41;
  const auto lb = build_lower_bound_instance(params);

  // Degree Δ = d^R D^(R−1) and the leaf pairing is a perfect matching of
  // all leaves across trees.
  std::int64_t expected_degree = 1;
  for (std::int32_t e = 0; e < R; ++e) expected_degree *= d;
  for (std::int32_t e = 0; e + 1 < R; ++e) expected_degree *= D;
  EXPECT_EQ(lb.degree, expected_degree);

  // The communication graph of S is connected iff Q is connected; in all
  // cases every tree is internally connected — check one tree's span.
  const auto h = lb.instance.communication_graph(false);
  const auto dist = bfs_distances(h, lb.agent_id(0, 0));
  for (std::int32_t local = 0; local < lb.tree_size; ++local) {
    EXPECT_GE(dist[static_cast<std::size_t>(lb.agent_id(0, local))], 0);
  }

  // The S′ pipeline works from any p and x̂ certifies ω*(S′) ≥ 1.
  const auto sub = build_s_prime(lb, lb.num_trees / 2);
  const auto x_hat = alternating_solution(sub);
  const auto eval = evaluate(sub.instance, x_hat);
  EXPECT_TRUE(eval.feasible());
  EXPECT_NEAR(eval.omega, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Configs, LowerBoundStructure,
                         ::testing::Values(LbConfig{2, 2, 2}, LbConfig{2, 3, 2},
                                           LbConfig{3, 2, 2}, LbConfig{2, 1, 2},
                                           LbConfig{2, 1, 3}, LbConfig{1, 2, 2}));

TEST(MessageComplexity, FloodMessagesScaleWithDegreeSum) {
  // LOCAL-model accounting: one message per (agent, hyperedge, round).
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  LocalRuntime runtime(instance);
  std::int64_t degree_sum = 0;
  const auto& h = runtime.graph();
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    degree_sum += static_cast<std::int64_t>(h.degree(v));
  }
  EXPECT_EQ(runtime.message_count(5), 5 * degree_sum);
}

}  // namespace
}  // namespace mmlp

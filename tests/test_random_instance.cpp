#include "mmlp/gen/random_instance.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(RandomInstance, RespectsAgentCount) {
  const auto instance = make_random_instance({.num_agents = 77, .seed = 1});
  EXPECT_EQ(instance.num_agents(), 77);
  instance.validate();
}

TEST(RandomInstance, DegreeBoundsHold) {
  const RandomInstanceOptions options{
      .num_agents = 120,
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = 2,
  };
  const auto instance = make_random_instance(options);
  const auto bounds = instance.degree_bounds();
  EXPECT_LE(bounds.delta_V_of_I, 4u);
  EXPECT_LE(bounds.delta_V_of_K, 4u);
  EXPECT_LE(bounds.delta_I_of_V, 3u);
  EXPECT_LE(bounds.delta_K_of_V, 2u);
}

TEST(RandomInstance, EveryAgentJoinsExactSlotCounts) {
  const RandomInstanceOptions options{
      .num_agents = 50,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = 3,
  };
  const auto instance = make_random_instance(options);
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    EXPECT_EQ(instance.agent_resources(v).size(), 2u);
    EXPECT_EQ(instance.agent_parties(v).size(), 1u);
  }
}

TEST(RandomInstance, CoefficientsInRange) {
  const auto instance = make_random_instance({
      .num_agents = 40,
      .coef_lo = 0.9,
      .coef_hi = 1.1,
      .seed = 4,
  });
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    for (const Coef& entry : instance.resource_support(i)) {
      EXPECT_GE(entry.value, 0.9);
      EXPECT_LE(entry.value, 1.1);
    }
  }
}

TEST(RandomInstance, ZeroPartiesAllowed) {
  const auto instance = make_random_instance({
      .num_agents = 10,
      .parties_per_agent = 0,
      .seed = 5,
  });
  EXPECT_EQ(instance.num_parties(), 0);
  instance.validate();
}

TEST(RandomInstance, DeterministicBySeed) {
  const RandomInstanceOptions options{.num_agents = 30, .seed = 6};
  EXPECT_TRUE(make_random_instance(options) == make_random_instance(options));
}

TEST(RandomInstance, SeedsProduceDifferentInstances) {
  EXPECT_FALSE(make_random_instance({.num_agents = 30, .seed = 7}) ==
               make_random_instance({.num_agents = 30, .seed = 8}));
}

TEST(RandomInstance, SupportSizeOneWorks) {
  const auto instance = make_random_instance({
      .num_agents = 15,
      .max_support = 1,
      .seed = 9,
  });
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    EXPECT_EQ(instance.resource_support(i).size(), 1u);
  }
}

TEST(RandomInstance, RejectsBadOptions) {
  EXPECT_THROW(make_random_instance({.num_agents = 0}), CheckError);
  EXPECT_THROW(make_random_instance({.resources_per_agent = 0}), CheckError);
  EXPECT_THROW(make_random_instance({.max_support = 0}), CheckError);
  EXPECT_THROW(make_random_instance({.coef_lo = 0.0}), CheckError);
  EXPECT_THROW(make_random_instance({.coef_lo = 2.0, .coef_hi = 1.0}),
               CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/core/transform.hpp"

#include <gtest/gtest.h>

#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/check.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(Relabel, PreservesStructure) {
  const auto instance = testing::single_party_instance();
  Rng rng(3);
  const auto perm = rng.permutation(instance.num_agents());
  const auto relabeled = relabel_agents(instance, perm);
  EXPECT_EQ(relabeled.num_agents(), instance.num_agents());
  EXPECT_EQ(relabeled.num_nonzeros(), instance.num_nonzeros());
  // Coefficients follow the agents.
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    for (const Coef& entry : instance.resource_support(i)) {
      EXPECT_DOUBLE_EQ(
          relabeled.usage(i, perm[static_cast<std::size_t>(entry.id)]),
          entry.value);
    }
  }
}

TEST(Relabel, IdentityIsNoop) {
  const auto instance = testing::two_agent_instance();
  EXPECT_TRUE(relabel_agents(instance, {0, 1}) == instance);
}

TEST(Relabel, RejectsNonPermutations) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(relabel_agents(instance, {0, 0}), CheckError);
  EXPECT_THROW(relabel_agents(instance, {0}), CheckError);
  EXPECT_THROW(relabel_agents(instance, {0, 2}), CheckError);
}

TEST(Relabel, OptimumIsInvariant) {
  const auto instance = make_random_instance({.num_agents = 30, .seed = 5});
  Rng rng(7);
  const auto perm = rng.permutation(instance.num_agents());
  const auto relabeled = relabel_agents(instance, perm);
  const auto base = solve_maxmin_simplex(instance);
  const auto mapped = solve_maxmin_simplex(relabeled);
  EXPECT_NEAR(base.omega, mapped.omega, 1e-9);
}

TEST(Relabel, SolutionRoundTrip) {
  const std::vector<double> x{0.1, 0.2, 0.3};
  const std::vector<AgentId> perm{2, 0, 1};
  const auto mapped = relabel_solution(x, perm);
  EXPECT_EQ(mapped, (std::vector<double>{0.2, 0.3, 0.1}));
  // ω is label-free: evaluate mapped solution on mapped instance.
  const auto instance = testing::single_party_instance();
  const auto relabeled = relabel_agents(instance, perm);
  const std::vector<double> y{0.4, 0.1, 0.5};
  EXPECT_NEAR(objective_omega(instance, y),
              objective_omega(relabeled, relabel_solution(y, perm)), 1e-12);
}

TEST(Scaling, UsageScalingLaw) {
  // Halving every a_iv doubles ω*.
  const auto instance = make_random_instance({.num_agents = 25, .seed = 9});
  const auto base = solve_maxmin_simplex(instance);
  const auto halved = solve_maxmin_simplex(scale_usages(instance, 0.5));
  EXPECT_NEAR(halved.omega, 2.0 * base.omega, 1e-7);
  const auto doubled = solve_maxmin_simplex(scale_usages(instance, 2.0));
  EXPECT_NEAR(doubled.omega, 0.5 * base.omega, 1e-7);
}

TEST(Scaling, BenefitScalingLaw) {
  const auto instance = make_random_instance({.num_agents = 25, .seed = 11});
  const auto base = solve_maxmin_simplex(instance);
  const auto tripled = solve_maxmin_simplex(scale_benefits(instance, 3.0));
  EXPECT_NEAR(tripled.omega, 3.0 * base.omega, 1e-7);
}

TEST(Scaling, RejectsNonPositiveFactor) {
  const auto instance = testing::two_agent_instance();
  EXPECT_THROW(scale_usages(instance, 0.0), CheckError);
  EXPECT_THROW(scale_benefits(instance, -1.0), CheckError);
}

TEST(DisjointUnion, CountsAdd) {
  const auto a = testing::two_agent_instance();
  const auto b = testing::single_party_instance();
  const auto joined = disjoint_union(a, b);
  EXPECT_EQ(joined.num_agents(), a.num_agents() + b.num_agents());
  EXPECT_EQ(joined.num_resources(), a.num_resources() + b.num_resources());
  EXPECT_EQ(joined.num_parties(), a.num_parties() + b.num_parties());
  joined.validate();
}

TEST(DisjointUnion, OmegaIsTheMin) {
  const auto a = make_random_instance({.num_agents = 15, .seed = 2});
  const auto b = make_random_instance({.num_agents = 20, .seed = 3});
  const double omega_a = solve_maxmin_simplex(a).omega;
  const double omega_b = solve_maxmin_simplex(b).omega;
  const double omega_union = solve_maxmin_simplex(disjoint_union(a, b)).omega;
  EXPECT_NEAR(omega_union, std::min(omega_a, omega_b), 1e-7);
}

TEST(DisjointUnion, ComponentsStayDisconnected) {
  const auto a = testing::path_instance(3);
  const auto b = testing::path_instance(4);
  const auto joined = disjoint_union(a, b);
  EXPECT_FALSE(joined.communication_graph().connected());
}

TEST(Induce, WholeSetIsIdentity) {
  const auto instance = testing::single_party_instance();
  std::vector<AgentId> all{0, 1, 2};
  const auto sub = induce(instance, all);
  EXPECT_TRUE(sub.instance == instance);
  EXPECT_EQ(sub.global_resources.size(), 2u);
  EXPECT_EQ(sub.global_parties.size(), 1u);
}

TEST(Induce, KeepsOnlyContainedHyperedges) {
  const auto instance = testing::path_instance(5);
  // Agents {0, 1, 2}: resources 0 (0-1) and 1 (1-2) survive; resource 2
  // (2-3) does not. Singleton parties of 0..2 survive.
  const auto sub = induce(instance, {0, 1, 2});
  EXPECT_EQ(sub.instance.num_agents(), 3);
  EXPECT_EQ(sub.instance.num_resources(), 2);
  EXPECT_EQ(sub.instance.num_parties(), 3);
  EXPECT_EQ(sub.global_resources, (std::vector<ResourceId>{0, 1}));
}

TEST(Induce, BallSubsetsAreAlwaysValid) {
  // Unions of balls are "closed enough": every kept agent keeps >= 1
  // resource. (Single-agent cuts may not be; this mirrors Section 4.3's
  // choice of V'.)
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  const auto h = instance.communication_graph();
  const auto members = ball(h, 12, 2);
  const auto sub = induce(instance, members);
  sub.instance.validate();
  EXPECT_EQ(sub.instance.num_agents(),
            static_cast<AgentId>(members.size()));
}

TEST(Induce, OmegaOfSubinstanceCanExceedParent) {
  // Removing parties can only raise the min; removing agents can lower
  // benefits. Check ω*(sub) against a direct solve (consistency, not a
  // fixed inequality).
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  const auto h = instance.communication_graph();
  const auto sub = induce(instance, ball(h, 0, 1));
  const auto result = solve_maxmin_simplex(sub.instance);
  EXPECT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_GT(result.omega, 0.0);
}

TEST(Induce, RejectsUnsortedOrDuplicateInput) {
  const auto instance = testing::path_instance(4);
  EXPECT_THROW(induce(instance, {2, 1}), CheckError);
  EXPECT_THROW(induce(instance, {1, 1, 2}), CheckError);
}

}  // namespace
}  // namespace mmlp

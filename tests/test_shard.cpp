// Sharded solving: the partition/halo/stitch layer and its equality bar.
//
// The differential harness at the bottom is the PR's proof obligation:
// for every (scenario × algorithm × radius × dedup × shard count) cell,
// a ShardedSession solve must be *bitwise* equal to the same request on
// a flat Session — solution vector, ω, feasibility, and per-party
// benefits compared with ==, not tolerances. Delta routing gets the
// same bar: value edits, boundary-crossing agent adds and removals are
// applied to both sides and the re-solves (incremental where eligible)
// must stay identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mmlp/engine/session.hpp"
#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/shard/extract.hpp"
#include "mmlp/shard/partition.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

using engine::Session;
using engine::ShardedOptions;
using engine::ShardedSession;
using engine::SolveRequest;
using engine::SolveResult;

// The same hypertree shape test_engine uses: type I hyperedges become
// unit resources, type II hyperedges parties with 1/D benefits.
Instance make_hypertree_instance(std::int32_t d, std::int32_t D,
                                 std::int32_t height) {
  const Hypertree tree = Hypertree::complete(d, D, height);
  Instance::Builder builder;
  for (std::int32_t node = 0; node < tree.num_nodes(); ++node) {
    builder.add_agent();
  }
  for (const HypertreeEdge& edge : tree.edges()) {
    if (edge.type == HyperedgeType::kTypeI) {
      const ResourceId i = builder.add_resource();
      builder.set_usage(i, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_usage(i, child, 1.0);
      }
    } else {
      const PartyId k = builder.add_party();
      builder.set_benefit(k, edge.parent, 1.0 / static_cast<double>(D));
      for (const std::int32_t child : edge.children) {
        builder.set_benefit(k, child, 1.0 / static_cast<double>(D));
      }
    }
  }
  return std::move(builder).build();
}

struct Scenario {
  std::string name;
  Instance instance;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> result;
  result.push_back({"grid", make_grid_instance({.dims = {8, 8},
                                                .torus = true,
                                                .randomize = true,
                                                .seed = 3})});
  result.push_back({"random", make_random_instance({
                                  .num_agents = 80,
                                  .resources_per_agent = 3,
                                  .parties_per_agent = 2,
                                  .max_support = 4,
                                  .seed = 9,
                              })});
  result.push_back({"hypertree", make_hypertree_instance(2, 2, 3)});
  return result;
}

/// Bitwise equality of everything a stitched result promises.
void expect_bitwise_equal(const SolveResult& flat, const SolveResult& sharded,
                          const std::string& label) {
  ASSERT_EQ(flat.has_solution, sharded.has_solution) << label;
  ASSERT_EQ(flat.x.size(), sharded.x.size()) << label;
  for (std::size_t v = 0; v < flat.x.size(); ++v) {
    ASSERT_EQ(flat.x[v], sharded.x[v]) << label << " at agent " << v;
  }
  EXPECT_EQ(flat.omega, sharded.omega) << label;
  EXPECT_EQ(flat.feasible, sharded.feasible) << label;
  ASSERT_EQ(flat.party_benefit.size(), sharded.party_benefit.size()) << label;
  for (std::size_t k = 0; k < flat.party_benefit.size(); ++k) {
    ASSERT_EQ(flat.party_benefit[k], sharded.party_benefit[k])
        << label << " at party " << k;
  }
}

// ---------------------------------------------------------------------------
// Partition layer
// ---------------------------------------------------------------------------

TEST(Partition, ContiguousCoversDisjointlyAndBalances) {
  const shard::Partition partition = shard::contiguous_partition(10, 3);
  EXPECT_EQ(partition.num_shards, 3);
  partition.validate();
  std::size_t total = 0;
  for (const auto& core : partition.core) {
    EXPECT_GE(core.size(), 3u);
    EXPECT_LE(core.size(), 4u);
    total += core.size();
  }
  EXPECT_EQ(total, 10u);
  // Ranges, in order.
  EXPECT_EQ(partition.core[0].front(), 0);
  EXPECT_EQ(partition.core[2].back(), 9);
}

TEST(Partition, BfsRegionsCoverDeterministically) {
  const Instance instance = make_grid_instance({.dims = {6, 6}});
  const Hypergraph graph = instance.communication_graph(false);
  const shard::Partition a = shard::bfs_partition(graph, 4, 7);
  const shard::Partition b = shard::bfs_partition(graph, 4, 7);
  a.validate();
  EXPECT_EQ(a.shard_of, b.shard_of);  // pure function of (graph, S, seed)
  const shard::Partition c = shard::bfs_partition(graph, 4, 8);
  c.validate();  // different seed: still a valid cover
}

TEST(Partition, RejectsMoreShardsThanAgents) {
  EXPECT_THROW(shard::contiguous_partition(3, 5), CheckError);
}

TEST(Partition, StrategyNamesRoundTrip) {
  EXPECT_EQ(shard::partition_strategy_from_string("contiguous"),
            shard::PartitionStrategy::kContiguous);
  EXPECT_EQ(shard::partition_strategy_from_string("bfs"),
            shard::PartitionStrategy::kBfsRegions);
  EXPECT_THROW(shard::partition_strategy_from_string("voronoi"), CheckError);
}

// ---------------------------------------------------------------------------
// Halo extraction
// ---------------------------------------------------------------------------

TEST(ExtractShard, WholeInstanceCoreReproducesTheInstance) {
  const Instance instance = make_grid_instance({.dims = {5, 5}});
  const Hypergraph graph = instance.communication_graph(false);
  std::vector<AgentId> core(static_cast<std::size_t>(instance.num_agents()));
  for (std::size_t v = 0; v < core.size(); ++v) {
    core[v] = static_cast<AgentId>(v);
  }
  const shard::ShardInstance piece =
      shard::extract_shard(instance, graph, core, 2);
  // Identity relabeling: the sub-instance IS the instance.
  EXPECT_EQ(piece.instance, instance);
  EXPECT_EQ(piece.halo_agents(), 0u);
  EXPECT_EQ(piece.core_local, piece.core);
}

TEST(ExtractShard, MapsAreMonotoneAndRowsAreRestrictions) {
  const Instance instance = make_random_instance({
      .num_agents = 50,
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = 11,
  });
  const Hypergraph graph = instance.communication_graph(false);
  const shard::Partition partition = shard::contiguous_partition(50, 4);
  const shard::ShardInstance piece =
      shard::extract_shard(instance, graph, partition.core[1], 2);
  piece.instance.validate();
  EXPECT_TRUE(std::is_sorted(piece.agents.begin(), piece.agents.end()));
  EXPECT_TRUE(std::is_sorted(piece.resources.begin(), piece.resources.end()));
  EXPECT_TRUE(std::is_sorted(piece.parties.begin(), piece.parties.end()));
  EXPECT_GT(piece.halo_agents(), 0u);  // interior shard of a connected graph
  // Every local resource row is the order-preserving restriction of the
  // global row to included agents.
  for (std::size_t local = 0; local < piece.resources.size(); ++local) {
    const CoefSpan global_row =
        instance.resource_support(piece.resources[local]);
    std::vector<Coef> expected;
    for (const Coef& entry : global_row) {
      const AgentId mapped = piece.local_agent(entry.id);
      if (mapped >= 0) {
        expected.push_back({mapped, entry.value});
      }
    }
    const CoefSpan local_row =
        piece.instance.resource_support(static_cast<ResourceId>(local));
    ASSERT_EQ(local_row.size(), expected.size());
    for (std::size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ(local_row[e], expected[e]);
    }
  }
  // The lookups agree with the maps.
  for (std::size_t local = 0; local < piece.agents.size(); ++local) {
    EXPECT_EQ(piece.local_agent(piece.agents[local]),
              static_cast<AgentId>(local));
  }
  EXPECT_EQ(piece.local_agent(instance.num_agents() - 1) >= 0,
            std::binary_search(piece.agents.begin(), piece.agents.end(),
                               instance.num_agents() - 1));
}

// ---------------------------------------------------------------------------
// The differential harness: sharded == monolithic, bitwise
// ---------------------------------------------------------------------------

TEST(ShardDifferential, MatchesMonolithicAcrossTheMatrix) {
  for (const Scenario& scenario : scenarios()) {
    for (const std::string algorithm : {"safe", "averaging"}) {
      for (const std::int32_t R : {1, 2}) {
        if (algorithm == "safe" && R == 2) {
          continue;  // safe has no radius knob
        }
        for (const bool deduplicate : {false, true}) {
          Session flat(scenario.instance);
          SolveRequest request;
          request.algorithm = algorithm;
          request.R = R;
          request.deduplicate = deduplicate;
          const SolveResult expected = engine::solve(flat, request);
          for (const std::int32_t shards : {2, 4, 7}) {
            ShardedSession sharded(
                scenario.instance,
                ShardedOptions{.shards = shards, .halo_radius = 2 * R + 1});
            const SolveResult actual = sharded.solve(request);
            const std::string label =
                scenario.name + "/" + algorithm + "/R=" + std::to_string(R) +
                "/dedup=" + std::to_string(deduplicate) +
                "/S=" + std::to_string(shards);
            expect_bitwise_equal(expected, actual, label);
            EXPECT_EQ(actual.diagnostics.at("shards"),
                      static_cast<double>(shards))
                << label;
            EXPECT_GE(actual.diagnostics.at("halo_agents"), 0.0) << label;
          }
        }
      }
    }
  }
}

TEST(ShardDifferential, DistributedSolversAndBfsPartitionMatchToo) {
  const Scenario scenario = scenarios()[0];  // grid
  for (const std::string algorithm : {"distributed-safe",
                                      "distributed-averaging"}) {
    Session flat(scenario.instance);
    SolveRequest request;
    request.algorithm = algorithm;
    request.R = 1;
    const SolveResult expected = engine::solve(flat, request);
    ShardedSession sharded(
        scenario.instance,
        ShardedOptions{.shards = 4,
                       .halo_radius = 3,
                       .strategy = shard::PartitionStrategy::kBfsRegions,
                       .seed = 5});
    expect_bitwise_equal(expected, sharded.solve(request),
                         algorithm + "/bfs-partition");
  }
}

// ---------------------------------------------------------------------------
// Delta routing
// ---------------------------------------------------------------------------

TEST(ShardDelta, ValueEditRoutesAndKeepsIncrementalWarmAndEqual) {
  for (const Scenario& scenario : scenarios()) {
    Instance flat_instance = scenario.instance;
    Instance sharded_instance = scenario.instance;
    Session flat(flat_instance);
    ShardedSession sharded(sharded_instance,
                           ShardedOptions{.shards = 4, .halo_radius = 3});

    SolveRequest request;
    request.algorithm = "averaging";
    request.R = 1;
    request.incremental = true;
    expect_bitwise_equal(engine::solve(flat, request), sharded.solve(request),
                         scenario.name + "/prime");

    // Edit an existing coefficient in the middle of the id space — on a
    // contiguous partition that lands near a shard boundary.
    const ResourceId i = flat_instance.num_resources() / 2;
    const Coef target = flat_instance.resource_support(i).front();
    InstanceDelta delta;
    delta.set_usage(i, target.id, target.value * 1.5);
    const Session::ApplyReport flat_report = flat.apply(delta);
    const Session::ApplyReport sharded_report = sharded.apply(delta);
    EXPECT_EQ(flat_report.revision, sharded_report.revision);
    EXPECT_FALSE(sharded_report.structural);
    EXPECT_GE(sharded_report.repaired_entries, 1u);  // routed, not rebuilt

    const SolveResult flat_result = engine::solve(flat, request);
    const SolveResult sharded_result = sharded.solve(request);
    expect_bitwise_equal(flat_result, sharded_result,
                         scenario.name + "/value-edit");
    // The routed delta must not have cooled the shard memos: the
    // monolithic side re-solved incrementally, the sharded side must
    // report the same (min over shards — untouched shards splice 100%).
    EXPECT_EQ(flat_result.diagnostics.at("incremental"), 1.0) << scenario.name;
    EXPECT_EQ(sharded_result.diagnostics.at("incremental"), 1.0)
        << scenario.name;
    // And a cold solve of the mutated instance agrees too.
    Session cold(sharded_instance);
    SolveRequest full = request;
    full.incremental = false;
    expect_bitwise_equal(engine::solve(cold, full), sharded_result,
                         scenario.name + "/vs-cold");
  }
}

TEST(ShardDelta, BoundaryCrossingAgentAddStaysEqual) {
  // Non-torus 16x16: a radius-3 ball around the touched vertex spans
  // only the two shards adjacent to the cut, so the "far shards stay
  // untouched" assertion below is meaningful.
  Instance flat_instance = make_grid_instance(
      {.dims = {16, 16}, .torus = false, .randomize = true, .seed = 3});
  Instance sharded_instance = flat_instance;
  Session flat(flat_instance);
  ShardedSession sharded(sharded_instance,
                         ShardedOptions{.shards = 4, .halo_radius = 3});

  // Attach a fresh agent to a resource whose support straddles the
  // boundary between shard 0 and shard 1 (contiguous cores of 64).
  const AgentId boundary = sharded.partition().core[0].back();
  const ResourceId i = flat_instance.agent_resources(boundary).front().id;
  const PartyId k = flat_instance.agent_parties(boundary).front().id;
  const AgentId fresh = flat_instance.num_agents();
  InstanceDelta delta;
  delta.add_agents(1).set_usage(i, fresh, 0.75).set_benefit(k, fresh, 0.5);

  (void)flat.apply(delta);
  const Session::ApplyReport report = sharded.apply(delta);
  EXPECT_TRUE(report.structural);
  EXPECT_FALSE(report.rebuilt);  // surgical re-extraction, not a repartition
  EXPECT_LT(report.repaired_entries, 4u);  // far shards stayed untouched

  SolveRequest request;
  request.algorithm = "averaging";
  request.R = 1;
  expect_bitwise_equal(engine::solve(flat, request), sharded.solve(request),
                       "agent-add");
  SolveRequest safe{.algorithm = "safe"};
  expect_bitwise_equal(engine::solve(flat, safe), sharded.solve(safe),
                       "agent-add/safe");
}

TEST(ShardDelta, BoundaryAgentRemovalRebuildsAndStaysEqual) {
  Instance flat_instance = make_grid_instance(
      {.dims = {16, 16}, .torus = false, .randomize = true, .seed = 3});
  Instance sharded_instance = flat_instance;
  Session flat(flat_instance);
  ShardedSession sharded(sharded_instance,
                         ShardedOptions{.shards = 4, .halo_radius = 3});

  // Remove the first agent of shard 1: ids compact across every shard.
  InstanceDelta delta;
  delta.remove_agent(sharded.partition().core[1].front());
  (void)flat.apply(delta);
  const Session::ApplyReport report = sharded.apply(delta);
  EXPECT_TRUE(report.rebuilt);

  SolveRequest request;
  request.algorithm = "averaging";
  request.R = 1;
  expect_bitwise_equal(engine::solve(flat, request), sharded.solve(request),
                       "agent-remove");
}

// ---------------------------------------------------------------------------
// Guard rails
// ---------------------------------------------------------------------------

TEST(ShardedSession, RejectsWhatShardingCannotServe) {
  const Instance instance = make_grid_instance({.dims = {6, 6}});
  ShardedSession sharded(instance,
                         ShardedOptions{.shards = 2, .halo_radius = 3});

  // Global solvers and the estimator have nothing to stitch.
  EXPECT_THROW(sharded.solve({.algorithm = "greedy"}), CheckError);
  EXPECT_THROW(sharded.solve({.algorithm = "optimal"}), CheckError);
  EXPECT_THROW(sharded.solve({.algorithm = "uniform"}), CheckError);
  EXPECT_THROW(sharded.solve({.algorithm = "sublinear"}), CheckError);

  // Oblivious mode: party supports are unbounded in H, the halo cannot
  // cover them.
  SolveRequest oblivious{.algorithm = "safe"};
  oblivious.collaboration_oblivious = true;
  EXPECT_THROW(sharded.solve(oblivious), CheckError);

  // Global dampings couple all agents.
  SolveRequest global_damping{.algorithm = "averaging"};
  global_damping.damping = AveragingDamping::kBetaGlobal;
  EXPECT_THROW(sharded.solve(global_damping), CheckError);

  // R = 2 needs halo 5, the session has 3.
  SolveRequest too_far{.algorithm = "averaging"};
  too_far.R = 2;
  EXPECT_THROW(sharded.solve(too_far), CheckError);

  // Shard-count mismatch fails loudly in both directions.
  SolveRequest mismatched{.algorithm = "safe"};
  mismatched.shards = 3;
  EXPECT_THROW(sharded.solve(mismatched), CheckError);
  Session flat(instance);
  EXPECT_THROW(engine::solve(flat, mismatched), CheckError);

  // A matching count (or 0) is served.
  mismatched.shards = 2;
  EXPECT_TRUE(sharded.solve(mismatched).has_solution);

  // Const binding: no apply.
  InstanceDelta delta;
  delta.set_usage(0, 0, 2.0);
  EXPECT_THROW(sharded.apply(delta), CheckError);
}

TEST(ShardedSession, ThreadBudgetIsOneSharedPoolNotPerShardPools) {
  // The oversubscription regression: the old design gave every shard a
  // private pool of max(1, threads/S) workers PLUS a fan-out pool, so
  // S=8, threads=4 spun up 8·1 + 4 = 12 workers on a 4-thread budget.
  // Now ONE pool carries the whole budget: exactly `threads` workers,
  // shared by the fan-out and every shard session.
  const Instance instance = make_grid_instance({.dims = {8, 8}});
  ShardedSession sharded(
      instance,
      ShardedOptions{.shards = 8, .halo_radius = 3, .threads = 4});
  EXPECT_EQ(sharded.worker_threads(), 4u);
  EXPECT_EQ(sharded.pool().size(), 4u);
  // Every shard session runs on the shared pool — no owned pools.
  for (std::int32_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard_session(s).pool(), &sharded.pool());
    EXPECT_EQ(sharded.shard_session(s).thread_count(), 4u);
  }
  // And the budgeted session still solves correctly (nested bulk
  // regions on the one pool), matching the flat session bitwise.
  Session flat(instance);
  const SolveResult mono = engine::solve(flat, {.algorithm = "averaging"});
  const SolveResult part = sharded.solve({.algorithm = "averaging"});
  EXPECT_EQ(mono.x, part.x);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/util/check.hpp"

#include <gtest/gtest.h>

namespace mmlp {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MMLP_CHECK(true));
  EXPECT_NO_THROW(MMLP_CHECK_EQ(1, 1));
  EXPECT_NO_THROW(MMLP_CHECK_LE(1, 2));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(MMLP_CHECK(false), CheckError);
  EXPECT_THROW(MMLP_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(MMLP_CHECK_LT(2, 1), CheckError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    MMLP_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, ComparisonMacrosReportOperands) {
  try {
    MMLP_CHECK_EQ(3, 7);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=7"), std::string::npos);
  }
}

}  // namespace
}  // namespace mmlp

// InstanceDelta / Instance::apply: the mutation layer under the update
// pipeline. The ground truth throughout is Builder::build — a mutated
// instance must be block-for-block identical to building the edited
// coefficient set from scratch (serialize → deserialize round-trips
// through the Builder, so equality against the round-trip pins exactly
// that), revisions must be monotone, and invalid deltas must throw
// before anything is committed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

/// 2 resources, 3 agents, 2 parties:
///   a(0,0)=1, a(0,1)=2, a(1,1)=1, a(1,2)=3
///   c(0,0)=1, c(0,2)=2, c(1,1)=1
Instance small_instance() {
  Instance::Builder builder;
  builder.set_usage(0, 0, 1.0).set_usage(0, 1, 2.0);
  builder.set_usage(1, 1, 1.0).set_usage(1, 2, 3.0);
  builder.set_benefit(0, 0, 1.0).set_benefit(0, 2, 2.0);
  builder.set_benefit(1, 1, 1.0);
  return std::move(builder).build();
}

/// The mutated blocks must equal a from-scratch build of the same
/// coefficient set (deserialize runs the Builder).
void expect_consistent(const Instance& instance) {
  instance.validate();
  EXPECT_TRUE(instance == Instance::deserialize(instance.serialize()));
}

TEST(InstanceDelta, EmptyDeltaIsANoOp) {
  Instance instance = small_instance();
  const DeltaEffect effect = instance.apply({});
  EXPECT_EQ(effect.revision, 0u);
  EXPECT_FALSE(effect.structural);
  EXPECT_TRUE(effect.touched.empty());
  EXPECT_EQ(instance.revision(), 0u);
}

TEST(InstanceDelta, ValueEditWritesInPlaceInBothDirections) {
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.set_usage(0, 1, 5.0).set_benefit(1, 1, 0.25);
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_EQ(effect.revision, 1u);
  EXPECT_EQ(instance.revision(), 1u);
  EXPECT_FALSE(effect.structural);
  EXPECT_FALSE(effect.remapped);
  EXPECT_EQ(effect.touched, (std::vector<AgentId>{1}));
  EXPECT_EQ(instance.usage(0, 1), 5.0);
  EXPECT_EQ(instance.benefit(1, 1), 0.25);
  // The agent-side CSR mirrors see the same values.
  EXPECT_EQ(instance.agent_resources(1)[0].value, 5.0);
  EXPECT_EQ(instance.agent_parties(1)[0].value, 0.25);
  expect_consistent(instance);
}

TEST(InstanceDelta, InsertionRebuildsAndMatchesFromScratchBuild) {
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.set_usage(0, 2, 0.5);  // absent entry: membership changes
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_TRUE(effect.structural);
  EXPECT_FALSE(effect.remapped);
  // Touched closure: the edited agent plus the row's members.
  EXPECT_EQ(effect.touched, (std::vector<AgentId>{0, 1, 2}));
  EXPECT_EQ(instance.usage(0, 2), 0.5);
  EXPECT_EQ(instance.resource_support_size(0), 3u);
  expect_consistent(instance);

  Instance::Builder builder;
  builder.set_usage(0, 0, 1.0).set_usage(0, 1, 2.0).set_usage(0, 2, 0.5);
  builder.set_usage(1, 1, 1.0).set_usage(1, 2, 3.0);
  builder.set_benefit(0, 0, 1.0).set_benefit(0, 2, 2.0);
  builder.set_benefit(1, 1, 1.0);
  EXPECT_TRUE(instance == std::move(builder).build());
}

TEST(InstanceDelta, EraseRemovesTheEntry) {
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.erase_usage(0, 1);
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_TRUE(effect.structural);
  EXPECT_EQ(instance.usage(0, 1), 0.0);
  EXPECT_EQ(instance.resource_support_size(0), 1u);
  // Agent 1 still holds resource 1, so I_1 stays nonempty.
  EXPECT_EQ(instance.agent_resources(1).size(), 1u);
  expect_consistent(instance);
}

TEST(InstanceDelta, AdditionsAppendFreshIds) {
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.add_agents(1).add_resources(1).add_parties(1);
  delta.set_usage(2, 3, 1.5);      // new resource 2, new agent 3
  delta.set_usage(0, 3, 0.25);     // new agent joins an old resource
  delta.set_benefit(2, 3, 2.0);    // new party 2
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_TRUE(effect.structural);
  EXPECT_FALSE(effect.remapped);
  EXPECT_EQ(instance.num_agents(), 4);
  EXPECT_EQ(instance.num_resources(), 3);
  EXPECT_EQ(instance.num_parties(), 3);
  EXPECT_EQ(instance.usage(2, 3), 1.5);
  EXPECT_EQ(instance.usage(0, 3), 0.25);
  EXPECT_EQ(instance.benefit(2, 3), 2.0);
  // The new agent is in the touched closure.
  EXPECT_TRUE(std::binary_search(effect.touched.begin(), effect.touched.end(),
                                 AgentId{3}));
  expect_consistent(instance);
}

TEST(InstanceDelta, AgentRemovalCompactsIdsAndCascades) {
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.remove_agent(0);
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_TRUE(effect.structural);
  EXPECT_TRUE(effect.remapped);
  ASSERT_EQ(effect.agent_remap.size(), 3u);
  EXPECT_EQ(effect.agent_remap[0], -1);
  EXPECT_EQ(effect.agent_remap[1], 0);
  EXPECT_EQ(effect.agent_remap[2], 1);
  EXPECT_EQ(instance.num_agents(), 2);
  // Old agents 1, 2 are now 0, 1; resource/party ids are stable here
  // (nothing was emptied — resource 0 keeps old agent 1, party 0 keeps
  // old agent 2).
  EXPECT_EQ(instance.usage(0, 0), 2.0);   // was a(0,1)
  EXPECT_EQ(instance.usage(1, 1), 3.0);   // was a(1,2)
  EXPECT_EQ(instance.benefit(0, 1), 2.0); // was c(0,2)
  expect_consistent(instance);
}

TEST(InstanceDelta, RemovalCascadesEmptiedResourcesAndParties) {
  // Agent 1 is party 1's only member; removing it must drop the party
  // and compact the party ids.
  Instance instance = small_instance();
  InstanceDelta delta;
  delta.remove_agent(1);
  const DeltaEffect effect = instance.apply(delta);

  EXPECT_TRUE(effect.remapped);
  EXPECT_EQ(instance.num_agents(), 2);
  EXPECT_EQ(instance.num_resources(), 2);  // both kept a member
  EXPECT_EQ(instance.num_parties(), 1);    // party 1 cascaded away
  expect_consistent(instance);
}

TEST(InstanceDelta, RevisionIsMonotone) {
  Instance instance = small_instance();
  InstanceDelta value_edit;
  value_edit.set_usage(0, 0, 2.0);
  EXPECT_EQ(instance.apply(value_edit).revision, 1u);
  InstanceDelta structural;
  structural.set_usage(1, 0, 1.0);
  EXPECT_EQ(instance.apply(structural).revision, 2u);
  EXPECT_EQ(instance.revision(), 2u);
}

TEST(InstanceDelta, InvalidDeltasThrowWithoutMutating) {
  Instance instance = small_instance();
  const Instance before = instance;

  InstanceDelta absent_erase;
  absent_erase.erase_usage(0, 2);
  EXPECT_THROW(instance.apply(absent_erase), CheckError);

  InstanceDelta out_of_range;
  out_of_range.set_usage(7, 0, 1.0);
  EXPECT_THROW(instance.apply(out_of_range), CheckError);

  InstanceDelta duplicate;
  duplicate.set_usage(0, 0, 1.0).set_usage(0, 0, 2.0);
  EXPECT_THROW(instance.apply(duplicate), CheckError);

  // Erasing agent 2's only resource entry would empty I_2.
  InstanceDelta empties_agent;
  empties_agent.erase_usage(1, 2);
  EXPECT_THROW(instance.apply(empties_agent), CheckError);

  // An added resource with no coefficients violates V_i nonempty.
  InstanceDelta empty_resource;
  empty_resource.add_resources(1);
  EXPECT_THROW(instance.apply(empty_resource), CheckError);

  // An explicit erase may not empty a support row.
  InstanceDelta empties_party;
  empties_party.erase_benefit(1, 1);
  EXPECT_THROW(instance.apply(empties_party), CheckError);

  EXPECT_TRUE(instance == before);
  EXPECT_EQ(instance.revision(), 0u);
}

TEST(InstanceDelta, TouchedClosureOnAGrid) {
  // On a structured instance a value edit touches only the edited
  // agent; a membership edit pulls in the whole support row.
  Instance instance = make_grid_instance({.dims = {4, 4}});
  InstanceDelta value_edit;
  const Coef first = instance.resource_support(0)[0];
  value_edit.set_usage(0, first.id, first.value * 2.0);
  const DeltaEffect value_effect = instance.apply(value_edit);
  EXPECT_EQ(value_effect.touched, (std::vector<AgentId>{first.id}));

  // Snapshot the members before the apply (the rebuild invalidates
  // spans into the old blocks).
  std::vector<AgentId> expected;
  for (const Coef& entry : instance.resource_support(0)) {
    expected.push_back(entry.id);
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_GT(expected.size(), 1u);
  InstanceDelta erase;
  erase.erase_usage(0, expected.front());
  const DeltaEffect erase_effect = instance.apply(erase);
  // Touched = the erased agent plus every remaining member of the row.
  EXPECT_EQ(erase_effect.touched, expected);
  expect_consistent(instance);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/lp/matrix.hpp"

#include <gtest/gtest.h>

namespace mmlp {
namespace {

TEST(DenseMatrix, ConstructionAndFill) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 1.5);
    }
  }
}

TEST(DenseMatrix, ElementAccess) {
  DenseMatrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, OutOfRangeThrows) {
  DenseMatrix m(2, 2);
  EXPECT_THROW(m(2, 0), CheckError);
  EXPECT_THROW(m(0, 2), CheckError);
}

TEST(DenseMatrix, Multiply) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 1, 1]^T = [6, 15]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  EXPECT_EQ(m.multiply({1.0, 1.0, 1.0}), (std::vector<double>{6.0, 15.0}));
  EXPECT_EQ(m.multiply({1.0, 0.0, -1.0}), (std::vector<double>{-2.0, -2.0}));
}

TEST(DenseMatrix, MultiplyTranspose) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  EXPECT_EQ(m.multiply_transpose({1.0, 1.0}),
            (std::vector<double>{5.0, 7.0, 9.0}));
}

TEST(DenseMatrix, MultiplyDimensionChecked) {
  DenseMatrix m(2, 3);
  EXPECT_THROW(m.multiply({1.0, 2.0}), CheckError);
  EXPECT_THROW(m.multiply_transpose({1.0, 2.0, 3.0}), CheckError);
}

TEST(DenseMatrix, Transpose) {
  DenseMatrix m(2, 3);
  m(0, 2) = 9.0;
  m(1, 0) = 4.0;
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 9.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(DenseMatrix, MaxAbs) {
  DenseMatrix m(2, 2);
  m(0, 0) = -5.0;
  m(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
}

}  // namespace
}  // namespace mmlp

// End-to-end validation of the Section 2 applications: sensor-network
// lifetime and ISP fair share, solved by all three algorithm tiers.
#include <gtest/gtest.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/sensor.hpp"

namespace mmlp {
namespace {

class SensorPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensorPipeline, AlgorithmHierarchyOnLifetime) {
  SensorNetworkOptions options;
  options.num_sensors = 40;
  options.num_relays = 12;
  options.num_areas = 4;
  options.radio_range = 0.35;
  options.sensing_range = 0.45;
  options.seed = GetParam();
  const auto net = make_sensor_network(options);

  const auto x_safe = safe_solution(net.instance);
  const auto averaging = local_averaging(net.instance, {.R = 1});
  const auto exact = solve_optimal(net.instance);

  const double omega_safe = objective_omega(net.instance, x_safe);
  const double omega_avg = objective_omega(net.instance, averaging.x);

  // All tiers feasible.
  EXPECT_TRUE(evaluate(net.instance, x_safe).feasible());
  EXPECT_TRUE(evaluate(net.instance, averaging.x).feasible());
  EXPECT_TRUE(evaluate(net.instance, exact.x).feasible());

  // ω_safe ≤ ω* and ω_avg ≤ ω* (optimality), and the Δ_I^V guarantee.
  EXPECT_LE(omega_safe, exact.omega + 1e-7);
  EXPECT_LE(omega_avg, exact.omega + 1e-7);
  const double delta =
      static_cast<double>(net.instance.degree_bounds().delta_V_of_I);
  EXPECT_LE(exact.omega, delta * omega_safe + 1e-7);
  // Theorem 3 guarantee via the reported bound.
  if (omega_avg > 0.0) {
    EXPECT_LE(exact.omega / omega_avg, averaging.ratio_bound + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensorPipeline,
                         ::testing::Values(1u, 2u, 3u));

class IspPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IspPipeline, AlgorithmHierarchyOnFairShare) {
  IspOptions options;
  options.num_customers = 8;
  options.links_per_customer = 2;
  options.num_routers = 5;
  options.routers_per_link = 2;
  options.seed = GetParam();
  const auto net = make_isp_network(options);

  const auto x_safe = safe_solution(net.instance);
  const auto averaging = local_averaging(net.instance, {.R = 1});
  const auto exact = solve_optimal(net.instance);

  EXPECT_TRUE(evaluate(net.instance, x_safe).feasible());
  EXPECT_TRUE(evaluate(net.instance, averaging.x).feasible());

  const double omega_safe = objective_omega(net.instance, x_safe);
  const double omega_avg = objective_omega(net.instance, averaging.x);
  EXPECT_GT(omega_safe, 0.0);
  EXPECT_LE(omega_safe, exact.omega + 1e-7);
  EXPECT_LE(omega_avg, exact.omega + 1e-7);
  const double delta =
      static_cast<double>(net.instance.degree_bounds().delta_V_of_I);
  EXPECT_LE(exact.omega, delta * omega_safe + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspPipeline, ::testing::Values(1u, 2u, 3u));

TEST(Applications, LifetimeInterpretation) {
  // ω is the guaranteed per-area data volume per unit battery: scaling
  // all battery budgets (dividing every a_iv by s) scales ω* by s.
  SensorNetworkOptions options;
  options.num_sensors = 30;
  options.num_relays = 10;
  options.num_areas = 4;
  options.radio_range = 0.4;
  options.seed = 77;
  const auto net = make_sensor_network(options);
  const auto base = solve_optimal(net.instance);

  // Halve all energy costs (double the battery).
  Instance::Builder builder;
  for (AgentId v = 0; v < net.instance.num_agents(); ++v) {
    builder.add_agent();
  }
  for (ResourceId i = 0; i < net.instance.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : net.instance.resource_support(i)) {
      builder.set_usage(id, entry.id, entry.value / 2.0);
    }
  }
  for (PartyId k = 0; k < net.instance.num_parties(); ++k) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : net.instance.party_support(k)) {
      builder.set_benefit(id, entry.id, entry.value);
    }
  }
  const auto doubled = std::move(builder).build();
  const auto result = solve_optimal(doubled);
  EXPECT_NEAR(result.omega, 2.0 * base.omega, 1e-6);
}

}  // namespace
}  // namespace mmlp

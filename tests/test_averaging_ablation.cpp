// The damping ablation: eq. (10)'s β_j against its variants.
#include <gtest/gtest.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(AveragingDampingAblation, PaperAndGlobalBetaAreFeasible) {
  const auto instance = make_grid_instance(
      {.dims = {7, 7}, .torus = true, .randomize = true, .seed = 5});
  for (const auto damping :
       {AveragingDamping::kBetaPerAgent, AveragingDamping::kBetaGlobal}) {
    const auto result = local_averaging(instance, {.R = 1, .damping = damping});
    EXPECT_TRUE(evaluate(instance, result.x).feasible());
  }
}

TEST(AveragingDampingAblation, GlobalBetaNeverExceedsPerAgent) {
  // β = min_j β_j damps at least as hard everywhere.
  const auto instance = make_grid_instance({.dims = {8, 8}, .torus = false});
  const auto per_agent =
      local_averaging(instance, {.R = 1, .damping = AveragingDamping::kBetaPerAgent});
  const auto global =
      local_averaging(instance, {.R = 1, .damping = AveragingDamping::kBetaGlobal});
  for (std::size_t v = 0; v < per_agent.x.size(); ++v) {
    EXPECT_LE(global.x[v], per_agent.x[v] + 1e-12);
  }
  EXPECT_LE(objective_omega(instance, global.x),
            objective_omega(instance, per_agent.x) + 1e-9);
}

TEST(AveragingDampingAblation, UndampedOverloadsResources) {
  // Why β matters: without damping the averaged solution generally
  // violates resource constraints. (On perfectly symmetric instances all
  // views agree and the average stays feasible — randomised coefficients
  // break the symmetry.)
  const auto instance = make_grid_instance(
      {.dims = {8, 8}, .torus = true, .randomize = true, .seed = 3});
  const auto raw =
      local_averaging(instance, {.R = 1, .damping = AveragingDamping::kNone});
  EXPECT_FALSE(evaluate(instance, raw.x).feasible());
  EXPECT_GT(evaluate(instance, raw.x).worst_violation, 0.1);
}

TEST(AveragingDampingAblation, ScaledVariantFeasibleAndStrong) {
  // The non-local reference: global rescaling of the undamped average is
  // feasible and at least as good as the β-damped output on benign
  // instances (it uses information no local agent has).
  const auto instance = make_grid_instance(
      {.dims = {8, 8}, .torus = true, .randomize = true, .seed = 9});
  const auto scaled = local_averaging(
      instance, {.R = 1, .damping = AveragingDamping::kNoneThenScale});
  EXPECT_TRUE(evaluate(instance, scaled.x).feasible());
  const auto paper = local_averaging(
      instance, {.R = 1, .damping = AveragingDamping::kBetaPerAgent});
  EXPECT_GE(objective_omega(instance, scaled.x),
            objective_omega(instance, paper.x) - 1e-9);
}

TEST(AveragingDampingAblation, VariantsAgreeWhenViewsAreGlobal) {
  // With R covering the whole graph, every view solves the full LP and
  // β = 1: all variants coincide.
  const auto instance = make_random_instance({.num_agents = 12, .seed = 3});
  LocalAveragingOptions base;
  base.R = 12;  // beyond the diameter
  const auto paper = local_averaging(instance, base);
  for (const auto damping :
       {AveragingDamping::kBetaGlobal, AveragingDamping::kNone,
        AveragingDamping::kNoneThenScale}) {
    auto options = base;
    options.damping = damping;
    const auto variant = local_averaging(instance, options);
    for (std::size_t v = 0; v < paper.x.size(); ++v) {
      EXPECT_NEAR(variant.x[v], paper.x[v], 1e-9);
    }
  }
}

}  // namespace
}  // namespace mmlp

#include "mmlp/graph/hypertree.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(Hypertree, HeightZeroIsSingleNode) {
  const auto tree = Hypertree::complete(2, 3, 0);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_TRUE(tree.edges().empty());
  EXPECT_EQ(tree.leaves(), (std::vector<std::int32_t>{0}));
}

TEST(Hypertree, LevelSizesMatchPaperFormula) {
  // Figure 1(b): a complete (2,3)-ary hypertree of height 5 has 72 leaves.
  const auto tree = Hypertree::complete(2, 3, 5);
  EXPECT_EQ(tree.nodes_at_level(0).size(), 1u);
  EXPECT_EQ(tree.nodes_at_level(1).size(), 2u);    // d
  EXPECT_EQ(tree.nodes_at_level(2).size(), 6u);    // dD
  EXPECT_EQ(tree.nodes_at_level(3).size(), 12u);   // dD·d
  EXPECT_EQ(tree.nodes_at_level(4).size(), 36u);   // (dD)^2
  EXPECT_EQ(tree.nodes_at_level(5).size(), 72u);   // (dD)^2·d
  EXPECT_EQ(tree.leaves().size(), 72u);
}

TEST(Hypertree, ExpectedLevelSizeClosedForm) {
  EXPECT_EQ(Hypertree::expected_level_size(2, 3, 0), 1);
  EXPECT_EQ(Hypertree::expected_level_size(2, 3, 1), 2);
  EXPECT_EQ(Hypertree::expected_level_size(2, 3, 4), 36);
  EXPECT_EQ(Hypertree::expected_level_size(3, 2, 3), 18);  // d²D = 9·2
}

TEST(Hypertree, EdgeTypesAlternate) {
  const auto tree = Hypertree::complete(2, 3, 4);
  for (const auto& edge : tree.edges()) {
    const std::int32_t parent_level = tree.level(edge.parent);
    if (parent_level % 2 == 0) {
      EXPECT_EQ(edge.type, HyperedgeType::kTypeI);
      EXPECT_EQ(edge.children.size(), 2u);  // d children
    } else {
      EXPECT_EQ(edge.type, HyperedgeType::kTypeII);
      EXPECT_EQ(edge.children.size(), 3u);  // D children
    }
    for (const std::int32_t child : edge.children) {
      EXPECT_EQ(tree.level(child), parent_level + 1);
    }
  }
}

TEST(Hypertree, EveryNonRootNodeHasExactlyOneParentEdge) {
  const auto tree = Hypertree::complete(3, 2, 3);
  std::vector<int> parent_count(static_cast<std::size_t>(tree.num_nodes()), 0);
  for (const auto& edge : tree.edges()) {
    for (const std::int32_t child : edge.children) {
      ++parent_count[static_cast<std::size_t>(child)];
    }
  }
  EXPECT_EQ(parent_count[0], 0);  // root
  for (std::size_t v = 1; v < parent_count.size(); ++v) {
    EXPECT_EQ(parent_count[v], 1);
  }
}

TEST(Hypertree, LeafCountIsTheQDegreeFormula) {
  // Height 2R−1 ⇒ d^R·D^(R−1) leaves (the degree of Q in Section 4.2).
  for (const auto& [d, D, R] : {std::tuple{2, 2, 2}, std::tuple{2, 3, 2},
                                std::tuple{3, 2, 3}, std::tuple{2, 1, 3}}) {
    const auto tree = Hypertree::complete(d, D, 2 * R - 1);
    std::int64_t expected = 1;
    for (int e = 0; e < R; ++e) expected *= d;
    for (int e = 0; e + 1 < R; ++e) expected *= D;
    EXPECT_EQ(static_cast<std::int64_t>(tree.leaves().size()), expected)
        << "d=" << d << " D=" << D << " R=" << R;
  }
}

TEST(Hypertree, DegenerateFanoutOne) {
  // d = D = 1 gives a path.
  const auto tree = Hypertree::complete(1, 1, 4);
  EXPECT_EQ(tree.num_nodes(), 5);
  for (std::int32_t l = 0; l <= 4; ++l) {
    EXPECT_EQ(tree.nodes_at_level(l).size(), 1u);
  }
}

TEST(Hypertree, RejectsBadParameters) {
  EXPECT_THROW(Hypertree::complete(0, 1, 2), CheckError);
  EXPECT_THROW(Hypertree::complete(1, 0, 2), CheckError);
  EXPECT_THROW(Hypertree::complete(1, 1, -1), CheckError);
}

TEST(Hypertree, NodesAtLevelBoundsChecked) {
  const auto tree = Hypertree::complete(2, 2, 2);
  EXPECT_THROW(tree.nodes_at_level(3), CheckError);
  EXPECT_THROW(tree.nodes_at_level(-1), CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/lp/duality.hpp"

#include <gtest/gtest.h>

#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/rng.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

LpProblem small_packing() {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3.0, 2.0};
  auto& r0 = lp.add_row(ConstraintSense::kLe, 4.0);
  r0.vars = {0, 1};
  r0.coeffs = {1.0, 1.0};
  auto& r1 = lp.add_row(ConstraintSense::kLe, 6.0);
  r1.vars = {0, 1};
  r1.coeffs = {1.0, 3.0};
  return lp;
}

TEST(Duality, ShapePredicates) {
  EXPECT_TRUE(is_le_form(small_packing()));
  EXPECT_TRUE(is_packing_lp(small_packing()));
  LpProblem with_ge = small_packing();
  with_ge.add_row(ConstraintSense::kGe, 0.0);
  with_ge.rows.back().vars = {0};
  with_ge.rows.back().coeffs = {1.0};
  EXPECT_FALSE(is_le_form(with_ge));
  LpProblem negative = small_packing();
  negative.objective[0] = -1.0;
  EXPECT_TRUE(is_le_form(negative));
  EXPECT_FALSE(is_packing_lp(negative));
}

TEST(Duality, DualShape) {
  const auto dual = dual_of_le_form(small_packing());
  EXPECT_EQ(dual.num_vars, 2);        // one var per primal row
  EXPECT_EQ(dual.rows.size(), 2u);    // one row per primal var
  // Objective is −b.
  EXPECT_DOUBLE_EQ(dual.objective[0], -4.0);
  EXPECT_DOUBLE_EQ(dual.objective[1], -6.0);
  // Row j: −(Aᵀ y)_j ≤ −c_j.
  EXPECT_DOUBLE_EQ(dual.rows[0].rhs, -3.0);
  EXPECT_DOUBLE_EQ(dual.rows[1].rhs, -2.0);
}

TEST(Duality, StrongDualityOnTextbookLp) {
  const auto primal = small_packing();
  const auto dual = dual_of_le_form(primal);
  const auto p = solve_lp(primal);
  const auto d = solve_lp(dual);
  ASSERT_EQ(p.status, LpStatus::kOptimal);
  ASSERT_EQ(d.status, LpStatus::kOptimal);
  EXPECT_NEAR(p.objective, -d.objective, 1e-8);  // dual value is −(min b·y)
}

class StrongDuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrongDuality, RandomPackingLps) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    LpProblem primal;
    primal.num_vars = static_cast<std::int32_t>(rng.uniform_int(2, 5));
    primal.objective.resize(static_cast<std::size_t>(primal.num_vars));
    for (double& c : primal.objective) {
      c = rng.uniform(0.1, 2.0);
    }
    const auto rows = static_cast<std::int32_t>(rng.uniform_int(2, 5));
    for (std::int32_t i = 0; i < rows; ++i) {
      auto& row = primal.add_row(ConstraintSense::kLe, rng.uniform(0.5, 3.0));
      for (std::int32_t j = 0; j < primal.num_vars; ++j) {
        row.vars.push_back(j);
        row.coeffs.push_back(rng.uniform(0.1, 2.0));
      }
    }
    const auto p = solve_lp(primal);
    const auto d = solve_lp(dual_of_le_form(primal));
    ASSERT_EQ(p.status, LpStatus::kOptimal);
    ASSERT_EQ(d.status, LpStatus::kOptimal);
    EXPECT_NEAR(p.objective, -d.objective, 1e-6) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrongDuality,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Duality, WeakDualityGapNonNegative) {
  const auto primal = small_packing();
  const auto dual = dual_of_le_form(primal);
  const auto p = solve_lp(primal);
  const auto d = solve_lp(dual);
  // Any feasible pair: gap = b·y − c·x >= 0; at the optima it is ~0.
  EXPECT_NEAR(duality_gap(primal, p.x, d.x), 0.0, 1e-7);
  // Suboptimal primal point widens the gap.
  EXPECT_GT(duality_gap(primal, {0.0, 0.0}, d.x), 1.0);
}

TEST(Duality, PackingFromSinglePartyInstance) {
  const auto instance = testing::single_party_instance();
  const auto packing = packing_from_instance(instance);
  EXPECT_EQ(packing.num_vars, 3);
  EXPECT_EQ(packing.rows.size(), 2u);
  const auto result = solve_lp(packing);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);  // known optimum
}

TEST(Duality, CoveringDualOfInstanceMatchesPrimal) {
  const auto instance = testing::single_party_instance();
  const auto primal = packing_from_instance(instance);
  const auto covering = covering_from_instance(instance);
  const auto p = solve_lp(primal);
  const auto c = solve_lp(covering);
  ASSERT_EQ(c.status, LpStatus::kOptimal);
  EXPECT_NEAR(p.objective, -c.objective, 1e-8);
}

TEST(Duality, PackingFromInstanceRequiresSingleParty) {
  const auto instance = testing::two_agent_instance();  // two parties
  EXPECT_THROW(packing_from_instance(instance), CheckError);
}

TEST(Duality, DualRejectsNonLeForm) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  auto& row = lp.add_row(ConstraintSense::kGe, 1.0);
  row.vars = {0};
  row.coeffs = {1.0};
  EXPECT_THROW(dual_of_le_form(lp), CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/gen/grid.hpp"

#include <gtest/gtest.h>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

TEST(GridIndex, RoundTrip) {
  const std::vector<std::int32_t> dims{3, 4, 5};
  for (std::int64_t index = 0; index < 60; ++index) {
    EXPECT_EQ(grid_cell_index(dims, grid_cell_coords(dims, index)), index);
  }
}

TEST(GridIndex, RowMajorOrder) {
  const std::vector<std::int32_t> dims{2, 3};
  EXPECT_EQ(grid_cell_index(dims, {0, 0}), 0);
  EXPECT_EQ(grid_cell_index(dims, {0, 2}), 2);
  EXPECT_EQ(grid_cell_index(dims, {1, 0}), 3);
}

TEST(GridIndex, RejectsOutOfRange) {
  EXPECT_THROW(grid_cell_index({2, 2}, {0, 2}), CheckError);
  EXPECT_THROW(grid_cell_index({2, 2}, {-1, 0}), CheckError);
  EXPECT_THROW(grid_cell_index({2}, {0, 0}), CheckError);
}

TEST(Grid, TorusCounts) {
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  EXPECT_EQ(instance.num_agents(), 16);
  EXPECT_EQ(instance.num_resources(), 16);
  EXPECT_EQ(instance.num_parties(), 16);
  // Every 2D torus neighbourhood has 5 cells.
  for (ResourceId i = 0; i < 16; ++i) {
    EXPECT_EQ(instance.resource_support(i).size(), 5u);
  }
  const auto bounds = instance.degree_bounds();
  EXPECT_EQ(bounds.delta_V_of_I, 5u);
  EXPECT_EQ(bounds.delta_I_of_V, 5u);
}

TEST(Grid, NonTorusBoundaryShrinks) {
  const auto instance = make_grid_instance({.dims = {3, 3}, .torus = false});
  // Corner neighbourhood: cell + 2 neighbours.
  EXPECT_EQ(instance.resource_support(0).size(), 3u);
  // Centre cell (1,1) = index 4: full 5-neighbourhood.
  EXPECT_EQ(instance.resource_support(4).size(), 5u);
}

TEST(Grid, OneDimensionalPath) {
  const auto instance = make_grid_instance({.dims = {6}, .torus = false});
  EXPECT_EQ(instance.num_agents(), 6);
  EXPECT_EQ(instance.resource_support(0).size(), 2u);
  EXPECT_EQ(instance.resource_support(3).size(), 3u);
}

TEST(Grid, ThreeDimensionalTorus) {
  const auto instance = make_grid_instance({.dims = {3, 3, 3}, .torus = true});
  EXPECT_EQ(instance.num_agents(), 27);
  for (ResourceId i = 0; i < 27; ++i) {
    EXPECT_EQ(instance.resource_support(i).size(), 7u);  // 1 + 2·3
  }
}

TEST(Grid, PartyStrideReducesParties) {
  const auto instance =
      make_grid_instance({.dims = {4, 4}, .torus = true, .party_stride = 4});
  EXPECT_EQ(instance.num_parties(), 4);
  EXPECT_EQ(instance.num_resources(), 16);
}

TEST(Grid, RandomizedCoefficientsInRange) {
  const auto instance = make_grid_instance(
      {.dims = {4, 4}, .torus = true, .randomize = true, .seed = 5});
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    for (const Coef& entry : instance.resource_support(i)) {
      EXPECT_GE(entry.value, 0.5);
      EXPECT_LE(entry.value, 1.5);
    }
  }
}

TEST(Grid, DeterministicBySeed) {
  const GridOptions options{.dims = {4, 4}, .torus = true, .randomize = true, .seed = 9};
  EXPECT_TRUE(make_grid_instance(options) == make_grid_instance(options));
}

TEST(Grid, SizeTwoTorusAxisDedupes) {
  // On a torus axis of extent 2, -1 and +1 wrap to the same neighbour.
  const auto instance = make_grid_instance({.dims = {2, 2}, .torus = true});
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    EXPECT_EQ(instance.resource_support(i).size(), 3u);
  }
}

TEST(Grid, CommunicationGraphIsConnected) {
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = false});
  EXPECT_TRUE(instance.communication_graph().connected());
}

TEST(Grid, GrowthShrinksWithRadius) {
  const auto instance = make_grid_instance({.dims = {11, 11}, .torus = true});
  const auto h = instance.communication_graph();
  const auto profile = growth_profile(h, 3);
  for (std::size_t r = 1; r < profile.size(); ++r) {
    EXPECT_LT(profile[r], profile[r - 1]);
  }
}

}  // namespace
}  // namespace mmlp

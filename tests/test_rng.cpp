#include "mmlp/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mmlp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.uniform_int(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 2000 draws
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double z = rng.normal(2.0, 3.0);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  const auto perm = rng.permutation(100);
  std::vector<std::int32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::int32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rng, PermutationsVaryAcrossDraws) {
  Rng rng(19);
  EXPECT_NE(rng.permutation(50), rng.permutation(50));
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const std::int32_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Rng, SampleWholeRange) {
  Rng rng(29);
  auto sample = rng.sample_without_replacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child must differ from a same-seed parent clone continuation.
  Rng parent_clone(31);
  (void)parent_clone.next_u64();  // consume what split() consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_clone.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> values{1, 2, 2, 3, 3, 3};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Splitmix, KnownFirstOutputs) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation (Vigna).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace mmlp

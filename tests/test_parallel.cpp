#include "mmlp/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmlp {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); }, &pool);
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, MatchesSerialForDeterministically) {
  ThreadPool pool(4);
  std::vector<double> parallel_out(500);
  std::vector<double> serial_out(500);
  auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i % 50; ++j) {
      acc += static_cast<double>(i * j) * 1e-3;
    }
    return acc;
  };
  parallel_for(500, [&](std::size_t i) { parallel_out[i] = body(i); }, &pool);
  serial_for(500, [&](std::size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);  // bitwise identical
}

TEST(ParallelFor, GrainOneStillCoversAll) {
  ThreadPool pool(2);
  std::vector<int> hits(37, 0);
  parallel_for(37, [&](std::size_t i) { hits[i] += 1; }, &pool, 1);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 37);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  // A nested parallel_for inside a worker must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, &pool);
  }, &pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, UsesGlobalPoolByDefault) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, ExceptionFromBodyIsRethrownInCaller) {
  // Pool tasks must not throw, but parallel_for traps exceptions from
  // the body and rethrows the first in the caller — a CheckError inside
  // a parallel loop (e.g. an AgentContext horizon violation) stays
  // catchable instead of terminating a worker thread.
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   1000,
                   [](std::size_t i) {
                     if (i == 501) {
                       throw std::runtime_error("boom");
                     }
                   },
                   &pool),
               std::runtime_error);
  // The pool survives and keeps executing work afterwards.
  std::atomic<int> counter{0};
  parallel_for(100, [&](std::size_t) { counter.fetch_add(1); }, &pool);
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/util/parallel.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mmlp {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); }, &pool);
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, MatchesSerialForDeterministically) {
  ThreadPool pool(4);
  std::vector<double> parallel_out(500);
  std::vector<double> serial_out(500);
  auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i % 50; ++j) {
      acc += static_cast<double>(i * j) * 1e-3;
    }
    return acc;
  };
  parallel_for(500, [&](std::size_t i) { parallel_out[i] = body(i); }, &pool);
  serial_for(500, [&](std::size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);  // bitwise identical
}

TEST(ParallelFor, GrainOneStillCoversAll) {
  ThreadPool pool(2);
  std::vector<int> hits(37, 0);
  parallel_for(37, [&](std::size_t i) { hits[i] += 1; }, &pool, 1);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 37);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  // A nested parallel_for inside a worker must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, &pool);
  }, &pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, UsesGlobalPoolByDefault) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ChunkedParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  chunked_parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          visits[i].fetch_add(1);
        }
      },
      &pool);
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ChunkedParallelFor, ZeroCountNeverInvokesBody) {
  ThreadPool pool(2);
  bool touched = false;
  chunked_parallel_for(
      0, [&](std::size_t, std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ChunkedParallelFor, ExceptionPropagatesWhenCountBelowWorkerCount) {
  // count < workers: every chunk is a single index and some workers stay
  // idle; the throw must still reach the caller.
  ThreadPool pool(8);
  EXPECT_THROW(chunked_parallel_for(
                   3,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 1) {
                       throw std::runtime_error("small-range boom");
                     }
                   },
                   &pool),
               std::runtime_error);
  // The pool survives for subsequent work.
  std::atomic<int> counter{0};
  chunked_parallel_for(
      16,
      [&](std::size_t begin, std::size_t end) {
        counter.fetch_add(static_cast<int>(end - begin));
      },
      &pool);
  EXPECT_EQ(counter.load(), 16);
}

TEST(ChunkedParallelFor, ExceptionInLastChunkPropagates) {
  // The last chunk is the one whose range ends at count; by the time it
  // throws, every other chunk may already have drained — the rethrow
  // must not be lost to the pool going idle.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  EXPECT_THROW(chunked_parallel_for(
                   kCount,
                   [](std::size_t, std::size_t end) {
                     if (end == kCount) {
                       throw std::runtime_error("last-chunk boom");
                     }
                   },
                   &pool),
               std::runtime_error);
}

TEST(ChunkedParallelFor, ExceptionCarriesTheThrownMessage) {
  ThreadPool pool(2);
  try {
    chunked_parallel_for(
        64, [](std::size_t, std::size_t) { throw std::runtime_error("boom"); },
        &pool);
    FAIL() << "expected the body's exception to reach the caller";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
}

TEST(ParallelFor, ExceptionFromBodyIsRethrownInCaller) {
  // Pool tasks must not throw, but parallel_for traps exceptions from
  // the body and rethrows the first in the caller — a CheckError inside
  // a parallel loop (e.g. an AgentContext horizon violation) stays
  // catchable instead of terminating a worker thread.
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   1000,
                   [](std::size_t i) {
                     if (i == 501) {
                       throw std::runtime_error("boom");
                     }
                   },
                   &pool),
               std::runtime_error);
  // The pool survives and keeps executing work afterwards.
  std::atomic<int> counter{0};
  parallel_for(100, [&](std::size_t) { counter.fetch_add(1); }, &pool);
  EXPECT_EQ(counter.load(), 100);
}

TEST(GlobalThreadCount, ReconfigureAfterCreationOnlyAcceptsSameSize) {
  // The global pool exists by now (earlier tests used it), so the only
  // legal set_global_thread_count calls are the ones matching its size;
  // anything else must fail loudly instead of silently keeping the old
  // pool.
  const std::size_t current = ThreadPool::global().size();
  EXPECT_NO_THROW(set_global_thread_count(current));
  EXPECT_THROW(set_global_thread_count(current + 7), CheckError);
}

}  // namespace
}  // namespace mmlp

#include "mmlp/util/parallel.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <new>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

// Global allocation counter for the zero-steady-state-allocation test:
// the bulk-dispatch path promises not to touch the heap, and this TU
// replaces operator new to prove it. Counting only — behaviour is
// unchanged (malloc/free), so every other test runs as usual.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size > 0 ? size : 1)) {
    return ptr;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace mmlp {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); }, &pool);
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, MatchesSerialForDeterministically) {
  ThreadPool pool(4);
  std::vector<double> parallel_out(500);
  std::vector<double> serial_out(500);
  auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i % 50; ++j) {
      acc += static_cast<double>(i * j) * 1e-3;
    }
    return acc;
  };
  parallel_for(500, [&](std::size_t i) { parallel_out[i] = body(i); }, &pool);
  serial_for(500, [&](std::size_t i) { serial_out[i] = body(i); });
  EXPECT_EQ(parallel_out, serial_out);  // bitwise identical
}

TEST(ParallelFor, GrainOneStillCoversAll) {
  ThreadPool pool(2);
  std::vector<int> hits(37, 0);
  parallel_for(37, [&](std::size_t i) { hits[i] += 1; }, &pool, 1);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 37);
}

TEST(ParallelFor, NestedCallsFallBackToSerial) {
  // A nested parallel_for inside a worker must not deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { total.fetch_add(1); }, &pool);
  }, &pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, UsesGlobalPoolByDefault) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ChunkedParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  chunked_parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          visits[i].fetch_add(1);
        }
      },
      &pool);
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ChunkedParallelFor, ZeroCountNeverInvokesBody) {
  ThreadPool pool(2);
  bool touched = false;
  chunked_parallel_for(
      0, [&](std::size_t, std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ChunkedParallelFor, ExceptionPropagatesWhenCountBelowWorkerCount) {
  // count < workers: every chunk is a single index and some workers stay
  // idle; the throw must still reach the caller.
  ThreadPool pool(8);
  EXPECT_THROW(chunked_parallel_for(
                   3,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 1) {
                       throw std::runtime_error("small-range boom");
                     }
                   },
                   &pool),
               std::runtime_error);
  // The pool survives for subsequent work.
  std::atomic<int> counter{0};
  chunked_parallel_for(
      16,
      [&](std::size_t begin, std::size_t end) {
        counter.fetch_add(static_cast<int>(end - begin));
      },
      &pool);
  EXPECT_EQ(counter.load(), 16);
}

TEST(ChunkedParallelFor, ExceptionInLastChunkPropagates) {
  // The last chunk is the one whose range ends at count; by the time it
  // throws, every other chunk may already have drained — the rethrow
  // must not be lost to the pool going idle.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  EXPECT_THROW(chunked_parallel_for(
                   kCount,
                   [](std::size_t, std::size_t end) {
                     if (end == kCount) {
                       throw std::runtime_error("last-chunk boom");
                     }
                   },
                   &pool),
               std::runtime_error);
}

TEST(ChunkedParallelFor, ExceptionCarriesTheThrownMessage) {
  ThreadPool pool(2);
  try {
    chunked_parallel_for(
        64, [](std::size_t, std::size_t) { throw std::runtime_error("boom"); },
        &pool);
    FAIL() << "expected the body's exception to reach the caller";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
}

TEST(ParallelFor, ExceptionFromBodyIsRethrownInCaller) {
  // Pool tasks must not throw, but parallel_for traps exceptions from
  // the body and rethrows the first in the caller — a CheckError inside
  // a parallel loop (e.g. an AgentContext horizon violation) stays
  // catchable instead of terminating a worker thread.
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   1000,
                   [](std::size_t i) {
                     if (i == 501) {
                       throw std::runtime_error("boom");
                     }
                   },
                   &pool),
               std::runtime_error);
  // The pool survives and keeps executing work afterwards.
  std::atomic<int> counter{0};
  parallel_for(100, [&](std::size_t) { counter.fetch_add(1); }, &pool);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ChunkedParallelFor, SteadyStateDispatchDoesNotAllocate) {
  // The bulk path's contract: after warm-up, a chunked_parallel_for
  // performs zero heap allocations — the body reaches workers through a
  // function-pointer trampoline over a stack-owned job descriptor, and
  // the pool's job registry is pre-reserved. A std::function per chunk
  // (the old design) would fail this immediately.
  ThreadPool pool(4);
  std::vector<double> out(4096, 0.0);
  auto run_once = [&] {
    chunked_parallel_for(
        out.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            out[i] = static_cast<double>(i) * 0.5;
          }
        },
        &pool);
  };
  for (int warmup = 0; warmup < 4; ++warmup) {
    run_once();
  }
  const std::uint64_t before = g_allocations.load();
  for (int rep = 0; rep < 16; ++rep) {
    run_once();
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST(ThreadPool, SchedulerStressRandomCostsAndExceptions) {
  // N workers × randomized per-chunk costs × an exception round every
  // few iterations: first-exception propagation must hold under load,
  // the pool must survive every round, and the final correctness pass
  // must still visit each index exactly once.
  ThreadPool pool(8);
  Rng rng(271828u);
  for (int round = 0; round < 40; ++round) {
    const std::size_t count = 64 + rng.next_below(2048);
    const bool poison = round % 5 == 4;
    const std::size_t poison_index = rng.next_below(count);
    std::vector<std::atomic<int>> visits(count);
    auto body = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Unbalanced chunk cost: some indices spin, some are free.
        if (i % 97 == 0) {
          volatile double sink = 0.0;
          for (int spin = 0; spin < 2000; ++spin) {
            sink = sink + static_cast<double>(spin) * 1e-9;
          }
        }
        if (poison && i == poison_index) {
          throw std::runtime_error("stress boom");
        }
        visits[i].fetch_add(1);
      }
    };
    if (poison) {
      EXPECT_THROW(chunked_parallel_for(count, body, &pool),
                   std::runtime_error);
    } else {
      chunked_parallel_for(count, body, &pool);
      for (const auto& visit : visits) {
        EXPECT_EQ(visit.load(), 1);
      }
    }
  }
}

TEST(ThreadPool, NestedParallelForFromSubmittedTaskDoesNotDeadlock) {
  // A raw submitted task that itself runs a parallel_for on the SAME
  // pool: the inner region must complete with every worker potentially
  // busy in the outer tasks — the bulk path's caller-participation
  // guarantees progress even when no worker is free to help.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int task = 0; task < 8; ++task) {
    pool.submit([&pool, &total] {
      parallel_for(64, [&total](std::size_t) { total.fetch_add(1); }, &pool);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPool, WorkerStatsAreMonotoneAndCountWork) {
  ThreadPool pool(4);
  const auto snapshot_totals = [&] {
    ThreadPool::WorkerStats totals;
    for (const ThreadPool::WorkerStats& w : pool.worker_stats()) {
      totals.busy_ns += w.busy_ns;
      totals.idle_ns += w.idle_ns;
      totals.tasks += w.tasks;
      totals.chunks += w.chunks;
      totals.steals += w.steals;
    }
    return totals;
  };
  ThreadPool::WorkerStats previous = snapshot_totals();
  for (int round = 0; round < 5; ++round) {
    for (int task = 0; task < 32; ++task) {
      pool.submit([] {
        volatile double sink = 0.0;
        for (int spin = 0; spin < 1000; ++spin) {
          sink = sink + static_cast<double>(spin);
        }
      });
    }
    pool.wait_idle();
    chunked_parallel_for(
        4096,
        [](std::size_t begin, std::size_t end) {
          volatile double sink = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            sink = sink + static_cast<double>(i);
          }
        },
        &pool);
    const ThreadPool::WorkerStats current = snapshot_totals();
    // Every counter is monotone...
    EXPECT_GE(current.busy_ns, previous.busy_ns);
    EXPECT_GE(current.idle_ns, previous.idle_ns);
    EXPECT_GE(current.tasks, previous.tasks);
    EXPECT_GE(current.chunks, previous.chunks);
    EXPECT_GE(current.steals, previous.steals);
    // ...and the submit path is fully accounted: all 32 tasks of this
    // round ran on workers (the caller never executes submitted tasks).
    EXPECT_EQ(current.tasks, previous.tasks + 32);
    previous = current;
  }
  EXPECT_GT(previous.busy_ns, 0u);
}

TEST(ThreadPool, QueueDepthReportsPendingTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  // Park both workers on a latch, then pile up tasks behind them: the
  // backlog must be visible while the workers are pinned and drain to
  // zero after release.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> pinned{0};
  for (int task = 0; task < 2; ++task) {
    pool.submit([gate, &pinned] {
      pinned.fetch_add(1);
      gate.wait();
    });
  }
  while (pinned.load() < 2) {
    std::this_thread::yield();
  }
  for (int task = 0; task < 6; ++task) {
    pool.submit([] {});
  }
  EXPECT_EQ(pool.queue_depth(), 6u);
  release.set_value();
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(GlobalThreadCount, ReconfigureAfterCreationOnlyAcceptsSameSize) {
  // The global pool exists by now (earlier tests used it), so the only
  // legal set_global_thread_count calls are the ones matching its size;
  // anything else must fail loudly instead of silently keeping the old
  // pool.
  const std::size_t current = ThreadPool::global().size();
  EXPECT_NO_THROW(set_global_thread_count(current));
  EXPECT_THROW(set_global_thread_count(current + 7), CheckError);
}

}  // namespace
}  // namespace mmlp

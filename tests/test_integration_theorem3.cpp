// End-to-end validation of Theorem 3: the local-averaging algorithm is a
// local approximation scheme on bounded-growth graphs.
#include <gtest/gtest.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/growth.hpp"

namespace mmlp {
namespace {

TEST(Theorem3, GuaranteeHoldsAcrossRadiiOn1DTorus) {
  const auto instance = make_grid_instance(
      {.dims = {24}, .torus = true, .randomize = true, .seed = 3});
  const auto exact = solve_optimal(instance);
  const auto h = instance.communication_graph();
  for (const std::int32_t R : {1, 2, 3}) {
    const auto result = local_averaging(instance, {.R = R});
    ASSERT_TRUE(evaluate(instance, result.x).feasible());
    const double achieved = objective_omega(instance, result.x);
    ASSERT_GT(achieved, 0.0);
    const double ratio = exact.omega / achieved;
    EXPECT_LE(ratio, result.ratio_bound + 1e-6) << "R=" << R;
    EXPECT_LE(result.ratio_bound, theorem3_bound(h, R) + 1e-9) << "R=" << R;
  }
}

TEST(Theorem3, RatioApproachesOneOn2DTorus) {
  // γ(r) = 1 + Θ(1/r) on grids, so the scheme converges: the measured
  // ratio must be monotone (weakly) improving and near 1 for R = 3.
  const auto instance = make_grid_instance({.dims = {12, 12}, .torus = true});
  // Uniform 2D torus: symmetric optimum ω* = 1 exactly.
  std::vector<double> ratios;
  for (const std::int32_t R : {1, 2, 3}) {
    const auto result = local_averaging(instance, {.R = R});
    const double achieved = objective_omega(instance, result.x);
    ratios.push_back(1.0 / achieved);
  }
  EXPECT_LT(ratios[2], ratios[0]);
  EXPECT_LT(ratios[2], 1.45);  // close to optimal by R = 3 (measured ≈ 1.38)
}

TEST(Theorem3, BoundShrinksTowardOneOnLargeTorus) {
  // On this hypergraph B(v, r) is an L1-ball of radius 2r (hyperedges are
  // closed neighbourhoods, i.e. distance-1 in H covers two grid steps), so
  // γ(R−1)γ(R) ≈ ((2R+2)/(2R−2))² decays like 1 + O(1/R):
  // R=1: γ(0)γ(1) = 41, R=2: 85/13 ≈ 6.5, R=3: 145/41 ≈ 3.5.
  // (Extent 18 keeps the radius-8 L1-ball wrap-free.)
  const auto instance = make_grid_instance({.dims = {18, 18}, .torus = true});
  const auto h = instance.communication_graph();
  double previous = 1e9;
  for (const std::int32_t R : {1, 2, 3}) {
    const double bound = theorem3_bound(h, R);
    EXPECT_LT(bound, previous);
    previous = bound;
  }
  EXPECT_NEAR(previous, 145.0 / 41.0, 1e-9);
}

TEST(Theorem3, FeasibilityNeverDependsOnGrowth) {
  // The algorithm stays feasible even on graphs with bad growth
  // (here: a random bounded-degree instance, expander-like).
  const auto instance = make_random_instance({
      .num_agents = 120,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = 7,
  });
  for (const std::int32_t R : {1, 2}) {
    const auto result = local_averaging(instance, {.R = R});
    EXPECT_TRUE(evaluate(instance, result.x).feasible()) << "R=" << R;
  }
}

TEST(Theorem3, GuaranteeOvertakesSafeGuaranteeOnGrids) {
  // The paper's comparison is between *guarantees*: the safe algorithm is
  // stuck at Δ_I^V while the averaging bound γ(R−1)γ(R) → 1 on grids.
  // (On individual near-uniform grid instances safe can measure well —
  // on a perfectly uniform torus it is even optimal — so the instance-
  // level comparison is not the theorem's claim.)
  const auto instance = make_grid_instance(
      {.dims = {12, 12}, .torus = true, .randomize = true, .seed = 11});
  const double delta =
      static_cast<double>(instance.degree_bounds().delta_V_of_I);
  const auto r3 = local_averaging(instance, {.R = 3});
  EXPECT_LT(r3.ratio_bound, delta);  // 1.69 vs 5 measured here
  // And the measured ratio honours the guarantee.
  const auto exact = solve_optimal(instance);
  const double omega_avg = objective_omega(instance, r3.x);
  ASSERT_GT(omega_avg, 0.0);
  EXPECT_LE(exact.omega / omega_avg, r3.ratio_bound + 1e-6);
  // Safe remains within its own (weaker) guarantee.
  const double omega_safe = objective_omega(instance, safe_solution(instance));
  EXPECT_LE(exact.omega / omega_safe, delta + 1e-6);
}

TEST(Theorem3, DampingNeverOvershoots) {
  // β_j ≤ 1 and the averaged LP solutions are per-view feasible, so no
  // agent's x̃ can exceed the max over views of x^u_j; in particular the
  // output is bounded by 1/min_i a_iv over its resources.
  const auto instance = make_grid_instance({.dims = {6, 6}, .torus = true});
  const auto result = local_averaging(instance, {.R = 2});
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    EXPECT_LE(result.beta[static_cast<std::size_t>(v)], 1.0 + 1e-12);
    EXPECT_GE(result.x[static_cast<std::size_t>(v)], 0.0);
  }
}

}  // namespace
}  // namespace mmlp

#include "mmlp/util/cli.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

namespace mmlp {
namespace {

ArgParser make_parser() {
  ArgParser parser("test program");
  parser.add_flag("n", "a count", "10");
  parser.add_flag("rate", "a rate", "0.5");
  parser.add_flag("name", "a label", "default");
  parser.add_switch("verbose", "more output");
  return parser;
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("n"), 10);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.5);
  EXPECT_EQ(parser.get_string("name"), "default");
  EXPECT_FALSE(parser.get_bool("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--n", "42", "--name", "hello"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("n"), 42);
  EXPECT_EQ(parser.get_string("name"), "hello");
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--rate=0.25", "--verbose"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.25);
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagFailsParse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
}

TEST(ArgParser, MissingValueFailsParse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, PositionalArgumentFailsParse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, NonNumericValueThrowsOnTypedGet) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_THROW(parser.get_int("n"), CheckError);
}

TEST(ArgParser, UnregisteredGetThrows) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW(parser.get_string("nope"), CheckError);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser parser("p");
  parser.add_flag("x", "h", "1");
  EXPECT_THROW(parser.add_flag("x", "again", "2"), CheckError);
}

TEST(ArgParser, HelpTextMentionsFlagsAndDefaults) {
  auto parser = make_parser();
  const std::string help = parser.help_text();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("default: 10"), std::string::npos);
  EXPECT_NE(help.find("test program"), std::string::npos);
}

}  // namespace
}  // namespace mmlp

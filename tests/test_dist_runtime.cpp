#include "mmlp/dist/runtime.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

/// A complete (d, D)-ary hypertree as an instance: type I hyperedges
/// become resources, type II hyperedges parties (a = c = 1). The height
/// must be odd (2R−1) so that every node lies in some type I edge and
/// the standing assumption I_v ≠ ∅ holds.
Instance hypertree_instance(std::int32_t d, std::int32_t D,
                            std::int32_t height) {
  const auto tree = Hypertree::complete(d, D, height);
  Instance::Builder builder;
  builder.reserve(tree.num_nodes(), 0, 0);
  for (const HypertreeEdge& edge : tree.edges()) {
    if (edge.type == HyperedgeType::kTypeI) {
      const ResourceId i = builder.add_resource();
      builder.set_usage(i, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_usage(i, child, 1.0);
      }
    } else {
      const PartyId k = builder.add_party();
      builder.set_benefit(k, edge.parent, 1.0);
      for (const std::int32_t child : edge.children) {
        builder.set_benefit(k, child, 1.0);
      }
    }
  }
  return std::move(builder).build();
}

TEST(LocalRuntime, ZeroRoundsKnowsOnlySelf) {
  const auto instance = testing::path_instance(4);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(0);
  for (AgentId v = 0; v < 4; ++v) {
    EXPECT_EQ(knowledge[static_cast<std::size_t>(v)],
              (std::vector<AgentId>{v}));
  }
}

TEST(LocalRuntime, FloodEqualsBalls) {
  // The defining property of the LOCAL model: after r rounds each agent
  // has exactly the packets of B_H(v, r).
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  LocalRuntime runtime(instance);
  const auto& h = runtime.graph();
  for (const std::int32_t rounds : {1, 2, 3}) {
    const auto knowledge = runtime.flood(rounds);
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      EXPECT_EQ(knowledge[static_cast<std::size_t>(v)], ball(h, v, rounds))
          << "agent " << v << " rounds " << rounds;
    }
  }
}

TEST(LocalRuntime, CollaborationObliviousUsesSmallerGraph) {
  const auto instance = testing::two_agent_instance();
  LocalRuntime full(instance, false);
  LocalRuntime oblivious(instance, true);
  EXPECT_EQ(full.graph().num_edges(), 3);
  EXPECT_EQ(oblivious.graph().num_edges(), 1);
}

TEST(LocalRuntime, MessageCountScalesWithRounds) {
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  LocalRuntime runtime(instance);
  const auto one = runtime.message_count(1);
  EXPECT_GT(one, 0);
  EXPECT_EQ(runtime.message_count(3), 3 * one);
  EXPECT_EQ(runtime.message_count(0), 0);
}

TEST(LocalRuntime, ObliviousMessageCountDropsPartyTraffic) {
  // Every grid cell hosts one resource and one party over the same
  // support, so dropping party hyperedges halves each agent's degree —
  // and with it the per-round message bill.
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  const LocalRuntime full(instance, false);
  const LocalRuntime oblivious(instance, true);
  EXPECT_GT(oblivious.message_count(1), 0);
  EXPECT_EQ(full.message_count(1), 2 * oblivious.message_count(1));
  EXPECT_EQ(oblivious.message_count(4), 4 * oblivious.message_count(1));
  EXPECT_EQ(oblivious.message_count(0), 0);
}

TEST(LocalRuntime, ObliviousFloodEqualsObliviousBalls) {
  // The flood-equals-balls property must hold on whichever graph the
  // runtime was asked to use, not just the full hypergraph.
  const auto instance = hypertree_instance(2, 2, 3);
  const LocalRuntime oblivious(instance, true);
  const auto knowledge = oblivious.flood(2);
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    EXPECT_EQ(knowledge[static_cast<std::size_t>(v)],
              ball(oblivious.graph(), v, 2))
        << "agent " << v;
  }
}

TEST(AgentContext, HypertreeRootSeesOnlyItsOwnHyperedge) {
  // (2,2)-ary hypertree of height 3 (15 nodes): the root's radius-1 view
  // is exactly its type I resource {0, 1, 2}; everything deeper is out.
  const auto instance = hypertree_instance(2, 2, 3);
  const LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  EXPECT_EQ(knowledge[0], (std::vector<AgentId>{0, 1, 2}));
  EXPECT_NO_THROW(ctx.agent_resources(1));
  EXPECT_THROW(ctx.agent_resources(3), CheckError);
  // Resource 1 = {3, 7, 8}: no member within the root's horizon.
  EXPECT_THROW(ctx.resource_support(1), CheckError);
  // Party 0 = {1, 3, 4}: visible through its known member 1.
  EXPECT_NO_THROW(ctx.party_support(0));
}

TEST(AgentContext, HypertreeMaterializeTruncatesDeeperLevels) {
  const auto instance = hypertree_instance(2, 2, 3);
  const LocalRuntime runtime(instance);

  // Radius 1: only the root's resource survives; both parties reach
  // level 2 and are dropped as truncated.
  const auto near = runtime.flood(1);
  const auto world1 = AgentContext(instance, 0, near[0]).materialize();
  world1.instance.validate();
  EXPECT_EQ(world1.instance.num_agents(), 3);
  EXPECT_EQ(world1.instance.num_resources(), 1);
  EXPECT_EQ(world1.instance.num_parties(), 0);

  // Radius 2 reaches the level-2 nodes through the party hyperedges:
  // both parties become fully known, and the level-2 nodes drag in their
  // own type I resources truncated to a single member.
  const auto far = runtime.flood(2);
  const auto world2 = AgentContext(instance, 0, far[0]).materialize();
  world2.instance.validate();
  EXPECT_EQ(world2.global_agents, (std::vector<AgentId>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(world2.instance.num_parties(), 2);
  EXPECT_EQ(world2.instance.num_resources(), 5);
  std::int32_t truncated = 0;
  for (ResourceId i = 0; i < world2.instance.num_resources(); ++i) {
    if (world2.instance.resource_support(i).size() == 1u) {
      ++truncated;
    }
  }
  EXPECT_EQ(truncated, 4);  // the four level-2 resources lost their leaves
  EXPECT_EQ(world2.local_of(0), world2.self_local);
}

TEST(AgentContext, EnforcesKnowledgeBoundary) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  EXPECT_TRUE(ctx.knows(0));
  EXPECT_TRUE(ctx.knows(1));
  EXPECT_FALSE(ctx.knows(2));
  EXPECT_NO_THROW(ctx.agent_resources(1));
  EXPECT_THROW(ctx.agent_resources(2), CheckError);   // out of horizon
  EXPECT_THROW(ctx.agent_parties(4), CheckError);
}

TEST(AgentContext, HyperedgeVisibilityThroughMembers) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  // Resource 1 couples agents {1,2}; agent 1 is known, so the member list
  // is visible even though agent 2 is not.
  EXPECT_NO_THROW(ctx.resource_support(1));
  // Resource 3 couples {3,4}: invisible from agent 0's radius-1 view.
  EXPECT_THROW(ctx.resource_support(3), CheckError);
}

TEST(AgentContext, RequiresSelfKnowledge) {
  const auto instance = testing::path_instance(3);
  EXPECT_THROW(AgentContext(instance, 0, {1, 2}), CheckError);
}

TEST(AgentContext, MaterializeKeepsOwnResourcesOfEveryKnownAgent) {
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 12, knowledge[12]);
  const auto world = ctx.materialize();
  world.instance.validate();  // I_v nonempty for every local agent
  EXPECT_EQ(world.global_agents, knowledge[12]);
  EXPECT_EQ(world.local_of(12), world.self_local);
  EXPECT_EQ(world.local_of(9999), -1);
}

TEST(AgentContext, MaterializeDropsTruncatedParties) {
  const auto instance = testing::path_instance(6);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  // Agent 0 knows {0, 1}; parties of agents 0 and 1 (singletons) are fully
  // known; nothing else survives.
  const AgentContext ctx(instance, 0, knowledge[0]);
  const auto world = ctx.materialize();
  EXPECT_EQ(world.instance.num_parties(), 2);
}

TEST(AgentContext, MaterializeTruncatesBoundaryResources) {
  const auto instance = testing::path_instance(6);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  const auto world = ctx.materialize();
  // Resource 1 couples {1, 2}; only agent 1 is known, so the local copy
  // keeps it with a single member.
  bool found_truncated = false;
  for (ResourceId i = 0; i < world.instance.num_resources(); ++i) {
    if (world.instance.resource_support(i).size() == 1u) {
      found_truncated = true;
    }
  }
  EXPECT_TRUE(found_truncated);
}

TEST(AgentContext, FullKnowledgeReproducesWholeInstance) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(10);  // beyond the diameter
  const AgentContext ctx(instance, 2, knowledge[2]);
  const auto world = ctx.materialize();
  EXPECT_EQ(world.instance.num_agents(), instance.num_agents());
  EXPECT_EQ(world.instance.num_resources(), instance.num_resources());
  EXPECT_EQ(world.instance.num_parties(), instance.num_parties());
  EXPECT_TRUE(world.instance == instance);
}

}  // namespace
}  // namespace mmlp

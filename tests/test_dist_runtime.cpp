#include "mmlp/dist/runtime.hpp"

#include <gtest/gtest.h>

#include "mmlp/util/check.hpp"

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"
#include "test_helpers.hpp"

namespace mmlp {
namespace {

TEST(LocalRuntime, ZeroRoundsKnowsOnlySelf) {
  const auto instance = testing::path_instance(4);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(0);
  for (AgentId v = 0; v < 4; ++v) {
    EXPECT_EQ(knowledge[static_cast<std::size_t>(v)],
              (std::vector<AgentId>{v}));
  }
}

TEST(LocalRuntime, FloodEqualsBalls) {
  // The defining property of the LOCAL model: after r rounds each agent
  // has exactly the packets of B_H(v, r).
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  LocalRuntime runtime(instance);
  const auto& h = runtime.graph();
  for (const std::int32_t rounds : {1, 2, 3}) {
    const auto knowledge = runtime.flood(rounds);
    for (AgentId v = 0; v < instance.num_agents(); ++v) {
      EXPECT_EQ(knowledge[static_cast<std::size_t>(v)], ball(h, v, rounds))
          << "agent " << v << " rounds " << rounds;
    }
  }
}

TEST(LocalRuntime, CollaborationObliviousUsesSmallerGraph) {
  const auto instance = testing::two_agent_instance();
  LocalRuntime full(instance, false);
  LocalRuntime oblivious(instance, true);
  EXPECT_EQ(full.graph().num_edges(), 3);
  EXPECT_EQ(oblivious.graph().num_edges(), 1);
}

TEST(LocalRuntime, MessageCountScalesWithRounds) {
  const auto instance = make_grid_instance({.dims = {4, 4}, .torus = true});
  LocalRuntime runtime(instance);
  const auto one = runtime.message_count(1);
  EXPECT_GT(one, 0);
  EXPECT_EQ(runtime.message_count(3), 3 * one);
  EXPECT_EQ(runtime.message_count(0), 0);
}

TEST(AgentContext, EnforcesKnowledgeBoundary) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  EXPECT_TRUE(ctx.knows(0));
  EXPECT_TRUE(ctx.knows(1));
  EXPECT_FALSE(ctx.knows(2));
  EXPECT_NO_THROW(ctx.agent_resources(1));
  EXPECT_THROW(ctx.agent_resources(2), CheckError);   // out of horizon
  EXPECT_THROW(ctx.agent_parties(4), CheckError);
}

TEST(AgentContext, HyperedgeVisibilityThroughMembers) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  // Resource 1 couples agents {1,2}; agent 1 is known, so the member list
  // is visible even though agent 2 is not.
  EXPECT_NO_THROW(ctx.resource_support(1));
  // Resource 3 couples {3,4}: invisible from agent 0's radius-1 view.
  EXPECT_THROW(ctx.resource_support(3), CheckError);
}

TEST(AgentContext, RequiresSelfKnowledge) {
  const auto instance = testing::path_instance(3);
  EXPECT_THROW(AgentContext(instance, 0, {1, 2}), CheckError);
}

TEST(AgentContext, MaterializeKeepsOwnResourcesOfEveryKnownAgent) {
  const auto instance = make_grid_instance({.dims = {5, 5}, .torus = true});
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 12, knowledge[12]);
  const auto world = ctx.materialize();
  world.instance.validate();  // I_v nonempty for every local agent
  EXPECT_EQ(world.global_agents, knowledge[12]);
  EXPECT_EQ(world.local_of(12), world.self_local);
  EXPECT_EQ(world.local_of(9999), -1);
}

TEST(AgentContext, MaterializeDropsTruncatedParties) {
  const auto instance = testing::path_instance(6);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  // Agent 0 knows {0, 1}; parties of agents 0 and 1 (singletons) are fully
  // known; nothing else survives.
  const AgentContext ctx(instance, 0, knowledge[0]);
  const auto world = ctx.materialize();
  EXPECT_EQ(world.instance.num_parties(), 2);
}

TEST(AgentContext, MaterializeTruncatesBoundaryResources) {
  const auto instance = testing::path_instance(6);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(1);
  const AgentContext ctx(instance, 0, knowledge[0]);
  const auto world = ctx.materialize();
  // Resource 1 couples {1, 2}; only agent 1 is known, so the local copy
  // keeps it with a single member.
  bool found_truncated = false;
  for (ResourceId i = 0; i < world.instance.num_resources(); ++i) {
    if (world.instance.resource_support(i).size() == 1u) {
      found_truncated = true;
    }
  }
  EXPECT_TRUE(found_truncated);
}

TEST(AgentContext, FullKnowledgeReproducesWholeInstance) {
  const auto instance = testing::path_instance(5);
  LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(10);  // beyond the diameter
  const AgentContext ctx(instance, 2, knowledge[2]);
  const auto world = ctx.materialize();
  EXPECT_EQ(world.instance.num_agents(), instance.num_agents());
  EXPECT_EQ(world.instance.num_resources(), instance.num_resources());
  EXPECT_EQ(world.instance.num_parties(), instance.num_parties());
  EXPECT_TRUE(world.instance == instance);
}

}  // namespace
}  // namespace mmlp

// E10 — MWU approximate solver: scaling past the simplex range.
#include <benchmark/benchmark.h>

#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/mwu.hpp"

namespace {

void BM_MwuRandomInstance(benchmark::State& state) {
  const auto instance = mmlp::make_random_instance({
      .num_agents = static_cast<mmlp::AgentId>(state.range(0)),
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = 9,
  });
  mmlp::MwuOptions options;
  options.epsilon = 0.1;
  double omega = 0.0;
  for (auto _ : state) {
    const auto result = mmlp::solve_maxmin_mwu(instance, options);
    benchmark::DoNotOptimize(result.omega);
    omega = result.omega;
  }
  state.counters["agents"] = static_cast<double>(state.range(0));
  state.counters["omega"] = omega;
}
BENCHMARK(BM_MwuRandomInstance)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_MwuEpsilonSweep(benchmark::State& state) {
  const auto instance = mmlp::make_random_instance({
      .num_agents = 300,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = 9,
  });
  mmlp::MwuOptions options;
  options.epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto result = mmlp::solve_maxmin_mwu(instance, options);
    benchmark::DoNotOptimize(result.omega);
  }
  state.counters["inv_eps"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MwuEpsilonSweep)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

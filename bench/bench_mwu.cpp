// MWU approximate solver: scaling past the dense-simplex range, and the
// ε-accuracy/work trade-off. Reports ns/agent, phase counts and the
// achieved ω into BENCH_mwu.json.
#include "mmlp/lp/mwu.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "mwu",
      [](bench::Report& report, const std::string& scale, int reps) {
        const std::vector<std::int64_t> sizes =
            scale == "smoke" ? std::vector<std::int64_t>{100}
            : scale == "small"
                ? std::vector<std::int64_t>{500, 2000}
                : std::vector<std::int64_t>{500, 2000, 8000};
        for (const std::int64_t n : sizes) {
          const Instance instance = bench_scenarios::make_random(n);
          MwuResult result;
          auto& entry = report.run_case(
              "random", instance.num_agents(), reps, [&] {
                result = solve_maxmin_mwu(instance, {.epsilon = 0.1});
              });
          entry.counters["phases"] = static_cast<double>(result.total_phases);
          entry.counters["converged"] = result.converged ? 1.0 : 0.0;
          entry.counters["omega"] = result.omega;
        }

        // ε sweep at fixed n: phases grow ~1/ε².
        const Instance instance =
            bench_scenarios::make_random(scale == "smoke" ? 100 : 300);
        for (const double inv_eps : {5.0, 10.0, 20.0}) {
          MwuResult result;
          auto& entry = report.run_case(
              "random_epsilon", instance.num_agents(), reps, [&] {
                result =
                    solve_maxmin_mwu(instance, {.epsilon = 1.0 / inv_eps});
              });
          entry.counters["inv_eps"] = inv_eps;
          entry.counters["phases"] = static_cast<double>(result.total_phases);
        }
      });
}

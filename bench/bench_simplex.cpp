// Simplex substrate (Section 1.3): global max-min LP solves vs n, plus
// the per-agent view-LP throughput that dominates Theorem 3 (the
// ViewScratch/SimplexWorkspace hot path). Reports ns/agent and pivot
// counts into BENCH_simplex.json.
#include "mmlp/core/view.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "simplex",
      [](bench::Report& report, const std::string& scale, int reps) {
        // Global solves: the dense tableau is O(n^2) memory, so the
        // sweep stays small by design (the local algorithms exist
        // precisely because this does not scale).
        const std::vector<std::int64_t> global_sizes =
            scale == "smoke" ? std::vector<std::int64_t>{49}
                             : std::vector<std::int64_t>{100, 400, 900};
        for (const std::int64_t n : global_sizes) {
          const Instance instance = bench_scenarios::make_grid_torus(n);
          MaxMinLpResult result;
          auto& entry = report.run_case(
              "maxmin_grid", instance.num_agents(), reps,
              [&] { result = solve_maxmin_simplex(instance); });
          entry.counters["pivots"] = static_cast<double>(result.iterations);
        }

        // Per-agent view LPs: one small LP per agent, workspace reused —
        // the exact inner loop of local_averaging.
        for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
          const Instance instance = bench_scenarios::make_grid_torus(n);
          const Hypergraph h = instance.communication_graph();
          const auto balls = all_balls(h, 1);
          std::int64_t solved = 0;
          auto& entry = report.run_case(
              "view_lp_grid", instance.num_agents(), reps, [&] {
                ViewScratch scratch;
                LocalView view;
                solved = 0;
                for (AgentId u = 0; u < instance.num_agents(); ++u) {
                  extract_view_into(instance, u, 1,
                                    balls[static_cast<std::size_t>(u)], view,
                                    scratch);
                  const ViewLpSolution solution =
                      solve_view_lp(view, {}, scratch);
                  solved += solution.status == LpStatus::kOptimal ? 1 : 0;
                }
              });
          entry.counters["lps_solved"] = static_cast<double>(solved);
        }
      });
}

// E10 — simplex substrate performance: global max-min LP solves vs n.
#include <benchmark/benchmark.h>

#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"

namespace {

void BM_SimplexRandomInstance(benchmark::State& state) {
  const auto instance = mmlp::make_random_instance({
      .num_agents = static_cast<mmlp::AgentId>(state.range(0)),
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = 42,
  });
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const auto result = mmlp::solve_maxmin_simplex(instance);
    benchmark::DoNotOptimize(result.omega);
    iterations = result.iterations;
  }
  state.counters["pivots"] = static_cast<double>(iterations);
  state.counters["agents"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SimplexRandomInstance)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_SimplexGrid(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const auto instance = mmlp::make_grid_instance(
      {.dims = {side, side}, .torus = true, .randomize = true, .seed = 3});
  for (auto _ : state) {
    const auto result = mmlp::solve_maxmin_simplex(instance);
    benchmark::DoNotOptimize(result.omega);
  }
  state.counters["agents"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_SimplexGrid)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

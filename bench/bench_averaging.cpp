// E9 — Theorem 3 algorithm: per-node work depends on the ball size
// (constant on bounded-growth graphs), so total time is linear in n for
// fixed R and grows with the R-ball volume.
#include <benchmark/benchmark.h>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/gen/grid.hpp"

namespace {

void BM_AveragingGridByN(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const auto instance =
      mmlp::make_grid_instance({.dims = {side, side}, .torus = true});
  for (auto _ : state) {
    const auto result = mmlp::local_averaging(instance, {.R = 1});
    benchmark::DoNotOptimize(result.x.data());
  }
  state.counters["agents"] = static_cast<double>(side) * side;
}
BENCHMARK(BM_AveragingGridByN)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_AveragingGridByRadius(benchmark::State& state) {
  const auto instance =
      mmlp::make_grid_instance({.dims = {12, 12}, .torus = true});
  const auto radius = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const auto result = mmlp::local_averaging(instance, {.R = radius});
    benchmark::DoNotOptimize(result.x.data());
  }
  state.counters["R"] = static_cast<double>(radius);
}
BENCHMARK(BM_AveragingGridByRadius)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

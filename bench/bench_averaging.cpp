// E9 — Theorem 3 algorithm: per-node work depends on the R-ball volume
// (constant on bounded-growth graphs), so total time is linear in n for
// fixed R. Sweeps n at R = 1 over grid/geometric workloads plus an
// R-sweep at fixed n, reporting ns/agent, the Figure 2 ratio bound and
// the peak ball size into BENCH_averaging.json.
//
// Each timed run goes through a *fresh* engine::Session (the historical
// cold-path series: every repetition pays for balls and growth sets);
// the warm repeat-solve economics live in bench_engine.
#include <algorithm>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

namespace {

void run_one(mmlp::bench::Report& report, const std::string& scenario,
             const mmlp::Instance& instance, std::int32_t radius, int reps) {
  mmlp::LocalAveragingResult result;
  auto& entry = report.run_case(
      scenario, instance.num_agents(), reps, [&] {
        mmlp::engine::Session session(instance);
        result = mmlp::local_averaging_with(session, {.R = radius});
      });
  entry.counters["R"] = static_cast<double>(radius);
  entry.counters["ratio_bound"] = result.ratio_bound;
  std::size_t max_ball = 0;
  for (const std::size_t size : result.ball_size) {
    max_ball = std::max(max_ball, size);
  }
  entry.counters["peak_ball"] = static_cast<double>(max_ball);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "averaging",
      [](bench::Report& report, const std::string& scale, int reps) {
        bench_scenarios::for_each_scenario(
            {"grid_torus", "geometric"}, scale,
            [&](const std::string& scenario, const Instance& instance) {
              run_one(report, scenario, instance, /*radius=*/1, reps);
            });
        // Radius sweep at fixed n: the per-agent cost grows with the
        // R-ball volume (|B(u,R)| ~ 2R^2 on the torus).
        const std::int64_t sweep_n = scale == "smoke" ? 256 : 2500;
        const Instance instance =
            bench_scenarios::make_grid_torus(sweep_n);
        for (const std::int32_t radius : {2, 3}) {
          run_one(report, "grid_torus_radius", instance, radius, reps);
        }
      });
}

// Section 5 motivation: physically deployed networks have polynomially
// growing neighbourhoods, so the averaging algorithm behaves as a scheme
// there too — not only on exact lattices. Measures γ(r) and algorithm
// ratios on random geometric deployments of increasing density.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/util/table.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== Geometric deployments: growth and algorithm quality "
              "(Section 5 motivation) ===\n\n");
  TableWriter table({"dim", "agents", "radius", "gamma(1)", "gamma(2)",
                     "gamma(3)", "R", "avg ratio", "set bound", "safe ratio"},
                    3);
  struct Config {
    std::int32_t dim;
    std::int32_t agents;
    double radius;
  };
  for (const Config& config :
       {Config{1, 200, 0.02}, Config{2, 250, 0.10}, Config{3, 300, 0.22}}) {
    const auto geo = make_geometric_instance({
        .num_agents = config.agents,
        .dim = config.dim,
        .radius = config.radius,
        .max_support = 4,
        .seed = 17,
    });
    const auto h = geo.instance.communication_graph();
    const auto profile = growth_profile(h, 3);
    const auto exact = solve_optimal(geo.instance);
    const double safe_ratio = approximation_ratio(
        exact.omega,
        objective_omega(geo.instance, safe_solution(geo.instance)));
    for (const std::int32_t R : {1, 2}) {
      const auto result = local_averaging(geo.instance, {.R = R});
      const double achieved = objective_omega(geo.instance, result.x);
      table.add_row({static_cast<std::int64_t>(config.dim),
                     static_cast<std::int64_t>(config.agents), config.radius,
                     profile[1], profile[2], profile[3],
                     static_cast<std::int64_t>(R),
                     approximation_ratio(exact.omega, achieved),
                     result.ratio_bound, safe_ratio});
    }
  }
  table.print("Random geometric instances: gamma falls with r and the "
              "averaging bound follows");
  return 0;
}

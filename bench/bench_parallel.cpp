// E10 — shared-memory scaling of the per-agent loops (1 vs N workers).
#include <benchmark/benchmark.h>

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/parallel.hpp"

namespace {

void BM_ParallelForThreads(benchmark::State& state) {
  mmlp::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  // A compute-bound per-index body (synthetic per-agent work).
  std::vector<double> out(4096);
  for (auto _ : state) {
    mmlp::parallel_for(out.size(), [&](std::size_t i) {
      double acc = 0.0;
      for (int rep = 0; rep < 2000; ++rep) {
        acc += static_cast<double>((i * 2654435761u + rep) % 1000) * 1e-3;
      }
      out[i] = acc;
    }, &pool);
  }
  benchmark::DoNotOptimize(out.data());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelForThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AllBallsThreads(benchmark::State& state) {
  const auto instance =
      mmlp::make_grid_instance({.dims = {40, 40}, .torus = true});
  const auto h = instance.communication_graph();
  // all_balls uses the global pool; emulate the thread sweep by chunking
  // through a local pool-driven loop.
  mmlp::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto n = static_cast<std::size_t>(h.num_nodes());
  std::vector<std::size_t> sizes(n);
  for (auto _ : state) {
    const std::size_t chunks = pool.size() * 8;
    const std::size_t chunk = (n + chunks - 1) / chunks;
    mmlp::parallel_for(chunks, [&](std::size_t c) {
      mmlp::BallCollector collector(h);
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t v = begin; v < end; ++v) {
        sizes[v] = collector.collect(static_cast<mmlp::NodeId>(v), 3).size();
      }
    }, &pool);
  }
  benchmark::DoNotOptimize(sizes.data());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AllBallsThreads)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

// Shared-memory substrate: parallel_for dispatch overhead (slot-store
// bodies) and compute-bound scaling across worker counts. Reports
// ns/agent (here: per loop index) and pool sizes into
// BENCH_parallel.json.
#include <string>
#include <vector>

#include "mmlp/util/bench_report.hpp"
#include "mmlp/util/parallel.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "parallel",
      [](bench::Report& report, const std::string& scale, int reps) {
        const std::int64_t n = scale == "smoke"   ? 100000
                               : scale == "small" ? 1000000
                                                  : 4000000;
        // Dispatch overhead: a body that only writes its slot.
        {
          std::vector<std::size_t> out(static_cast<std::size_t>(n));
          auto& entry = report.run_case("store_slot", n, reps, [&] {
            parallel_for(out.size(), [&](std::size_t i) { out[i] = i; });
          });
          entry.counters["threads"] =
              static_cast<double>(ThreadPool::global().size());
        }
        // Compute-bound scaling across explicit pool sizes.
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
          ThreadPool pool(threads);
          std::vector<double> out(4096);
          auto& entry = report.run_case(
              "compute_bound_T" + std::to_string(threads),
              static_cast<std::int64_t>(out.size()), reps,
              [&] {
                parallel_for(
                    out.size(),
                    [&](std::size_t i) {
                      double acc = 0.0;
                      for (int rep = 0; rep < 2000; ++rep) {
                        acc += static_cast<double>(
                                   (i * 2654435761u + rep) % 1000) *
                               1e-3;
                      }
                      out[i] = acc;
                    },
                    &pool);
              });
          entry.counters["threads"] = static_cast<double>(threads);
        }
      });
}

// Shared generator scenarios for the bench_* binaries.
//
// Each factory produces a bounded-degree max-min LP instance of roughly
// the requested number of agents from one of the paper's instance
// families (grid/torus, random geometric, ISP fair-share, Δ-regular
// bipartite), so every benchmark sweeps the same workload axes and the
// BENCH_*.json series stay comparable across PRs. Sizes are swept per
// --scale: smoke (CI-sized), small, full (the 10^5-agent target of the
// perf acceptance bar).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/regular_bipartite.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp::bench_scenarios {

/// The swept agent counts for a --scale preset.
inline std::vector<std::int64_t> swept_sizes(const std::string& scale) {
  if (scale == "smoke") {
    return {512};
  }
  if (scale == "small") {
    return {1000, 10000};
  }
  return {1000, 10000, 100000};
}

/// 2-D torus with ~n agents (side = round(sqrt(n))).
inline Instance make_grid_torus(std::int64_t n) {
  const auto side = static_cast<std::int32_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  return make_grid_instance({.dims = {side, side}, .torus = true});
}

/// Random bounded-degree instance with exactly n agents.
inline Instance make_random(std::int64_t n) {
  return make_random_instance({
      .num_agents = static_cast<AgentId>(n),
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = 5,
  });
}

/// Random geometric instance with n agents; the radius shrinks as
/// 1/sqrt(n) so the expected neighbourhood size stays constant.
inline Instance make_geometric(std::int64_t n) {
  const double radius = std::sqrt(8.0 / (3.141592653589793 * static_cast<double>(n)));
  return make_geometric_instance({
                                     .num_agents = static_cast<std::int32_t>(n),
                                     .dim = 2,
                                     .radius = radius,
                                     .max_support = 5,
                                     .party_stride = 1,
                                     .seed = 7,
                                 })
      .instance;
}

/// ISP fair-share network with ~n agents (one agent per
/// (last-mile link, router) path; 4 paths per customer).
inline Instance make_isp(std::int64_t n) {
  const auto customers = static_cast<std::int32_t>(std::max<std::int64_t>(2, n / 4));
  return make_isp_network({
                              .num_customers = customers,
                              .links_per_customer = 2,
                              .num_routers = std::max(2, customers / 2),
                              .routers_per_link = 2,
                              .seed = 11,
                          })
      .instance;
}

/// Δ-regular bipartite instance with ~n agents: agents are the edges of
/// a random Δ-regular bipartite graph, every left vertex is a resource
/// over its incident edges and every right vertex a party over its
/// incident edges (unit coefficients) — the Section 4 template-graph
/// shape as a workload.
inline Instance make_regular_bipartite(std::int64_t n) {
  constexpr std::int32_t kDegree = 3;
  const auto per_side = static_cast<std::int32_t>(
      std::max<std::int64_t>(kDegree, n / kDegree));
  Rng rng(13);
  // Bipartite graphs have no odd cycles, so a girth floor of 4 is always
  // met and sampling never needs the repair loop.
  const auto sampled = random_regular_bipartite(
      {.nodes_per_side = per_side, .degree = kDegree, .min_girth = 4}, rng);
  MMLP_CHECK_MSG(sampled.has_value(), "regular bipartite sampling failed");
  const SimpleGraph& graph = sampled->graph;

  Instance::Builder builder;
  builder.reserve(0, per_side, per_side);
  for (std::int32_t u = 0; u < per_side; ++u) {
    for (const std::int32_t w : graph.neighbors(u)) {
      const AgentId edge_agent = builder.add_agent();
      builder.set_usage(u, edge_agent, 1.0);
      builder.set_benefit(w - per_side, edge_agent, 1.0);
    }
  }
  return std::move(builder).build();
}

/// Dispatch by scenario name (the names used in BENCH JSON output).
inline Instance make_scenario(const std::string& name, std::int64_t n) {
  if (name == "grid_torus") {
    return make_grid_torus(n);
  }
  if (name == "random") {
    return make_random(n);
  }
  if (name == "geometric") {
    return make_geometric(n);
  }
  if (name == "isp") {
    return make_isp(n);
  }
  if (name == "regular_bipartite") {
    return make_regular_bipartite(n);
  }
  MMLP_CHECK_MSG(false, "unknown scenario: " << name);
}

/// Every scenario name, in the sweep order the BENCH series use.
inline const std::vector<std::string>& all_scenarios() {
  static const std::vector<std::string> names = {
      "grid_torus", "random", "geometric", "isp", "regular_bipartite"};
  return names;
}

/// Sweep `scenarios` × swept_sizes(scale): build each instance once and
/// hand it to body(scenario_name, instance). Kills the nested
/// scenario/size loop every bench binary used to re-implement.
template <typename Body>
inline void for_each_scenario(const std::vector<std::string>& scenarios,
                              const std::string& scale, Body&& body) {
  for (const std::string& scenario : scenarios) {
    for (const std::int64_t n : swept_sizes(scale)) {
      body(scenario, make_scenario(scenario, n));
    }
  }
}

}  // namespace mmlp::bench_scenarios

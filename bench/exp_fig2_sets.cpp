// E2 — Figure 2: the set machinery of the Theorem 3 algorithm.
//
// For grids and random bounded-degree instances, computes the quantities
// V^u, S_k, m_k, M_k, U_i, N_i, n_i and verifies the identities the
// algorithm's analysis rests on:
//   V_k ⊆ S_k (full-H mode), m_k ≤ M_k,
//   max_k M_k/m_k ≤ γ(R−1), max_i N_i/n_i ≤ γ(R).
#include <cstdio>

#include "mmlp/core/view.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/util/table.hpp"

namespace {

void report(const char* name, const mmlp::Instance& instance,
            std::int32_t max_radius, mmlp::TableWriter& table) {
  using namespace mmlp;
  const auto h = instance.communication_graph();
  const auto profile = growth_profile(h, max_radius);
  for (std::int32_t R = 1; R <= max_radius; ++R) {
    const auto balls = all_balls(h, R);
    const auto sets = compute_growth_sets(instance, balls);
    // V_k ⊆ S_k check.
    bool vk_in_sk = true;
    for (PartyId k = 0; k < instance.num_parties(); ++k) {
      if (sets.m_k[static_cast<std::size_t>(k)] <
          instance.party_support(k).size()) {
        vk_in_sk = false;
      }
    }
    const double gamma_prev = profile[static_cast<std::size_t>(R) - 1];
    const double gamma_r = profile[static_cast<std::size_t>(R)];
    table.add_row({std::string(name), static_cast<std::int64_t>(R),
                   sets.max_party_ratio(), gamma_prev,
                   sets.max_resource_ratio(), gamma_r, sets.ratio_bound(),
                   gamma_prev * gamma_r,
                   std::string(vk_in_sk ? "yes" : "NO"),
                   std::string(sets.max_party_ratio() <= gamma_prev + 1e-9 &&
                                       sets.max_resource_ratio() <=
                                           gamma_r + 1e-9
                                   ? "yes"
                                   : "NO")});
  }
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== E2: Figure 2 — sets V^u, S_k, U_i and their ratios ===\n\n");
  TableWriter table({"graph", "R", "max Mk/mk", "gamma(R-1)", "max Ni/ni",
                     "gamma(R)", "set bound", "gamma product", "Vk in Sk",
                     "bounds hold"},
                    4);
  report("torus 12x12", make_grid_instance({.dims = {12, 12}, .torus = true}),
         3, table);
  report("grid 12x12",
         make_grid_instance({.dims = {12, 12}, .torus = false}), 3, table);
  report("torus 48 (1D)", make_grid_instance({.dims = {48}, .torus = true}), 3,
         table);
  report("random n=200",
         make_random_instance({.num_agents = 200,
                               .resources_per_agent = 2,
                               .parties_per_agent = 1,
                               .max_support = 3,
                               .seed = 2}),
         2, table);
  table.print("Theorem 3 set ratios vs growth bounds "
              "(set bound = max Mk/mk * max Ni/ni <= gamma(R-1)*gamma(R))");
  return 0;
}

// E8 — Section 2 application: ISP fair-share bandwidth allocation.
//
// Customers are beneficiary parties, last-mile links and access routers
// are resources, and (link, router) paths are agents. ω is the
// worst-served customer's throughput.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/util/stats.hpp"
#include "mmlp/util/table.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== E8: ISP fair share (Section 2) ===\n\n");
  TableWriter table({"customers", "routers", "agents", "omega* (mean)",
                     "safe/opt", "avgR1/opt", "avgR2/opt"},
                    4);
  struct Config {
    std::int32_t customers, routers;
  };
  for (const Config& config :
       {Config{8, 5}, Config{16, 8}, Config{32, 12}, Config{64, 20}}) {
    OnlineStats omega_star;
    OnlineStats safe_frac;
    OnlineStats avg1_frac;
    OnlineStats avg2_frac;
    std::int64_t agents = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      IspOptions options;
      options.num_customers = config.customers;
      options.num_routers = config.routers;
      options.links_per_customer = 2;
      options.routers_per_link = 2;
      options.seed = seed * 7;
      const auto net = make_isp_network(options);
      agents = net.instance.num_agents();

      const auto exact = solve_optimal(net.instance);
      omega_star.add(exact.omega);
      safe_frac.add(objective_omega(net.instance, safe_solution(net.instance)) /
                    exact.omega);
      avg1_frac.add(
          objective_omega(net.instance, local_averaging(net.instance, {.R = 1}).x) /
          exact.omega);
      avg2_frac.add(
          objective_omega(net.instance, local_averaging(net.instance, {.R = 2}).x) /
          exact.omega);
    }
    table.add_row({static_cast<std::int64_t>(config.customers),
                   static_cast<std::int64_t>(config.routers), agents,
                   omega_star.mean(), safe_frac.mean(), avg1_frac.mean(),
                   avg2_frac.mean()});
  }
  table.print("Fair share achieved as a fraction of the optimum "
              "(mean over 3 topologies; 1.0 = optimal)");
  return 0;
}

// E6 — Theorem 3: the averaging algorithm is an approximation *scheme*
// on bounded-growth graphs.
//
// For 1D/2D/3D tori: γ(r) = 1 + Θ(1/r), so the guarantee γ(R−1)·γ(R)
// falls toward 1 as R grows while the safe baseline stays at Δ_I^V. The
// harness prints, per graph and R: the growth factors, the a-priori
// bounds (γ product and the tighter per-instance set bound), and the
// measured ratios of both algorithms.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/table.hpp"

namespace {

void sweep(const char* name, const mmlp::GridOptions& options,
           double omega_star, std::int32_t max_radius,
           mmlp::TableWriter& table) {
  using namespace mmlp;
  const auto instance = make_grid_instance(options);
  // omega_star < 0 means "solve exactly".
  if (omega_star < 0.0) {
    const auto exact = solve_maxmin_simplex(instance);
    omega_star = exact.omega;
  }
  const auto h = instance.communication_graph();
  const auto profile = growth_profile(h, max_radius);
  const double delta =
      static_cast<double>(instance.degree_bounds().delta_V_of_I);
  const double safe_ratio = approximation_ratio(
      omega_star, objective_omega(instance, safe_solution(instance)));
  for (std::int32_t R = 1; R <= max_radius; ++R) {
    const auto result = local_averaging(instance, {.R = R});
    const double achieved = objective_omega(instance, result.x);
    table.add_row({std::string(name),
                   static_cast<std::int64_t>(instance.num_agents()),
                   static_cast<std::int64_t>(R),
                   profile[static_cast<std::size_t>(R - 1)],
                   profile[static_cast<std::size_t>(R)],
                   profile[static_cast<std::size_t>(R - 1)] *
                       profile[static_cast<std::size_t>(R)],
                   result.ratio_bound,
                   approximation_ratio(omega_star, achieved), safe_ratio,
                   delta});
  }
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== E6: Theorem 3 — local approximation scheme on "
              "bounded-growth graphs ===\n\n");
  TableWriter table({"graph", "agents", "R", "gamma(R-1)", "gamma(R)",
                     "gamma bound", "set bound", "avg ratio", "safe ratio",
                     "Delta_V^I"},
                    3);
  // Uniform tori have ω* = 1 by symmetry (x = 1/(2d+1) saturates all).
  sweep("torus 64 (1D)", {.dims = {64}, .torus = true}, 1.0, 4, table);
  sweep("torus 14x14", {.dims = {14, 14}, .torus = true}, 1.0, 3, table);
  sweep("torus 6x6x6", {.dims = {6, 6, 6}, .torus = true}, 1.0, 2, table);
  // Randomised coefficients: exact LP optimum.
  sweep("random torus 10x10",
        {.dims = {10, 10}, .torus = true, .randomize = true, .seed = 11}, -1.0,
        3, table);
  // Open grid (boundary effects).
  sweep("grid 10x10", {.dims = {10, 10}, .torus = false}, -1.0, 3, table);
  table.print("Averaging ratio vs its bounds (avg ratio <= set bound <= "
              "gamma bound; scheme: bounds fall with R while safe stays at "
              "Delta_V^I)");
  return 0;
}

// E1 — Figure 1: the lower-bound construction, reproduced structurally.
//
// The figure's caption (d=2, D=3, r=2, R=3) describes: (a) a
// d^R·D^(R−1) = 72-regular bipartite high-girth graph Q, (b) a complete
// (2,3)-ary hypertree of height 2R−1 = 5 with 72 leaves, (c) the
// hypergraph of S with hyperedge types I/II/III. This binary rebuilds
// each piece and prints the quantities the caption asserts, then
// materialises full instances S at simulable parameters and verifies the
// invariants of Section 4.2 on them.
#include <cstdio>

#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/graph/regular_bipartite.hpp"
#include "mmlp/util/table.hpp"

namespace {

void hypertree_levels_table() {
  using namespace mmlp;
  // Figure 1(b): the caption's (2,3)-ary hypertree of height 5.
  const auto tree = Hypertree::complete(2, 3, 5);
  TableWriter table({"level", "nodes", "formula"});
  for (std::int32_t level = 0; level <= 5; ++level) {
    table.add_row({static_cast<std::int64_t>(level),
                   static_cast<std::int64_t>(tree.nodes_at_level(level).size()),
                   static_cast<std::int64_t>(
                       Hypertree::expected_level_size(2, 3, level))});
  }
  table.print("Figure 1(b): complete (2,3)-ary hypertree of height 5 "
              "(caption: 72 leaves)");
  std::printf("leaves = %zu (expected d^R D^(R-1) = 72)\n\n",
              tree.leaves().size());
}

void caption_scale_row() {
  using namespace mmlp;
  // Figure 1(a): Q for the caption parameters. Δ = 72, so PG(2,71)
  // provides the deterministic girth-6 witness; r = 2 would need girth
  // 10, which (as DESIGN.md records) exceeds laptop scale — the caption
  // values themselves are structural and printed from the template.
  std::printf("Figure 1(a): Q must be 72-regular bipartite (d^R D^(R-1) = "
              "2^3*3^2 = 72) with girth >= 4r+2 = 10\n");
  const auto q = projective_plane_incidence(71);
  std::printf("  girth-6 witness built: PG(2,71) incidence, %d vertices per "
              "side, 72-regular = %s\n\n",
              q.num_vertices() / 2,
              q.is_regular(72) ? "yes" : "NO");
}

void materialised_instances() {
  using namespace mmlp;
  TableWriter table({"d", "D", "r", "R", "degree", "trees", "tree_size",
                     "agents", "resources", "parties", "typeIII", "D_I^V",
                     "D_K^V", "D_V^I", "D_V^K"});
  struct Row {
    std::int32_t d, D, R;
  };
  for (const Row& row : {Row{2, 2, 2}, Row{2, 3, 2}, Row{3, 2, 2}, Row{2, 1, 2},
                         Row{2, 1, 3}}) {
    LowerBoundParams params;
    params.d = row.d;
    params.D = row.D;
    params.r = 1;
    params.R = row.R;
    params.seed = 1;
    const auto lb = build_lower_bound_instance(params);
    std::int64_t type3 = 0;
    for (PartyId k = 0; k < lb.instance.num_parties(); ++k) {
      if (lb.instance.party_support(k).size() == 2u) {
        ++type3;
      }
    }
    const auto bounds = lb.instance.degree_bounds();
    table.add_row({static_cast<std::int64_t>(row.d),
                   static_cast<std::int64_t>(row.D), std::int64_t{1},
                   static_cast<std::int64_t>(row.R),
                   static_cast<std::int64_t>(lb.degree),
                   static_cast<std::int64_t>(lb.num_trees),
                   static_cast<std::int64_t>(lb.tree_size),
                   static_cast<std::int64_t>(lb.instance.num_agents()),
                   static_cast<std::int64_t>(lb.instance.num_resources()),
                   static_cast<std::int64_t>(lb.instance.num_parties()),
                   type3,
                   static_cast<std::int64_t>(bounds.delta_I_of_V),
                   static_cast<std::int64_t>(bounds.delta_K_of_V),
                   static_cast<std::int64_t>(bounds.delta_V_of_I),
                   static_cast<std::int64_t>(bounds.delta_V_of_K)});
  }
  table.print("Figure 1(c): materialised instances S (r = 1; per Section 4.2 "
              "the paper requires D_I^V = D_K^V = 1, D_V^I = d+1, D_V^K <= D+1)");
}

}  // namespace

int main() {
  std::printf("=== E1: Figure 1 — construction of S ===\n\n");
  hypertree_levels_table();
  caption_scale_row();
  materialised_instances();
  return 0;
}

// Ablation — the β damping of eq. (10).
//
// DESIGN.md calls out the damping rule as the load-bearing design choice
// of the Theorem 3 algorithm. This harness compares, across instance
// families: the paper's per-agent β_j, the global β = min_j β_j, the
// undamped average (infeasible — its violation is reported), and the
// non-local reference that rescales the undamped average globally.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/geometric.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/table.hpp"

namespace {

void sweep(const char* name, const mmlp::Instance& instance,
           std::int32_t R, mmlp::TableWriter& table) {
  using namespace mmlp;
  const auto exact = solve_optimal(instance);
  auto run = [&](AveragingDamping damping) {
    return local_averaging(instance, {.R = R, .damping = damping});
  };
  const auto paper = run(AveragingDamping::kBetaPerAgent);
  const auto global = run(AveragingDamping::kBetaGlobal);
  const auto raw = run(AveragingDamping::kNone);
  const auto scaled = run(AveragingDamping::kNoneThenScale);
  const double raw_violation = evaluate(instance, raw.x).worst_violation;
  table.add_row({std::string(name), static_cast<std::int64_t>(R),
                 objective_omega(instance, paper.x) / exact.omega,
                 objective_omega(instance, global.x) / exact.omega,
                 objective_omega(instance, scaled.x) / exact.omega,
                 raw_violation});
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== Ablation: damping rule of eq. (10) ===\n\n");
  TableWriter table({"instance", "R", "beta_j/opt", "beta_min/opt",
                     "scaled(non-local)/opt", "raw violation"},
                    4);
  const auto grid = make_grid_instance(
      {.dims = {10, 10}, .torus = true, .randomize = true, .seed = 5});
  sweep("random torus 10x10", grid, 1, table);
  sweep("random torus 10x10", grid, 2, table);
  const auto geo =
      make_geometric_instance({.num_agents = 150, .radius = 0.12, .seed = 7});
  sweep("geometric n=150", geo.instance, 1, table);
  sweep("geometric n=150", geo.instance, 2, table);
  const auto random = make_random_instance({.num_agents = 80, .seed = 9});
  sweep("random n=80", random, 1, table);
  table.print("Fraction of the optimum recovered per damping rule "
              "(raw = no damping; its violation shows why beta exists)");
  std::printf("\nreading: beta_j (the paper) dominates beta_min; the global\n"
              "rescale shows how much of the gap is the price of locality\n"
              "rather than of averaging itself.\n");
  return 0;
}

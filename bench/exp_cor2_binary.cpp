// E5 — Corollary 2: with D = 1 the construction uses only 0/1
// coefficients in both A and C, and still forces ratio >= Delta_V^I / 2.
#include <cstdio>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/table.hpp"
#include "mmlp/util/timer.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== E5: Corollary 2 — binary coefficients, ratio >= "
              "Delta_V^I / 2 ===\n\n");

  TableWriter table({"d", "R", "degree", "agents(S)", "agents(S')",
                     "omega_safe(S')", "measured ratio", "Delta_V^I/2",
                     "binary coefs", "sec"},
                    4);
  struct Config {
    std::int32_t d, R, q_side;  // q_side > 0 forces the random-Q fallback size
  };
  const Config configs[] = {
      {2, 2, 0},  // Δ = 4, PG(2,3)
      {2, 3, 0},  // Δ = 8, PG(2,7)
      {3, 2, 2916},  // Δ = 9: Δ−1 = 8 not prime → random sampler + repair
  };
  for (const auto& config : configs) {
    WallTimer timer;
    LowerBoundParams params;
    params.d = config.d;
    params.D = 1;
    params.r = 1;
    params.R = config.R;
    params.q_nodes_per_side = config.q_side;
    params.seed = 3;
    const auto lb = build_lower_bound_instance(params);

    // All coefficients binary?
    bool binary = true;
    for (PartyId k = 0; k < lb.instance.num_parties(); ++k) {
      for (const Coef& entry : lb.instance.party_support(k)) {
        binary = binary && entry.value == 1.0;
      }
    }

    const auto x_s = safe_solution(lb.instance);
    const std::int32_t p = select_p(compute_delta(lb, x_s));
    const auto sub = build_s_prime(lb, p);
    double omega_star = 1.0;
    if (sub.instance.num_agents() <= 900) {
      const auto exact = solve_maxmin_simplex(sub.instance);
      if (exact.status == LpStatus::kOptimal) {
        omega_star = exact.omega;
      }
    }
    const double omega_safe =
        objective_omega(sub.instance, safe_solution(sub.instance));

    table.add_row({static_cast<std::int64_t>(config.d),
                   static_cast<std::int64_t>(config.R),
                   static_cast<std::int64_t>(lb.degree),
                   static_cast<std::int64_t>(lb.instance.num_agents()),
                   static_cast<std::int64_t>(sub.instance.num_agents()),
                   omega_safe, omega_star / omega_safe,
                   static_cast<double>(config.d + 1) / 2.0,
                   std::string(binary ? "yes" : "NO"), timer.seconds()});
  }
  table.print("Corollary 2 pipeline (safe forced onto S'; Delta_V^I = d+1)");
  return 0;
}

// Engine session economics: what does a request pay on a cold session
// vs. request #2..#N on a hot one?  For every scenario/size the harness
// times the same registry request twice:
//
//   <scenario>_cold : a fresh engine::Session per solve — every repeat
//                     rebuilds balls, growth sets and worker scratch
//                     (the pre-engine free-function cost);
//   <scenario>_warm : one persistent Session primed once — repeats hit
//                     the caches, so only the algorithm proper remains.
//
// The counters carry the proof that the cache actually engaged:
// cache_build_ms / cache_misses from the request's timing breakdown
// (≈0 on warm cases), plus the warm/cold wall ratio. The acceptance
// criterion of the engine PR reads this file at --scale full
// (1e5 agents): warm averaging must sit measurably below cold.
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

namespace {

using mmlp::engine::Session;
using mmlp::engine::SolveRequest;
using mmlp::engine::SolveResult;

void run_pair(mmlp::bench::Report& report, const std::string& scenario,
              const mmlp::Instance& instance, const SolveRequest& request,
              int reps) {
  SolveResult last;

  auto& cold = report.run_case(scenario + "_cold", instance.num_agents(), reps,
                               [&] {
                                 Session session(instance);
                                 last = mmlp::engine::solve(session, request);
                               });
  cold.counters["cache_build_ms"] = last.cache_build_ms;
  cold.counters["cache_misses"] = static_cast<double>(last.cache_misses);
  const double cold_ms = cold.wall_ms;

  Session session(instance);
  (void)mmlp::engine::solve(session, request);  // prime the caches
  auto& warm = report.run_case(
      scenario + "_warm", instance.num_agents(), reps,
      [&] { last = mmlp::engine::solve(session, request); });
  warm.counters["cache_build_ms"] = last.cache_build_ms;
  warm.counters["cache_misses"] = static_cast<double>(last.cache_misses);
  warm.counters["cache_hits"] = static_cast<double>(last.cache_hits);
  warm.counters["cold_over_warm"] =
      warm.wall_ms > 0.0 ? cold_ms / warm.wall_ms : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "engine",
      [](bench::Report& report, const std::string& scale, int reps) {
        for (const std::string& scenario :
             {std::string("grid_torus"), std::string("random")}) {
          for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
            const Instance instance =
                bench_scenarios::make_scenario(scenario, n);
            // The averaging request is where the session caches carry
            // real weight (balls + growth sets + per-worker LP scratch).
            run_pair(report, scenario + "_averaging", instance,
                     {.algorithm = "averaging", .R = 1}, reps);
            // The safe request derives no cacheable state: warm ≈ cold
            // by design, which keeps the comparison honest.
            run_pair(report, scenario + "_safe", instance,
                     {.algorithm = "safe"}, reps);
          }
        }
      });
}

// Engine session economics: what does a request pay on a cold session
// vs. request #2..#N on a hot one — and what does view deduplication
// shave off the hot path?  For every scenario/size the harness times
// the same registry request:
//
//   <scenario>_cold       : a fresh engine::Session per solve — every
//                           repeat rebuilds balls, growth sets and
//                           worker scratch (the pre-engine cost);
//   <scenario>_warm       : one persistent Session primed once —
//                           repeats hit the caches, so only the
//                           algorithm proper remains;
//   <scenario>_dedup_warm : the same warm request with
//                           deduplicate=true — one view LP per
//                           isomorphism class instead of one per agent
//                           (averaging cases only; output bitwise equal
//                           to the _warm case);
//   <scenario>_dedup_warm_nosym : the same dedup-on measurement on the
//                           no-symmetry stress scenario (random), where
//                           every view class is a singleton — the case
//                           exists to prove the dedup path bails out to
//                           the plain per-agent loop and stays at
//                           parity with dedup-off (speedup_vs_off ≈ 1)
//                           instead of paying for staging + scatter;
//   <scenario>_latency    : ~16 individually timed warm repeats of the
//                           averaging request plus a k=16 update +
//                           incremental re-solve between samples, fed
//                           into an obs::Histogram — surfaced as
//                           latency_p50_ms / latency_p90_ms /
//                           latency_p99_ms counters, alongside the
//                           per-request obs counter deltas
//                           (simplex_solves, simplex_pivots,
//                           scratch_leases);
//   <scenario>_update_resolve_k<k> : the streaming-update workload — k
//                           random single-coefficient edits applied
//                           through Session::apply followed by one
//                           incremental re-solve, on a session whose
//                           memo is primed. dirty_agents /
//                           resolved_agents count the spliced region;
//                           speedup_vs_cold is the warm full-solve wall
//                           over the update+re-solve wall (the
//                           acceptance bar: >= 10x for k=1 on the 1e5
//                           grid).
//
// The counters carry the proof that the machinery actually engaged:
// cache_build_ms / cache_misses from the request's timing breakdown
// (≈0 on warm cases), the warm/cold wall ratio, and on dedup cases
// view_classes / lp_solves / dedup_ratio plus speedup_vs_off (warm
// dedup-off ms over warm dedup-on ms). The acceptance criterion of the
// dedup PR reads this file at --scale full (1e5 agents): the grid
// scenario must report dedup_ratio >= 0.9 and speedup_vs_off >= 3,
// with the random scenario not regressing.
//
// The shard sweep (<scenario>_shard_<algorithm>_S<k>) measures the
// partitioned serving path of engine::ShardedSession against the S=1
// monolithic session on the same instance: per-case counters carry the
// partition economics (halo_agents, halo_fraction, build_ms for the
// extract fan-out) and speedup_vs_mono. It runs its own size ladder —
// the point of sharding is the 10^6..10^7 regime, so --scale full
// pushes a 10^6-agent averaging sweep across S in {1, 2, 4, 8} and a
// 10^7-agent safe case, far past the regular sweep's sizes.
//
// The thread sweep (grid_torus_<variant>_T<k>) re-measures the warm
// averaging/safe/dedup/update workloads at T in {1, 2, 4, 8} dedicated
// workers and reports speedup_vs_t1 / parallel_efficiency plus the
// scheduler's own busy/chunk/steal accounting — the CI-gated multi-core
// scaling axis (ROADMAP item 3). See run_thread_sweep.
#include <algorithm>

#include "mmlp/dist/self_stabilizing_solver.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/util/bench_report.hpp"
#include "mmlp/util/fault.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/rng.hpp"
#include "mmlp/util/timer.hpp"

#include "scenarios.hpp"

namespace {

using mmlp::engine::Session;
using mmlp::engine::SolveRequest;
using mmlp::engine::SolveResult;

/// Runs the cold/warm pair; returns the warm wall time so the dedup
/// case can report its speedup against it.
double run_pair(mmlp::bench::Report& report, const std::string& scenario,
                const mmlp::Instance& instance, const SolveRequest& request,
                int reps) {
  SolveResult last;

  auto& cold = report.run_case(scenario + "_cold", instance.num_agents(), reps,
                               [&] {
                                 Session session(instance);
                                 last = mmlp::engine::solve(session, request);
                               });
  cold.counters["cache_build_ms"] = last.cache_build_ms;
  cold.counters["cache_misses"] = static_cast<double>(last.cache_misses);
  const double cold_ms = cold.wall_ms;

  Session session(instance);
  (void)mmlp::engine::solve(session, request);  // prime the caches
  auto& warm = report.run_case(
      scenario + "_warm", instance.num_agents(), reps,
      [&] { last = mmlp::engine::solve(session, request); });
  warm.counters["cache_build_ms"] = last.cache_build_ms;
  warm.counters["cache_misses"] = static_cast<double>(last.cache_misses);
  warm.counters["cache_hits"] = static_cast<double>(last.cache_hits);
  warm.counters["cold_over_warm"] =
      warm.wall_ms > 0.0 ? cold_ms / warm.wall_ms : 0.0;
  if (const auto it = last.diagnostics.find("lp_solves");
      it != last.diagnostics.end()) {
    warm.counters["lp_solves"] = it->second;
  }
  return warm.wall_ms;
}

/// The latency-distribution case: ~16 individually timed warm repeats
/// of the request, interleaved with a k=16 random-edit update +
/// incremental re-solve (the streaming workload of the acceptance
/// criterion), every per-request total_ms observed into an
/// obs::Histogram. Reported as percentile counters rather than the
/// harness's min-wall estimator — the histogram is exactly what the
/// metrics registry exports, so the bench doubles as a check that the
/// observability plumbing produces sane numbers.
void run_latency(mmlp::bench::Report& report, const std::string& scenario,
                 const mmlp::Instance& instance, SolveRequest request) {
  using namespace mmlp;
  Instance working = instance;  // mutated by the interleaved updates
  Session session(working);
  (void)engine::solve(session, request);  // prime the caches
  SolveRequest incremental = request;
  incremental.incremental = true;
  (void)engine::solve(session, incremental);  // prime the memo
  Rng rng(40013u);
  obs::Histogram hist;
  SolveResult last;
  constexpr int kSamples = 16;
  auto& bench_case = report.run_case(
      scenario + "_latency", instance.num_agents(), 1, [&] {
        for (int sample = 0; sample < kSamples; ++sample) {
          last = engine::solve(session, request);
          hist.observe(last.total_ms);
          for (int edit = 0; edit < 16; ++edit) {
            const auto i = static_cast<ResourceId>(rng.next_below(
                static_cast<std::uint64_t>(working.num_resources())));
            const CoefSpan support = working.resource_support(i);
            const Coef& entry = support[static_cast<std::size_t>(
                rng.next_below(support.size()))];
            InstanceDelta delta;
            delta.set_usage(i, entry.id, entry.value * rng.uniform(0.5, 1.5));
            (void)session.apply(delta);
          }
          last = engine::solve(session, incremental);
          hist.observe(last.total_ms);
        }
      });
  bench_case.counters["samples"] = static_cast<double>(hist.count());
  bench_case.counters["latency_p50_ms"] = hist.percentile(0.50);
  bench_case.counters["latency_p90_ms"] = hist.percentile(0.90);
  bench_case.counters["latency_p99_ms"] = hist.percentile(0.99);
  // Per-request obs counter deltas of the last (incremental) solve.
  for (const char* key :
       {"simplex_solves", "simplex_pivots", "scratch_leases",
        "bfs_ball_expansions"}) {
    if (const auto it = last.counters.find(key); it != last.counters.end()) {
      bench_case.counters[key] = static_cast<double>(it->second);
    }
  }
}

/// Times the deduplicated request on a session whose caches — including
/// the view-class partition — are already hot, so the case isolates the
/// per-solve dedup economics (class build cost shows up once, in the
/// priming solve, exactly like the other session caches).
void run_dedup(mmlp::bench::Report& report, const std::string& scenario,
               const mmlp::Instance& instance, SolveRequest request, int reps,
               double warm_off_ms, const char* case_suffix = "_dedup_warm") {
  request.deduplicate = true;
  SolveResult last;
  Session session(instance);
  (void)mmlp::engine::solve(session, request);  // prime caches + classes
  auto& dedup = report.run_case(
      scenario + case_suffix, instance.num_agents(), reps,
      [&] { last = mmlp::engine::solve(session, request); });
  dedup.counters["cache_build_ms"] = last.cache_build_ms;
  dedup.counters["cache_misses"] = static_cast<double>(last.cache_misses);
  dedup.counters["view_classes"] = last.diagnostics.at("view_classes");
  dedup.counters["lp_solves"] = last.diagnostics.at("lp_solves");
  dedup.counters["dedup_ratio"] = last.diagnostics.at("dedup_ratio");
  dedup.counters["warm_off_ms"] = warm_off_ms;
  dedup.counters["speedup_vs_off"] =
      dedup.wall_ms > 0.0 ? warm_off_ms / dedup.wall_ms : 0.0;
}

/// The streaming-update workload: k random single-coefficient edits
/// (each its own Session::apply) followed by one incremental re-solve,
/// timed together — the end-to-end latency of absorbing k edits into a
/// live solution. The session is mutable-bound to a private copy of the
/// instance (edits must not leak into the other cases) and primed with
/// one full incremental solve so the memo exists.
void run_update_resolve(mmlp::bench::Report& report, const std::string& scenario,
                        const mmlp::Instance& instance, SolveRequest request,
                        int reps, double warm_full_ms) {
  using namespace mmlp;
  request.incremental = true;
  for (const int k : {1, 16, 256}) {
    Instance working = instance;
    Session session(working);
    (void)engine::solve(session, request);  // prime caches + memo
    Rng rng(10007u + static_cast<std::uint64_t>(k));
    SolveResult last;
    auto& bench_case = report.run_case(
        scenario + "_update_resolve_k" + std::to_string(k),
        instance.num_agents(), reps, [&] {
          for (int edit = 0; edit < k; ++edit) {
            const auto i = static_cast<ResourceId>(
                rng.next_below(static_cast<std::uint64_t>(
                    working.num_resources())));
            const CoefSpan support = working.resource_support(i);
            const Coef& entry = support[static_cast<std::size_t>(
                rng.next_below(support.size()))];
            InstanceDelta delta;
            delta.set_usage(i, entry.id, entry.value * rng.uniform(0.5, 1.5));
            (void)session.apply(delta);
          }
          last = engine::solve(session, request);
        });
    bench_case.counters["edits"] = static_cast<double>(k);
    bench_case.counters["incremental"] = last.diagnostics.at("incremental");
    bench_case.counters["dirty_agents"] = last.diagnostics.at("dirty_agents");
    bench_case.counters["resolved_agents"] =
        last.diagnostics.at("resolved_agents");
    bench_case.counters["warm_full_ms"] = warm_full_ms;
    bench_case.counters["speedup_vs_cold"] =
        bench_case.wall_ms > 0.0 ? warm_full_ms / bench_case.wall_ms : 0.0;
  }
}

/// The partitioned-serving sweep: one instance, solved monolithically
/// (S=1) and through ShardedSessions of increasing shard count. Each
/// sharded case reports the partition economics alongside the wall
/// time; the S=1 wall is the baseline every speedup_vs_mono divides.
/// Sizes are the sweep's own ladder — sharding exists for the
/// 10^6..10^7-agent regime the regular sweep never reaches.
void run_shard_sweep(mmlp::bench::Report& report, const std::string& scale,
                     int reps) {
  using namespace mmlp;
  struct SweepPoint {
    std::int64_t agents;
    const char* algorithm;
    std::vector<std::int32_t> shard_counts;
    int reps;
  };
  std::vector<SweepPoint> points;
  if (scale == "smoke") {
    points.push_back({512, "averaging", {1, 2, 4, 8}, reps});
  } else if (scale == "small") {
    points.push_back({10000, "averaging", {1, 2, 4, 8}, reps});
  } else {
    // The headline regime: a full shard-count curve at 10^6 agents and
    // a 10^7-agent case proving the partitioned path holds at a size
    // where the monolithic cold build alone is the bottleneck.
    points.push_back({1000000, "averaging", {1, 2, 4, 8}, 1});
    points.push_back({10000000, "safe", {1, 8}, 1});
  }

  for (const SweepPoint& point : points) {
    const Instance instance =
        bench_scenarios::make_scenario("grid_torus", point.agents);
    SolveRequest request;
    request.algorithm = point.algorithm;
    request.R = 1;
    const std::string base = std::string("grid_torus_shard_") +
                             point.algorithm + "_";
    double mono_ms = 0.0;
    for (const std::int32_t shards : point.shard_counts) {
      SolveResult last;
      if (shards == 1) {
        mmlp::WallTimer build_timer;
        Session session(instance);
        (void)mmlp::engine::solve(session, request);  // prime
        const double build_ms = build_timer.milliseconds();
        auto& mono = report.run_case(
            base + "S1", instance.num_agents(), point.reps,
            [&] { last = mmlp::engine::solve(session, request); });
        mono.counters["shards"] = 1.0;
        mono.counters["halo_agents"] = 0.0;
        mono.counters["build_ms"] = build_ms;
        mono_ms = mono.wall_ms;
        continue;
      }
      mmlp::WallTimer build_timer;
      engine::ShardedSession session(
          instance, engine::ShardedOptions{.shards = shards,
                                           .halo_radius = 3});
      (void)session.solve(request);  // prime every shard session
      const double build_ms = build_timer.milliseconds();
      auto& sharded = report.run_case(
          base + "S" + std::to_string(shards), instance.num_agents(),
          point.reps, [&] { last = session.solve(request); });
      sharded.counters["shards"] = static_cast<double>(shards);
      sharded.counters["halo_agents"] =
          static_cast<double>(session.halo_agents());
      sharded.counters["halo_fraction"] =
          static_cast<double>(session.halo_agents()) /
          static_cast<double>(instance.num_agents());
      sharded.counters["pool_threads"] =
          static_cast<double>(session.worker_threads());
      sharded.counters["build_ms"] = build_ms;
      sharded.counters["mono_ms"] = mono_ms;
      sharded.counters["speedup_vs_mono"] =
          sharded.wall_ms > 0.0 ? mono_ms / sharded.wall_ms : 0.0;
      if (const auto it = last.diagnostics.find("lp_solves");
          it != last.diagnostics.end()) {
        sharded.counters["lp_solves"] = it->second;
      }
    }
  }
}

/// The multi-core scaling sweep (ROADMAP item 3): the same warm request
/// measured at T ∈ {1, 2, 4, 8} dedicated session workers, on the
/// grid_torus scenario (smoke 512 / small 1e4 / full 1e5 agents). Each
/// case carries the scaling verdict directly: speedup_vs_t1 (the T=1
/// wall of the same variant over this wall), parallel_efficiency
/// (min(1, speedup/T) — 1.0 is linear scaling), and the scheduler's own
/// accounting deltas over the timed region (worker_busy_fraction =
/// busy_ns summed over workers / T·wall, plus chunks and steals). The
/// efficiency counters are gated by compare_bench.py, so a scheduler
/// change that quietly serializes the hot path fails the bench CI job.
/// Note the caller participates in bulk regions, so at T=1 the pool's
/// single worker often stays idle (busy_fraction ≈ 0 is expected
/// there); efficiency, not busy_fraction, is the gated signal.
void run_thread_sweep(mmlp::bench::Report& report, const std::string& scale,
                      int reps) {
  using namespace mmlp;
  const std::int64_t agents =
      scale == "smoke" ? 512 : scale == "small" ? 10000 : 100000;
  const Instance instance =
      bench_scenarios::make_scenario("grid_torus", agents);

  struct Variant {
    std::string stem;
    SolveRequest request;
    bool update_workload;  ///< 16 edits + incremental re-solve per rep
  };
  const std::vector<Variant> variants = {
      {"grid_torus_averaging_warm",
       {.algorithm = "averaging", .R = 1},
       false},
      {"grid_torus_safe_warm", {.algorithm = "safe"}, false},
      {"grid_torus_averaging_dedup_warm",
       {.algorithm = "averaging", .R = 1, .deduplicate = true},
       false},
      {"grid_torus_update_resolve_k16",
       {.algorithm = "averaging", .R = 1, .incremental = true},
       true},
  };

  for (const Variant& variant : variants) {
    double t1_wall_ms = 0.0;
    for (const std::size_t threads : {1, 2, 4, 8}) {
      Instance working = instance;  // update workloads mutate their copy
      Session session(working,
                      engine::SessionOptions{.threads = threads});
      (void)engine::solve(session, variant.request);  // prime the caches
      if (variant.update_workload) {
        (void)engine::solve(session, variant.request);  // prime the memo
      }
      Rng rng(77003u + threads);
      SolveResult last;
      ThreadPool& pool = *session.pool();
      const std::vector<ThreadPool::WorkerStats> before =
          pool.worker_stats();
      WallTimer sweep_timer;
      auto& bench_case = report.run_case(
          variant.stem + "_T" + std::to_string(threads), agents, reps, [&] {
            if (variant.update_workload) {
              for (int edit = 0; edit < 16; ++edit) {
                const auto i = static_cast<ResourceId>(
                    rng.next_below(static_cast<std::uint64_t>(
                        working.num_resources())));
                const CoefSpan support = working.resource_support(i);
                const Coef& entry = support[static_cast<std::size_t>(
                    rng.next_below(support.size()))];
                InstanceDelta delta;
                delta.set_usage(i, entry.id,
                                entry.value * rng.uniform(0.5, 1.5));
                (void)session.apply(delta);
              }
            }
            last = engine::solve(session, variant.request);
          });
      const double measured_ms = sweep_timer.milliseconds();
      const std::vector<ThreadPool::WorkerStats> after = pool.worker_stats();

      bench_case.counters["threads"] = static_cast<double>(threads);
      if (threads == 1) {
        t1_wall_ms = bench_case.wall_ms;
      }
      const double speedup =
          bench_case.wall_ms > 0.0 ? t1_wall_ms / bench_case.wall_ms : 0.0;
      bench_case.counters["t1_ms"] = t1_wall_ms;
      bench_case.counters["speedup_vs_t1"] = speedup;
      bench_case.counters["parallel_efficiency"] =
          std::min(1.0, speedup / static_cast<double>(threads));

      double busy_ns = 0.0, chunks = 0.0, steals = 0.0;
      for (std::size_t w = 0; w < after.size(); ++w) {
        busy_ns += static_cast<double>(after[w].busy_ns - before[w].busy_ns);
        chunks += static_cast<double>(after[w].chunks - before[w].chunks);
        steals += static_cast<double>(after[w].steals - before[w].steals);
      }
      // run_case re-runs the body `reps` times and keeps the minimum
      // wall; the stats deltas cover every rep, so normalise by the
      // total measured time, not the reported minimum.
      const double total_wall_ns =
          measured_ms * 1e6 * static_cast<double>(threads);
      bench_case.counters["worker_busy_fraction"] =
          total_wall_ns > 0.0 ? std::min(1.0, busy_ns / total_wall_ns) : 0.0;
      bench_case.counters["bulk_chunks"] = chunks;
      bench_case.counters["bulk_steals"] = steals;
      if (const auto it = last.diagnostics.find("lp_solves");
          it != last.diagnostics.end()) {
        bench_case.counters["lp_solves"] = it->second;
      }
    }
  }
}

/// Fault-recovery economics (the robustness PR's acceptance surface):
///
///   grid_torus_recovery_selfstab_<algo> : run a seeded 64-event fault
///       plan against the self-stabilizing execution, then time the
///       fault-free rounds back to the legitimate fixed point. The
///       counters carry the stabilization contract numerically:
///       rounds_to_legitimate <= horizon + 1, recovery_ms is the wall
///       cost of those clean rounds, faults_injected proves the plan
///       actually fired.
///   grid_torus_integrity_fallback : corrupt one cached ball (the test
///       hook), apply a delta whose surgical repair cannot reach it,
///       and time the spot-check detection plus the forced full
///       re-solve. fallback_full_solves counts the wholesale cache
///       drops the checksum divergence triggered.
void run_recovery(mmlp::bench::Report& report, const std::string& scale,
                  int reps) {
  using namespace mmlp;
  const std::int64_t agents =
      scale == "smoke" ? 512 : scale == "small" ? 4096 : 10000;
  const Instance instance =
      bench_scenarios::make_scenario("grid_torus", agents);

  struct Algo {
    const char* name;
    SelfStabilizingSolver::Algorithm algorithm;
  };
  const Algo algos[] = {
      {"safe", SelfStabilizingSolver::Algorithm::kSafe},
      {"averaging", SelfStabilizingSolver::Algorithm::kAveraging},
  };
  for (const Algo& algo : algos) {
    double recovery_ms = 0.0;
    std::int32_t rounds = 0;
    std::int32_t horizon = 0;
    std::int64_t injected = 0;
    auto& bench_case = report.run_case(
        std::string("grid_torus_recovery_selfstab_") + algo.name,
        instance.num_agents(), reps, [&] {
          SelfStabilizingSolver solver(instance, algo.algorithm, {.R = 1});
          FaultInjector faults(
              FaultPlan::random(29, 3, instance.num_agents(), 64));
          solver.run_plan(faults);
          WallTimer timer;
          rounds = solver.stabilize(solver.horizon() + 1);
          recovery_ms = timer.milliseconds();
          horizon = solver.horizon();
          injected = faults.faults_injected();
        });
    bench_case.counters["rounds_to_legitimate"] =
        static_cast<double>(rounds);
    bench_case.counters["recovery_ms"] = recovery_ms;
    bench_case.counters["horizon"] = static_cast<double>(horizon);
    bench_case.counters["faults_injected"] = static_cast<double>(injected);
  }

  Instance working = instance;
  Session session(working);
  Rng rng(51001u);
  const SolveRequest request{.algorithm = "distributed-safe"};
  const std::int64_t fallbacks_before = session.stats().integrity_fallbacks;
  SolveResult last;
  auto& fallback_case = report.run_case(
      "grid_torus_integrity_fallback", instance.num_agents(), reps, [&] {
        (void)mmlp::engine::solve(session, request);  // warm the balls
        session.corrupt_cached_ball_for_test(1, false, 0);
        InstanceDelta delta;
        delta.set_usage(working.num_resources() / 2,
                        working.num_agents() / 2, rng.uniform(0.5, 1.5));
        (void)session.apply(delta);  // spot-check detects, drops caches
        last = mmlp::engine::solve(session, request);  // cold rebuild
      });
  fallback_case.counters["fallback_full_solves"] = static_cast<double>(
      session.stats().integrity_fallbacks - fallbacks_before);
  fallback_case.counters["cache_misses"] =
      static_cast<double>(last.cache_misses);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "engine",
      [](bench::Report& report, const std::string& scale, int reps) {
        for (const std::string& scenario :
             {std::string("grid_torus"), std::string("random")}) {
          for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
            const Instance instance =
                bench_scenarios::make_scenario(scenario, n);
            // The averaging request is where the session caches carry
            // real weight (balls + growth sets + per-worker LP scratch).
            const double warm_averaging_ms =
                run_pair(report, scenario + "_averaging", instance,
                         {.algorithm = "averaging", .R = 1}, reps);
            // Dedup economics on the same request: the grid scenario
            // collapses to O(1) view classes; the random scenario is
            // the no-symmetry stress case (ratio ~0) whose case name
            // records that it proves singleton-bailout parity.
            run_dedup(report, scenario + "_averaging", instance,
                      {.algorithm = "averaging", .R = 1}, reps,
                      warm_averaging_ms,
                      scenario == "random" ? "_dedup_warm_nosym"
                                           : "_dedup_warm");
            // The per-request latency distribution of the streaming
            // solve/update mix, as obs::Histogram percentiles.
            run_latency(report, scenario + "_averaging", instance,
                        {.algorithm = "averaging", .R = 1});
            // The update workload: how much of the warm solve does
            // locality let a k-edit re-solve skip?
            run_update_resolve(report, scenario + "_averaging", instance,
                               {.algorithm = "averaging", .R = 1}, reps,
                               warm_averaging_ms);
            // The safe request derives no cacheable state: warm ≈ cold
            // by design, which keeps the comparison honest.
            run_pair(report, scenario + "_safe", instance,
                     {.algorithm = "safe"}, reps);
          }
        }
        // The partitioned-serving curve, on its own size ladder.
        run_shard_sweep(report, scale, reps);
        // The multi-core scaling curve (T in {1,2,4,8}) with the
        // CI-gated efficiency counters.
        run_thread_sweep(report, scale, reps);
        // Fault-recovery economics: stabilization after a fault plan
        // and the cost of a checksum-divergence full rebuild.
        run_recovery(report, scale, reps);
      });
}

// E3 — the safe algorithm's Δ_I^V guarantee (Section 4, first display)
// and its tightness.
//
// Sweeps random bounded-degree instances with Δ_I^V ∈ {2..6} and the
// adversarial star family where the ratio Δ_I^V is attained exactly:
// one resource shared by Δ agents, a single party served by one agent.
#include <cstdio>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/stats.hpp"
#include "mmlp/util/table.hpp"

namespace {

mmlp::Instance star_instance(std::int32_t delta) {
  using namespace mmlp;
  Instance::Builder builder;
  const ResourceId i = builder.add_resource();
  const PartyId k = builder.add_party();
  for (std::int32_t v = 0; v < delta; ++v) {
    const AgentId agent = builder.add_agent();
    builder.set_usage(i, agent, 1.0);
    if (v == 0) {
      builder.set_benefit(k, agent, 1.0);
    }
  }
  return std::move(builder).build();
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== E3: safe algorithm — ratio <= Delta_V^I, tight in the "
              "worst case ===\n\n");

  TableWriter random_table({"Delta_V^I target", "seeds", "mean ratio",
                            "max ratio", "bound", "all feasible"},
                           4);
  for (const std::int32_t delta : {2, 3, 4, 5, 6}) {
    OnlineStats ratios;
    bool feasible = true;
    std::size_t actual_bound = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto instance = make_random_instance({
          .num_agents = 60,
          .resources_per_agent = 2,
          .parties_per_agent = 1,
          .max_support = delta,
          .seed = seed * 31,
      });
      actual_bound =
          std::max(actual_bound, instance.degree_bounds().delta_V_of_I);
      const auto x = safe_solution(instance);
      feasible = feasible && evaluate(instance, x).feasible();
      const auto exact = solve_maxmin_simplex(instance);
      ratios.add(approximation_ratio(exact.omega, objective_omega(instance, x)));
    }
    random_table.add_row({static_cast<std::int64_t>(delta), std::int64_t{8},
                          ratios.mean(), ratios.max(),
                          static_cast<std::int64_t>(actual_bound),
                          std::string(feasible ? "yes" : "NO")});
  }
  random_table.print("Random bounded-degree instances "
                     "(max ratio must stay <= bound)");
  std::printf("\n");

  TableWriter star_table({"Delta_V^I", "safe omega", "optimal omega", "ratio"},
                         6);
  for (const std::int32_t delta : {2, 3, 4, 5, 6, 8}) {
    const auto instance = star_instance(delta);
    const auto x = safe_solution(instance);
    const auto exact = solve_maxmin_simplex(instance);
    star_table.add_row({static_cast<std::int64_t>(delta),
                        objective_omega(instance, x), exact.omega,
                        approximation_ratio(exact.omega,
                                            objective_omega(instance, x))});
  }
  star_table.print("Adversarial star family (ratio attains Delta_V^I exactly)");
  return 0;
}

// E7 — Section 2 application: two-tier sensor-network lifetime.
//
// ω is the guaranteed data volume received from every monitored area per
// unit of battery. Compares the safe algorithm, the Theorem 3 averaging
// algorithm (R = 1, 2) and the exact optimum across network sizes and
// placement seeds.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/sensor.hpp"
#include "mmlp/util/stats.hpp"
#include "mmlp/util/table.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== E7: sensor-network lifetime (Section 2) ===\n\n");
  TableWriter table({"sensors", "relays", "areas", "agents", "omega* (mean)",
                     "safe/opt", "avgR1/opt", "avgR2/opt"},
                    4);
  struct Config {
    std::int32_t sensors, relays, areas;
  };
  for (const Config& config :
       {Config{40, 12, 4}, Config{80, 20, 9}, Config{160, 40, 16}}) {
    OnlineStats omega_star;
    OnlineStats safe_frac;
    OnlineStats avg1_frac;
    OnlineStats avg2_frac;
    std::int64_t agents = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      SensorNetworkOptions options;
      options.num_sensors = config.sensors;
      options.num_relays = config.relays;
      options.num_areas = config.areas;
      options.radio_range = 0.3;
      options.sensing_range = 0.4;
      options.seed = seed * 1001;
      const auto net = make_sensor_network(options);
      agents = net.instance.num_agents();

      const auto exact = solve_optimal(net.instance);
      omega_star.add(exact.omega);
      safe_frac.add(objective_omega(net.instance, safe_solution(net.instance)) /
                    exact.omega);
      avg1_frac.add(
          objective_omega(net.instance, local_averaging(net.instance, {.R = 1}).x) /
          exact.omega);
      avg2_frac.add(
          objective_omega(net.instance, local_averaging(net.instance, {.R = 2}).x) /
          exact.omega);
    }
    table.add_row({static_cast<std::int64_t>(config.sensors),
                   static_cast<std::int64_t>(config.relays),
                   static_cast<std::int64_t>(config.areas), agents,
                   omega_star.mean(), safe_frac.mean(), avg1_frac.mean(),
                   avg2_frac.mean()});
  }
  table.print("Lifetime achieved as a fraction of the optimum "
              "(mean over 3 placements; 1.0 = optimal)");
  return 0;
}

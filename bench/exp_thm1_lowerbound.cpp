// E4 — Theorem 1: the inapproximability pipeline, executed.
//
// For each parameter set (d, D, R) with r = 1: build S, run the safe
// algorithm (a deterministic horizon-1 algorithm) on S, select p with
// δ(p) ≥ 0, restrict to S′, and measure the algorithm's ratio on S′
// against ω*(S′) (exact LP). The measured ratio must exceed the finite-R
// bound  d/2 + 1 − 1/(2D) + (d+2−2dD−1/D)/(2 d^R D^R − 2)  and approach
// the asymptotic bound Δ_I^V/2 + 1/2 − 1/(2Δ_K^V−2) as R grows.
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/table.hpp"
#include "mmlp/util/timer.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== E4: Theorem 1 — no local algorithm beats "
              "Delta_V^I/2 + 1/2 - 1/(2 Delta_V^K - 2) ===\n\n");

  TableWriter table({"d", "D", "R", "degree", "agents(S)", "agents(S')",
                     "omega*(S')", "omega_safe(S')", "safe ratio",
                     "avgR1 ratio", "finite-R bound", "asympt bound", "sec"},
                    4);
  struct Config {
    std::int32_t d, D, R;
  };
  const Config configs[] = {
      {2, 2, 2},  // Δ = 8
      {2, 3, 2},  // Δ = 12
      {3, 2, 2},  // Δ = 18
      {2, 2, 3},  // Δ = 32: tighter finite-R bound
  };
  for (const auto& config : configs) {
    WallTimer timer;
    LowerBoundParams params;
    params.d = config.d;
    params.D = config.D;
    params.r = 1;
    params.R = config.R;
    params.seed = 7;
    const auto lb = build_lower_bound_instance(params);

    const auto x_s = safe_solution(lb.instance);
    const std::int32_t p = select_p(compute_delta(lb, x_s));
    const auto sub = build_s_prime(lb, p);

    // ω*(S′): exact LP when S′ is small enough, else the alternating
    // solution's certified lower bound of 1 (the proof only needs >= 1).
    double omega_star = 1.0;
    const char* star_note = ">=1 (x-hat)";
    if (sub.instance.num_agents() <= 900) {
      const auto exact = solve_maxmin_simplex(sub.instance);
      if (exact.status == LpStatus::kOptimal) {
        omega_star = exact.omega;
        star_note = "exact";
      }
    }
    (void)star_note;

    const auto x_sub = safe_solution(sub.instance);
    const double omega_safe = objective_omega(sub.instance, x_sub);
    const double ratio = omega_star / omega_safe;
    // The averaging algorithm (horizon 3 > r) is not covered by the
    // r = 1 indistinguishability argument; its ratio on S' is reported
    // as an empirical companion.
    const auto avg = local_averaging(sub.instance, {.R = 1});
    const double avg_ratio =
        omega_star / objective_omega(sub.instance, avg.x);

    table.add_row({static_cast<std::int64_t>(config.d),
                   static_cast<std::int64_t>(config.D),
                   static_cast<std::int64_t>(config.R),
                   static_cast<std::int64_t>(lb.degree),
                   static_cast<std::int64_t>(lb.instance.num_agents()),
                   static_cast<std::int64_t>(sub.instance.num_agents()),
                   omega_star, omega_safe, ratio, avg_ratio,
                   theorem1_bound_finite(config.d, config.D, config.R),
                   theorem1_bound(config.d, config.D), timer.seconds()});
  }
  table.print("Safe algorithm forced onto S' (measured ratio must exceed the "
              "finite-R bound; Delta_V^I = d+1, Delta_V^K = D+1)");
  std::printf(
      "\nNote: r = 1 throughout — girth-10 template graphs (r = 2) exceed\n"
      "laptop scale; see DESIGN.md. The R-sweep exercises the same\n"
      "asymptotics via the finite-R correction term.\n");
  return 0;
}

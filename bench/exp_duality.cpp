// Section 1.3: the |K| = 1 special case is the fractional packing LP;
// its dual is a covering LP. Verifies strong duality numerically on
// single-party instances across families.
#include <cstdio>

#include "mmlp/gen/random_instance.hpp"
#include "mmlp/lp/duality.hpp"
#include "mmlp/util/table.hpp"

namespace {

mmlp::Instance single_party(mmlp::AgentId n, std::uint64_t seed) {
  using namespace mmlp;
  // A random bounded-degree instance whose parties are merged into one.
  const auto base = make_random_instance({
      .num_agents = n,
      .resources_per_agent = 2,
      .parties_per_agent = 1,
      .max_support = 3,
      .seed = seed,
  });
  Instance::Builder builder;
  for (AgentId v = 0; v < base.num_agents(); ++v) {
    builder.add_agent();
  }
  for (ResourceId i = 0; i < base.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : base.resource_support(i)) {
      builder.set_usage(id, entry.id, entry.value);
    }
  }
  const PartyId k = builder.add_party();
  for (AgentId v = 0; v < base.num_agents(); ++v) {
    builder.set_benefit(k, v, 1.0);
  }
  return std::move(builder).build();
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== Packing/covering duality on |K| = 1 instances "
              "(Section 1.3) ===\n\n");
  TableWriter table({"agents", "resources", "packing opt", "covering opt",
                     "gap", "strong duality"},
                    6);
  for (const AgentId n : {20, 50, 100, 200}) {
    const auto instance = single_party(n, static_cast<std::uint64_t>(n));
    const auto primal = packing_from_instance(instance);
    const auto dual = covering_from_instance(instance);
    const auto p = solve_lp(primal);
    const auto d = solve_lp(dual);
    const double covering_value = -d.objective;  // dual was negated
    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(instance.num_resources()),
                   p.objective, covering_value,
                   covering_value - p.objective,
                   std::string(std::abs(covering_value - p.objective) < 1e-6
                                   ? "yes"
                                   : "NO")});
  }
  table.print("max c x : Ax <= 1  vs  min 1 y : A^T y >= c "
              "(values must coincide)");
  return 0;
}

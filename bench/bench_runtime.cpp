// E10 — LOCAL-model simulator: flooding rounds and per-agent world
// materialisation.
#include <benchmark/benchmark.h>

#include "mmlp/dist/runtime.hpp"
#include "mmlp/gen/grid.hpp"

namespace {

void BM_FloodRounds(benchmark::State& state) {
  const auto instance =
      mmlp::make_grid_instance({.dims = {20, 20}, .torus = true});
  const mmlp::LocalRuntime runtime(instance);
  const auto rounds = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const auto knowledge = runtime.flood(rounds);
    benchmark::DoNotOptimize(knowledge.size());
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["messages"] =
      static_cast<double>(runtime.message_count(rounds));
}
BENCHMARK(BM_FloodRounds)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_MaterializeWorld(benchmark::State& state) {
  const auto instance =
      mmlp::make_grid_instance({.dims = {16, 16}, .torus = true});
  const mmlp::LocalRuntime runtime(instance);
  const auto knowledge = runtime.flood(3);
  for (auto _ : state) {
    const mmlp::AgentContext ctx(instance, 0, knowledge[0]);
    const auto world = ctx.materialize();
    benchmark::DoNotOptimize(world.instance.num_agents());
  }
}
BENCHMARK(BM_MaterializeWorld)->Unit(benchmark::kMillisecond);

}  // namespace

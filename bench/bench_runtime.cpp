// LOCAL-model simulator (Section 1.1): flooding rounds grow each
// agent's knowledge to B_H(v, r), one message per (agent, incident
// hyperedge, round). Reports ns/agent, messages/round and knowledge-set
// volumes into BENCH_runtime.json.
#include <algorithm>

#include "mmlp/dist/runtime.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "runtime",
      [](bench::Report& report, const std::string& scale, int reps) {
        for (const std::string& scenario :
             {std::string("grid_torus"), std::string("isp")}) {
          for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
            const Instance instance =
                bench_scenarios::make_scenario(scenario, n);
            const LocalRuntime runtime(instance);
            for (const std::int32_t rounds : {1, 3}) {
              std::vector<std::vector<AgentId>> knowledge;
              auto& entry = report.run_case(
                  scenario, instance.num_agents(), reps,
                  [&] { knowledge = runtime.flood(rounds); });
              std::size_t max_known = 0;
              std::size_t total = 0;
              for (const auto& set : knowledge) {
                max_known = std::max(max_known, set.size());
                total += set.size();
              }
              entry.counters["rounds"] = static_cast<double>(rounds);
              entry.counters["messages_per_round"] =
                  static_cast<double>(runtime.message_count(1));
              entry.counters["peak_knowledge"] =
                  static_cast<double>(max_known);
              entry.counters["avg_knowledge"] =
                  static_cast<double>(total) /
                  static_cast<double>(knowledge.size());
            }
          }
        }
      });
}

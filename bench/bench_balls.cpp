// Ball enumeration (Section 1.5): B_H(v, r) for every agent via the
// chunked BallCollector sweep — the substrate under every view
// extraction and the Figure 2 growth sets. Reports ns/agent and ball
// volume counters into BENCH_balls.json.
#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "balls",
      [](bench::Report& report, const std::string& scale, int reps) {
        for (const std::string& scenario :
             {std::string("grid_torus"), std::string("geometric"),
              std::string("isp")}) {
          for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
            const Instance instance =
                bench_scenarios::make_scenario(scenario, n);
            const Hypergraph h = instance.communication_graph();
            for (const std::int32_t radius : {1, 2}) {
              std::vector<std::vector<NodeId>> balls;
              auto& entry = report.run_case(
                  scenario, instance.num_agents(), reps,
                  [&] { balls = all_balls(h, radius); });
              std::size_t max_ball = 0;
              std::size_t total = 0;
              for (const auto& ball : balls) {
                max_ball = std::max(max_ball, ball.size());
                total += ball.size();
              }
              entry.counters["R"] = static_cast<double>(radius);
              entry.counters["peak_ball"] = static_cast<double>(max_ball);
              entry.counters["avg_ball"] =
                  static_cast<double>(total) /
                  static_cast<double>(balls.size());
            }
          }
        }
      });
}

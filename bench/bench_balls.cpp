// Ball enumeration (Section 1.5): B_H(v, r) for every agent via the
// chunked BallCollector sweep — the substrate under every view
// extraction and the Figure 2 growth sets. Reports ns/agent and ball
// volume counters into BENCH_balls.json. The <scenario>_expand cases
// time the incremental path (expand_balls: radius 1 + frontier from
// radius 0 grown to radius 2, the engine::Session cache strategy)
// against the from-scratch radius-2 build it replaces.
#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "balls",
      [](bench::Report& report, const std::string& scale, int reps) {
        for (const std::string& scenario :
             {std::string("grid_torus"), std::string("geometric"),
              std::string("isp")}) {
          for (const std::int64_t n : bench_scenarios::swept_sizes(scale)) {
            const Instance instance =
                bench_scenarios::make_scenario(scenario, n);
            const Hypergraph h = instance.communication_graph();
            for (const std::int32_t radius : {1, 2}) {
              std::vector<std::vector<NodeId>> balls;
              // Radius in the case name: (scenario, agents) pairs must
              // be unique for tools/compare_bench.py to diff them.
              auto& entry = report.run_case(
                  scenario + "_r" + std::to_string(radius),
                  instance.num_agents(), reps,
                  [&] { balls = all_balls(h, radius); });
              std::size_t max_ball = 0;
              std::size_t total = 0;
              for (const auto& ball : balls) {
                max_ball = std::max(max_ball, ball.size());
                total += ball.size();
              }
              entry.counters["R"] = static_cast<double>(radius);
              entry.counters["peak_ball"] = static_cast<double>(max_ball);
              entry.counters["avg_ball"] =
                  static_cast<double>(total) /
                  static_cast<double>(balls.size());
            }

            // Radius sweep 1..3 — a client exploring R on one session.
            // The engine::Session ball cache serves each new radius by
            // expanding the previous one from its exact frontier, so
            // every BFS shell is scanned once across the sweep; the
            // from-scratch sweep rescans shells 0..r−1 at every radius.
            double scratch_ms = 0.0;
            {
              std::vector<std::vector<NodeId>> balls;
              auto& from_scratch = report.run_case(
                  scenario + "_sweep_scratch", instance.num_agents(), reps,
                  [&] {
                    for (const std::int32_t r : {1, 2, 3}) {
                      balls = all_balls(h, r);
                    }
                  });
              scratch_ms = from_scratch.wall_ms;
            }
            std::vector<std::vector<NodeId>> expanded;
            auto& entry = report.run_case(
                scenario + "_sweep_expand", instance.num_agents(), reps, [&] {
                  std::vector<std::vector<NodeId>> r1 = all_balls(h, 1);
                  std::vector<std::vector<NodeId>> r2 =
                      expand_balls(h, r1, 1, nullptr, 2);
                  expanded = expand_balls(h, r2, 2, &r1, 3);
                });
            entry.counters["scratch_ms"] = scratch_ms;
            entry.counters["speedup_vs_scratch"] =
                entry.wall_ms > 0.0 ? scratch_ms / entry.wall_ms : 0.0;
          }
        }
      });
}

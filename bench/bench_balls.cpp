// E10 — ball enumeration: the inner loop of every local algorithm.
#include <benchmark/benchmark.h>

#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/bfs.hpp"

namespace {

void BM_AllBalls(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const auto radius = static_cast<std::int32_t>(state.range(1));
  const auto instance =
      mmlp::make_grid_instance({.dims = {side, side}, .torus = true});
  const auto h = instance.communication_graph();
  for (auto _ : state) {
    const auto balls = mmlp::all_balls(h, radius);
    benchmark::DoNotOptimize(balls.size());
  }
  state.counters["nodes"] = static_cast<double>(side) * side;
  state.counters["radius"] = static_cast<double>(radius);
}
BENCHMARK(BM_AllBalls)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Unit(benchmark::kMillisecond);

void BM_BallCollectorReuse(benchmark::State& state) {
  // Collector reuse vs per-call allocation.
  const auto instance =
      mmlp::make_grid_instance({.dims = {24, 24}, .torus = true});
  const auto h = instance.communication_graph();
  mmlp::BallCollector collector(h);
  std::size_t total = 0;
  for (auto _ : state) {
    for (mmlp::NodeId v = 0; v < h.num_nodes(); ++v) {
      total += collector.collect(v, 2).size();
    }
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_BallCollectorReuse)->Unit(benchmark::kMillisecond);

void BM_BallFreshPerCall(benchmark::State& state) {
  const auto instance =
      mmlp::make_grid_instance({.dims = {24, 24}, .torus = true});
  const auto h = instance.communication_graph();
  std::size_t total = 0;
  for (auto _ : state) {
    for (mmlp::NodeId v = 0; v < h.num_nodes(); ++v) {
      total += mmlp::ball(h, v, 2).size();
    }
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_BallFreshPerCall)->Unit(benchmark::kMillisecond);

}  // namespace

// Section 1.1 claim: a local algorithm yields a sublinear-time estimator
// of its solution value (additive error, failure probability). Shows the
// Hoeffding interval tightening with samples and the work counter
// staying flat as n grows 10x.
#include <cmath>
#include <cstdio>

#include "mmlp/core/solution.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/sublinear.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/table.hpp"

namespace {

double exact_mean(const mmlp::Instance& instance) {
  const auto x = mmlp::safe_solution(instance);
  double total = 0.0;
  for (mmlp::PartyId k = 0; k < instance.num_parties(); ++k) {
    total += mmlp::party_benefit(instance, x, k);
  }
  return total / static_cast<double>(instance.num_parties());
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== Sublinear estimation from local algorithms "
              "(Section 1.1) ===\n\n");

  {
    const auto instance = make_random_instance({.num_agents = 2000, .seed = 1});
    const double exact = exact_mean(instance);
    TableWriter table({"samples", "estimate", "exact", "abs error",
                       "95% half-width", "within CI"},
                      4);
    for (const std::int32_t samples : {16, 64, 256, 1024}) {
      const auto estimate = estimate_mean_party_benefit(
          instance, {.algorithm = LocalAlgorithmKind::kSafe,
                     .samples = samples, .seed = 11});
      const double error = std::abs(estimate.mean_benefit - exact);
      table.add_row({static_cast<std::int64_t>(samples),
                     estimate.mean_benefit, exact, error,
                     estimate.half_width,
                     std::string(error <= estimate.half_width ? "yes" : "NO")});
    }
    table.print("Mean party benefit of the safe solution, n = 2000 "
                "(error shrinks ~1/sqrt(samples))");
  }
  std::printf("\n");
  {
    TableWriter table({"n", "samples", "agents evaluated", "estimate"}, 4);
    for (const AgentId n : {500, 5000, 50000}) {
      const auto instance = make_random_instance({.num_agents = n, .seed = 2});
      const auto estimate = estimate_mean_party_benefit(
          instance, {.samples = 128, .seed = 13});
      table.add_row({static_cast<std::int64_t>(n), std::int64_t{128},
                     estimate.agents_evaluated, estimate.mean_benefit});
    }
    table.print("Work at fixed sample count as n grows 100x "
                "(agents evaluated stays O(samples), not O(n))");
  }
  return 0;
}

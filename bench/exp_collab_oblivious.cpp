// Section 1.4's restricted setting: in the collaboration-oblivious
// variant the hyperedges are only the resource supports {V_i} — agents
// serving the same party but sharing no resource cannot talk. Measures
// what the averaging algorithm loses there (the Theorem 3 benefit bound
// needs V_k to be a clique of H, which only full H guarantees).
#include <cstdio>

#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/gen/random_instance.hpp"
#include "mmlp/util/table.hpp"

namespace {

void sweep(const char* name, const mmlp::Instance& instance,
           std::int32_t R, mmlp::TableWriter& table) {
  using namespace mmlp;
  const auto exact = solve_optimal(instance);
  const auto full = local_averaging(instance, {.R = R});
  const auto oblivious = local_averaging(
      instance, {.R = R, .collaboration_oblivious = true});
  const double full_omega = objective_omega(instance, full.x);
  const double obl_omega = objective_omega(instance, oblivious.x);
  const bool obl_bound_finite =
      oblivious.ratio_bound < 1e18;  // +inf when some S_k is empty
  table.add_row({std::string(name), static_cast<std::int64_t>(R),
                 full_omega / exact.omega, obl_omega / exact.omega,
                 full.ratio_bound,
                 std::string(obl_bound_finite ? "finite" : "infinite")});
}

}  // namespace

int main() {
  using namespace mmlp;
  std::printf("=== Collaboration-oblivious variant (Section 1.4) ===\n\n");
  TableWriter table({"instance", "R", "full-H avg/opt", "oblivious avg/opt",
                     "full-H bound", "oblivious bound"},
                    4);
  const auto grid = make_grid_instance(
      {.dims = {9, 9}, .torus = true, .randomize = true, .seed = 3});
  sweep("random torus 9x9", grid, 1, table);
  sweep("random torus 9x9", grid, 2, table);
  const auto isp = make_isp_network({.num_customers = 12, .seed = 5});
  sweep("isp 12 customers", isp.instance, 1, table);
  const auto random = make_random_instance({.num_agents = 60, .seed = 7});
  sweep("random n=60", random, 1, table);
  table.print("Dropping party hyperedges from H: feasibility survives, the "
              "benefit guarantee does not (S_k can be empty)");
  return 0;
}

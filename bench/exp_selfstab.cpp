// Section 1.1 claim: local algorithms become self-stabilising algorithms
// with constant stabilisation time. Measures rounds-to-legitimacy after
// adversarial state corruption, across network sizes and horizons.
#include <cstdio>

#include "mmlp/dist/self_stabilize.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/util/rng.hpp"
#include "mmlp/util/table.hpp"

int main() {
  using namespace mmlp;
  std::printf("=== Self-stabilisation of the flooding layer (Section 1.1) "
              "===\n\n");
  TableWriter table({"agents", "horizon", "corrupt entries", "rounds to legit",
                     "bound (horizon+1)", "safe output ok"});
  for (const std::int32_t side : {6, 12, 24}) {
    const auto instance =
        make_grid_instance({.dims = {side, side}, .torus = true});
    for (const std::int32_t horizon : {1, 2, 3}) {
      SelfStabilizingFlood flood(instance, horizon);
      Rng rng(99);
      flood.corrupt(rng, 16);
      std::int32_t rounds = 0;
      while (!flood.is_legitimate() && rounds < horizon + 4) {
        flood.step();
        ++rounds;
      }
      const bool output_ok =
          horizon >= 1 && flood.is_legitimate() &&
          flood.safe_output().size() ==
              static_cast<std::size_t>(instance.num_agents());
      table.add_row({static_cast<std::int64_t>(side) * side,
                     static_cast<std::int64_t>(horizon), std::int64_t{16},
                     static_cast<std::int64_t>(rounds),
                     static_cast<std::int64_t>(horizon + 1),
                     std::string(output_ok ? "yes" : "NO")});
    }
  }
  table.print("Rounds until the legitimate state after corrupting every "
              "agent's table (constant in n, bounded by horizon+1)");
  return 0;
}

// E9 — the scalability claim of Section 1.1: per-node work of the safe
// algorithm (eq. (2)) is constant, so total time is linear in n. Sweeps
// every generator scenario at the --scale sizes through the engine
// Session API (safe derives no cacheable state, so the series stays
// comparable with the pre-engine free-function numbers) and reports
// ns/agent plus sparsity counters into BENCH_safe.json.
#include "mmlp/core/safe.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/bench_report.hpp"

#include "scenarios.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  return bench::bench_main(
      argc, argv, "safe",
      [](bench::Report& report, const std::string& scale, int reps) {
        bench_scenarios::for_each_scenario(
            bench_scenarios::all_scenarios(), scale,
            [&](const std::string& scenario, const Instance& instance) {
              engine::Session session(instance);
              std::vector<double> x;
              auto& result = report.run_case(
                  scenario, instance.num_agents(), reps,
                  [&] { x = safe_solution_with(session); });
              const DegreeBounds bounds = instance.degree_bounds();
              result.counters["nonzeros"] =
                  static_cast<double>(instance.num_nonzeros());
              result.counters["peak_support"] = static_cast<double>(
                  std::max(bounds.delta_V_of_I, bounds.delta_V_of_K));
            });
      });
}

// E9 — the scalability claim of Section 1.1: per-node work of the safe
// algorithm is constant, so total time is linear in n.
#include <benchmark/benchmark.h>

#include "mmlp/core/safe.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/gen/random_instance.hpp"

namespace {

void BM_SafeGrid(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const auto instance =
      mmlp::make_grid_instance({.dims = {side, side}, .torus = true});
  for (auto _ : state) {
    const auto x = mmlp::safe_solution(instance);
    benchmark::DoNotOptimize(x.data());
  }
  const double n = static_cast<double>(side) * side;
  state.counters["agents"] = n;
  state.counters["ns_per_agent"] = benchmark::Counter(
      n, benchmark::Counter::kIsIterationInvariantRate |
             benchmark::Counter::kInvert);
}
BENCHMARK(BM_SafeGrid)
    ->Arg(32)    // 1k agents
    ->Arg(100)   // 10k
    ->Arg(316)   // ~100k
    ->Unit(benchmark::kMillisecond);

void BM_SafeRandom(benchmark::State& state) {
  const auto instance = mmlp::make_random_instance({
      .num_agents = static_cast<mmlp::AgentId>(state.range(0)),
      .resources_per_agent = 3,
      .parties_per_agent = 2,
      .max_support = 4,
      .seed = 5,
  });
  for (auto _ : state) {
    const auto x = mmlp::safe_solution(instance);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["agents"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SafeRandom)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

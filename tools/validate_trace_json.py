#!/usr/bin/env python3
"""Validate a Chrome Trace Event JSON file written by mmlp::obs::Tracer.

Usage: validate_trace_json.py TRACE.json [--expect-span NAME ...]

Checks, per file:
  - the file parses as JSON and is the object form of the Trace Event
    format ({"traceEvents": [...], ...}) that Perfetto / chrome://tracing
    load directly;
  - every event is a complete event (ph == "X") carrying the required
    fields name/cat/ph/ts/dur/pid/tid with the right types and
    non-negative, finite timestamps;
  - per thread (tid), the complete events nest properly: sorted by start
    time, every event either ends before the enclosing one ends or lies
    entirely outside it — overlapping-but-not-nested spans on one thread
    would render as a corrupted flame graph (a tiny tolerance absorbs
    clock granularity on same-start parent/child pairs);
  - every --expect-span NAME appears at least once (CI passes the stage
    names a warm averaging solve must produce: session.build_*,
    averaging.view_lps, averaging.gather).

Exits non-zero printing every violation when any file is invalid.
"""

import argparse
import json
import math
import sys

REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

# Slack (in trace µs) for parent/child events whose recorded boundaries
# touch: the tracer's ns clock is exact but the µs serialisation rounds.
NEST_TOLERANCE_US = 0.01


def is_finite_number(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_events(events, errors):
    by_tid = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [field for field in REQUIRED_FIELDS if field not in event]
        if missing:
            errors.append(f"{where}: missing fields {missing}")
            continue
        if not isinstance(event["name"], str) or not event["name"]:
            errors.append(f"{where}.name: non-empty string required")
        if not isinstance(event["cat"], str) or not event["cat"]:
            errors.append(f"{where}.cat: non-empty string required")
        if event["ph"] != "X":
            errors.append(
                f"{where}.ph: expected complete event 'X', got {event['ph']!r}"
            )
            continue
        ok = True
        for field in ("ts", "dur"):
            if not is_finite_number(event[field]) or event[field] < 0:
                errors.append(
                    f"{where}.{field}: finite number >= 0 required, "
                    f"got {event[field]!r}"
                )
                ok = False
        for field in ("pid", "tid"):
            if not isinstance(event[field], int) or isinstance(
                event[field], bool
            ):
                errors.append(
                    f"{where}.{field}: integer required, got {event[field]!r}"
                )
                ok = False
        if ok:
            by_tid.setdefault(event["tid"], []).append((index, event))
    validate_nesting(by_tid, errors)


def validate_nesting(by_tid, errors):
    for tid, events in sorted(by_tid.items()):
        # Longest-first on ties so a parent sharing its child's start
        # time is visited (and stacked) before the child.
        ordered = sorted(
            events, key=lambda item: (item[1]["ts"], -item[1]["dur"])
        )
        stack = []  # (index, start, end) of currently open spans
        for index, event in ordered:
            start = event["ts"]
            end = start + event["dur"]
            while stack and start >= stack[-1][2] - NEST_TOLERANCE_US:
                stack.pop()
            if stack and end > stack[-1][2] + NEST_TOLERANCE_US:
                parent_index, parent_start, parent_end = stack[-1]
                errors.append(
                    f"tid {tid}: traceEvents[{index}] "
                    f"({event['name']!r} [{start}, {end}]) overlaps "
                    f"traceEvents[{parent_index}] "
                    f"[{parent_start}, {parent_end}] without nesting"
                )
                continue
            stack.append((index, start, end))


def validate_trace(path, expected_spans):
    errors = []
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot parse: {error}"]

    if not isinstance(trace, dict):
        return ["top level: object form of the Trace Event format required"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: array required"]
    if not events:
        errors.append("traceEvents: empty (was the tracer enabled?)")
    validate_events(events, errors)

    names = {
        event["name"]
        for event in events
        if isinstance(event, dict) and isinstance(event.get("name"), str)
    }
    for span in expected_spans:
        if span not in names:
            errors.append(f"expected span {span!r} not present in the trace")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", metavar="TRACE.json")
    parser.add_argument(
        "--expect-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one event with this name (repeatable)",
    )
    args = parser.parse_args(argv[1:])

    failed = False
    for path in args.traces:
        errors = validate_trace(path, args.expect_span)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Diff two BENCH_*.json reports and flag wall-time regressions.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]
                        [--scaling-threshold 0.5] [--strict]

Cases are matched by (scenario, agents). For every matched case the
wall_ms ratio current/baseline is printed; a case is flagged as a
regression when it is more than --threshold (default 15%) slower than
the baseline. Cases present on only one side are reported as
added/removed (informational — schema growth is expected as the bench
suite expands).

Work counters (cache_misses, lp_solves, dedup_ratio, simplex_pivots and
the latency percentiles) are diffed too when both sides carry them:
unlike wall time they are deterministic, so a change is a real
behavioural difference, not noise. Counter-only changes are printed but
never flagged as regressions — interpreting the direction (fewer
lp_solves: better; lower dedup_ratio: worse) is the reviewer's job.

Thread-sweep cases additionally gate on parallel_efficiency: when both
sides carry the counter and the current efficiency has dropped by more
than --scaling-threshold (relative, default 0.5 — i.e. halved), the
case is flagged as a scaling regression. The tolerance is deliberately
loose: efficiency is a *ratio* of two noisy walls, and the baseline may
have been recorded on a machine with fewer cores than the current run
(where efficiency at T>cores is pinned near 1/T). A real scheduler
serialization shows up as efficiency collapsing toward 1/T at every T,
which a 50% relative drop catches on matched hardware.

Exit status: 0 unless --strict is given and at least one regression,
scaling regression, or removed case was found. CI runs this without
--strict first — timing on shared runners is noisy, so the report is
informational until a baseline refresh policy exists
(docs/BENCHMARKS.md).
"""

import argparse
import json
import sys

# Deterministic work counters worth diffing case by case. Timing-derived
# counters (cache_build_ms, speedup_*, cold_over_warm) are deliberately
# absent — they are as noisy as wall_ms itself.
TRACKED_COUNTERS = (
    "cache_misses",
    "cache_hits",
    "lp_solves",
    "dedup_ratio",
    "view_classes",
    "simplex_pivots",
    "dirty_agents",
    "resolved_agents",
    "latency_p50_ms",
    "latency_p90_ms",
    "latency_p99_ms",
    "threads",
    # Fault-recovery cases: stabilization rounds and fault volume are
    # functions of (instance, plan seed), and a correct build never
    # takes an unplanned integrity fallback — any drift is behavioural.
    "rounds_to_legitimate",
    "faults_injected",
    "fallback_full_solves",
)


def counter_diffs(base_case, cur_case):
    """Yield (name, base, cur) for tracked counters that changed."""
    base_counters = base_case.get("counters", {})
    cur_counters = cur_case.get("counters", {})
    for name in TRACKED_COUNTERS:
        if name not in base_counters or name not in cur_counters:
            continue
        base_value = base_counters[name]
        cur_value = cur_counters[name]
        tolerance = 1e-9 * max(1.0, abs(base_value))
        if abs(cur_value - base_value) > tolerance:
            yield name, base_value, cur_value


def load_cases(path):
    with open(path) as handle:
        report = json.load(handle)
    cases = {}
    for case in report.get("cases", []):
        key = (case["scenario"], case["agents"])
        # Duplicate (scenario, agents) keys keep the last entry; the
        # bench binaries emit unique names per configuration.
        cases[key] = case
    return report, cases


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    parser.add_argument(
        "--scaling-threshold",
        type=float,
        default=0.5,
        help="relative parallel_efficiency drop that counts as a scaling "
        "regression (default 0.5)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when regressions (or removed cases) are found",
    )
    args = parser.parse_args()

    baseline_report, baseline = load_cases(args.baseline)
    current_report, current = load_cases(args.current)

    if baseline_report.get("name") != current_report.get("name"):
        print(
            f"note: comparing different benchmarks "
            f"({baseline_report.get('name')!r} vs {current_report.get('name')!r})"
        )
    if baseline_report.get("scale") != current_report.get("scale"):
        print(
            f"note: different scales "
            f"({baseline_report.get('scale')!r} vs {current_report.get('scale')!r}) "
            f"— ratios are not meaningful across scales"
        )

    regressions = []
    improvements = []
    scaling_regressions = []
    counter_changes = 0
    width = max(
        [len(f"{scenario} n={agents}") for scenario, agents in baseline] + [8]
    )
    print(f"{'case':<{width}}  {'base ms':>10}  {'cur ms':>10}  {'ratio':>7}")
    for key in sorted(baseline):
        scenario, agents = key
        label = f"{scenario} n={agents}"
        if key not in current:
            print(f"{label:<{width}}  {'—':>10}  {'—':>10}  removed")
            regressions.append((key, None))
            continue
        base_ms = baseline[key]["wall_ms"]
        cur_ms = current[key]["wall_ms"]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            regressions.append((key, ratio))
        elif ratio < 1.0 - args.threshold:
            flag = "  (faster)"
            improvements.append((key, ratio))
        print(
            f"{label:<{width}}  {base_ms:>10.3f}  {cur_ms:>10.3f}  {ratio:>7.2f}{flag}"
        )
        for name, base_value, cur_value in counter_diffs(
            baseline[key], current[key]
        ):
            counter_changes += 1
            print(
                f"{'':<{width}}    counter {name}: "
                f"{base_value:g} -> {cur_value:g}"
            )
        base_eff = baseline[key].get("counters", {}).get("parallel_efficiency")
        cur_eff = current[key].get("counters", {}).get("parallel_efficiency")
        if base_eff is not None and cur_eff is not None and base_eff > 0:
            if cur_eff < base_eff * (1.0 - args.scaling_threshold):
                scaling_regressions.append((key, base_eff, cur_eff))
                print(
                    f"{'':<{width}}    parallel_efficiency "
                    f"{base_eff:.3f} -> {cur_eff:.3f}"
                    f"  << SCALING REGRESSION"
                )
    added = sorted(set(current) - set(baseline))
    for scenario, agents in added:
        print(f"{scenario} n={agents}: new case (no baseline)")

    print(
        f"\n{len(regressions)} regression(s) over {args.threshold:.0%}, "
        f"{len(scaling_regressions)} scaling regression(s) over "
        f"{args.scaling_threshold:.0%}, "
        f"{len(improvements)} improvement(s), {len(added)} new case(s), "
        f"{counter_changes} counter change(s)."
    )
    if (regressions or scaling_regressions) and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// mmlp_batch — the "many requests, one hot session" front-end.
//
// Loads (or generates) one max-min LP instance, opens a persistent
// engine::Session on it, then reads JSONL solve requests (stdin or
// --requests FILE) and streams one JSONL result per request to stdout.
// The session caches balls/growth sets/worker scratch across requests,
// so request #2..#N on the same radius pay only for the algorithm
// proper — the cache_build_ms field of each result line shows exactly
// what the request paid for.
//
//   # two averaging solves; the second is warm
//   printf '{"algorithm": "averaging"}\n%.0s' 1 2 |
//     mmlp_batch --generate grid_torus --agents 10000
//
//   # run a whole request file against a serialized instance
//   mmlp_batch --input net.mmlp --requests load.jsonl --out results.jsonl
//
// Request/response wire format: src/mmlp/engine/wire.hpp. Lines with
// "op": "update" are routed through Session::apply, which edits the
// instance in place and surgically repairs the session caches — so a
// hot batch can interleave edits with (incremental) solves:
//
//   {"algorithm": "averaging", "incremental": true, "id": 1}
//   {"op": "update", "set_usage": [{"i": 5, "v": 9, "a": 0.25}], "id": 2}
//   {"algorithm": "averaging", "incremental": true, "id": 3}
//
// --shards N (N >= 2) partitions the instance into N halo-overlapped
// shards and serves every request through an engine::ShardedSession —
// results (including --emit-x vectors) are bitwise-equal to the flat
// batch; --halo-radius and --shard-strategy tune the cut. Local
// per-agent solvers only (safe, averaging, distributed-*).
//
// {"op": "stats"} lines answer with the process observability state
// (session caches, per-worker pool activity, obs::Registry metrics);
// --trace-out FILE records every span of the batch as Chrome Trace
// Event JSON (load in Perfetto / chrome://tracing) and --metrics-out
// FILE dumps the final metrics snapshot.
//
// Blank lines and lines starting with '#' are skipped, so request files
// can carry comments. By default a malformed or failing request
// produces an {"error": ..., "code": ..., "line": N} result line — N is
// the 1-based input line number of the offending request, and code is
// the stable taxonomy of wire.hpp (parse | validate | timeout |
// cancelled | internal) — and processing continues (a long batch is not
// lost to one typo); --fail-fast (alias --strict) turns the first
// failure fatal. The exit summary counts failures per code.
//
// --default-deadline-ms applies a wall-clock budget to every solve that
// does not set its own deadline_ms; --fault-plan replays a fault
// schedule on every selfstab-* solve that does not carry its own
// fault_plan key.
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "mmlp/engine/session.hpp"
#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/engine/wire.hpp"
#include "mmlp/util/cancel.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/cli.hpp"
#include "mmlp/util/fault.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/timer.hpp"

#include "scenarios.hpp"

namespace {

mmlp::Instance load_or_generate(const mmlp::ArgParser& args) {
  using namespace mmlp;
  const std::string input = args.get_string("input");
  if (!input.empty()) {
    std::ifstream in(input);
    MMLP_CHECK_MSG(static_cast<bool>(in), "cannot open " << input);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return Instance::deserialize(buffer.str());
  }
  return bench_scenarios::make_scenario(args.get_string("generate"),
                                        args.get_int("agents"));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args(
      "Serve JSONL solve requests against one instance over a hot "
      "engine::Session.");
  args.add_flag("input", "instance file (mmlp text format); empty = generate",
                "");
  args.add_flag("generate",
                "generator when no input: grid_torus|random|geometric|isp|"
                "regular_bipartite",
                "grid_torus");
  args.add_flag("agents", "approximate agent count for the generator", "10000");
  args.add_flag("requests", "JSONL request file; '-' = stdin", "-");
  args.add_flag("out", "JSONL result file; '-' = stdout", "-");
  args.add_flag("threads",
                "worker threads for the session pool (0 = hardware)", "0");
  args.add_flag("shards",
                "partition the instance into N shards with halo overlap and "
                "serve solves through a ShardedSession (0/1 = flat session); "
                "output is bitwise-equal to the unsharded batch",
                "0");
  args.add_flag("halo-radius",
                "halo hops per shard; averaging at radius R needs >= 2R+1",
                "3");
  args.add_flag("shard-strategy",
                "agent partition strategy: contiguous|bfs", "contiguous");
  args.add_switch("emit-x", "include the full solution vector per result");
  args.add_switch("strict", "abort on the first malformed/failing request");
  args.add_switch("fail-fast", "alias of --strict");
  args.add_flag("default-deadline-ms",
                "wall-clock budget applied to every solve request that does "
                "not set deadline_ms itself (0 = unlimited)",
                "0");
  args.add_flag("fault-plan",
                "fault schedule (FaultPlan grammar, e.g. "
                "'s7;0:drop:3:5;1:crash:2') replayed by every selfstab-* "
                "request that does not carry its own fault_plan key",
                "");
  args.add_flag("trace-out",
                "enable the span tracer for the whole batch and write the "
                "Chrome Trace Event JSON (load in Perfetto) to FILE",
                "");
  args.add_flag("metrics-out",
                "write the final obs::Registry metrics snapshot (counters, "
                "gauges, histogram percentiles) as one JSON object to FILE",
                "");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  const std::string trace_out = args.get_string("trace-out");
  const std::string metrics_out = args.get_string("metrics-out");
  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(true);
  }

  Instance instance = load_or_generate(args);  // mutable: updates edit it
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));
  const auto shard_count =
      static_cast<std::int32_t>(args.get_int("shards"));
  const bool sharded = shard_count >= 2;
  std::unique_ptr<engine::Session> session;
  std::unique_ptr<engine::ShardedSession> sharded_session;
  if (sharded) {
    sharded_session = std::make_unique<engine::ShardedSession>(
        instance,
        engine::ShardedOptions{
            .shards = shard_count,
            .halo_radius =
                static_cast<std::int32_t>(args.get_int("halo-radius")),
            .strategy = shard::partition_strategy_from_string(
                args.get_string("shard-strategy")),
            .threads = threads});
    std::cerr << "mmlp_batch: instance with " << instance.num_agents()
              << " agents, " << instance.num_resources() << " resources, "
              << instance.num_parties() << " parties; " << shard_count
              << " shard(s), halo radius "
              << sharded_session->halo_radius() << ", "
              << sharded_session->halo_agents() << " halo agent(s), shared "
              << "pool of " << sharded_session->worker_threads()
              << " thread(s)\n";
  } else {
    session = std::make_unique<engine::Session>(instance,
                                                engine::SessionOptions{
                                                    .threads = threads});
    std::cerr << "mmlp_batch: instance with " << instance.num_agents()
              << " agents, " << instance.num_resources() << " resources, "
              << instance.num_parties() << " parties; session pool "
              << session->thread_count() << " thread(s)\n";
  }

  const std::string requests_path = args.get_string("requests");
  std::ifstream requests_file;
  if (requests_path != "-") {
    requests_file.open(requests_path);
    MMLP_CHECK_MSG(static_cast<bool>(requests_file),
                   "cannot open " << requests_path);
  }
  std::istream& requests =
      requests_path == "-" ? std::cin : requests_file;

  const std::string out_path = args.get_string("out");
  std::ofstream out_file;
  if (out_path != "-") {
    out_file.open(out_path);
    MMLP_CHECK_MSG(static_cast<bool>(out_file), "cannot write " << out_path);
  }
  std::ostream& out = out_path == "-" ? std::cout : out_file;

  const bool emit_x = args.get_bool("emit-x");
  const bool fail_fast = args.get_bool("strict") || args.get_bool("fail-fast");
  const auto default_deadline_ms =
      static_cast<std::int64_t>(args.get_int("default-deadline-ms"));
  MMLP_CHECK_MSG(default_deadline_ms >= 0,
                 "--default-deadline-ms must be >= 0, got "
                     << default_deadline_ms);
  const std::string default_fault_plan = args.get_string("fault-plan");
  if (!default_fault_plan.empty()) {
    // Fail at startup, not on request #1: the flag shares the request
    // key's grammar and validation.
    FaultPlan::parse(default_fault_plan);
  }
  std::int64_t served = 0;
  std::int64_t failed = 0;
  std::map<std::string, std::int64_t> failed_by_code;
  std::int64_t line_number = 0;
  WallTimer batch_timer;
  // One line's failure, routed through the stable error-code taxonomy
  // of wire.hpp. Returns true when the batch should abort (--fail-fast).
  const auto report_failure = [&](const std::string& code,
                                  const std::string& message) {
    ++failed;
    ++failed_by_code[code];
    out << engine::error_to_json_line(code, message,
                                      static_cast<std::size_t>(line_number))
        << '\n';
    if (fail_fast) {
      out.flush();
      std::cerr << "mmlp_batch: aborting on failed request at line "
                << line_number << " (--fail-fast, code " << code
                << "): " << message << '\n';
      return true;
    }
    return false;
  };
  std::string line;
  while (std::getline(requests, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    try {
      engine::WireCommand command = engine::parse_command_line(line);
      if (command.kind == engine::WireCommand::Kind::kUpdate) {
        const engine::Session::ApplyReport report =
            sharded ? sharded_session->apply(command.delta)
                    : session->apply(command.delta);
        out << engine::apply_report_to_json_line(report, command.id) << '\n';
      } else if (command.kind == engine::WireCommand::Kind::kStats) {
        out << (sharded
                    ? engine::stats_to_json_line(*sharded_session, command.id)
                    : engine::stats_to_json_line(*session, command.id))
            << '\n';
      } else {
        if (command.request.deadline_ms == 0) {
          command.request.deadline_ms = default_deadline_ms;
        }
        if (command.request.fault_plan.empty() &&
            command.request.algorithm.rfind("selfstab-", 0) == 0) {
          command.request.fault_plan = default_fault_plan;
        }
        const engine::SolveResult result =
            sharded ? sharded_session->solve(command.request)
                    : engine::solve(*session, command.request);
        if (result.status != engine::SolveStatus::kOk) {
          // Timed-out/cancelled solves answer an error line, not a
          // result line: there is no solution to report, and stream
          // consumers dispatch on the code.
          if (report_failure(engine::solve_status_name(result.status),
                             result.error)) {
            return 1;
          }
          continue;
        }
        out << engine::result_to_json_line(result, command.id, emit_x) << '\n';
      }
      ++served;
    } catch (const engine::WireParseError& error) {
      if (report_failure("parse", error.what())) {
        return 1;
      }
    } catch (const CancelledError& error) {
      // engine::solve converts expiry into the status taxonomy; this
      // catch covers cancellation unwinding out of update/stats paths.
      if (report_failure(error.reason() == CancelReason::kDeadline
                             ? "timeout"
                             : "cancelled",
                         error.what())) {
        return 1;
      }
    } catch (const CheckError& error) {
      if (report_failure("validate", error.what())) {
        return 1;
      }
    } catch (const std::exception& error) {
      if (report_failure("internal", error.what())) {
        return 1;
      }
    }
  }
  out.flush();

  if (!trace_out.empty()) {
    obs::Tracer::instance().set_enabled(false);
    std::ofstream trace_file(trace_out);
    MMLP_CHECK_MSG(static_cast<bool>(trace_file),
                   "cannot write " << trace_out);
    trace_file << obs::Tracer::instance().to_chrome_json() << '\n';
    std::cerr << "mmlp_batch: wrote trace to " << trace_out;
    if (const std::uint64_t dropped = obs::Tracer::instance().dropped();
        dropped > 0) {
      std::cerr << " (" << dropped << " span(s) dropped on full buffers)";
    }
    std::cerr << '\n';
  }
  if (!metrics_out.empty()) {
    // Refresh the session gauges so the snapshot carries final cache
    // entry counts, not whatever the last stats query left behind.
    (void)(sharded ? sharded_session->stats() : session->stats());
    std::ofstream metrics_file(metrics_out);
    MMLP_CHECK_MSG(static_cast<bool>(metrics_file),
                   "cannot write " << metrics_out);
    metrics_file << obs::Registry::global().to_json_line() << '\n';
    std::cerr << "mmlp_batch: wrote metrics to " << metrics_out << '\n';
  }

  const engine::SessionStats stats =
      sharded ? sharded_session->stats() : session->stats();
  std::cerr << "mmlp_batch: served " << served << " request(s), " << failed
            << " failed";
  if (!failed_by_code.empty()) {
    std::cerr << " (";
    bool first = true;
    for (const auto& [code, count] : failed_by_code) {
      std::cerr << (first ? "" : ", ") << code << ": " << count;
      first = false;
    }
    std::cerr << ')';
  }
  std::cerr << ", " << batch_timer.milliseconds() << " ms total; "
            << "session caches: " << stats.cache_hits << " hit(s), "
            << stats.cache_misses << " miss(es), " << stats.cache_build_ms
            << " ms building; scratch: " << stats.scratch_reused
            << " reuse(s), " << stats.scratch_created << " creation(s)";
  if (stats.integrity_fallbacks > 0) {
    std::cerr << "; INTEGRITY FALLBACKS: " << stats.integrity_fallbacks;
  }
  std::cerr << '\n';
  // --fail-fast already exited inside the loop on the first failure;
  // other batches report failures per line and exit clean.
  return 0;
}

#!/usr/bin/env python3
"""Validate a BENCH_*.json report against the mmlp-bench-v1 schema.

Usage: validate_bench_json.py REPORT.json [REPORT2.json ...]

Exits non-zero (printing every violation) when any report is invalid.
The schema contract is documented in docs/BENCHMARKS.md and kept in
lockstep with src/mmlp/util/bench_report.cpp.
"""

import json
import math
import sys

SCHEMA_ID = "mmlp-bench-v1"
SCALES = {"smoke", "small", "full"}


def check(condition, errors, message):
    if not condition:
        errors.append(message)


def is_finite_number(value):
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_case(index, case, errors):
    where = f"cases[{index}]"
    check(isinstance(case, dict), errors, f"{where}: not an object")
    if not isinstance(case, dict):
        return
    scenario = case.get("scenario")
    check(
        isinstance(scenario, str) and scenario,
        errors,
        f"{where}.scenario: non-empty string required",
    )
    agents = case.get("agents")
    check(
        isinstance(agents, int) and not isinstance(agents, bool) and agents > 0,
        errors,
        f"{where}.agents: positive integer required, got {agents!r}",
    )
    repetitions = case.get("repetitions")
    check(
        isinstance(repetitions, int)
        and not isinstance(repetitions, bool)
        and repetitions >= 1,
        errors,
        f"{where}.repetitions: integer >= 1 required, got {repetitions!r}",
    )
    wall_ms = case.get("wall_ms")
    check(
        is_finite_number(wall_ms) and wall_ms >= 0,
        errors,
        f"{where}.wall_ms: finite number >= 0 required, got {wall_ms!r}",
    )
    ns_per_agent = case.get("ns_per_agent")
    check(
        is_finite_number(ns_per_agent) and ns_per_agent >= 0,
        errors,
        f"{where}.ns_per_agent: finite number >= 0 required, got {ns_per_agent!r}",
    )
    if (
        is_finite_number(wall_ms)
        and is_finite_number(ns_per_agent)
        and isinstance(agents, int)
        and not isinstance(agents, bool)
        and agents > 0
    ):
        expected = wall_ms * 1e6 / agents
        tolerance = 1e-6 * max(1.0, abs(expected))
        check(
            abs(ns_per_agent - expected) <= tolerance,
            errors,
            f"{where}.ns_per_agent: {ns_per_agent} != wall_ms*1e6/agents ({expected})",
        )
    counters = case.get("counters")
    check(isinstance(counters, dict), errors, f"{where}.counters: object required")
    if isinstance(counters, dict):
        for key, value in counters.items():
            check(
                isinstance(key, str) and key,
                errors,
                f"{where}.counters: non-empty string key required, got {key!r}",
            )
            check(
                is_finite_number(value),
                errors,
                f"{where}.counters[{key!r}]: finite number required, got {value!r}",
            )
        validate_histogram_counters(where, counters, errors)
        validate_scaling_counters(where, counters, errors)


# Latency-distribution cases carry obs::Histogram percentiles as
# counters; when any of these appears, all of them must, each must be a
# finite number >= 0, and the quantiles must be ordered.
HISTOGRAM_KEYS = ("latency_p50_ms", "latency_p90_ms", "latency_p99_ms")


def validate_histogram_counters(where, counters, errors):
    present = [key for key in HISTOGRAM_KEYS if key in counters]
    if not present:
        return
    check(
        len(present) == len(HISTOGRAM_KEYS),
        errors,
        f"{where}.counters: histogram percentiles must appear together, "
        f"got only {present}",
    )
    values = []
    for key in present:
        value = counters[key]
        check(
            is_finite_number(value) and value >= 0,
            errors,
            f"{where}.counters[{key!r}]: finite number >= 0 required, got {value!r}",
        )
        if is_finite_number(value):
            values.append((key, value))
    for (lo_key, lo), (hi_key, hi) in zip(values, values[1:]):
        check(
            lo <= hi,
            errors,
            f"{where}.counters: {lo_key}={lo} > {hi_key}={hi} "
            f"(percentiles must be non-decreasing)",
        )


# Thread-sweep cases carry the scaling triplet: threads (the sweep
# axis), speedup_vs_t1 (T=1 wall over this wall) and parallel_efficiency
# (min(1, speedup/threads)). When either derived counter appears, the
# whole triplet must, efficiency must lie in (0, 1], and the triplet
# must cohere: efficiency == min(1, speedup/threads) up to timing
# rounding.
SCALING_KEYS = ("speedup_vs_t1", "parallel_efficiency")


def validate_scaling_counters(where, counters, errors):
    if not any(key in counters for key in SCALING_KEYS):
        return
    for key in SCALING_KEYS + ("threads",):
        check(
            key in counters,
            errors,
            f"{where}.counters: scaling counters must appear together "
            f"(threads, speedup_vs_t1, parallel_efficiency); missing {key!r}",
        )
    threads = counters.get("threads")
    speedup = counters.get("speedup_vs_t1")
    efficiency = counters.get("parallel_efficiency")
    if is_finite_number(threads):
        check(
            threads >= 1 and float(threads).is_integer(),
            errors,
            f"{where}.counters['threads']: integer >= 1 required, got {threads!r}",
        )
    if is_finite_number(speedup):
        check(
            speedup >= 0,
            errors,
            f"{where}.counters['speedup_vs_t1']: >= 0 required, got {speedup!r}",
        )
    if is_finite_number(efficiency):
        check(
            0 < efficiency <= 1 + 1e-9,
            errors,
            f"{where}.counters['parallel_efficiency']: value in (0, 1] "
            f"required, got {efficiency!r}",
        )
    if (
        is_finite_number(threads)
        and is_finite_number(speedup)
        and is_finite_number(efficiency)
        and threads >= 1
    ):
        expected = min(1.0, speedup / threads)
        tolerance = 1e-6 * max(1.0, abs(expected))
        check(
            abs(efficiency - expected) <= tolerance,
            errors,
            f"{where}.counters: parallel_efficiency={efficiency} != "
            f"min(1, speedup_vs_t1/threads) ({expected})",
        )


def validate_report(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot parse: {error}"]

    check(isinstance(report, dict), errors, "top level: object required")
    if not isinstance(report, dict):
        return errors
    check(
        report.get("schema") == SCHEMA_ID,
        errors,
        f"schema: expected {SCHEMA_ID!r}, got {report.get('schema')!r}",
    )
    check(
        isinstance(report.get("name"), str) and report.get("name"),
        errors,
        f"name: non-empty string required, got {report.get('name')!r}",
    )
    check(
        report.get("scale") in SCALES,
        errors,
        f"scale: one of {sorted(SCALES)} required, got {report.get('scale')!r}",
    )
    if "threads" in report:
        threads = report.get("threads")
        check(
            isinstance(threads, int)
            and not isinstance(threads, bool)
            and threads >= 1,
            errors,
            f"threads: integer >= 1 required when present, got {threads!r}",
        )
    cases = report.get("cases")
    check(
        isinstance(cases, list) and cases,
        errors,
        "cases: non-empty array required",
    )
    if isinstance(cases, list):
        for index, case in enumerate(cases):
            validate_case(index, case, errors)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = validate_report(path)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Umbrella header: the whole public API of the mmlp library.
//
// Fine-grained headers remain the preferred includes for library users;
// this header exists for quick experiments and the examples.
#pragma once

#include "mmlp/core/baselines.hpp"       // IWYU pragma: export
#include "mmlp/core/instance.hpp"        // IWYU pragma: export
#include "mmlp/core/local_averaging.hpp" // IWYU pragma: export
#include "mmlp/core/optimal.hpp"         // IWYU pragma: export
#include "mmlp/core/safe.hpp"            // IWYU pragma: export
#include "mmlp/core/solution.hpp"        // IWYU pragma: export
#include "mmlp/core/sublinear.hpp"       // IWYU pragma: export
#include "mmlp/core/transform.hpp"       // IWYU pragma: export
#include "mmlp/core/view.hpp"            // IWYU pragma: export
#include "mmlp/core/view_class.hpp"      // IWYU pragma: export
#include "mmlp/dist/algorithms.hpp"      // IWYU pragma: export
#include "mmlp/dist/runtime.hpp"         // IWYU pragma: export
#include "mmlp/dist/self_stabilize.hpp"  // IWYU pragma: export
#include "mmlp/dist/self_stabilizing_solver.hpp" // IWYU pragma: export
#include "mmlp/engine/session.hpp"       // IWYU pragma: export
#include "mmlp/engine/solver.hpp"        // IWYU pragma: export
#include "mmlp/engine/wire.hpp"          // IWYU pragma: export
#include "mmlp/gen/geometric.hpp"        // IWYU pragma: export
#include "mmlp/gen/grid.hpp"             // IWYU pragma: export
#include "mmlp/gen/isp.hpp"              // IWYU pragma: export
#include "mmlp/gen/lowerbound.hpp"       // IWYU pragma: export
#include "mmlp/gen/random_instance.hpp"  // IWYU pragma: export
#include "mmlp/gen/sensor.hpp"           // IWYU pragma: export
#include "mmlp/graph/bfs.hpp"            // IWYU pragma: export
#include "mmlp/graph/growth.hpp"         // IWYU pragma: export
#include "mmlp/graph/hypergraph.hpp"     // IWYU pragma: export
#include "mmlp/graph/hypertree.hpp"      // IWYU pragma: export
#include "mmlp/graph/regular_bipartite.hpp" // IWYU pragma: export
#include "mmlp/graph/simple_graph.hpp"   // IWYU pragma: export
#include "mmlp/lp/duality.hpp"           // IWYU pragma: export
#include "mmlp/lp/maxmin_reduction.hpp"  // IWYU pragma: export
#include "mmlp/lp/mwu.hpp"               // IWYU pragma: export
#include "mmlp/lp/simplex.hpp"           // IWYU pragma: export
#include "mmlp/util/bench_report.hpp"    // IWYU pragma: export
#include "mmlp/util/cancel.hpp"          // IWYU pragma: export
#include "mmlp/util/cli.hpp"             // IWYU pragma: export
#include "mmlp/util/fault.hpp"           // IWYU pragma: export
#include "mmlp/util/parallel.hpp"        // IWYU pragma: export
#include "mmlp/util/rng.hpp"             // IWYU pragma: export
#include "mmlp/util/stats.hpp"           // IWYU pragma: export
#include "mmlp/util/table.hpp"           // IWYU pragma: export
#include "mmlp/util/timer.hpp"           // IWYU pragma: export

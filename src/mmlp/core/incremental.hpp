// Accounting shared by the incremental re-solve paths (the update
// pipeline of engine::Session). An incremental solve either splices a
// dirty region into the previous result (incremental = true) or — when
// no usable memo exists, ids were remapped, or the options rule the
// splice out — falls back to the full algorithm (incremental = false,
// counters cover the whole instance). Either way the output is bitwise
// identical to a cold full solve of the mutated instance; the stats
// only say how much work that took.
#pragma once

#include <cstddef>

namespace mmlp {

struct IncrementalStats {
  bool incremental = false;  ///< memo hit: only the dirty region re-ran
  /// Agents whose per-agent computation (eq. (2) choice, view LP, or
  /// LOCAL-model decision) was re-run.
  std::size_t dirty_agents = 0;
  /// Output entries recomputed and spliced (for the averaging gather
  /// this is the radius-2R region around the edits, a superset of
  /// dirty_agents).
  std::size_t resolved_agents = 0;
};

}  // namespace mmlp

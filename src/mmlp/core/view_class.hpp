// View canonicalization: the symmetry layer under Theorem 3's per-agent
// LP loop.
//
// The paper's local algorithms are *anonymous*: what an agent computes
// from its radius-R view depends only on the view's structure, never on
// global identifiers. The view LP (9) is built from the LocalView's
// local-index CSR rows alone, and the LOCAL-model decision of
// mmlp/dist/algorithms is a function of the materialized world, which is
// the same structure (AgentContext::materialize keeps exactly the
// truncated resource rows and the fully visible parties — a party
// touching any agent of an inner ball is always fully visible, which is
// why distributed == centralized holds bitwise). Agents whose views are
// isomorphic therefore solve *the same* LP, and on structured instances
// (grids, tori, regular constructions) almost all of the n per-agent
// solves collapse onto a handful of isomorphism classes.
//
// This module computes that partition at two granularities:
//
//   orbit  — agents whose views are bit-identical as local structures
//            (same CSR rows, same coefficients, same center position).
//            Members of an orbit provably run the byte-for-byte same
//            solve, so reusing the representative's solution is
//            *bitwise* equal to solving per agent.
//   class  — agents whose views are isomorphic under a center-preserving
//            relabeling (orbits merged further). The representative's
//            solution transfers through the permutation: it is exactly
//            optimal and feasible for every member's LP, but a member's
//            own simplex run could have picked a different optimal
//            vertex (and rounds differently), so class-level reuse is
//            equal as permuted reals, not bitwise.
//
// The canonical labeling is BFS-layered individualization-refinement on
// the view's hypergraph: seed colors are (distance from center, own
// sorted coefficient profile); rows and agents then refine each other
// (a row's color is its type plus the sorted multiset of member
// (color, coefficient) pairs, an agent's color is its previous color
// plus the sorted multiset of incident row colors) until stable, and
// remaining ties are broken by individualizing the smallest tied local
// index. The canonical key is the full relabeled structure serialized
// to bytes — not a hash — so equal keys *prove* isomorphism (the
// property test in tests/test_view_class.cpp checks exactly this).
// Local-index tie-breaking makes the labeling a sound heuristic rather
// than a complete canonical form: genuinely isomorphic views can in
// principle land in different classes (costing dedup ratio, never
// correctness), but identical local structures always share a key and a
// permutation, so every orbit lies inside one class.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/view.hpp"

namespace mmlp {

class ThreadPool;  // util/parallel.hpp

/// How a deduplicated solve transfers a representative's solution to the
/// other members of its group (see the header comment for the
/// bitwise-vs-permuted distinction).
enum class DedupScatter : std::uint8_t {
  kExact,      ///< one solve per orbit; output bitwise equal to dedup-off
  kCanonical,  ///< one solve per isomorphism class; permuted scatter
};

/// The canonical form of one LocalView.
struct ViewCanonicalForm {
  /// The view's local structure serialized verbatim (local indexing, row
  /// order as extracted). Equal exact keys <=> bit-identical view LPs.
  std::string exact_key;
  /// The structure relabeled by the canonical permutation, rows sorted;
  /// equal canonical keys imply a center-preserving view isomorphism.
  std::string canonical_key;
  /// canon_to_local[c] = the local agent index labeled c canonically.
  std::vector<std::int32_t> canon_to_local;
};

/// Compute the canonical form of `view` (see header comment for the
/// algorithm). Deterministic: identical view structures produce
/// identical forms, including the permutation.
ViewCanonicalForm canonicalize_view(const LocalView& view);

/// The per-agent partition of one (radius, hypergraph-mode) view family,
/// cached by engine::Session and consumed by the dedup solve paths.
struct ViewClassIndex {
  std::int32_t radius = 0;
  bool collaboration_oblivious = false;

  // Per agent.
  std::vector<std::int32_t> class_of;     ///< canonical isomorphism class
  std::vector<std::int32_t> orbit_of;     ///< exact-structure orbit
  std::vector<std::int64_t> perm_offset;  ///< agent -> start in perms (n+1 entries)
  std::vector<std::int32_t> perms;        ///< concatenated canon_to_local maps

  /// Per-agent canonical-form keys, retained only when the index was
  /// built with keep_keys (engine::Session does so for mutable-bound
  /// sessions): they make the partition repairable after an instance
  /// delta — dirty agents re-canonicalize, everyone else regroups from
  /// the stored key, and key equality still *proves* shared structure.
  /// Costs memory proportional to the serialized views.
  bool repairable = false;
  std::vector<std::string> exact_keys;
  std::vector<std::string> canonical_keys;
  /// Per-agent isomorphism-invariant pre-hash (kept with the keys when
  /// repairable): agents alone in their hash bucket provably form
  /// singleton classes, so the build skips their expensive canonical
  /// labeling (identity permutation + a placeholder key derived from
  /// the exact key). Repair recomputes dirty hashes and re-derives the
  /// bucket decision for everyone, so a repaired index is identical to
  /// a from-scratch build. Hash collisions only merge buckets — they
  /// cost a canonicalization, never correctness or dedup ratio.
  std::vector<std::uint64_t> invariants;

  // Per class / per orbit, in first-appearance (ascending rep id) order.
  std::vector<AgentId> class_rep;    ///< smallest member of each class
  std::vector<AgentId> orbit_rep;    ///< smallest member of each orbit
  std::vector<std::int32_t> orbit_class;  ///< orbit -> owning class
  std::vector<std::int32_t> class_size;
  std::vector<std::int32_t> orbit_size;

  std::size_t num_agents() const { return class_of.size(); }
  std::size_t num_classes() const { return class_rep.size(); }
  std::size_t num_orbits() const { return orbit_rep.size(); }

  /// canon_to_local permutation of agent u's view.
  std::span<const std::int32_t> perm(AgentId u) const {
    const auto a = static_cast<std::size_t>(u);
    return {perms.data() + static_cast<std::ptrdiff_t>(perm_offset[a]),
            static_cast<std::size_t>(perm_offset[a + 1] - perm_offset[a])};
  }

  /// Groups a dedup solve runs: orbits for kExact, classes for kCanonical.
  std::size_t num_groups(DedupScatter scatter) const {
    return scatter == DedupScatter::kCanonical ? num_classes() : num_orbits();
  }

  /// 1 − groups/n: the fraction of per-agent LP solves the dedup path
  /// eliminates (0 on an empty instance).
  double dedup_ratio(DedupScatter scatter) const;
};

/// Partition all agents by the canonical forms of their radius-`radius`
/// views. `balls` must be all_balls of the matching hypergraph mode (the
/// engine::Session cache provides both). Runs the per-agent
/// canonicalization in parallel on `pool` (nullptr = global pool); the
/// grouping itself is deterministic and independent of the thread count.
/// Memory: the stored permutations are Σ|ball| int32s — the same order
/// as the ball cache the index is derived from (only kCanonical scatter
/// reads them; accepted as proportional to already-cached state).
ViewClassIndex build_view_class_index(
    const Instance& instance, const std::vector<std::vector<AgentId>>& balls,
    std::int32_t radius, bool collaboration_oblivious,
    ThreadPool* pool = nullptr, bool keep_keys = false);

/// Surgical repair of a keep_keys index after an instance delta: only
/// the `dirty` agents (sorted; every agent whose radius-`index.radius`
/// view structure could have changed, i.e. the dirty ball of the delta)
/// are re-canonicalized; the partition is then regrouped from the
/// per-agent keys, so class/orbit ids, representatives and sizes come
/// out exactly as a from-scratch build on the mutated instance would
/// produce them. `balls` is the repaired ball cache of the index's
/// (radius, mode). Agent additions grow the index (new agents must be
/// dirty); removals need a full rebuild.
void repair_view_class_index(const Instance& instance,
                             const std::vector<std::vector<AgentId>>& balls,
                             std::span<const AgentId> dirty,
                             ViewClassIndex& index, ThreadPool* pool = nullptr);

}  // namespace mmlp

// View extraction (Section 5, Figure 2) tuned for the one-view-per-agent
// hot loop: extract_view_into scatters B_H(u,R) into a persistent
// global→local stamp map (all −1 between calls, reset via the ball
// itself), so membership tests V^u_i = V_i ∩ V^u and K^u ⊆-tests are
// O(1) per support entry, and every buffer — id lists, CSR entry arrays,
// the LP rows, the simplex tableau — is reused across agents.
#include "mmlp/core/view.hpp"

#include <algorithm>
#include <limits>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/stamp_guard.hpp"

namespace mmlp {

std::int32_t LocalView::local_index(AgentId global) const {
  const auto it = std::lower_bound(agents.begin(), agents.end(), global);
  if (it != agents.end() && *it == global) {
    return static_cast<std::int32_t>(it - agents.begin());
  }
  return -1;
}

void LocalView::clear() {
  center = -1;
  radius = 0;
  agents.clear();
  resources.clear();
  parties.clear();
  resource_offsets.assign(1, 0);
  resource_data.clear();
  party_offsets.assign(1, 0);
  party_data.clear();
}

void extract_view_into(const Instance& instance, AgentId u, std::int32_t radius,
                       const std::vector<AgentId>& ball_of_u, LocalView& view,
                       ViewScratch& scratch) {
  MMLP_CHECK(std::is_sorted(ball_of_u.begin(), ball_of_u.end()));
  view.clear();
  view.center = u;
  view.radius = radius;
  view.agents.assign(ball_of_u.begin(), ball_of_u.end());

  // Persistent global→local map: −1 outside the current ball. Lazily
  // sized once per instance; reset below by walking the ball again.
  auto& local_of = scratch.agent_local;
  if (local_of.size() < static_cast<std::size_t>(instance.num_agents())) {
    local_of.assign(static_cast<std::size_t>(instance.num_agents()), -1);
  }
  bool center_seen = false;
  for (const AgentId v : view.agents) {
    MMLP_CHECK_MSG(v >= 0 && v < instance.num_agents(),
                   "ball of agent " << u << " contains invalid agent " << v);
    center_seen = center_seen || v == u;
  }
  MMLP_CHECK_MSG(center_seen, "ball of agent " << u << " does not contain it");
  // All ids validated; stamp under a guard so a CheckError below cannot
  // leave the persistent map dirty for the next extraction.
  const StampGuard guard(local_of, view.agents);
  for (std::size_t idx = 0; idx < view.agents.size(); ++idx) {
    local_of[static_cast<std::size_t>(view.agents[idx])] =
        static_cast<std::int32_t>(idx);
  }

  // I^u and the party candidates: ids touching any view agent, deduped
  // with sort+unique (the lists are tiny under bounded degrees).
  auto& resource_ids = scratch.resource_ids;
  auto& party_ids = scratch.party_ids;
  resource_ids.clear();
  party_ids.clear();
  for (const AgentId v : view.agents) {
    for (const Coef& entry : instance.agent_resources(v)) {
      resource_ids.push_back(entry.id);
    }
    for (const Coef& entry : instance.agent_parties(v)) {
      party_ids.push_back(entry.id);
    }
  }
  std::sort(resource_ids.begin(), resource_ids.end());
  resource_ids.erase(std::unique(resource_ids.begin(), resource_ids.end()),
                     resource_ids.end());
  std::sort(party_ids.begin(), party_ids.end());
  party_ids.erase(std::unique(party_ids.begin(), party_ids.end()),
                  party_ids.end());

  for (const ResourceId i : resource_ids) {
    const auto start = view.resource_data.size();
    for (const Coef& entry : instance.resource_support(i)) {
      const std::int32_t local = local_of[static_cast<std::size_t>(entry.id)];
      if (local >= 0) {
        view.resource_data.push_back({local, entry.value});
      }
    }
    MMLP_CHECK(view.resource_data.size() > start);  // i came from a view agent
    view.resources.push_back(i);
    view.resource_offsets.push_back(
        static_cast<std::int32_t>(view.resource_data.size()));
  }

  // K^u keeps only fully visible parties: collect entries in one pass and
  // roll back when a member falls outside the ball.
  for (const PartyId k : party_ids) {
    const auto start = view.party_data.size();
    bool full = true;
    for (const Coef& entry : instance.party_support(k)) {
      const std::int32_t local = local_of[static_cast<std::size_t>(entry.id)];
      if (local < 0) {
        full = false;
        break;
      }
      view.party_data.push_back({local, entry.value});
    }
    if (!full) {
      view.party_data.resize(start);
      continue;
    }
    view.parties.push_back(k);
    view.party_offsets.push_back(
        static_cast<std::int32_t>(view.party_data.size()));
  }
  // The StampGuard restores the all-−1 invariant on every exit path.
}

LocalView extract_view(const Instance& instance, AgentId u, std::int32_t radius,
                       const std::vector<AgentId>& ball_of_u) {
  LocalView view;
  ViewScratch scratch;
  extract_view_into(instance, u, radius, ball_of_u, view, scratch);
  return view;
}

LocalView extract_view(const Instance& instance, const Hypergraph& h, AgentId u,
                       std::int32_t radius) {
  return extract_view(instance, u, radius, ball(h, u, radius));
}

void view_lp_into(const LocalView& view, LpProblem& out) {
  const auto num_agents = static_cast<std::int32_t>(view.agents.size());
  out.num_vars = num_agents + 1;  // x^u plus ω^u
  out.objective.assign(static_cast<std::size_t>(out.num_vars), 0.0);
  out.objective.back() = 1.0;

  const std::size_t num_rows = view.resources.size() + view.parties.size();
  if (out.rows.size() > num_rows) {
    out.rows.resize(num_rows);
  }
  while (out.rows.size() < num_rows) {
    out.rows.emplace_back();
  }

  std::size_t row_idx = 0;
  for (std::size_t r = 0; r < view.resources.size(); ++r, ++row_idx) {
    LpRow& row = out.rows[row_idx];
    row.vars.clear();
    row.coeffs.clear();
    row.sense = ConstraintSense::kLe;
    row.rhs = 1.0;
    for (const Coef& entry : view.resource_entries(r)) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
  }
  for (std::size_t p = 0; p < view.parties.size(); ++p, ++row_idx) {
    LpRow& row = out.rows[row_idx];
    row.vars.clear();
    row.coeffs.clear();
    row.sense = ConstraintSense::kGe;
    row.rhs = 0.0;
    for (const Coef& entry : view.party_entries(p)) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
    row.vars.push_back(num_agents);
    row.coeffs.push_back(-1.0);
  }
}

LpProblem view_lp(const LocalView& view) {
  LpProblem problem;
  view_lp_into(view, problem);
  return problem;
}

namespace {

ViewLpSolution solve_view_lp_impl(const LocalView& view, const LpProblem& lp_problem,
                                  const SimplexOptions& options,
                                  SimplexWorkspace* workspace) {
  ViewLpSolution solution;
  const LpResult lp = workspace != nullptr
                          ? solve_lp(lp_problem, options, *workspace)
                          : solve_lp(lp_problem, options);
  MMLP_CHECK_MSG(lp.status == LpStatus::kOptimal,
                 "view LP for agent " << view.center << " returned "
                                      << to_string(lp.status));
  solution.status = lp.status;
  solution.omega = lp.objective;
  solution.x.assign(lp.x.begin(),
                    lp.x.begin() + static_cast<std::ptrdiff_t>(view.agents.size()));
  return solution;
}

}  // namespace

ViewLpSolution solve_view_lp(const LocalView& view,
                             const SimplexOptions& options) {
  if (view.parties.empty()) {
    ViewLpSolution solution;
    solution.x.assign(view.agents.size(), 0.0);
    return solution;
  }
  return solve_view_lp_impl(view, view_lp(view), options, nullptr);
}

ViewLpSolution solve_view_lp(const LocalView& view,
                             const SimplexOptions& options,
                             ViewScratch& scratch) {
  if (view.parties.empty()) {
    ViewLpSolution solution;
    solution.x.assign(view.agents.size(), 0.0);
    return solution;
  }
  view_lp_into(view, scratch.lp);
  return solve_view_lp_impl(view, scratch.lp, options, &scratch.simplex);
}

double GrowthSets::max_party_ratio() const {
  double worst = 1.0;
  for (std::size_t k = 0; k < m_k.size(); ++k) {
    if (m_k[k] == 0) {
      // Possible only in collaboration-oblivious mode (V_k need not be a
      // clique of H there); the benefit bound degenerates.
      return std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, static_cast<double>(M_k[k]) /
                                static_cast<double>(m_k[k]));
  }
  return worst;
}

double GrowthSets::max_resource_ratio() const {
  double worst = 1.0;
  for (std::size_t i = 0; i < N_i.size(); ++i) {
    MMLP_CHECK_GT(n_i[i], 0u);
    worst = std::max(worst, static_cast<double>(N_i[i]) /
                                static_cast<double>(n_i[i]));
  }
  return worst;
}

GrowthSets compute_growth_sets(const Instance& instance,
                               const std::vector<std::vector<AgentId>>& balls) {
  MMLP_CHECK_EQ(balls.size(), static_cast<std::size_t>(instance.num_agents()));
  GrowthSets sets;
  sets.ball_size.resize(balls.size());
  for (std::size_t j = 0; j < balls.size(); ++j) {
    sets.ball_size[j] = balls[j].size();
  }

  // Scratch for the running intersections/unions, hoisted out of the
  // per-party/per-resource loops (the sets are small; the allocations
  // were the cost).
  std::vector<AgentId> current;
  std::vector<AgentId> next;

  // Parties: S_k = ∩_{j∈V_k} V^j (sorted-list intersection), M_k = max |V^j|.
  const auto num_parties = static_cast<std::size_t>(instance.num_parties());
  sets.m_k.resize(num_parties);
  sets.M_k.resize(num_parties);
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const CoefSpan support = instance.party_support(k);
    const auto& first_ball = balls[static_cast<std::size_t>(support.front().id)];
    current.assign(first_ball.begin(), first_ball.end());
    std::size_t max_ball = 0;
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      max_ball = std::max(max_ball, ball_j.size());
      next.clear();
      std::set_intersection(current.begin(), current.end(), ball_j.begin(),
                            ball_j.end(), std::back_inserter(next));
      current.swap(next);
    }
    sets.m_k[static_cast<std::size_t>(k)] = current.size();
    sets.M_k[static_cast<std::size_t>(k)] = max_ball;
  }

  // Resources: U_i = ∪_{j∈V_i} V^j, n_i = min |V^j|.
  const auto num_resources = static_cast<std::size_t>(instance.num_resources());
  sets.N_i.resize(num_resources);
  sets.n_i.resize(num_resources);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const CoefSpan support = instance.resource_support(i);
    current.clear();
    std::size_t min_ball = std::numeric_limits<std::size_t>::max();
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      min_ball = std::min(min_ball, ball_j.size());
      next.clear();
      std::set_union(current.begin(), current.end(), ball_j.begin(),
                     ball_j.end(), std::back_inserter(next));
      current.swap(next);
    }
    sets.N_i[static_cast<std::size_t>(i)] = current.size();
    sets.n_i[static_cast<std::size_t>(i)] = min_ball;
  }

  // β_j = min_{i∈I_j} n_i / N_i.
  sets.beta.assign(balls.size(), 1.0);
  for (AgentId j = 0; j < instance.num_agents(); ++j) {
    double beta = std::numeric_limits<double>::infinity();
    for (const Coef& entry : instance.agent_resources(j)) {
      const auto i = static_cast<std::size_t>(entry.id);
      beta = std::min(beta, static_cast<double>(sets.n_i[i]) /
                                static_cast<double>(sets.N_i[i]));
    }
    sets.beta[static_cast<std::size_t>(j)] = beta;
  }
  return sets;
}

void repair_growth_sets(const Instance& instance,
                        const std::vector<std::vector<AgentId>>& balls,
                        std::span<const AgentId> dirty, GrowthSets& sets) {
  const auto n = static_cast<std::size_t>(instance.num_agents());
  MMLP_CHECK_EQ(balls.size(), n);
  const std::size_t old_parties = sets.m_k.size();
  const std::size_t old_resources = sets.N_i.size();
  MMLP_CHECK_MSG(sets.ball_size.size() <= n &&
                     old_parties <= static_cast<std::size_t>(instance.num_parties()) &&
                     old_resources <= static_cast<std::size_t>(instance.num_resources()),
                 "repair_growth_sets: cached sets are larger than the "
                 "instance (entity removal needs a full recompute)");

  std::vector<char> is_dirty(n, 0);
  for (const AgentId d : dirty) {
    MMLP_CHECK_GE(d, 0);
    MMLP_CHECK_LT(static_cast<std::size_t>(d), n);
    is_dirty[static_cast<std::size_t>(d)] = 1;
  }
  sets.ball_size.resize(n);
  for (const AgentId d : dirty) {
    sets.ball_size[static_cast<std::size_t>(d)] =
        balls[static_cast<std::size_t>(d)].size();
  }

  // Same running-set scratch and per-row loops as compute_growth_sets,
  // run only for the affected rows so the recomputed entries are
  // bitwise what the from-scratch pass would produce.
  std::vector<AgentId> current;
  std::vector<AgentId> next;

  sets.m_k.resize(static_cast<std::size_t>(instance.num_parties()));
  sets.M_k.resize(static_cast<std::size_t>(instance.num_parties()));
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const CoefSpan support = instance.party_support(k);
    bool affected = static_cast<std::size_t>(k) >= old_parties;
    for (const Coef& entry : support) {
      affected = affected || is_dirty[static_cast<std::size_t>(entry.id)] != 0;
    }
    if (!affected) {
      continue;
    }
    const auto& first_ball = balls[static_cast<std::size_t>(support.front().id)];
    current.assign(first_ball.begin(), first_ball.end());
    std::size_t max_ball = 0;
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      max_ball = std::max(max_ball, ball_j.size());
      next.clear();
      std::set_intersection(current.begin(), current.end(), ball_j.begin(),
                            ball_j.end(), std::back_inserter(next));
      current.swap(next);
    }
    sets.m_k[static_cast<std::size_t>(k)] = current.size();
    sets.M_k[static_cast<std::size_t>(k)] = max_ball;
  }

  sets.N_i.resize(static_cast<std::size_t>(instance.num_resources()));
  sets.n_i.resize(static_cast<std::size_t>(instance.num_resources()));
  std::vector<char> beta_dirty(n, 0);
  for (const AgentId d : dirty) {
    beta_dirty[static_cast<std::size_t>(d)] = 1;  // covers I_v changes
  }
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const CoefSpan support = instance.resource_support(i);
    bool affected = static_cast<std::size_t>(i) >= old_resources;
    for (const Coef& entry : support) {
      affected = affected || is_dirty[static_cast<std::size_t>(entry.id)] != 0;
    }
    if (!affected) {
      continue;
    }
    current.clear();
    std::size_t min_ball = std::numeric_limits<std::size_t>::max();
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      min_ball = std::min(min_ball, ball_j.size());
      next.clear();
      std::set_union(current.begin(), current.end(), ball_j.begin(),
                     ball_j.end(), std::back_inserter(next));
      current.swap(next);
    }
    sets.N_i[static_cast<std::size_t>(i)] = current.size();
    sets.n_i[static_cast<std::size_t>(i)] = min_ball;
    // n_i/N_i moved: every member's β_j reads them.
    for (const Coef& entry : support) {
      beta_dirty[static_cast<std::size_t>(entry.id)] = 1;
    }
  }

  sets.beta.resize(n, 1.0);
  for (AgentId j = 0; j < instance.num_agents(); ++j) {
    if (beta_dirty[static_cast<std::size_t>(j)] == 0) {
      continue;
    }
    double beta = std::numeric_limits<double>::infinity();
    for (const Coef& entry : instance.agent_resources(j)) {
      const auto i = static_cast<std::size_t>(entry.id);
      beta = std::min(beta, static_cast<double>(sets.n_i[i]) /
                                static_cast<double>(sets.N_i[i]));
    }
    sets.beta[static_cast<std::size_t>(j)] = beta;
  }
}

}  // namespace mmlp

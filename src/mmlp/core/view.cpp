#include "mmlp/core/view.hpp"

#include <algorithm>
#include <limits>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

bool contains_sorted(const std::vector<AgentId>& sorted, AgentId value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

/// Is every member of `support` inside the sorted agent list?
bool support_subset(const std::vector<Coef>& support,
                    const std::vector<AgentId>& sorted_agents) {
  for (const Coef& entry : support) {
    if (!contains_sorted(sorted_agents, entry.id)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::int32_t LocalView::local_index(AgentId global) const {
  const auto it = std::lower_bound(agents.begin(), agents.end(), global);
  if (it != agents.end() && *it == global) {
    return static_cast<std::int32_t>(it - agents.begin());
  }
  return -1;
}

LocalView extract_view(const Instance& instance, AgentId u, std::int32_t radius,
                       const std::vector<AgentId>& ball_of_u) {
  MMLP_CHECK(std::is_sorted(ball_of_u.begin(), ball_of_u.end()));
  MMLP_CHECK(contains_sorted(ball_of_u, u));
  LocalView view;
  view.center = u;
  view.radius = radius;
  view.agents = ball_of_u;

  // I^u: resources touching the view. Collect via the agents' I_v lists
  // (each resource appears once; dedupe with sort+unique on ids).
  std::vector<ResourceId> resource_ids;
  std::vector<PartyId> party_ids;
  for (const AgentId v : view.agents) {
    for (const Coef& entry : instance.agent_resources(v)) {
      resource_ids.push_back(entry.id);
    }
    for (const Coef& entry : instance.agent_parties(v)) {
      party_ids.push_back(entry.id);
    }
  }
  std::sort(resource_ids.begin(), resource_ids.end());
  resource_ids.erase(std::unique(resource_ids.begin(), resource_ids.end()),
                     resource_ids.end());
  std::sort(party_ids.begin(), party_ids.end());
  party_ids.erase(std::unique(party_ids.begin(), party_ids.end()),
                  party_ids.end());

  for (const ResourceId i : resource_ids) {
    std::vector<Coef> local_entries;
    for (const Coef& entry : instance.resource_support(i)) {
      const std::int32_t local = view.local_index(entry.id);
      if (local >= 0) {
        local_entries.push_back({local, entry.value});
      }
    }
    MMLP_CHECK(!local_entries.empty());  // i came from some view agent
    view.resources.push_back(i);
    view.resource_entries.push_back(std::move(local_entries));
  }

  // K^u keeps only fully visible parties.
  for (const PartyId k : party_ids) {
    const auto& support = instance.party_support(k);
    if (!support_subset(support, view.agents)) {
      continue;
    }
    std::vector<Coef> local_entries;
    local_entries.reserve(support.size());
    for (const Coef& entry : support) {
      local_entries.push_back({view.local_index(entry.id), entry.value});
    }
    view.parties.push_back(k);
    view.party_entries.push_back(std::move(local_entries));
  }
  return view;
}

LocalView extract_view(const Instance& instance, const Hypergraph& h, AgentId u,
                       std::int32_t radius) {
  return extract_view(instance, u, radius, ball(h, u, radius));
}

LpProblem view_lp(const LocalView& view) {
  LpProblem problem;
  const auto num_agents = static_cast<std::int32_t>(view.agents.size());
  problem.num_vars = num_agents + 1;  // x^u plus ω^u
  problem.objective.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
  problem.objective.back() = 1.0;

  for (const auto& entries : view.resource_entries) {
    LpRow& row = problem.add_row(ConstraintSense::kLe, 1.0);
    for (const Coef& entry : entries) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
  }
  for (const auto& entries : view.party_entries) {
    LpRow& row = problem.add_row(ConstraintSense::kGe, 0.0);
    for (const Coef& entry : entries) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
    row.vars.push_back(num_agents);
    row.coeffs.push_back(-1.0);
  }
  return problem;
}

ViewLpSolution solve_view_lp(const LocalView& view,
                             const SimplexOptions& options) {
  ViewLpSolution solution;
  if (view.parties.empty()) {
    solution.x.assign(view.agents.size(), 0.0);
    return solution;
  }
  const LpResult lp = solve_lp(view_lp(view), options);
  MMLP_CHECK_MSG(lp.status == LpStatus::kOptimal,
                 "view LP for agent " << view.center << " returned "
                                      << to_string(lp.status));
  solution.status = lp.status;
  solution.omega = lp.objective;
  solution.x.assign(lp.x.begin(), lp.x.begin() + view.agents.size());
  return solution;
}

double GrowthSets::max_party_ratio() const {
  double worst = 1.0;
  for (std::size_t k = 0; k < m_k.size(); ++k) {
    if (m_k[k] == 0) {
      // Possible only in collaboration-oblivious mode (V_k need not be a
      // clique of H there); the benefit bound degenerates.
      return std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, static_cast<double>(M_k[k]) /
                                static_cast<double>(m_k[k]));
  }
  return worst;
}

double GrowthSets::max_resource_ratio() const {
  double worst = 1.0;
  for (std::size_t i = 0; i < N_i.size(); ++i) {
    MMLP_CHECK_GT(n_i[i], 0u);
    worst = std::max(worst, static_cast<double>(N_i[i]) /
                                static_cast<double>(n_i[i]));
  }
  return worst;
}

GrowthSets compute_growth_sets(const Instance& instance,
                               const std::vector<std::vector<AgentId>>& balls) {
  MMLP_CHECK_EQ(balls.size(), static_cast<std::size_t>(instance.num_agents()));
  GrowthSets sets;
  sets.ball_size.resize(balls.size());
  for (std::size_t j = 0; j < balls.size(); ++j) {
    sets.ball_size[j] = balls[j].size();
  }

  // Parties: S_k = ∩_{j∈V_k} V^j (sorted-list intersection), M_k = max |V^j|.
  const auto num_parties = static_cast<std::size_t>(instance.num_parties());
  sets.m_k.resize(num_parties);
  sets.M_k.resize(num_parties);
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const auto& support = instance.party_support(k);
    std::vector<AgentId> intersection =
        balls[static_cast<std::size_t>(support.front().id)];
    std::size_t max_ball = 0;
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      max_ball = std::max(max_ball, ball_j.size());
      std::vector<AgentId> next;
      next.reserve(std::min(intersection.size(), ball_j.size()));
      std::set_intersection(intersection.begin(), intersection.end(),
                            ball_j.begin(), ball_j.end(),
                            std::back_inserter(next));
      intersection.swap(next);
    }
    sets.m_k[static_cast<std::size_t>(k)] = intersection.size();
    sets.M_k[static_cast<std::size_t>(k)] = max_ball;
  }

  // Resources: U_i = ∪_{j∈V_i} V^j, n_i = min |V^j|.
  const auto num_resources = static_cast<std::size_t>(instance.num_resources());
  sets.N_i.resize(num_resources);
  sets.n_i.resize(num_resources);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const auto& support = instance.resource_support(i);
    std::vector<AgentId> union_set;
    std::size_t min_ball = std::numeric_limits<std::size_t>::max();
    for (const Coef& entry : support) {
      const auto& ball_j = balls[static_cast<std::size_t>(entry.id)];
      min_ball = std::min(min_ball, ball_j.size());
      std::vector<AgentId> next;
      next.reserve(union_set.size() + ball_j.size());
      std::set_union(union_set.begin(), union_set.end(), ball_j.begin(),
                     ball_j.end(), std::back_inserter(next));
      union_set.swap(next);
    }
    sets.N_i[static_cast<std::size_t>(i)] = union_set.size();
    sets.n_i[static_cast<std::size_t>(i)] = min_ball;
  }

  // β_j = min_{i∈I_j} n_i / N_i.
  sets.beta.assign(balls.size(), 1.0);
  for (AgentId j = 0; j < instance.num_agents(); ++j) {
    double beta = std::numeric_limits<double>::infinity();
    for (const Coef& entry : instance.agent_resources(j)) {
      const auto i = static_cast<std::size_t>(entry.id);
      beta = std::min(beta, static_cast<double>(sets.n_i[i]) /
                                static_cast<double>(sets.N_i[i]));
    }
    sets.beta[static_cast<std::size_t>(j)] = beta;
  }
  return sets;
}

}  // namespace mmlp

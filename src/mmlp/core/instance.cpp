#include "mmlp/core/instance.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

const std::vector<Coef>& at(const std::vector<std::vector<Coef>>& lists,
                            std::int32_t index, const char* what) {
  MMLP_CHECK_MSG(index >= 0 && static_cast<std::size_t>(index) < lists.size(),
                 what << " index out of range: " << index);
  return lists[static_cast<std::size_t>(index)];
}

double lookup(const std::vector<Coef>& support, std::int32_t id) {
  const auto it = std::lower_bound(
      support.begin(), support.end(), id,
      [](const Coef& entry, std::int32_t target) { return entry.id < target; });
  if (it != support.end() && it->id == id) {
    return it->value;
  }
  return 0.0;
}

}  // namespace

const std::vector<Coef>& Instance::resource_support(ResourceId i) const {
  return at(resource_support_, i, "resource");
}

const std::vector<Coef>& Instance::party_support(PartyId k) const {
  return at(party_support_, k, "party");
}

const std::vector<Coef>& Instance::agent_resources(AgentId v) const {
  return at(agent_resources_, v, "agent");
}

const std::vector<Coef>& Instance::agent_parties(AgentId v) const {
  return at(agent_parties_, v, "agent");
}

double Instance::usage(ResourceId i, AgentId v) const {
  return lookup(resource_support(i), v);
}

double Instance::benefit(PartyId k, AgentId v) const {
  return lookup(party_support(k), v);
}

DegreeBounds Instance::degree_bounds() const {
  DegreeBounds bounds;
  for (const auto& list : agent_resources_) {
    bounds.delta_I_of_V = std::max(bounds.delta_I_of_V, list.size());
  }
  for (const auto& list : agent_parties_) {
    bounds.delta_K_of_V = std::max(bounds.delta_K_of_V, list.size());
  }
  for (const auto& list : resource_support_) {
    bounds.delta_V_of_I = std::max(bounds.delta_V_of_I, list.size());
  }
  for (const auto& list : party_support_) {
    bounds.delta_V_of_K = std::max(bounds.delta_V_of_K, list.size());
  }
  return bounds;
}

Hypergraph Instance::communication_graph(bool collaboration_oblivious) const {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(resource_support_.size() +
                (collaboration_oblivious ? 0 : party_support_.size()));
  for (const auto& support : resource_support_) {
    std::vector<NodeId> members;
    members.reserve(support.size());
    for (const Coef& entry : support) {
      members.push_back(entry.id);
    }
    edges.push_back(std::move(members));
  }
  if (!collaboration_oblivious) {
    for (const auto& support : party_support_) {
      std::vector<NodeId> members;
      members.reserve(support.size());
      for (const Coef& entry : support) {
        members.push_back(entry.id);
      }
      edges.push_back(std::move(members));
    }
  }
  return Hypergraph::from_edges(num_agents(), edges);
}

void Instance::validate() const {
  // Standing assumptions (Section 1.2): I_v, V_i and V_k nonempty; all
  // stored coefficients strictly positive; cross-index consistency.
  for (AgentId v = 0; v < num_agents(); ++v) {
    MMLP_CHECK_MSG(!agent_resources(v).empty(),
                   "agent " << v << " has empty I_v");
  }
  for (ResourceId i = 0; i < num_resources(); ++i) {
    MMLP_CHECK_MSG(!resource_support(i).empty(),
                   "resource " << i << " has empty V_i");
    for (const Coef& entry : resource_support(i)) {
      MMLP_CHECK_GT(entry.value, 0.0);
      MMLP_CHECK_EQ(usage(i, entry.id),
                    lookup(agent_resources(entry.id), i));
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    MMLP_CHECK_MSG(!party_support(k).empty(),
                   "party " << k << " has empty V_k");
    for (const Coef& entry : party_support(k)) {
      MMLP_CHECK_GT(entry.value, 0.0);
      MMLP_CHECK_EQ(benefit(k, entry.id),
                    lookup(agent_parties(entry.id), k));
    }
  }
}

std::size_t Instance::num_nonzeros() const {
  std::size_t total = 0;
  for (const auto& list : resource_support_) {
    total += list.size();
  }
  for (const auto& list : party_support_) {
    total += list.size();
  }
  return total;
}

std::string Instance::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "mmlp " << num_agents() << ' ' << num_resources() << ' '
      << num_parties() << '\n';
  for (ResourceId i = 0; i < num_resources(); ++i) {
    for (const Coef& entry : resource_support(i)) {
      oss << "a " << i << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    for (const Coef& entry : party_support(k)) {
      oss << "c " << k << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  return oss.str();
}

Instance Instance::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string magic;
  AgentId agents = 0;
  ResourceId resources = 0;
  PartyId parties = 0;
  iss >> magic >> agents >> resources >> parties;
  MMLP_CHECK_MSG(magic == "mmlp", "bad instance header");
  Builder builder;
  builder.reserve(agents, resources, parties);
  std::string kind;
  while (iss >> kind) {
    std::int32_t row = 0;
    AgentId v = 0;
    double value = 0.0;
    iss >> row >> v >> value;
    MMLP_CHECK(static_cast<bool>(iss));
    if (kind == "a") {
      builder.set_usage(row, v, value);
    } else if (kind == "c") {
      builder.set_benefit(row, v, value);
    } else {
      MMLP_CHECK_MSG(false, "bad record kind: " << kind);
    }
  }
  return std::move(builder).build();
}

bool operator==(const Instance& lhs, const Instance& rhs) {
  return lhs.resource_support_ == rhs.resource_support_ &&
         lhs.party_support_ == rhs.party_support_;
}

Instance::Builder& Instance::Builder::reserve(AgentId agents,
                                              ResourceId resources,
                                              PartyId parties) {
  MMLP_CHECK_GE(agents, 0);
  MMLP_CHECK_GE(resources, 0);
  MMLP_CHECK_GE(parties, 0);
  num_agents_ = std::max(num_agents_, agents);
  num_resources_ = std::max(num_resources_, resources);
  num_parties_ = std::max(num_parties_, parties);
  return *this;
}

AgentId Instance::Builder::add_agent() { return num_agents_++; }
ResourceId Instance::Builder::add_resource() { return num_resources_++; }
PartyId Instance::Builder::add_party() { return num_parties_++; }

Instance::Builder& Instance::Builder::set_usage(ResourceId i, AgentId v,
                                                double a) {
  MMLP_CHECK_GE(i, 0);
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_MSG(a > 0.0, "a_iv must be positive, got " << a);
  reserve(v + 1, i + 1, 0);
  usages_.emplace_back(i, v, a);
  return *this;
}

Instance::Builder& Instance::Builder::set_benefit(PartyId k, AgentId v,
                                                  double c) {
  MMLP_CHECK_GE(k, 0);
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_MSG(c > 0.0, "c_kv must be positive, got " << c);
  reserve(v + 1, 0, k + 1);
  benefits_.emplace_back(k, v, c);
  return *this;
}

Instance Instance::Builder::build() && {
  Instance instance;
  instance.resource_support_.resize(static_cast<std::size_t>(num_resources_));
  instance.party_support_.resize(static_cast<std::size_t>(num_parties_));
  instance.agent_resources_.resize(static_cast<std::size_t>(num_agents_));
  instance.agent_parties_.resize(static_cast<std::size_t>(num_agents_));

  for (const auto& [i, v, a] : usages_) {
    instance.resource_support_[static_cast<std::size_t>(i)].push_back({v, a});
    instance.agent_resources_[static_cast<std::size_t>(v)].push_back({i, a});
  }
  for (const auto& [k, v, c] : benefits_) {
    instance.party_support_[static_cast<std::size_t>(k)].push_back({v, c});
    instance.agent_parties_[static_cast<std::size_t>(v)].push_back({k, c});
  }

  auto sort_and_reject_duplicates = [](std::vector<std::vector<Coef>>& lists,
                                       const char* what) {
    for (auto& list : lists) {
      std::sort(list.begin(), list.end(),
                [](const Coef& x, const Coef& y) { return x.id < y.id; });
      const auto dup = std::adjacent_find(
          list.begin(), list.end(),
          [](const Coef& x, const Coef& y) { return x.id == y.id; });
      MMLP_CHECK_MSG(dup == list.end(), "duplicate coefficient in " << what);
    }
  };
  sort_and_reject_duplicates(instance.resource_support_, "resource support");
  sort_and_reject_duplicates(instance.party_support_, "party support");
  sort_and_reject_duplicates(instance.agent_resources_, "agent resources");
  sort_and_reject_duplicates(instance.agent_parties_, "agent parties");

  instance.validate();
  return instance;
}

}  // namespace mmlp

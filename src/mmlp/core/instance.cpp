// CSR construction and the standing-assumption checks of Section 1.2.
//
// Builder::build() performs a two-pass counting-sort scatter per
// direction (count row sizes, prefix-sum into offsets, scatter the
// coefficient tuples), then sorts each row segment by id in place — no
// per-row heap allocation anywhere. Duplicate (row, id) pairs and
// non-positive coefficients are rejected with the offending ids in the
// message, so a bad entry inside a million-agent generated instance is
// still attributable.
#include "mmlp/core/instance.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"

namespace mmlp {

namespace {

double lookup(CoefSpan support, std::int32_t id) {
  const auto it = std::lower_bound(
      support.begin(), support.end(), id,
      [](const Coef& entry, std::int32_t target) { return entry.id < target; });
  if (it != support.end() && it->id == id) {
    return it->value;
  }
  return 0.0;
}

}  // namespace

CoefSpan Instance::resource_support(ResourceId i) const {
  MMLP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < resource_support_.num_rows(),
                 "resource index out of range: i=" << i << ", have "
                                                  << resource_support_.num_rows());
  return resource_support_.row(static_cast<std::size_t>(i));
}

CoefSpan Instance::party_support(PartyId k) const {
  MMLP_CHECK_MSG(k >= 0 && static_cast<std::size_t>(k) < party_support_.num_rows(),
                 "party index out of range: k=" << k << ", have "
                                                << party_support_.num_rows());
  return party_support_.row(static_cast<std::size_t>(k));
}

CoefSpan Instance::agent_resources(AgentId v) const {
  MMLP_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < agent_resources_.num_rows(),
                 "agent index out of range: v=" << v << ", have "
                                                << agent_resources_.num_rows());
  return agent_resources_.row(static_cast<std::size_t>(v));
}

CoefSpan Instance::agent_parties(AgentId v) const {
  MMLP_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < agent_parties_.num_rows(),
                 "agent index out of range: v=" << v << ", have "
                                                << agent_parties_.num_rows());
  return agent_parties_.row(static_cast<std::size_t>(v));
}

std::size_t Instance::resource_support_size(ResourceId i) const {
  MMLP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < resource_support_.num_rows(),
                 "resource index out of range: i=" << i << ", have "
                                                  << resource_support_.num_rows());
  return resource_support_.row_size(static_cast<std::size_t>(i));
}

std::size_t Instance::party_support_size(PartyId k) const {
  MMLP_CHECK_MSG(k >= 0 && static_cast<std::size_t>(k) < party_support_.num_rows(),
                 "party index out of range: k=" << k << ", have "
                                                << party_support_.num_rows());
  return party_support_.row_size(static_cast<std::size_t>(k));
}

double Instance::usage(ResourceId i, AgentId v) const {
  return lookup(resource_support(i), v);
}

double Instance::benefit(PartyId k, AgentId v) const {
  return lookup(party_support(k), v);
}

DegreeBounds Instance::degree_bounds() const {
  DegreeBounds bounds;
  for (std::size_t v = 0; v < agent_resources_.num_rows(); ++v) {
    bounds.delta_I_of_V = std::max(bounds.delta_I_of_V, agent_resources_.row_size(v));
  }
  for (std::size_t v = 0; v < agent_parties_.num_rows(); ++v) {
    bounds.delta_K_of_V = std::max(bounds.delta_K_of_V, agent_parties_.row_size(v));
  }
  for (std::size_t i = 0; i < resource_support_.num_rows(); ++i) {
    bounds.delta_V_of_I = std::max(bounds.delta_V_of_I, resource_support_.row_size(i));
  }
  for (std::size_t k = 0; k < party_support_.num_rows(); ++k) {
    bounds.delta_V_of_K = std::max(bounds.delta_V_of_K, party_support_.row_size(k));
  }
  return bounds;
}

Hypergraph Instance::communication_graph(bool collaboration_oblivious) const {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(resource_support_.num_rows() +
                (collaboration_oblivious ? 0 : party_support_.num_rows()));
  for (std::size_t i = 0; i < resource_support_.num_rows(); ++i) {
    const CoefSpan support = resource_support_.row(i);
    std::vector<NodeId> members;
    members.reserve(support.size());
    for (const Coef& entry : support) {
      members.push_back(entry.id);
    }
    edges.push_back(std::move(members));
  }
  if (!collaboration_oblivious) {
    for (std::size_t k = 0; k < party_support_.num_rows(); ++k) {
      const CoefSpan support = party_support_.row(k);
      std::vector<NodeId> members;
      members.reserve(support.size());
      for (const Coef& entry : support) {
        members.push_back(entry.id);
      }
      edges.push_back(std::move(members));
    }
  }
  return Hypergraph::from_edges(num_agents(), edges);
}

void Instance::validate() const {
  // Standing assumptions (Section 1.2): I_v, V_i and V_k nonempty; all
  // stored coefficients strictly positive; cross-index consistency.
  for (AgentId v = 0; v < num_agents(); ++v) {
    MMLP_CHECK_MSG(!agent_resources(v).empty(),
                   "agent " << v << " has empty I_v");
  }
  for (ResourceId i = 0; i < num_resources(); ++i) {
    MMLP_CHECK_MSG(!resource_support(i).empty(),
                   "resource " << i << " has empty V_i");
    for (const Coef& entry : resource_support(i)) {
      MMLP_CHECK_MSG(entry.value > 0.0, "a(i=" << i << ", v=" << entry.id
                                               << ") = " << entry.value
                                               << " must be positive");
      MMLP_CHECK_EQ(usage(i, entry.id),
                    lookup(agent_resources(entry.id), i));
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    MMLP_CHECK_MSG(!party_support(k).empty(),
                   "party " << k << " has empty V_k");
    for (const Coef& entry : party_support(k)) {
      MMLP_CHECK_MSG(entry.value > 0.0, "c(k=" << k << ", v=" << entry.id
                                               << ") = " << entry.value
                                               << " must be positive");
      MMLP_CHECK_EQ(benefit(k, entry.id),
                    lookup(agent_parties(entry.id), k));
    }
  }
}

std::size_t Instance::num_nonzeros() const {
  return resource_support_.data.size() + party_support_.data.size();
}

std::string Instance::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "mmlp " << num_agents() << ' ' << num_resources() << ' '
      << num_parties() << '\n';
  for (ResourceId i = 0; i < num_resources(); ++i) {
    for (const Coef& entry : resource_support(i)) {
      oss << "a " << i << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    for (const Coef& entry : party_support(k)) {
      oss << "c " << k << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  return oss.str();
}

Instance Instance::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string magic;
  AgentId agents = 0;
  ResourceId resources = 0;
  PartyId parties = 0;
  iss >> magic >> agents >> resources >> parties;
  MMLP_CHECK_MSG(magic == "mmlp", "bad instance header");
  Builder builder;
  builder.reserve(agents, resources, parties);
  std::string kind;
  while (iss >> kind) {
    std::int32_t row = 0;
    AgentId v = 0;
    double value = 0.0;
    iss >> row >> v >> value;
    MMLP_CHECK(static_cast<bool>(iss));
    if (kind == "a") {
      builder.set_usage(row, v, value);
    } else if (kind == "c") {
      builder.set_benefit(row, v, value);
    } else {
      MMLP_CHECK_MSG(false, "bad record kind: " << kind);
    }
  }
  return std::move(builder).build();
}

bool operator==(const Instance& lhs, const Instance& rhs) {
  return lhs.resource_support_ == rhs.resource_support_ &&
         lhs.party_support_ == rhs.party_support_;
}

Instance::Builder& Instance::Builder::reserve(AgentId agents,
                                              ResourceId resources,
                                              PartyId parties) {
  MMLP_CHECK_GE(agents, 0);
  MMLP_CHECK_GE(resources, 0);
  MMLP_CHECK_GE(parties, 0);
  num_agents_ = std::max(num_agents_, agents);
  num_resources_ = std::max(num_resources_, resources);
  num_parties_ = std::max(num_parties_, parties);
  return *this;
}

Instance::Builder& Instance::Builder::reserve_nonzeros(std::size_t usages,
                                                       std::size_t benefits) {
  usages_.reserve(usages);
  benefits_.reserve(benefits);
  return *this;
}

AgentId Instance::Builder::add_agent() { return num_agents_++; }
ResourceId Instance::Builder::add_resource() { return num_resources_++; }
PartyId Instance::Builder::add_party() { return num_parties_++; }

Instance::Builder& Instance::Builder::set_usage(ResourceId i, AgentId v,
                                                double a) {
  MMLP_CHECK_MSG(i >= 0, "set_usage: resource id i=" << i << " is negative");
  MMLP_CHECK_MSG(v >= 0, "set_usage: agent id v=" << v << " is negative");
  MMLP_CHECK_MSG(a > 0.0, "a(i=" << i << ", v=" << v << ") = " << a
                                 << " must be positive");
  reserve(v + 1, i + 1, 0);
  usages_.emplace_back(i, v, a);
  return *this;
}

Instance::Builder& Instance::Builder::set_benefit(PartyId k, AgentId v,
                                                  double c) {
  MMLP_CHECK_MSG(k >= 0, "set_benefit: party id k=" << k << " is negative");
  MMLP_CHECK_MSG(v >= 0, "set_benefit: agent id v=" << v << " is negative");
  MMLP_CHECK_MSG(c > 0.0, "c(k=" << k << ", v=" << v << ") = " << c
                                 << " must be positive");
  reserve(v + 1, 0, k + 1);
  benefits_.emplace_back(k, v, c);
  return *this;
}

namespace {

/// Counting-sort scatter of (row, id, value) triples into a CSR block
/// with `rows` rows; each row segment is then sorted by id. `row_kind`
/// and `id_kind` name the directions in duplicate-rejection messages.
template <typename Triples, typename RowOf, typename IdOf>
void fill_csr(std::vector<std::size_t>& offsets, std::vector<Coef>& data,
              std::size_t rows, const Triples& triples, const RowOf& row_of,
              const IdOf& id_of, const char* row_kind, const char* id_kind) {
  offsets.assign(rows + 1, 0);
  for (const auto& triple : triples) {
    ++offsets[static_cast<std::size_t>(row_of(triple)) + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    offsets[r + 1] += offsets[r];
  }
  data.resize(triples.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& triple : triples) {
    const auto r = static_cast<std::size_t>(row_of(triple));
    data[cursor[r]++] = {id_of(triple), std::get<2>(triple)};
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto begin = data.begin() + static_cast<std::ptrdiff_t>(offsets[r]);
    const auto end = data.begin() + static_cast<std::ptrdiff_t>(offsets[r + 1]);
    std::sort(begin, end,
              [](const Coef& x, const Coef& y) { return x.id < y.id; });
    const auto dup = std::adjacent_find(
        begin, end, [](const Coef& x, const Coef& y) { return x.id == y.id; });
    MMLP_CHECK_MSG(dup == end, "duplicate coefficient: " << row_kind << "="
                                                         << r << ", " << id_kind
                                                         << "=" << dup->id);
  }
}

}  // namespace

InstanceDelta& InstanceDelta::set_usage(ResourceId i, AgentId v, double a) {
  MMLP_CHECK_MSG(a > 0.0, "delta a(i=" << i << ", v=" << v << ") = " << a
                                       << " must be positive (use erase_usage)");
  usages.push_back({i, v, a});
  return *this;
}

InstanceDelta& InstanceDelta::erase_usage(ResourceId i, AgentId v) {
  usages.push_back({i, v, 0.0});
  return *this;
}

InstanceDelta& InstanceDelta::set_benefit(PartyId k, AgentId v, double c) {
  MMLP_CHECK_MSG(c > 0.0, "delta c(k=" << k << ", v=" << v << ") = " << c
                                       << " must be positive (use erase_benefit)");
  benefits.push_back({k, v, c});
  return *this;
}

InstanceDelta& InstanceDelta::erase_benefit(PartyId k, AgentId v) {
  benefits.push_back({k, v, 0.0});
  return *this;
}

InstanceDelta& InstanceDelta::add_agents(AgentId count) {
  MMLP_CHECK_GE(count, 0);
  new_agents += count;
  return *this;
}

InstanceDelta& InstanceDelta::add_resources(ResourceId count) {
  MMLP_CHECK_GE(count, 0);
  new_resources += count;
  return *this;
}

InstanceDelta& InstanceDelta::add_parties(PartyId count) {
  MMLP_CHECK_GE(count, 0);
  new_parties += count;
  return *this;
}

InstanceDelta& InstanceDelta::remove_agent(AgentId v) {
  removed_agents.push_back(v);
  return *this;
}

namespace {

/// One (row, id) coordinate packed for the edit maps.
std::uint64_t coord_key(std::int32_t row, std::int32_t id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(id);
}

}  // namespace

DeltaEffect Instance::apply(const InstanceDelta& delta) {
  DeltaEffect effect;
  if (delta.empty()) {
    effect.revision = revision_;
    return effect;
  }
  obs::ObsSpan span("instance.apply", "core");
  const AgentId old_agents = num_agents();
  const ResourceId old_resources = num_resources();
  const PartyId old_parties = num_parties();
  MMLP_CHECK_GE(delta.new_agents, 0);
  MMLP_CHECK_GE(delta.new_resources, 0);
  MMLP_CHECK_GE(delta.new_parties, 0);
  const AgentId agents_after_add = old_agents + delta.new_agents;
  const ResourceId resources_after_add = old_resources + delta.new_resources;
  const PartyId parties_after_add = old_parties + delta.new_parties;

  std::vector<AgentId> removed = delta.removed_agents;
  std::sort(removed.begin(), removed.end());
  MMLP_CHECK_MSG(
      std::adjacent_find(removed.begin(), removed.end()) == removed.end(),
      "remove_agent: an agent is listed twice");
  for (const AgentId v : removed) {
    MMLP_CHECK_MSG(v >= 0 && v < old_agents,
                   "remove_agent: agent id " << v << " out of range (have "
                                             << old_agents << ")");
  }
  const auto is_removed = [&](AgentId v) {
    return std::binary_search(removed.begin(), removed.end(), v);
  };

  // ---- classify the edits against the current blocks (no mutation) ----
  // An edit is structural when it changes support membership: an insert
  // (absent entry set to a positive value) or an erase. Pure value
  // overwrites of existing entries are not.
  bool structural = delta.new_agents > 0 || delta.new_resources > 0 ||
                    delta.new_parties > 0 || !removed.empty();
  std::unordered_map<std::uint64_t, double> usage_edit;
  std::unordered_map<std::uint64_t, double> benefit_edit;
  usage_edit.reserve(delta.usages.size());
  benefit_edit.reserve(delta.benefits.size());
  std::vector<AgentId> touched;
  std::vector<ResourceId> touched_resources;  // rows with membership edits
  std::vector<PartyId> touched_parties;

  const auto classify = [&](const InstanceDelta::CoefEdit& edit,
                            const CsrBlock& rows, std::int32_t rows_after,
                            std::unordered_map<std::uint64_t, double>& edits,
                            std::vector<std::int32_t>& touched_rows,
                            const char* row_kind) {
    MMLP_CHECK_MSG(edit.row >= 0 && edit.row < rows_after,
                   row_kind << " id " << edit.row << " out of range (have "
                            << rows_after << " after additions)");
    MMLP_CHECK_MSG(edit.v >= 0 && edit.v < agents_after_add,
                   "agent id " << edit.v << " out of range (have "
                               << agents_after_add << " after additions)");
    MMLP_CHECK_MSG(!is_removed(edit.v),
                   "edit references agent " << edit.v
                                            << " removed by the same delta");
    MMLP_CHECK_MSG(edit.value >= 0.0,
                   "coefficient for " << row_kind << "=" << edit.row << ", v="
                                      << edit.v << " is negative: "
                                      << edit.value);
    const bool in_old_shape =
        edit.row < static_cast<std::int32_t>(rows.num_rows()) &&
        edit.v < old_agents;
    const bool exists =
        in_old_shape &&
        lookup(rows.row(static_cast<std::size_t>(edit.row)), edit.v) != 0.0;
    if (edit.value == 0.0) {
      MMLP_CHECK_MSG(exists, "erase of absent coefficient (" << row_kind << "="
                                                             << edit.row
                                                             << ", v=" << edit.v
                                                             << ")");
    }
    const auto [it, inserted] =
        edits.emplace(coord_key(edit.row, edit.v), edit.value);
    MMLP_CHECK_MSG(inserted, "duplicate edit for (" << row_kind << "="
                                                    << edit.row << ", v="
                                                    << edit.v << ")");
    touched.push_back(edit.v);
    if (edit.value == 0.0 || !exists) {
      structural = true;
      touched_rows.push_back(edit.row);
    }
  };
  for (const InstanceDelta::CoefEdit& edit : delta.usages) {
    classify(edit, resource_support_, resources_after_add, usage_edit,
             touched_resources, "resource i");
  }
  for (const InstanceDelta::CoefEdit& edit : delta.benefits) {
    classify(edit, party_support_, parties_after_add, benefit_edit,
             touched_parties, "party k");
  }

  // ---- fast path: in-place value overwrites ---------------------------
  if (!structural) {
    const auto write = [](CsrBlock& block, std::size_t row, std::int32_t id,
                          double value) {
      const auto begin =
          block.data.begin() + static_cast<std::ptrdiff_t>(block.offsets[row]);
      const auto end = block.data.begin() +
                       static_cast<std::ptrdiff_t>(block.offsets[row + 1]);
      const auto it = std::lower_bound(
          begin, end, id,
          [](const Coef& entry, std::int32_t target) { return entry.id < target; });
      MMLP_CHECK(it != end && it->id == id);  // classified as existing above
      it->value = value;
    };
    for (const InstanceDelta::CoefEdit& edit : delta.usages) {
      write(resource_support_, static_cast<std::size_t>(edit.row), edit.v,
            edit.value);
      write(agent_resources_, static_cast<std::size_t>(edit.v), edit.row,
            edit.value);
    }
    for (const InstanceDelta::CoefEdit& edit : delta.benefits) {
      write(party_support_, static_cast<std::size_t>(edit.row), edit.v,
            edit.value);
      write(agent_parties_, static_cast<std::size_t>(edit.v), edit.row,
            edit.value);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    effect.revision = ++revision_;
    effect.touched = std::move(touched);
    return effect;
  }

  // ---- compacting rebuild ---------------------------------------------
  // Membership changed somewhere: rebuild all four CSR blocks from the
  // edited coefficient set with the exact Builder::build scatter, so the
  // result is block-for-block what a from-scratch build would produce.
  effect.remapped = !removed.empty();

  // Agent remap over the delta's id space [0, agents_after_add): removed
  // agents map to -1, survivors and additions shift down past them.
  std::vector<AgentId> agent_map(static_cast<std::size_t>(agents_after_add));
  {
    AgentId next = 0;
    for (AgentId v = 0; v < agents_after_add; ++v) {
      agent_map[static_cast<std::size_t>(v)] = is_removed(v) ? -1 : next++;
    }
  }
  const auto agents_final =
      static_cast<AgentId>(agents_after_add -
                           static_cast<AgentId>(removed.size()));

  // Edited coefficient multiset: surviving old entries with edits folded
  // in, then the pure insertions left over in the edit maps.
  std::vector<std::tuple<ResourceId, AgentId, double>> usages;
  std::vector<std::tuple<PartyId, AgentId, double>> benefits;
  const auto collect = [&](const CsrBlock& rows,
                           std::unordered_map<std::uint64_t, double>& edits,
                           auto& triples) {
    triples.reserve(rows.data.size() + edits.size());
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      for (const Coef& entry : rows.row(r)) {
        if (is_removed(entry.id)) {
          continue;
        }
        double value = entry.value;
        const auto it = edits.find(coord_key(static_cast<std::int32_t>(r), entry.id));
        if (it != edits.end()) {
          value = it->second;
          edits.erase(it);  // consumed; leftovers below are insertions
        }
        if (value > 0.0) {
          triples.emplace_back(static_cast<std::int32_t>(r), entry.id, value);
        }
      }
    }
    for (const auto& [key, value] : edits) {
      // Erases of absent entries were rejected in classification, so
      // every leftover is a positive insertion.
      triples.emplace_back(static_cast<std::int32_t>(key >> 32),
                           static_cast<std::int32_t>(key & 0xffffffffu), value);
    }
  };
  collect(resource_support_, usage_edit, usages);
  collect(party_support_, benefit_edit, benefits);

  // Per-row occupancy after the edits: new resources/parties must have
  // entries; old rows emptied by explicit erases are an error (remove
  // the members instead); rows emptied purely by agent removals cascade.
  std::vector<std::int32_t> resource_count(
      static_cast<std::size_t>(resources_after_add), 0);
  for (const auto& [i, v, a] : usages) {
    ++resource_count[static_cast<std::size_t>(i)];
  }
  std::vector<std::int32_t> party_count(
      static_cast<std::size_t>(parties_after_add), 0);
  for (const auto& [k, v, c] : benefits) {
    ++party_count[static_cast<std::size_t>(k)];
  }
  std::vector<ResourceId> resource_map(
      static_cast<std::size_t>(resources_after_add));
  std::vector<PartyId> party_map(static_cast<std::size_t>(parties_after_add));
  const auto compact_rows = [&](const std::vector<std::int32_t>& count,
                                std::vector<std::int32_t>& map,
                                std::int32_t old_rows, const char* row_kind) {
    std::int32_t next = 0;
    for (std::size_t r = 0; r < count.size(); ++r) {
      if (count[r] > 0) {
        map[r] = next++;
        continue;
      }
      map[r] = -1;
      MMLP_CHECK_MSG(static_cast<std::int32_t>(r) < old_rows,
                     "added " << row_kind << " " << r
                              << " has no coefficients");
      MMLP_CHECK_MSG(
          effect.remapped,
          row_kind << " " << r << " would be left with an empty support "
                   << "(erase the row's last entry only via agent removal)");
    }
    return next;
  };
  const std::int32_t resources_final =
      compact_rows(resource_count, resource_map, old_resources, "resource");
  const std::int32_t parties_final =
      compact_rows(party_count, party_map, old_parties, "party");
  if (resources_final != resources_after_add ||
      parties_final != parties_after_add) {
    effect.remapped = true;  // cascade compaction moved resource/party ids
  }

  // Every surviving or added agent still needs a nonempty I_v.
  {
    std::vector<std::int32_t> agent_usage_count(
        static_cast<std::size_t>(agents_after_add), 0);
    for (const auto& [i, v, a] : usages) {
      ++agent_usage_count[static_cast<std::size_t>(v)];
    }
    for (AgentId v = 0; v < agents_after_add; ++v) {
      MMLP_CHECK_MSG(is_removed(v) ||
                         agent_usage_count[static_cast<std::size_t>(v)] > 0,
                     "agent " << v << " would be left with empty I_v");
    }
  }

  // Remap ids in the triples, then rebuild through the Builder scatter.
  for (auto& [i, v, a] : usages) {
    i = resource_map[static_cast<std::size_t>(i)];
    v = agent_map[static_cast<std::size_t>(v)];
  }
  for (auto& [k, v, c] : benefits) {
    k = party_map[static_cast<std::size_t>(k)];
    v = agent_map[static_cast<std::size_t>(v)];
  }

  Instance rebuilt;
  const auto first = [](const auto& t) { return std::get<0>(t); };
  const auto second = [](const auto& t) { return std::get<1>(t); };
  fill_csr(rebuilt.resource_support_.offsets, rebuilt.resource_support_.data,
           static_cast<std::size_t>(resources_final), usages, first, second,
           "resource i", "agent v");
  fill_csr(rebuilt.agent_resources_.offsets, rebuilt.agent_resources_.data,
           static_cast<std::size_t>(agents_final), usages, second, first,
           "agent v", "resource i");
  fill_csr(rebuilt.party_support_.offsets, rebuilt.party_support_.data,
           static_cast<std::size_t>(parties_final), benefits, first, second,
           "party k", "agent v");
  fill_csr(rebuilt.agent_parties_.offsets, rebuilt.agent_parties_.data,
           static_cast<std::size_t>(agents_final), benefits, second, first,
           "agent v", "party k");
  rebuilt.validate();

  // Commit (nothing above mutated *this, so a throw left it untouched).
  resource_support_ = std::move(rebuilt.resource_support_);
  party_support_ = std::move(rebuilt.party_support_);
  agent_resources_ = std::move(rebuilt.agent_resources_);
  agent_parties_ = std::move(rebuilt.agent_parties_);
  effect.revision = ++revision_;
  effect.structural = true;

  if (effect.remapped) {
    effect.agent_remap = std::move(agent_map);
    return effect;
  }
  // Touched closure for dirty-region repair: the edited agents, every
  // member (old or new) of each row whose membership changed, and the
  // added agents. Any removed adjacency then has both endpoints in the
  // set, so a single new-graph BFS from it covers the old reach too.
  for (const ResourceId i : touched_resources) {
    if (i < old_resources) {
      // Old membership from the pre-rebuild block we still... rebuilt in
      // place above; read the NEW row — old members missing from it are
      // exactly the erased ones, which are already in `touched` as the
      // edited agents.
      for (const Coef& entry : resource_support(i)) {
        touched.push_back(entry.id);
      }
    }
  }
  for (const PartyId k : touched_parties) {
    if (k < old_parties) {
      for (const Coef& entry : party_support(k)) {
        touched.push_back(entry.id);
      }
    }
  }
  for (AgentId v = old_agents; v < agents_after_add; ++v) {
    touched.push_back(v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  effect.touched = std::move(touched);
  return effect;
}

Instance Instance::Builder::build() && {
  Instance instance;
  const auto agents = static_cast<std::size_t>(num_agents_);
  const auto resources = static_cast<std::size_t>(num_resources_);
  const auto parties = static_cast<std::size_t>(num_parties_);

  const auto first = [](const auto& t) { return std::get<0>(t); };
  const auto second = [](const auto& t) { return std::get<1>(t); };
  fill_csr(instance.resource_support_.offsets, instance.resource_support_.data,
           resources, usages_, first, second, "resource i", "agent v");
  fill_csr(instance.agent_resources_.offsets, instance.agent_resources_.data,
           agents, usages_, second, first, "agent v", "resource i");
  fill_csr(instance.party_support_.offsets, instance.party_support_.data,
           parties, benefits_, first, second, "party k", "agent v");
  fill_csr(instance.agent_parties_.offsets, instance.agent_parties_.data,
           agents, benefits_, second, first, "agent v", "party k");

  instance.validate();
  return instance;
}

}  // namespace mmlp

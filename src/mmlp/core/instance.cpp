// CSR construction and the standing-assumption checks of Section 1.2.
//
// Builder::build() performs a two-pass counting-sort scatter per
// direction (count row sizes, prefix-sum into offsets, scatter the
// coefficient tuples), then sorts each row segment by id in place — no
// per-row heap allocation anywhere. Duplicate (row, id) pairs and
// non-positive coefficients are rejected with the offending ids in the
// message, so a bad entry inside a million-agent generated instance is
// still attributable.
#include "mmlp/core/instance.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

double lookup(CoefSpan support, std::int32_t id) {
  const auto it = std::lower_bound(
      support.begin(), support.end(), id,
      [](const Coef& entry, std::int32_t target) { return entry.id < target; });
  if (it != support.end() && it->id == id) {
    return it->value;
  }
  return 0.0;
}

}  // namespace

CoefSpan Instance::resource_support(ResourceId i) const {
  MMLP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < resource_support_.num_rows(),
                 "resource index out of range: i=" << i << ", have "
                                                  << resource_support_.num_rows());
  return resource_support_.row(static_cast<std::size_t>(i));
}

CoefSpan Instance::party_support(PartyId k) const {
  MMLP_CHECK_MSG(k >= 0 && static_cast<std::size_t>(k) < party_support_.num_rows(),
                 "party index out of range: k=" << k << ", have "
                                                << party_support_.num_rows());
  return party_support_.row(static_cast<std::size_t>(k));
}

CoefSpan Instance::agent_resources(AgentId v) const {
  MMLP_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < agent_resources_.num_rows(),
                 "agent index out of range: v=" << v << ", have "
                                                << agent_resources_.num_rows());
  return agent_resources_.row(static_cast<std::size_t>(v));
}

CoefSpan Instance::agent_parties(AgentId v) const {
  MMLP_CHECK_MSG(v >= 0 && static_cast<std::size_t>(v) < agent_parties_.num_rows(),
                 "agent index out of range: v=" << v << ", have "
                                                << agent_parties_.num_rows());
  return agent_parties_.row(static_cast<std::size_t>(v));
}

std::size_t Instance::resource_support_size(ResourceId i) const {
  MMLP_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < resource_support_.num_rows(),
                 "resource index out of range: i=" << i << ", have "
                                                  << resource_support_.num_rows());
  return resource_support_.row_size(static_cast<std::size_t>(i));
}

std::size_t Instance::party_support_size(PartyId k) const {
  MMLP_CHECK_MSG(k >= 0 && static_cast<std::size_t>(k) < party_support_.num_rows(),
                 "party index out of range: k=" << k << ", have "
                                                << party_support_.num_rows());
  return party_support_.row_size(static_cast<std::size_t>(k));
}

double Instance::usage(ResourceId i, AgentId v) const {
  return lookup(resource_support(i), v);
}

double Instance::benefit(PartyId k, AgentId v) const {
  return lookup(party_support(k), v);
}

DegreeBounds Instance::degree_bounds() const {
  DegreeBounds bounds;
  for (std::size_t v = 0; v < agent_resources_.num_rows(); ++v) {
    bounds.delta_I_of_V = std::max(bounds.delta_I_of_V, agent_resources_.row_size(v));
  }
  for (std::size_t v = 0; v < agent_parties_.num_rows(); ++v) {
    bounds.delta_K_of_V = std::max(bounds.delta_K_of_V, agent_parties_.row_size(v));
  }
  for (std::size_t i = 0; i < resource_support_.num_rows(); ++i) {
    bounds.delta_V_of_I = std::max(bounds.delta_V_of_I, resource_support_.row_size(i));
  }
  for (std::size_t k = 0; k < party_support_.num_rows(); ++k) {
    bounds.delta_V_of_K = std::max(bounds.delta_V_of_K, party_support_.row_size(k));
  }
  return bounds;
}

Hypergraph Instance::communication_graph(bool collaboration_oblivious) const {
  std::vector<std::vector<NodeId>> edges;
  edges.reserve(resource_support_.num_rows() +
                (collaboration_oblivious ? 0 : party_support_.num_rows()));
  for (std::size_t i = 0; i < resource_support_.num_rows(); ++i) {
    const CoefSpan support = resource_support_.row(i);
    std::vector<NodeId> members;
    members.reserve(support.size());
    for (const Coef& entry : support) {
      members.push_back(entry.id);
    }
    edges.push_back(std::move(members));
  }
  if (!collaboration_oblivious) {
    for (std::size_t k = 0; k < party_support_.num_rows(); ++k) {
      const CoefSpan support = party_support_.row(k);
      std::vector<NodeId> members;
      members.reserve(support.size());
      for (const Coef& entry : support) {
        members.push_back(entry.id);
      }
      edges.push_back(std::move(members));
    }
  }
  return Hypergraph::from_edges(num_agents(), edges);
}

void Instance::validate() const {
  // Standing assumptions (Section 1.2): I_v, V_i and V_k nonempty; all
  // stored coefficients strictly positive; cross-index consistency.
  for (AgentId v = 0; v < num_agents(); ++v) {
    MMLP_CHECK_MSG(!agent_resources(v).empty(),
                   "agent " << v << " has empty I_v");
  }
  for (ResourceId i = 0; i < num_resources(); ++i) {
    MMLP_CHECK_MSG(!resource_support(i).empty(),
                   "resource " << i << " has empty V_i");
    for (const Coef& entry : resource_support(i)) {
      MMLP_CHECK_MSG(entry.value > 0.0, "a(i=" << i << ", v=" << entry.id
                                               << ") = " << entry.value
                                               << " must be positive");
      MMLP_CHECK_EQ(usage(i, entry.id),
                    lookup(agent_resources(entry.id), i));
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    MMLP_CHECK_MSG(!party_support(k).empty(),
                   "party " << k << " has empty V_k");
    for (const Coef& entry : party_support(k)) {
      MMLP_CHECK_MSG(entry.value > 0.0, "c(k=" << k << ", v=" << entry.id
                                               << ") = " << entry.value
                                               << " must be positive");
      MMLP_CHECK_EQ(benefit(k, entry.id),
                    lookup(agent_parties(entry.id), k));
    }
  }
}

std::size_t Instance::num_nonzeros() const {
  return resource_support_.data.size() + party_support_.data.size();
}

std::string Instance::serialize() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "mmlp " << num_agents() << ' ' << num_resources() << ' '
      << num_parties() << '\n';
  for (ResourceId i = 0; i < num_resources(); ++i) {
    for (const Coef& entry : resource_support(i)) {
      oss << "a " << i << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  for (PartyId k = 0; k < num_parties(); ++k) {
    for (const Coef& entry : party_support(k)) {
      oss << "c " << k << ' ' << entry.id << ' ' << entry.value << '\n';
    }
  }
  return oss.str();
}

Instance Instance::deserialize(const std::string& text) {
  std::istringstream iss(text);
  std::string magic;
  AgentId agents = 0;
  ResourceId resources = 0;
  PartyId parties = 0;
  iss >> magic >> agents >> resources >> parties;
  MMLP_CHECK_MSG(magic == "mmlp", "bad instance header");
  Builder builder;
  builder.reserve(agents, resources, parties);
  std::string kind;
  while (iss >> kind) {
    std::int32_t row = 0;
    AgentId v = 0;
    double value = 0.0;
    iss >> row >> v >> value;
    MMLP_CHECK(static_cast<bool>(iss));
    if (kind == "a") {
      builder.set_usage(row, v, value);
    } else if (kind == "c") {
      builder.set_benefit(row, v, value);
    } else {
      MMLP_CHECK_MSG(false, "bad record kind: " << kind);
    }
  }
  return std::move(builder).build();
}

bool operator==(const Instance& lhs, const Instance& rhs) {
  return lhs.resource_support_ == rhs.resource_support_ &&
         lhs.party_support_ == rhs.party_support_;
}

Instance::Builder& Instance::Builder::reserve(AgentId agents,
                                              ResourceId resources,
                                              PartyId parties) {
  MMLP_CHECK_GE(agents, 0);
  MMLP_CHECK_GE(resources, 0);
  MMLP_CHECK_GE(parties, 0);
  num_agents_ = std::max(num_agents_, agents);
  num_resources_ = std::max(num_resources_, resources);
  num_parties_ = std::max(num_parties_, parties);
  return *this;
}

Instance::Builder& Instance::Builder::reserve_nonzeros(std::size_t usages,
                                                       std::size_t benefits) {
  usages_.reserve(usages);
  benefits_.reserve(benefits);
  return *this;
}

AgentId Instance::Builder::add_agent() { return num_agents_++; }
ResourceId Instance::Builder::add_resource() { return num_resources_++; }
PartyId Instance::Builder::add_party() { return num_parties_++; }

Instance::Builder& Instance::Builder::set_usage(ResourceId i, AgentId v,
                                                double a) {
  MMLP_CHECK_MSG(i >= 0, "set_usage: resource id i=" << i << " is negative");
  MMLP_CHECK_MSG(v >= 0, "set_usage: agent id v=" << v << " is negative");
  MMLP_CHECK_MSG(a > 0.0, "a(i=" << i << ", v=" << v << ") = " << a
                                 << " must be positive");
  reserve(v + 1, i + 1, 0);
  usages_.emplace_back(i, v, a);
  return *this;
}

Instance::Builder& Instance::Builder::set_benefit(PartyId k, AgentId v,
                                                  double c) {
  MMLP_CHECK_MSG(k >= 0, "set_benefit: party id k=" << k << " is negative");
  MMLP_CHECK_MSG(v >= 0, "set_benefit: agent id v=" << v << " is negative");
  MMLP_CHECK_MSG(c > 0.0, "c(k=" << k << ", v=" << v << ") = " << c
                                 << " must be positive");
  reserve(v + 1, 0, k + 1);
  benefits_.emplace_back(k, v, c);
  return *this;
}

namespace {

/// Counting-sort scatter of (row, id, value) triples into a CSR block
/// with `rows` rows; each row segment is then sorted by id. `row_kind`
/// and `id_kind` name the directions in duplicate-rejection messages.
template <typename Triples, typename RowOf, typename IdOf>
void fill_csr(std::vector<std::size_t>& offsets, std::vector<Coef>& data,
              std::size_t rows, const Triples& triples, const RowOf& row_of,
              const IdOf& id_of, const char* row_kind, const char* id_kind) {
  offsets.assign(rows + 1, 0);
  for (const auto& triple : triples) {
    ++offsets[static_cast<std::size_t>(row_of(triple)) + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) {
    offsets[r + 1] += offsets[r];
  }
  data.resize(triples.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& triple : triples) {
    const auto r = static_cast<std::size_t>(row_of(triple));
    data[cursor[r]++] = {id_of(triple), std::get<2>(triple)};
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto begin = data.begin() + static_cast<std::ptrdiff_t>(offsets[r]);
    const auto end = data.begin() + static_cast<std::ptrdiff_t>(offsets[r + 1]);
    std::sort(begin, end,
              [](const Coef& x, const Coef& y) { return x.id < y.id; });
    const auto dup = std::adjacent_find(
        begin, end, [](const Coef& x, const Coef& y) { return x.id == y.id; });
    MMLP_CHECK_MSG(dup == end, "duplicate coefficient: " << row_kind << "="
                                                         << r << ", " << id_kind
                                                         << "=" << dup->id);
  }
}

}  // namespace

Instance Instance::Builder::build() && {
  Instance instance;
  const auto agents = static_cast<std::size_t>(num_agents_);
  const auto resources = static_cast<std::size_t>(num_resources_);
  const auto parties = static_cast<std::size_t>(num_parties_);

  const auto first = [](const auto& t) { return std::get<0>(t); };
  const auto second = [](const auto& t) { return std::get<1>(t); };
  fill_csr(instance.resource_support_.offsets, instance.resource_support_.data,
           resources, usages_, first, second, "resource i", "agent v");
  fill_csr(instance.agent_resources_.offsets, instance.agent_resources_.data,
           agents, usages_, second, first, "agent v", "resource i");
  fill_csr(instance.party_support_.offsets, instance.party_support_.data,
           parties, benefits_, first, second, "party k", "agent v");
  fill_csr(instance.agent_parties_.offsets, instance.agent_parties_.data,
           agents, benefits_, second, first, "agent v", "party k");

  instance.validate();
  return instance;
}

}  // namespace mmlp

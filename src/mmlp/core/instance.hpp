// The max-min LP instance of Section 1.2, eq. (1):
//
//   maximise  ω = min_{k∈K} Σ_{v∈V} c_kv x_v
//   s.t.      Σ_{v∈V} a_iv x_v ≤ 1  for each i ∈ I,   x_v ≥ 0.
//
// V are agents, I resources, K beneficiary parties. All coefficients are
// nonnegative and the support sets V_i = {v : a_iv > 0},
// V_k = {v : c_kv > 0}, I_v = {i : a_iv > 0}, K_v = {k : c_kv > 0} are
// stored explicitly in both directions. The standing assumptions of the
// paper — I_v, V_i, V_k nonempty — are enforced by
// validate()/Builder::build().
//
// Storage is flat CSR (compressed sparse row), one block per direction:
// a single contiguous Coef array ordered row-by-row plus an offset array
// with row r occupying data[offsets[r] .. offsets[r+1]). The support-set
// traversals that dominate the local algorithms (eq. (2) scans I_v then
// |V_i|; the view extraction of Section 5 walks whole balls of supports)
// therefore stream through memory instead of chasing one heap pointer
// per support list. Accessors return std::span views into the blocks;
// entries within a row are sorted by id.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "mmlp/graph/hypergraph.hpp"

namespace mmlp {

using AgentId = std::int32_t;
using ResourceId = std::int32_t;
using PartyId = std::int32_t;

/// One sparse coefficient: the id is an agent, resource, or party index
/// depending on which support list holds it.
struct Coef {
  std::int32_t id = 0;
  double value = 0.0;

  friend bool operator==(const Coef&, const Coef&) = default;
};

/// Non-owning view of one CSR row (one support set with coefficients).
using CoefSpan = std::span<const Coef>;

/// Support-set size bounds of Section 1.2.
struct DegreeBounds {
  std::size_t delta_I_of_V = 0;  ///< Δ_V^I = max_v |I_v|
  std::size_t delta_K_of_V = 0;  ///< Δ_V^K = max_v |K_v|
  std::size_t delta_V_of_I = 0;  ///< Δ_I^V = max_i |V_i|
  std::size_t delta_V_of_K = 0;  ///< Δ_K^V = max_k |V_k|
};

/// A batch of edits against an existing Instance (the mutation unit of
/// the engine's update pipeline). Coefficient edits with value > 0 set
/// or insert the entry; erase_* record a removal. Entity additions
/// append fresh ids at the end; agent removals compact the id space
/// (see Instance::apply for the exact semantics and the remap).
struct InstanceDelta {
  /// One coefficient edit: row is a resource (usages) or party
  /// (benefits) id; value == 0 marks an erase.
  struct CoefEdit {
    std::int32_t row = 0;
    AgentId v = 0;
    double value = 0.0;
  };

  std::vector<CoefEdit> usages;
  std::vector<CoefEdit> benefits;
  AgentId new_agents = 0;
  ResourceId new_resources = 0;
  PartyId new_parties = 0;
  std::vector<AgentId> removed_agents;

  InstanceDelta& set_usage(ResourceId i, AgentId v, double a);
  InstanceDelta& erase_usage(ResourceId i, AgentId v);
  InstanceDelta& set_benefit(PartyId k, AgentId v, double c);
  InstanceDelta& erase_benefit(PartyId k, AgentId v);
  InstanceDelta& add_agents(AgentId count);
  InstanceDelta& add_resources(ResourceId count);
  InstanceDelta& add_parties(PartyId count);
  InstanceDelta& remove_agent(AgentId v);

  bool empty() const {
    return usages.empty() && benefits.empty() && new_agents == 0 &&
           new_resources == 0 && new_parties == 0 && removed_agents.empty();
  }
};

/// What Instance::apply did, in terms the caches above it need: the new
/// revision, whether any support-set membership changed (the
/// communication hypergraph differs), whether ids were remapped
/// (removals compacted the id space), and the sorted set of agents
/// incident to any edit — for a pure value edit just the edited agent;
/// for a membership edit the agent plus the old and new members of
/// every edited support row. `touched` is in post-apply ids and is
/// constructed so that any vertex whose radius-r ball changed — under
/// the old or the new hypergraph — lies within distance r of it (every
/// removed adjacency has both endpoints in `touched`), which is what
/// makes single-BFS dirty regions sound. Empty when `remapped` (callers
/// fall back to full invalidation).
struct DeltaEffect {
  std::uint64_t revision = 0;
  bool structural = false;
  bool remapped = false;
  std::vector<AgentId> touched;
  /// Old agent id -> new id (-1 removed); filled only when `remapped`.
  std::vector<AgentId> agent_remap;
};

class Instance {
 public:
  class Builder;

  AgentId num_agents() const { return static_cast<AgentId>(agent_resources_.num_rows()); }
  ResourceId num_resources() const { return static_cast<ResourceId>(resource_support_.num_rows()); }
  PartyId num_parties() const { return static_cast<PartyId>(party_support_.num_rows()); }

  /// V_i with coefficients a_iv (sorted by agent id).
  CoefSpan resource_support(ResourceId i) const;
  /// V_k with coefficients c_kv (sorted by agent id).
  CoefSpan party_support(PartyId k) const;
  /// I_v with coefficients a_iv (sorted by resource id).
  CoefSpan agent_resources(AgentId v) const;
  /// K_v with coefficients c_kv (sorted by party id).
  CoefSpan agent_parties(AgentId v) const;

  /// |V_i| in O(1) (offset difference; no span construction).
  std::size_t resource_support_size(ResourceId i) const;
  /// |V_k| in O(1).
  std::size_t party_support_size(PartyId k) const;

  /// a_iv (0 when v is not in V_i).
  double usage(ResourceId i, AgentId v) const;
  /// c_kv (0 when v is not in V_k).
  double benefit(PartyId k, AgentId v) const;

  DegreeBounds degree_bounds() const;

  /// Communication hypergraph H of Section 1.4: one hyperedge per V_i and
  /// (unless collaboration_oblivious) one per V_k. Nodes are agents.
  Hypergraph communication_graph(bool collaboration_oblivious = false) const;

  /// Enforce the standing assumptions; throws CheckError on violation.
  void validate() const;

  /// Monotonically increasing mutation counter: 0 for a freshly built
  /// instance, bumped by every successful apply(). Caches key their
  /// validity on it (engine::Session stamps every cached structure with
  /// the revision it was derived from).
  std::uint64_t revision() const { return revision_; }

  /// Apply a batch of edits. Pure value changes of existing entries are
  /// written into the CSR blocks in place (O(log row) per edit);
  /// anything that changes support-set membership — insertions, erases,
  /// entity additions or removals — goes through a compacting rebuild of
  /// all four blocks (the same counting-sort path as Builder::build, so
  /// the mutated instance is block-for-block identical to building the
  /// edited coefficient set from scratch). Agent removals drop the
  /// agent's entries, compact agent ids downwards order-preservingly,
  /// and cascade-remove any resource or party whose support becomes
  /// empty (their id spaces compact the same way). Throws CheckError —
  /// before any mutation is committed — on out-of-range ids, erases of
  /// absent entries, non-positive set_* values, or edits that would
  /// leave a nonempty-support assumption violated; validate() holds
  /// after every successful apply.
  DeltaEffect apply(const InstanceDelta& delta);

  /// Total number of nonzero coefficients (|A| + |C| sparsity).
  std::size_t num_nonzeros() const;

  /// Plain-text round-trip format (one header line, then one line per
  /// nonzero). Used by tests and the examples.
  std::string serialize() const;
  static Instance deserialize(const std::string& text);

  friend bool operator==(const Instance&, const Instance&);

 private:
  /// One direction of the sparse coefficient matrix: row r (a resource,
  /// party, or agent) owns data[offsets[r] .. offsets[r+1]), sorted by id.
  struct CsrBlock {
    std::vector<std::size_t> offsets{0};  ///< num_rows + 1 entries
    std::vector<Coef> data;

    std::size_t num_rows() const { return offsets.size() - 1; }
    std::size_t row_size(std::size_t r) const { return offsets[r + 1] - offsets[r]; }
    CoefSpan row(std::size_t r) const {
      return {data.data() + offsets[r], offsets[r + 1] - offsets[r]};
    }

    friend bool operator==(const CsrBlock&, const CsrBlock&) = default;
  };

  CsrBlock resource_support_;  // i -> (v, a_iv)
  CsrBlock party_support_;     // k -> (v, c_kv)
  CsrBlock agent_resources_;   // v -> (i, a_iv)
  CsrBlock agent_parties_;     // v -> (k, c_kv)
  std::uint64_t revision_ = 0;  // not part of equality/serialization
};

/// Incremental construction with validation at build().
class Instance::Builder {
 public:
  /// Pre-declare entity counts (further adds extend them).
  Builder& reserve(AgentId agents, ResourceId resources, PartyId parties);

  /// Pre-size the coefficient buffers (pure capacity hint).
  Builder& reserve_nonzeros(std::size_t usages, std::size_t benefits);

  AgentId add_agent();
  ResourceId add_resource();
  PartyId add_party();

  /// Set a_iv > 0. Duplicate (i, v) pairs are rejected at build().
  Builder& set_usage(ResourceId i, AgentId v, double a);
  /// Set c_kv > 0.
  Builder& set_benefit(PartyId k, AgentId v, double c);

  /// Validate and produce the instance.
  Instance build() &&;

 private:
  AgentId num_agents_ = 0;
  ResourceId num_resources_ = 0;
  PartyId num_parties_ = 0;
  std::vector<std::tuple<ResourceId, AgentId, double>> usages_;
  std::vector<std::tuple<PartyId, AgentId, double>> benefits_;
};

}  // namespace mmlp

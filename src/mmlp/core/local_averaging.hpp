// The local approximation algorithm of Theorem 3 (Section 5).
//
// Fix a radius R. Every agent u solves the local LP (9) on its view
// V^u = B_H(u, R) optimally; agent j then averages the opinions of the
// views it belongs to, damped by the growth factor β_j (eq. (10)):
//
//   β_j = min_{i∈I_j} n_i / N_i,     x̃_j = (β_j / |V^j|) Σ_{u∈V^j} x^u_j.
//
// Section 5.2 shows x̃ is feasible; Section 5.3 shows
// ω(x̃) ≥ ω* / (max_k M_k/m_k · max_i N_i/n_i) ≥ ω* / (γ(R−1)·γ(R)).
//
// The per-agent LPs are independent and solved in parallel. The
// distributed interpretation (each j recomputing x^u for u ∈ V^j from its
// radius-(2R+1) view with the same deterministic solver) is implemented
// in mmlp/dist/algorithms and tested to produce identical output.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/incremental.hpp"
#include "mmlp/core/instance.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/core/view_class.hpp"
#include "mmlp/lp/simplex.hpp"

namespace mmlp {

namespace engine {
class Session;  // engine/session.hpp
}

/// Damping rule applied to the averaged view solutions (ablations of the
/// paper's eq. (10); see bench/exp_ablation_damping).
enum class AveragingDamping : std::uint8_t {
  kBetaPerAgent,   ///< the paper's β_j = min_{i∈I_j} n_i/N_i (local, proven feasible)
  kBetaGlobal,     ///< β = min_j β_j everywhere (local with one more round; more conservative)
  kNone,           ///< undamped average — NOT feasible in general (ablation only)
  kNoneThenScale,  ///< undamped average, then global scale-to-feasible (non-local upper reference)
};

struct LocalAveragingOptions {
  std::int32_t R = 1;  ///< view radius; the local horizon is Θ(R) (2R+1)
  bool collaboration_oblivious = false;  ///< drop party hyperedges from H
  AveragingDamping damping = AveragingDamping::kBetaPerAgent;
  SimplexOptions lp;   ///< solver settings for the local LPs

  /// Solve one view LP per isomorphism class instead of one per agent
  /// (view_class.hpp): agents with structurally identical views share
  /// the representative's solution. Pays off massively on symmetric
  /// instances (grids, tori, regular constructions) and falls back to
  /// per-agent behaviour automatically when every class is a singleton.
  bool deduplicate = false;
  /// Group granularity when deduplicating. kExact (default) reuses
  /// solutions only across bit-identical view structures, keeping the
  /// output bitwise equal to the dedup-off run on every instance.
  /// kCanonical also merges views equal only up to relabeling and
  /// scatters the permuted representative solution — each member still
  /// receives an exactly optimal, exactly feasible solution of its own
  /// view LP, but a member's private simplex run could have picked a
  /// different optimal vertex, so outputs can differ within the
  /// degenerate-optimum freedom (see docs/ARCHITECTURE.md).
  DedupScatter dedup_scatter = DedupScatter::kExact;
};

struct LocalAveragingResult {
  std::vector<double> x;            ///< x̃, feasible for (1)
  std::vector<double> beta;         ///< β_j per agent
  std::vector<std::size_t> ball_size;  ///< |V^j| per agent
  double ratio_bound = 0.0;         ///< max_k M_k/m_k · max_i N_i/n_i (≤ γ(R−1)γ(R))
  std::vector<double> view_omega;   ///< ω^u of each local LP (diagnostics)

  /// Dedup accounting. Without options.deduplicate: lp_solves == n,
  /// view_classes == 0 and dedup_ratio == 0.
  std::size_t lp_solves = 0;     ///< view LPs actually solved
  std::size_t view_classes = 0;  ///< canonical isomorphism classes found
  double dedup_ratio = 0.0;      ///< 1 − lp_solves/n
};

/// Run the algorithm. Requires the full hypergraph mode for the
/// Theorem 3 guarantee (S_k ⊇ V_k needs party hyperedges); in
/// collaboration-oblivious mode the solution is still feasible but the
/// benefit bound may not hold (m_k can be 0, in which case ratio_bound is
/// reported as +inf).
LocalAveragingResult local_averaging(const Instance& instance,
                                     const LocalAveragingOptions& options = {});

/// Warm-session variant: balls, growth sets and the per-worker view/LP
/// scratch come from the session's caches, so repeat solves on the same
/// instance skip the B_H(v, R) and Figure 2 recomputation entirely.
/// Output is bitwise identical to local_averaging() — the free function
/// is a thin wrapper running this against a throwaway session.
LocalAveragingResult local_averaging_with(engine::Session& session,
                                          const LocalAveragingOptions& options = {});

/// Incremental re-solve against the session's edit log. Locality does
/// the work: an edit with touched set T changes view LPs only inside
/// B(T, R), and x̃_j only inside B(T, 2R) (x̃_j reads x^u for u ∈ V^j,
/// and β_j moves only within B(T, R+1)); so the memoized previous run —
/// which retains every agent's view solution — is re-solved on
/// B(T, R) and re-gathered on B(T, 2R), everything else spliced
/// through unchanged. Output is bitwise identical to local_averaging on
/// the mutated instance. Falls back to the full algorithm (same output)
/// on the first call, after id remaps, or for option combinations whose
/// outputs are not per-agent local: kBetaGlobal / kNoneThenScale
/// damping couple every agent to every edit, and the kCanonical scatter
/// is only equal up to degenerate-optimum freedom. The result's
/// lp_solves reports the LPs actually solved this run.
LocalAveragingResult local_averaging_incremental(
    engine::Session& session, const LocalAveragingOptions& options = {},
    IncrementalStats* stats = nullptr);

}  // namespace mmlp

#include "mmlp/core/transform.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

void check_permutation(const std::vector<AgentId>& permutation, AgentId n) {
  MMLP_CHECK_EQ(permutation.size(), static_cast<std::size_t>(n));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  for (const AgentId target : permutation) {
    MMLP_CHECK_GE(target, 0);
    MMLP_CHECK_LT(target, n);
    MMLP_CHECK_EQ(seen[static_cast<std::size_t>(target)], 0);
    seen[static_cast<std::size_t>(target)] = 1;
  }
}

}  // namespace

Instance relabel_agents(const Instance& instance,
                        const std::vector<AgentId>& permutation) {
  check_permutation(permutation, instance.num_agents());
  Instance::Builder builder;
  builder.reserve(instance.num_agents(), 0, 0);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : instance.resource_support(i)) {
      builder.set_usage(id, permutation[static_cast<std::size_t>(entry.id)],
                        entry.value);
    }
  }
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : instance.party_support(k)) {
      builder.set_benefit(id, permutation[static_cast<std::size_t>(entry.id)],
                          entry.value);
    }
  }
  return std::move(builder).build();
}

std::vector<double> relabel_solution(const std::vector<double>& x,
                                     const std::vector<AgentId>& permutation) {
  MMLP_CHECK_EQ(x.size(), permutation.size());
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t v = 0; v < x.size(); ++v) {
    out[static_cast<std::size_t>(permutation[v])] = x[v];
  }
  return out;
}

namespace {

Instance scale_coefficients(const Instance& instance, double usage_factor,
                            double benefit_factor) {
  MMLP_CHECK_GT(usage_factor, 0.0);
  MMLP_CHECK_GT(benefit_factor, 0.0);
  Instance::Builder builder;
  builder.reserve(instance.num_agents(), 0, 0);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : instance.resource_support(i)) {
      builder.set_usage(id, entry.id, entry.value * usage_factor);
    }
  }
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : instance.party_support(k)) {
      builder.set_benefit(id, entry.id, entry.value * benefit_factor);
    }
  }
  return std::move(builder).build();
}

}  // namespace

Instance scale_usages(const Instance& instance, double factor) {
  return scale_coefficients(instance, factor, 1.0);
}

Instance scale_benefits(const Instance& instance, double factor) {
  return scale_coefficients(instance, 1.0, factor);
}

Instance disjoint_union(const Instance& a, const Instance& b) {
  Instance::Builder builder;
  builder.reserve(a.num_agents() + b.num_agents(), 0, 0);
  for (ResourceId i = 0; i < a.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : a.resource_support(i)) {
      builder.set_usage(id, entry.id, entry.value);
    }
  }
  for (ResourceId i = 0; i < b.num_resources(); ++i) {
    const ResourceId id = builder.add_resource();
    for (const Coef& entry : b.resource_support(i)) {
      builder.set_usage(id, a.num_agents() + entry.id, entry.value);
    }
  }
  for (PartyId k = 0; k < a.num_parties(); ++k) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : a.party_support(k)) {
      builder.set_benefit(id, entry.id, entry.value);
    }
  }
  for (PartyId k = 0; k < b.num_parties(); ++k) {
    const PartyId id = builder.add_party();
    for (const Coef& entry : b.party_support(k)) {
      builder.set_benefit(id, a.num_agents() + entry.id, entry.value);
    }
  }
  return std::move(builder).build();
}

InducedSubinstance induce(const Instance& instance,
                          const std::vector<AgentId>& sorted_agents) {
  MMLP_CHECK(std::is_sorted(sorted_agents.begin(), sorted_agents.end()));
  MMLP_CHECK(std::adjacent_find(sorted_agents.begin(), sorted_agents.end()) ==
             sorted_agents.end());
  auto contains = [&](AgentId v) {
    return std::binary_search(sorted_agents.begin(), sorted_agents.end(), v);
  };
  auto local_of = [&](AgentId v) {
    return static_cast<AgentId>(
        std::lower_bound(sorted_agents.begin(), sorted_agents.end(), v) -
        sorted_agents.begin());
  };

  InducedSubinstance sub;
  sub.global_agents = sorted_agents;
  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(sorted_agents.size()), 0, 0);
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const auto& support = instance.resource_support(i);
    if (!std::all_of(support.begin(), support.end(),
                     [&](const Coef& entry) { return contains(entry.id); })) {
      continue;
    }
    const ResourceId id = builder.add_resource();
    sub.global_resources.push_back(i);
    for (const Coef& entry : support) {
      builder.set_usage(id, local_of(entry.id), entry.value);
    }
  }
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const auto& support = instance.party_support(k);
    if (!std::all_of(support.begin(), support.end(),
                     [&](const Coef& entry) { return contains(entry.id); })) {
      continue;
    }
    const PartyId id = builder.add_party();
    sub.global_parties.push_back(k);
    for (const Coef& entry : support) {
      builder.set_benefit(id, local_of(entry.id), entry.value);
    }
  }
  sub.instance = std::move(builder).build();
  return sub;
}

}  // namespace mmlp

// Canonical labeling of local views (see view_class.hpp for the model).
//
// The refinement works on the view's bipartite incidence structure:
// agents on one side, rows (truncated resource constraints and fully
// visible party rows) on the other. Colors are dense ranks over sorted
// signature tuples, so two isomorphic views walk through identical
// color sequences; the only non-invariant step is the documented
// smallest-local-index individualization, which can split truly
// isomorphic views into separate classes but never merges
// non-isomorphic ones — the serialized key is the complete relabeled
// structure, not a hash.
#include "mmlp/core/view_class.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

/// Canonical keys carry a one-byte tag so the two key families can
/// never collide inside one partition map: agents proven unique by the
/// structural pre-hash store a placeholder key (their exact key behind
/// the tag) instead of paying for the full canonical labeling.
constexpr char kPlaceholderKeyTag = '\0';
constexpr char kCanonicalKeyTag = '\1';

void put_i32(std::string& out, std::int32_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

void put_u64(std::string& out, std::uint64_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

std::uint64_t coef_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Rank a batch of signature tuples: each signature becomes its index in
/// the sorted-unique order, so equal tuples share a rank and the ranks
/// are invariant under any reordering of the batch.
std::vector<std::int32_t> rank_signatures(
    std::vector<std::vector<std::int64_t>>& signatures) {
  std::vector<const std::vector<std::int64_t>*> sorted;
  sorted.reserve(signatures.size());
  for (const auto& signature : signatures) {
    sorted.push_back(&signature);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return *a < *b; });
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const auto* a, const auto* b) { return *a == *b; }),
               sorted.end());
  std::vector<std::int32_t> ranks(signatures.size());
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), &signatures[i],
        [](const auto* a, const auto* b) { return *a < *b; });
    ranks[i] = static_cast<std::int32_t>(it - sorted.begin());
  }
  return ranks;
}

std::int32_t distinct_count(const std::vector<std::int32_t>& colors) {
  std::vector<std::int32_t> sorted = colors;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<std::int32_t>(sorted.size());
}

/// splitmix64 finalizer — the bit mixer under the structural pre-hash.
std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The view's local structure serialized verbatim — the exact key of
/// ViewCanonicalForm, computable without any canonical labeling.
std::string serialize_exact_key(const LocalView& view) {
  const auto num_locals = static_cast<std::int32_t>(view.agents.size());
  const std::int32_t center_local = view.local_index(view.center);
  MMLP_CHECK_GE(center_local, 0);
  const auto num_resources = static_cast<std::int32_t>(view.resources.size());
  const auto num_parties = static_cast<std::int32_t>(view.parties.size());
  const std::int32_t num_rows = num_resources + num_parties;
  std::string exact;
  exact.reserve(64 + static_cast<std::size_t>(num_rows) * 16);
  put_i32(exact, num_locals);
  put_i32(exact, center_local);
  put_i32(exact, num_resources);
  put_i32(exact, num_parties);
  for (std::int32_t r = 0; r < num_rows; ++r) {
    const CoefSpan entries =
        r < num_resources
            ? view.resource_entries(static_cast<std::size_t>(r))
            : view.party_entries(static_cast<std::size_t>(r - num_resources));
    put_i32(exact, static_cast<std::int32_t>(entries.size()));
    for (const Coef& entry : entries) {
      put_i32(exact, entry.id);
      put_u64(exact, coef_bits(entry.value));
    }
  }
  return exact;
}

/// num_locals back out of a serialized exact key (its first field).
std::int32_t exact_key_num_locals(const std::string& exact_key) {
  std::int32_t value = 0;
  MMLP_CHECK_GE(exact_key.size(), sizeof value);
  std::memcpy(&value, exact_key.data(), sizeof value);
  return value;
}

/// A cheap isomorphism invariant of the view: every ingredient is a
/// commutative sum over relabeling-permuted collections (row (type,
/// coefficient) multisets, per-agent incidence profiles, the center's
/// own profile), so center-preserving isomorphic views hash equal.
/// Views that hash differently are provably non-isomorphic — an agent
/// alone in its hash bucket therefore forms a singleton class and can
/// skip the expensive canonical labeling entirely. Collisions only
/// merge buckets (forcing a labeling that was skippable), never split.
std::uint64_t view_invariant_hash(const LocalView& view) {
  const auto num_locals = static_cast<std::int32_t>(view.agents.size());
  const std::int32_t center_local = view.local_index(view.center);
  const auto num_resources = static_cast<std::int32_t>(view.resources.size());
  const auto num_parties = static_cast<std::int32_t>(view.parties.size());
  const std::int32_t num_rows = num_resources + num_parties;

  std::vector<std::uint64_t> agent_acc(static_cast<std::size_t>(num_locals),
                                       0);
  std::uint64_t rows_acc = 0;
  for (std::int32_t r = 0; r < num_rows; ++r) {
    const std::uint64_t type = r < num_resources ? 0 : 1;
    const CoefSpan entries =
        r < num_resources
            ? view.resource_entries(static_cast<std::size_t>(r))
            : view.party_entries(static_cast<std::size_t>(r - num_resources));
    std::uint64_t row_acc = 0;
    for (const Coef& entry : entries) {
      const std::uint64_t e =
          mix_u64(coef_bits(entry.value) + type * 0x9e3779b97f4a7c15ULL);
      row_acc += e;
      agent_acc[static_cast<std::size_t>(entry.id)] += e;
    }
    rows_acc += mix_u64(row_acc ^ mix_u64(type + (entries.size() << 1)));
  }
  std::uint64_t agents_acc = 0;
  for (const std::uint64_t acc : agent_acc) {
    agents_acc += mix_u64(acc);
  }

  std::uint64_t h = mix_u64(static_cast<std::uint64_t>(num_locals));
  h = mix_u64(h ^ mix_u64((static_cast<std::uint64_t>(num_resources) << 32) |
                          static_cast<std::uint32_t>(num_parties)));
  h = mix_u64(h ^ rows_acc);
  h = mix_u64(h ^ agents_acc);
  h = mix_u64(h ^
              mix_u64(agent_acc[static_cast<std::size_t>(center_local)] + 1));
  return h;
}

/// The placeholder canonical form of a pre-hash-unique agent: tagged
/// exact key plus the identity permutation. Used identically by build
/// and repair so the two always produce the same index.
void make_placeholder_form(const std::string& exact_key,
                           ViewCanonicalForm& form) {
  form.canonical_key.clear();
  form.canonical_key.reserve(exact_key.size() + 1);
  form.canonical_key.push_back(kPlaceholderKeyTag);
  form.canonical_key += exact_key;
  form.canon_to_local.resize(
      static_cast<std::size_t>(exact_key_num_locals(exact_key)));
  std::iota(form.canon_to_local.begin(), form.canon_to_local.end(), 0);
}

void count_canonicalizations(std::int64_t full, std::int64_t skipped) {
  static obs::Counter& canonicalized =
      obs::Registry::global().counter("view_class.canonicalizations");
  static obs::Counter& prehash_skips =
      obs::Registry::global().counter("view_class.prehash_skips");
  canonicalized.add(full);
  prehash_skips.add(skipped);
}

}  // namespace

double ViewClassIndex::dedup_ratio(DedupScatter scatter) const {
  if (num_agents() == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(num_groups(scatter)) /
                   static_cast<double>(num_agents());
}

ViewCanonicalForm canonicalize_view(const LocalView& view) {
  const auto num_locals = static_cast<std::int32_t>(view.agents.size());
  const std::int32_t center_local = view.local_index(view.center);
  MMLP_CHECK_GE(center_local, 0);
  const auto num_resources = static_cast<std::int32_t>(view.resources.size());
  const auto num_parties = static_cast<std::int32_t>(view.parties.size());
  const std::int32_t num_rows = num_resources + num_parties;

  // Row accessor over the unified row index space: resources first
  // (type 0), then parties (type 1).
  const auto row_type = [&](std::int32_t r) -> std::int64_t {
    return r < num_resources ? 0 : 1;
  };
  const auto row_entries = [&](std::int32_t r) -> CoefSpan {
    return r < num_resources
               ? view.resource_entries(static_cast<std::size_t>(r))
               : view.party_entries(static_cast<std::size_t>(r - num_resources));
  };

  ViewCanonicalForm form;

  // ---- exact key: the local structure verbatim -------------------------
  form.exact_key = serialize_exact_key(view);

  // ---- incidence structure --------------------------------------------
  std::vector<std::vector<std::int32_t>> rows_of(
      static_cast<std::size_t>(num_locals));
  for (std::int32_t r = 0; r < num_rows; ++r) {
    for (const Coef& entry : row_entries(r)) {
      rows_of[static_cast<std::size_t>(entry.id)].push_back(r);
    }
  }

  // ---- BFS layers from the center over the view's hypergraph ----------
  // Layer −1 marks agents the view's own rows cannot reach (possible in
  // non-oblivious mode: a partial party edge of the global graph is not
  // part of the view). The layer is a pure function of the structure, so
  // it stays isomorphism-invariant either way.
  std::vector<std::int64_t> layer(static_cast<std::size_t>(num_locals), -1);
  {
    std::vector<std::int32_t> frontier{center_local};
    layer[static_cast<std::size_t>(center_local)] = 0;
    std::vector<std::int32_t> next;
    std::int64_t depth = 0;
    while (!frontier.empty()) {
      next.clear();
      ++depth;
      for (const std::int32_t a : frontier) {
        for (const std::int32_t r : rows_of[static_cast<std::size_t>(a)]) {
          for (const Coef& entry : row_entries(r)) {
            if (layer[static_cast<std::size_t>(entry.id)] == -1) {
              layer[static_cast<std::size_t>(entry.id)] = depth;
              next.push_back(entry.id);
            }
          }
        }
      }
      frontier.swap(next);
    }
  }

  // ---- seed colors: (layer, sorted own (row type, coefficient)) -------
  std::vector<std::vector<std::int64_t>> agent_signature(
      static_cast<std::size_t>(num_locals));
  for (std::int32_t a = 0; a < num_locals; ++a) {
    agent_signature[static_cast<std::size_t>(a)].push_back(layer[a]);
  }
  for (std::int32_t r = 0; r < num_rows; ++r) {
    for (const Coef& entry : row_entries(r)) {
      auto& signature = agent_signature[static_cast<std::size_t>(entry.id)];
      signature.push_back(row_type(r));
      signature.push_back(static_cast<std::int64_t>(coef_bits(entry.value)));
    }
  }
  for (auto& signature : agent_signature) {
    // Sort the flattened (type, coef) pairs after the leading layer entry.
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    for (std::size_t i = 1; i + 1 < signature.size(); i += 2) {
      pairs.emplace_back(signature[i], signature[i + 1]);
    }
    std::sort(pairs.begin(), pairs.end());
    signature.resize(1);
    for (const auto& [type, bits] : pairs) {
      signature.push_back(type);
      signature.push_back(bits);
    }
  }
  std::vector<std::int32_t> agent_color = rank_signatures(agent_signature);

  // ---- refinement + individualization ---------------------------------
  std::vector<std::int32_t> row_color(static_cast<std::size_t>(num_rows), 0);
  std::vector<std::vector<std::int64_t>> row_signature(
      static_cast<std::size_t>(num_rows));
  std::int32_t distinct = distinct_count(agent_color);
  while (true) {
    // Refine until the agent partition stops splitting.
    while (true) {
      for (std::int32_t r = 0; r < num_rows; ++r) {
        auto& signature = row_signature[static_cast<std::size_t>(r)];
        signature.clear();
        signature.push_back(row_type(r));
        std::vector<std::pair<std::int64_t, std::int64_t>> members;
        for (const Coef& entry : row_entries(r)) {
          members.emplace_back(agent_color[static_cast<std::size_t>(entry.id)],
                               static_cast<std::int64_t>(coef_bits(entry.value)));
        }
        std::sort(members.begin(), members.end());
        for (const auto& [color, bits] : members) {
          signature.push_back(color);
          signature.push_back(bits);
        }
      }
      row_color = rank_signatures(row_signature);

      for (std::int32_t a = 0; a < num_locals; ++a) {
        auto& signature = agent_signature[static_cast<std::size_t>(a)];
        signature.clear();
        signature.push_back(agent_color[static_cast<std::size_t>(a)]);
        std::vector<std::int64_t> incident;
        for (const std::int32_t r : rows_of[static_cast<std::size_t>(a)]) {
          incident.push_back(row_color[static_cast<std::size_t>(r)]);
        }
        std::sort(incident.begin(), incident.end());
        signature.insert(signature.end(), incident.begin(), incident.end());
      }
      agent_color = rank_signatures(agent_signature);
      const std::int32_t refined = distinct_count(agent_color);
      if (refined == distinct) {
        break;
      }
      distinct = refined;
    }
    if (distinct == num_locals) {
      break;
    }
    // Individualize: smallest still-shared color, smallest local index.
    // This is the one non-invariant (heuristic) choice — see header.
    std::vector<std::int32_t> count(static_cast<std::size_t>(distinct), 0);
    for (const std::int32_t color : agent_color) {
      ++count[static_cast<std::size_t>(color)];
    }
    std::int32_t target = -1;
    for (std::int32_t color = 0; color < distinct; ++color) {
      if (count[static_cast<std::size_t>(color)] > 1) {
        target = color;
        break;
      }
    }
    MMLP_CHECK_GE(target, 0);
    for (std::int32_t a = 0; a < num_locals; ++a) {
      if (agent_color[static_cast<std::size_t>(a)] == target) {
        agent_color[static_cast<std::size_t>(a)] = distinct;
        break;
      }
    }
    ++distinct;
  }

  // ---- canonical order -------------------------------------------------
  // Colors are now distinct; the canonical index of an agent is the rank
  // of its color.
  form.canon_to_local.assign(static_cast<std::size_t>(num_locals), -1);
  std::vector<std::int32_t> local_to_canon(static_cast<std::size_t>(num_locals));
  {
    std::vector<std::pair<std::int32_t, std::int32_t>> order;
    order.reserve(static_cast<std::size_t>(num_locals));
    for (std::int32_t a = 0; a < num_locals; ++a) {
      order.emplace_back(agent_color[static_cast<std::size_t>(a)], a);
    }
    std::sort(order.begin(), order.end());
    for (std::int32_t c = 0; c < num_locals; ++c) {
      form.canon_to_local[static_cast<std::size_t>(c)] = order[c].second;
      local_to_canon[static_cast<std::size_t>(order[c].second)] = c;
    }
  }

  // ---- canonical key: relabeled structure, rows sorted ----------------
  std::vector<std::string> row_bytes(static_cast<std::size_t>(num_rows));
  for (std::int32_t r = 0; r < num_rows; ++r) {
    std::string& bytes = row_bytes[static_cast<std::size_t>(r)];
    const CoefSpan entries = row_entries(r);
    put_i32(bytes, static_cast<std::int32_t>(row_type(r)));
    put_i32(bytes, static_cast<std::int32_t>(entries.size()));
    std::vector<std::pair<std::int32_t, std::uint64_t>> relabeled;
    relabeled.reserve(entries.size());
    for (const Coef& entry : entries) {
      relabeled.emplace_back(local_to_canon[static_cast<std::size_t>(entry.id)],
                             coef_bits(entry.value));
    }
    std::sort(relabeled.begin(), relabeled.end());
    for (const auto& [canon, bits] : relabeled) {
      put_i32(bytes, canon);
      put_u64(bytes, bits);
    }
  }
  std::sort(row_bytes.begin(), row_bytes.end());

  std::string& canonical = form.canonical_key;
  canonical.reserve(form.exact_key.size());
  put_i32(canonical, num_locals);
  put_i32(canonical, local_to_canon[static_cast<std::size_t>(center_local)]);
  put_i32(canonical, num_resources);
  put_i32(canonical, num_parties);
  for (const std::string& bytes : row_bytes) {
    canonical += bytes;
  }
  return form;
}

namespace {

/// Rebuild the class/orbit grouping arrays from the per-agent keys in
/// ascending agent order, so class/orbit ids and representatives are
/// deterministic. Shared by build (keys just computed) and repair (keys
/// spliced); the maps hold views into the index's key strings.
void regroup(ViewClassIndex& index) {
  const std::size_t n = index.exact_keys.size();
  index.class_of.assign(n, -1);
  index.orbit_of.assign(n, -1);
  index.class_rep.clear();
  index.class_size.clear();
  index.orbit_rep.clear();
  index.orbit_size.clear();
  index.orbit_class.clear();

  std::unordered_map<std::string_view, std::int32_t> class_ids;
  std::unordered_map<std::string_view, std::int32_t> orbit_ids;
  class_ids.reserve(n);
  orbit_ids.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto [class_it, class_inserted] = class_ids.emplace(
        std::string_view(index.canonical_keys[u]),
        static_cast<std::int32_t>(index.class_rep.size()));
    if (class_inserted) {
      index.class_rep.push_back(static_cast<AgentId>(u));
      index.class_size.push_back(0);
    }
    index.class_of[u] = class_it->second;
    ++index.class_size[static_cast<std::size_t>(class_it->second)];

    const auto [orbit_it, orbit_inserted] = orbit_ids.emplace(
        std::string_view(index.exact_keys[u]),
        static_cast<std::int32_t>(index.orbit_rep.size()));
    if (orbit_inserted) {
      index.orbit_rep.push_back(static_cast<AgentId>(u));
      index.orbit_size.push_back(0);
      index.orbit_class.push_back(class_it->second);
    }
    index.orbit_of[u] = orbit_it->second;
    ++index.orbit_size[static_cast<std::size_t>(orbit_it->second)];
    // Identical structures canonicalize identically, so an orbit can
    // never straddle two classes.
    MMLP_CHECK_EQ(index.orbit_class[static_cast<std::size_t>(orbit_it->second)],
                  class_it->second);
  }
}

}  // namespace

ViewClassIndex build_view_class_index(
    const Instance& instance, const std::vector<std::vector<AgentId>>& balls,
    std::int32_t radius, bool collaboration_oblivious, ThreadPool* pool,
    bool keep_keys) {
  const auto n = static_cast<std::size_t>(instance.num_agents());
  MMLP_CHECK_EQ(balls.size(), n);

  ViewClassIndex index;
  index.radius = radius;
  index.collaboration_oblivious = collaboration_oblivious;
  index.repairable = keep_keys;
  index.class_of.assign(n, -1);
  index.orbit_of.assign(n, -1);
  index.perm_offset.assign(n + 1, 0);
  index.exact_keys.resize(n);
  index.canonical_keys.resize(n);
  index.invariants.assign(n, 0);
  if (n == 0) {
    return index;
  }

  obs::ObsSpan span("view_class.build", "core");

  // Pass 1 (cheap, linear in view size): serialize each view's exact
  // key and compute its structural pre-hash — no canonical labeling.
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t u = begin; u < end; ++u) {
          extract_view_into(instance, static_cast<AgentId>(u), radius, balls[u],
                            view, scratch);
          index.exact_keys[u] = serialize_exact_key(view);
          index.invariants[u] = view_invariant_hash(view);
        }
      },
      pool);

  // Hash-bucket sizes decide who pays for the full labeling: an agent
  // alone in its bucket is non-isomorphic to every other agent, so its
  // class is provably a singleton (this is what keeps dedup from ever
  // being a loss on symmetry-free instances — ROADMAP item 3).
  std::unordered_map<std::uint64_t, std::int32_t> bucket_size;
  bucket_size.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    ++bucket_size[index.invariants[u]];
  }

  // Pass 2: canonicalize shared-bucket agents, placeholder the rest.
  std::vector<ViewCanonicalForm> forms(n);
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t u = begin; u < end; ++u) {
          if (bucket_size.find(index.invariants[u])->second > 1) {
            extract_view_into(instance, static_cast<AgentId>(u), radius,
                              balls[u], view, scratch);
            forms[u] = canonicalize_view(view);
            forms[u].canonical_key.insert(forms[u].canonical_key.begin(),
                                          kCanonicalKeyTag);
          } else {
            make_placeholder_form(index.exact_keys[u], forms[u]);
          }
        }
      },
      pool);
  std::int64_t full = 0;
  for (std::size_t u = 0; u < n; ++u) {
    full += bucket_size.find(index.invariants[u])->second > 1 ? 1 : 0;
  }
  count_canonicalizations(full, static_cast<std::int64_t>(n) - full);

  for (std::size_t u = 0; u < n; ++u) {
    index.perm_offset[u + 1] =
        index.perm_offset[u] +
        static_cast<std::int64_t>(forms[u].canon_to_local.size());
  }
  index.perms.resize(static_cast<std::size_t>(index.perm_offset[n]));
  for (std::size_t u = 0; u < n; ++u) {
    ViewCanonicalForm& form = forms[u];
    std::copy(form.canon_to_local.begin(), form.canon_to_local.end(),
              index.perms.begin() +
                  static_cast<std::ptrdiff_t>(index.perm_offset[u]));
    index.canonical_keys[u] = std::move(form.canonical_key);
  }
  regroup(index);
  if (!keep_keys) {
    index.exact_keys = {};
    index.canonical_keys = {};
    index.invariants = {};
  }
  return index;
}

void repair_view_class_index(const Instance& instance,
                             const std::vector<std::vector<AgentId>>& balls,
                             std::span<const AgentId> dirty,
                             ViewClassIndex& index, ThreadPool* pool) {
  MMLP_CHECK_MSG(index.repairable,
                 "view-class index was built without keep_keys; rebuild it "
                 "instead of repairing");
  const auto n = static_cast<std::size_t>(instance.num_agents());
  const std::size_t n_old = index.exact_keys.size();
  MMLP_CHECK_EQ(balls.size(), n);
  MMLP_CHECK_MSG(n_old <= n,
                 "agent removal shrank the instance; the index needs a full "
                 "rebuild, not a repair");
  MMLP_CHECK(std::is_sorted(dirty.begin(), dirty.end()));
  for (std::size_t u = n_old; u < n; ++u) {
    MMLP_CHECK_MSG(
        std::binary_search(dirty.begin(), dirty.end(), static_cast<AgentId>(u)),
        "added agent " << u << " must be in the dirty set");
  }
  MMLP_CHECK_EQ(index.invariants.size(), n_old);

  obs::ObsSpan span("view_class.repair", "core");

  // Cheap pass over the dirty agents: fresh exact keys and pre-hashes.
  std::vector<std::string> dirty_exact(dirty.size());
  std::vector<std::uint64_t> dirty_invariant(dirty.size());
  chunked_parallel_for(
      dirty.size(),
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const auto u = static_cast<std::size_t>(dirty[idx]);
          extract_view_into(instance, dirty[idx], index.radius, balls[u], view,
                            scratch);
          dirty_exact[idx] = serialize_exact_key(view);
          dirty_invariant[idx] = view_invariant_hash(view);
        }
      },
      pool);

  std::vector<std::int32_t> dirty_slot(n, -1);
  for (std::size_t idx = 0; idx < dirty.size(); ++idx) {
    dirty_slot[static_cast<std::size_t>(dirty[idx])] =
        static_cast<std::int32_t>(idx);
  }
  index.exact_keys.resize(n);
  index.canonical_keys.resize(n);
  index.invariants.resize(n, 0);
  for (std::size_t idx = 0; idx < dirty.size(); ++idx) {
    const auto u = static_cast<std::size_t>(dirty[idx]);
    index.exact_keys[u] = std::move(dirty_exact[idx]);
    index.invariants[u] = dirty_invariant[idx];
  }

  // Re-derive the pre-hash bucket decision for EVERY agent, exactly as
  // a from-scratch build would: a delta can pull a clean agent into a
  // shared bucket (its stored placeholder must be promoted to a real
  // labeling) or leave a once-shared agent alone (demote to
  // placeholder), and repair == rebuild is the contract the engine's
  // incremental tests pin bit-for-bit.
  std::unordered_map<std::uint64_t, std::int32_t> bucket_size;
  bucket_size.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    ++bucket_size[index.invariants[u]];
  }
  std::vector<char> placeholder(n, 0);
  std::vector<AgentId> recanon;
  for (std::size_t u = 0; u < n; ++u) {
    if (bucket_size.find(index.invariants[u])->second <= 1) {
      placeholder[u] = 1;
      continue;
    }
    const bool stored_is_real =
        dirty_slot[u] < 0 && !index.canonical_keys[u].empty() &&
        index.canonical_keys[u][0] == kCanonicalKeyTag;
    if (!stored_is_real) {
      recanon.push_back(static_cast<AgentId>(u));
    }
  }

  // Full canonical labeling only where the bucket demands a fresh one.
  std::vector<ViewCanonicalForm> forms(recanon.size());
  chunked_parallel_for(
      recanon.size(),
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const auto u = static_cast<std::size_t>(recanon[idx]);
          extract_view_into(instance, recanon[idx], index.radius, balls[u],
                            view, scratch);
          forms[idx] = canonicalize_view(view);
          forms[idx].canonical_key.insert(forms[idx].canonical_key.begin(),
                                          kCanonicalKeyTag);
        }
      },
      pool);
  std::int64_t dirty_skipped = 0;
  for (const AgentId u : dirty) {
    dirty_skipped += placeholder[static_cast<std::size_t>(u)] != 0 ? 1 : 0;
  }
  count_canonicalizations(static_cast<std::int64_t>(recanon.size()),
                          dirty_skipped);

  // Splice permutations (lengths may have changed) and keys.
  std::vector<std::int32_t> recanon_slot(n, -1);
  for (std::size_t idx = 0; idx < recanon.size(); ++idx) {
    recanon_slot[static_cast<std::size_t>(recanon[idx])] =
        static_cast<std::int32_t>(idx);
  }
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    std::int64_t length = 0;
    if (recanon_slot[u] >= 0) {
      length = static_cast<std::int64_t>(
          forms[static_cast<std::size_t>(recanon_slot[u])]
              .canon_to_local.size());
    } else if (placeholder[u] != 0) {
      length = exact_key_num_locals(index.exact_keys[u]);
    } else {
      length = index.perm_offset[u + 1] - index.perm_offset[u];
    }
    offsets[u + 1] = offsets[u] + length;
  }
  std::vector<std::int32_t> perms(static_cast<std::size_t>(offsets[n]));
  for (std::size_t u = 0; u < n; ++u) {
    const auto out =
        perms.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    if (recanon_slot[u] >= 0) {
      ViewCanonicalForm& form = forms[static_cast<std::size_t>(recanon_slot[u])];
      std::copy(form.canon_to_local.begin(), form.canon_to_local.end(), out);
      index.canonical_keys[u] = std::move(form.canonical_key);
    } else if (placeholder[u] != 0) {
      ViewCanonicalForm form;
      make_placeholder_form(index.exact_keys[u], form);
      std::copy(form.canon_to_local.begin(), form.canon_to_local.end(), out);
      index.canonical_keys[u] = std::move(form.canonical_key);
    } else {
      std::copy(index.perms.begin() +
                    static_cast<std::ptrdiff_t>(index.perm_offset[u]),
                index.perms.begin() +
                    static_cast<std::ptrdiff_t>(index.perm_offset[u + 1]),
                out);
    }
  }
  index.perm_offset = std::move(offsets);
  index.perms = std::move(perms);
  regroup(index);
}

}  // namespace mmlp

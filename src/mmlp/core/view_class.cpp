// Canonical labeling of local views (see view_class.hpp for the model).
//
// The refinement works on the view's bipartite incidence structure:
// agents on one side, rows (truncated resource constraints and fully
// visible party rows) on the other. Colors are dense ranks over sorted
// signature tuples, so two isomorphic views walk through identical
// color sequences; the only non-invariant step is the documented
// smallest-local-index individualization, which can split truly
// isomorphic views into separate classes but never merges
// non-isomorphic ones — the serialized key is the complete relabeled
// structure, not a hash.
#include "mmlp/core/view_class.hpp"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

void put_i32(std::string& out, std::int32_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

void put_u64(std::string& out, std::uint64_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

std::uint64_t coef_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

/// Rank a batch of signature tuples: each signature becomes its index in
/// the sorted-unique order, so equal tuples share a rank and the ranks
/// are invariant under any reordering of the batch.
std::vector<std::int32_t> rank_signatures(
    std::vector<std::vector<std::int64_t>>& signatures) {
  std::vector<const std::vector<std::int64_t>*> sorted;
  sorted.reserve(signatures.size());
  for (const auto& signature : signatures) {
    sorted.push_back(&signature);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return *a < *b; });
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const auto* a, const auto* b) { return *a == *b; }),
               sorted.end());
  std::vector<std::int32_t> ranks(signatures.size());
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), &signatures[i],
        [](const auto* a, const auto* b) { return *a < *b; });
    ranks[i] = static_cast<std::int32_t>(it - sorted.begin());
  }
  return ranks;
}

std::int32_t distinct_count(const std::vector<std::int32_t>& colors) {
  std::vector<std::int32_t> sorted = colors;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<std::int32_t>(sorted.size());
}

}  // namespace

double ViewClassIndex::dedup_ratio(DedupScatter scatter) const {
  if (num_agents() == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(num_groups(scatter)) /
                   static_cast<double>(num_agents());
}

ViewCanonicalForm canonicalize_view(const LocalView& view) {
  const auto num_locals = static_cast<std::int32_t>(view.agents.size());
  const std::int32_t center_local = view.local_index(view.center);
  MMLP_CHECK_GE(center_local, 0);
  const auto num_resources = static_cast<std::int32_t>(view.resources.size());
  const auto num_parties = static_cast<std::int32_t>(view.parties.size());
  const std::int32_t num_rows = num_resources + num_parties;

  // Row accessor over the unified row index space: resources first
  // (type 0), then parties (type 1).
  const auto row_type = [&](std::int32_t r) -> std::int64_t {
    return r < num_resources ? 0 : 1;
  };
  const auto row_entries = [&](std::int32_t r) -> CoefSpan {
    return r < num_resources
               ? view.resource_entries(static_cast<std::size_t>(r))
               : view.party_entries(static_cast<std::size_t>(r - num_resources));
  };

  ViewCanonicalForm form;

  // ---- exact key: the local structure verbatim -------------------------
  std::string& exact = form.exact_key;
  exact.reserve(64 + static_cast<std::size_t>(num_rows) * 16);
  put_i32(exact, num_locals);
  put_i32(exact, center_local);
  put_i32(exact, num_resources);
  put_i32(exact, num_parties);
  for (std::int32_t r = 0; r < num_rows; ++r) {
    const CoefSpan entries = row_entries(r);
    put_i32(exact, static_cast<std::int32_t>(entries.size()));
    for (const Coef& entry : entries) {
      put_i32(exact, entry.id);
      put_u64(exact, coef_bits(entry.value));
    }
  }

  // ---- incidence structure --------------------------------------------
  std::vector<std::vector<std::int32_t>> rows_of(
      static_cast<std::size_t>(num_locals));
  for (std::int32_t r = 0; r < num_rows; ++r) {
    for (const Coef& entry : row_entries(r)) {
      rows_of[static_cast<std::size_t>(entry.id)].push_back(r);
    }
  }

  // ---- BFS layers from the center over the view's hypergraph ----------
  // Layer −1 marks agents the view's own rows cannot reach (possible in
  // non-oblivious mode: a partial party edge of the global graph is not
  // part of the view). The layer is a pure function of the structure, so
  // it stays isomorphism-invariant either way.
  std::vector<std::int64_t> layer(static_cast<std::size_t>(num_locals), -1);
  {
    std::vector<std::int32_t> frontier{center_local};
    layer[static_cast<std::size_t>(center_local)] = 0;
    std::vector<std::int32_t> next;
    std::int64_t depth = 0;
    while (!frontier.empty()) {
      next.clear();
      ++depth;
      for (const std::int32_t a : frontier) {
        for (const std::int32_t r : rows_of[static_cast<std::size_t>(a)]) {
          for (const Coef& entry : row_entries(r)) {
            if (layer[static_cast<std::size_t>(entry.id)] == -1) {
              layer[static_cast<std::size_t>(entry.id)] = depth;
              next.push_back(entry.id);
            }
          }
        }
      }
      frontier.swap(next);
    }
  }

  // ---- seed colors: (layer, sorted own (row type, coefficient)) -------
  std::vector<std::vector<std::int64_t>> agent_signature(
      static_cast<std::size_t>(num_locals));
  for (std::int32_t a = 0; a < num_locals; ++a) {
    agent_signature[static_cast<std::size_t>(a)].push_back(layer[a]);
  }
  for (std::int32_t r = 0; r < num_rows; ++r) {
    for (const Coef& entry : row_entries(r)) {
      auto& signature = agent_signature[static_cast<std::size_t>(entry.id)];
      signature.push_back(row_type(r));
      signature.push_back(static_cast<std::int64_t>(coef_bits(entry.value)));
    }
  }
  for (auto& signature : agent_signature) {
    // Sort the flattened (type, coef) pairs after the leading layer entry.
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
    for (std::size_t i = 1; i + 1 < signature.size(); i += 2) {
      pairs.emplace_back(signature[i], signature[i + 1]);
    }
    std::sort(pairs.begin(), pairs.end());
    signature.resize(1);
    for (const auto& [type, bits] : pairs) {
      signature.push_back(type);
      signature.push_back(bits);
    }
  }
  std::vector<std::int32_t> agent_color = rank_signatures(agent_signature);

  // ---- refinement + individualization ---------------------------------
  std::vector<std::int32_t> row_color(static_cast<std::size_t>(num_rows), 0);
  std::vector<std::vector<std::int64_t>> row_signature(
      static_cast<std::size_t>(num_rows));
  std::int32_t distinct = distinct_count(agent_color);
  while (true) {
    // Refine until the agent partition stops splitting.
    while (true) {
      for (std::int32_t r = 0; r < num_rows; ++r) {
        auto& signature = row_signature[static_cast<std::size_t>(r)];
        signature.clear();
        signature.push_back(row_type(r));
        std::vector<std::pair<std::int64_t, std::int64_t>> members;
        for (const Coef& entry : row_entries(r)) {
          members.emplace_back(agent_color[static_cast<std::size_t>(entry.id)],
                               static_cast<std::int64_t>(coef_bits(entry.value)));
        }
        std::sort(members.begin(), members.end());
        for (const auto& [color, bits] : members) {
          signature.push_back(color);
          signature.push_back(bits);
        }
      }
      row_color = rank_signatures(row_signature);

      for (std::int32_t a = 0; a < num_locals; ++a) {
        auto& signature = agent_signature[static_cast<std::size_t>(a)];
        signature.clear();
        signature.push_back(agent_color[static_cast<std::size_t>(a)]);
        std::vector<std::int64_t> incident;
        for (const std::int32_t r : rows_of[static_cast<std::size_t>(a)]) {
          incident.push_back(row_color[static_cast<std::size_t>(r)]);
        }
        std::sort(incident.begin(), incident.end());
        signature.insert(signature.end(), incident.begin(), incident.end());
      }
      agent_color = rank_signatures(agent_signature);
      const std::int32_t refined = distinct_count(agent_color);
      if (refined == distinct) {
        break;
      }
      distinct = refined;
    }
    if (distinct == num_locals) {
      break;
    }
    // Individualize: smallest still-shared color, smallest local index.
    // This is the one non-invariant (heuristic) choice — see header.
    std::vector<std::int32_t> count(static_cast<std::size_t>(distinct), 0);
    for (const std::int32_t color : agent_color) {
      ++count[static_cast<std::size_t>(color)];
    }
    std::int32_t target = -1;
    for (std::int32_t color = 0; color < distinct; ++color) {
      if (count[static_cast<std::size_t>(color)] > 1) {
        target = color;
        break;
      }
    }
    MMLP_CHECK_GE(target, 0);
    for (std::int32_t a = 0; a < num_locals; ++a) {
      if (agent_color[static_cast<std::size_t>(a)] == target) {
        agent_color[static_cast<std::size_t>(a)] = distinct;
        break;
      }
    }
    ++distinct;
  }

  // ---- canonical order -------------------------------------------------
  // Colors are now distinct; the canonical index of an agent is the rank
  // of its color.
  form.canon_to_local.assign(static_cast<std::size_t>(num_locals), -1);
  std::vector<std::int32_t> local_to_canon(static_cast<std::size_t>(num_locals));
  {
    std::vector<std::pair<std::int32_t, std::int32_t>> order;
    order.reserve(static_cast<std::size_t>(num_locals));
    for (std::int32_t a = 0; a < num_locals; ++a) {
      order.emplace_back(agent_color[static_cast<std::size_t>(a)], a);
    }
    std::sort(order.begin(), order.end());
    for (std::int32_t c = 0; c < num_locals; ++c) {
      form.canon_to_local[static_cast<std::size_t>(c)] = order[c].second;
      local_to_canon[static_cast<std::size_t>(order[c].second)] = c;
    }
  }

  // ---- canonical key: relabeled structure, rows sorted ----------------
  std::vector<std::string> row_bytes(static_cast<std::size_t>(num_rows));
  for (std::int32_t r = 0; r < num_rows; ++r) {
    std::string& bytes = row_bytes[static_cast<std::size_t>(r)];
    const CoefSpan entries = row_entries(r);
    put_i32(bytes, static_cast<std::int32_t>(row_type(r)));
    put_i32(bytes, static_cast<std::int32_t>(entries.size()));
    std::vector<std::pair<std::int32_t, std::uint64_t>> relabeled;
    relabeled.reserve(entries.size());
    for (const Coef& entry : entries) {
      relabeled.emplace_back(local_to_canon[static_cast<std::size_t>(entry.id)],
                             coef_bits(entry.value));
    }
    std::sort(relabeled.begin(), relabeled.end());
    for (const auto& [canon, bits] : relabeled) {
      put_i32(bytes, canon);
      put_u64(bytes, bits);
    }
  }
  std::sort(row_bytes.begin(), row_bytes.end());

  std::string& canonical = form.canonical_key;
  canonical.reserve(exact.size());
  put_i32(canonical, num_locals);
  put_i32(canonical, local_to_canon[static_cast<std::size_t>(center_local)]);
  put_i32(canonical, num_resources);
  put_i32(canonical, num_parties);
  for (const std::string& bytes : row_bytes) {
    canonical += bytes;
  }
  return form;
}

namespace {

/// Rebuild the class/orbit grouping arrays from the per-agent keys in
/// ascending agent order, so class/orbit ids and representatives are
/// deterministic. Shared by build (keys just computed) and repair (keys
/// spliced); the maps hold views into the index's key strings.
void regroup(ViewClassIndex& index) {
  const std::size_t n = index.exact_keys.size();
  index.class_of.assign(n, -1);
  index.orbit_of.assign(n, -1);
  index.class_rep.clear();
  index.class_size.clear();
  index.orbit_rep.clear();
  index.orbit_size.clear();
  index.orbit_class.clear();

  std::unordered_map<std::string_view, std::int32_t> class_ids;
  std::unordered_map<std::string_view, std::int32_t> orbit_ids;
  class_ids.reserve(n);
  orbit_ids.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto [class_it, class_inserted] = class_ids.emplace(
        std::string_view(index.canonical_keys[u]),
        static_cast<std::int32_t>(index.class_rep.size()));
    if (class_inserted) {
      index.class_rep.push_back(static_cast<AgentId>(u));
      index.class_size.push_back(0);
    }
    index.class_of[u] = class_it->second;
    ++index.class_size[static_cast<std::size_t>(class_it->second)];

    const auto [orbit_it, orbit_inserted] = orbit_ids.emplace(
        std::string_view(index.exact_keys[u]),
        static_cast<std::int32_t>(index.orbit_rep.size()));
    if (orbit_inserted) {
      index.orbit_rep.push_back(static_cast<AgentId>(u));
      index.orbit_size.push_back(0);
      index.orbit_class.push_back(class_it->second);
    }
    index.orbit_of[u] = orbit_it->second;
    ++index.orbit_size[static_cast<std::size_t>(orbit_it->second)];
    // Identical structures canonicalize identically, so an orbit can
    // never straddle two classes.
    MMLP_CHECK_EQ(index.orbit_class[static_cast<std::size_t>(orbit_it->second)],
                  class_it->second);
  }
}

}  // namespace

ViewClassIndex build_view_class_index(
    const Instance& instance, const std::vector<std::vector<AgentId>>& balls,
    std::int32_t radius, bool collaboration_oblivious, ThreadPool* pool,
    bool keep_keys) {
  const auto n = static_cast<std::size_t>(instance.num_agents());
  MMLP_CHECK_EQ(balls.size(), n);

  ViewClassIndex index;
  index.radius = radius;
  index.collaboration_oblivious = collaboration_oblivious;
  index.repairable = keep_keys;
  index.class_of.assign(n, -1);
  index.orbit_of.assign(n, -1);
  index.perm_offset.assign(n + 1, 0);
  index.exact_keys.resize(n);
  index.canonical_keys.resize(n);
  if (n == 0) {
    return index;
  }

  // Canonicalize every view in parallel; one scratch per chunk.
  std::vector<ViewCanonicalForm> forms(n);
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t u = begin; u < end; ++u) {
          extract_view_into(instance, static_cast<AgentId>(u), radius, balls[u],
                            view, scratch);
          forms[u] = canonicalize_view(view);
        }
      },
      pool);

  for (std::size_t u = 0; u < n; ++u) {
    index.perm_offset[u + 1] =
        index.perm_offset[u] +
        static_cast<std::int64_t>(forms[u].canon_to_local.size());
  }
  index.perms.resize(static_cast<std::size_t>(index.perm_offset[n]));
  for (std::size_t u = 0; u < n; ++u) {
    ViewCanonicalForm& form = forms[u];
    std::copy(form.canon_to_local.begin(), form.canon_to_local.end(),
              index.perms.begin() +
                  static_cast<std::ptrdiff_t>(index.perm_offset[u]));
    index.exact_keys[u] = std::move(form.exact_key);
    index.canonical_keys[u] = std::move(form.canonical_key);
  }
  regroup(index);
  if (!keep_keys) {
    index.exact_keys = {};
    index.canonical_keys = {};
  }
  return index;
}

void repair_view_class_index(const Instance& instance,
                             const std::vector<std::vector<AgentId>>& balls,
                             std::span<const AgentId> dirty,
                             ViewClassIndex& index, ThreadPool* pool) {
  MMLP_CHECK_MSG(index.repairable,
                 "view-class index was built without keep_keys; rebuild it "
                 "instead of repairing");
  const auto n = static_cast<std::size_t>(instance.num_agents());
  const std::size_t n_old = index.exact_keys.size();
  MMLP_CHECK_EQ(balls.size(), n);
  MMLP_CHECK_MSG(n_old <= n,
                 "agent removal shrank the instance; the index needs a full "
                 "rebuild, not a repair");
  MMLP_CHECK(std::is_sorted(dirty.begin(), dirty.end()));
  for (std::size_t u = n_old; u < n; ++u) {
    MMLP_CHECK_MSG(
        std::binary_search(dirty.begin(), dirty.end(), static_cast<AgentId>(u)),
        "added agent " << u << " must be in the dirty set");
  }

  // Re-canonicalize the dirty views only.
  std::vector<ViewCanonicalForm> forms(dirty.size());
  chunked_parallel_for(
      dirty.size(),
      [&](std::size_t begin, std::size_t end) {
        ViewScratch scratch;
        LocalView view;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const auto u = static_cast<std::size_t>(dirty[idx]);
          extract_view_into(instance, dirty[idx], index.radius, balls[u], view,
                            scratch);
          forms[idx] = canonicalize_view(view);
        }
      },
      pool);

  // Splice the permutations (lengths may have changed) and the keys.
  std::vector<std::int32_t> dirty_slot(n, -1);
  for (std::size_t idx = 0; idx < dirty.size(); ++idx) {
    dirty_slot[static_cast<std::size_t>(dirty[idx])] =
        static_cast<std::int32_t>(idx);
  }
  std::vector<std::int64_t> offsets(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t slot = dirty_slot[u];
    const std::int64_t length =
        slot >= 0 ? static_cast<std::int64_t>(
                        forms[static_cast<std::size_t>(slot)].canon_to_local.size())
                  : index.perm_offset[u + 1] - index.perm_offset[u];
    offsets[u + 1] = offsets[u] + length;
  }
  std::vector<std::int32_t> perms(static_cast<std::size_t>(offsets[n]));
  index.exact_keys.resize(n);
  index.canonical_keys.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t slot = dirty_slot[u];
    if (slot >= 0) {
      ViewCanonicalForm& form = forms[static_cast<std::size_t>(slot)];
      std::copy(form.canon_to_local.begin(), form.canon_to_local.end(),
                perms.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
      index.exact_keys[u] = std::move(form.exact_key);
      index.canonical_keys[u] = std::move(form.canonical_key);
    } else {
      std::copy(index.perms.begin() +
                    static_cast<std::ptrdiff_t>(index.perm_offset[u]),
                index.perms.begin() +
                    static_cast<std::ptrdiff_t>(index.perm_offset[u + 1]),
                perms.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
    }
  }
  index.perm_offset = std::move(offsets);
  index.perms = std::move(perms);
  regroup(index);
}

}  // namespace mmlp

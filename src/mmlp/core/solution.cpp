#include "mmlp/core/solution.hpp"

#include <algorithm>
#include <limits>

#include "mmlp/util/check.hpp"

namespace mmlp {

double party_benefit(const Instance& instance, const std::vector<double>& x,
                     PartyId k) {
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(instance.num_agents()));
  double benefit = 0.0;
  for (const Coef& entry : instance.party_support(k)) {
    benefit += entry.value * x[static_cast<std::size_t>(entry.id)];
  }
  return benefit;
}

double resource_load(const Instance& instance, const std::vector<double>& x,
                     ResourceId i) {
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(instance.num_agents()));
  double load = 0.0;
  for (const Coef& entry : instance.resource_support(i)) {
    load += entry.value * x[static_cast<std::size_t>(entry.id)];
  }
  return load;
}

double objective_omega(const Instance& instance, const std::vector<double>& x) {
  double omega = std::numeric_limits<double>::infinity();
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    omega = std::min(omega, party_benefit(instance, x, k));
  }
  return omega;
}

Evaluation evaluate(const Instance& instance, const std::vector<double>& x) {
  return evaluate(instance, x, nullptr);
}

Evaluation evaluate(const Instance& instance, const std::vector<double>& x,
                    std::vector<double>* party_benefits) {
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(instance.num_agents()));
  Evaluation eval;
  if (party_benefits != nullptr) {
    party_benefits->clear();
    party_benefits->reserve(static_cast<std::size_t>(instance.num_parties()));
  }
  eval.omega = std::numeric_limits<double>::infinity();
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    const double benefit = party_benefit(instance, x, k);
    if (party_benefits != nullptr) {
      party_benefits->push_back(benefit);
    }
    if (benefit < eval.omega) {
      eval.omega = benefit;
      eval.argmin_party = k;
    }
  }
  if (instance.num_parties() == 0) {
    eval.omega = std::numeric_limits<double>::infinity();
  }
  double max_load = -std::numeric_limits<double>::infinity();
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    const double load = resource_load(instance, x, i);
    if (load > max_load) {
      max_load = load;
      eval.argmax_resource = i;
    }
    eval.worst_violation = std::max(eval.worst_violation, load - 1.0);
  }
  for (const double value : x) {
    eval.worst_violation = std::max(eval.worst_violation, -value);
  }
  return eval;
}

double scale_to_feasible(const Instance& instance, std::vector<double>& x) {
  for (double& value : x) {
    value = std::max(0.0, value);
  }
  double max_load = 0.0;
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    max_load = std::max(max_load, resource_load(instance, x, i));
  }
  if (max_load <= 1.0) {
    return 1.0;
  }
  const double scale = 1.0 / max_load;
  for (double& value : x) {
    value *= scale;
  }
  return scale;
}

double approximation_ratio(double optimal_omega, double achieved_omega) {
  MMLP_CHECK_GE(optimal_omega, 0.0);
  MMLP_CHECK_GE(achieved_omega, -kFeasTol);
  if (optimal_omega <= 0.0) {
    return 1.0;
  }
  if (achieved_omega <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return optimal_omega / achieved_omega;
}

}  // namespace mmlp

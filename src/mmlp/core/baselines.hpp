// Centralised comparison baselines.
//
// Neither of these is a local algorithm; they bracket the local
// algorithms in the experiment tables. `uniform_solution` is the
// weakest sensible feasible point (one global activity level);
// `greedy_waterfill` is a natural centralised heuristic (repeatedly help
// the currently worst-off party along its least congested agent) that is
// much stronger than safe in practice yet still short of the LP optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

namespace engine {
class Session;  // engine/session.hpp
}

/// x_v = t for all v with the largest feasible t = 1 / max_i Σ_v a_iv.
std::vector<double> uniform_solution(const Instance& instance);

/// Session-API variant (identical output; the baselines derive no
/// cacheable state, the overload keeps the solver registry uniform).
std::vector<double> uniform_solution_with(engine::Session& session);

struct GreedyOptions {
  std::int64_t max_steps = 100000;
  /// Per step, raise the chosen agent until the binding resource reaches
  /// this fraction of its remaining slack (1 = jump to the wall; smaller
  /// values give smoother water-filling).
  double step_fraction = 0.5;
  /// Stop once the worst party improves by less than this per step.
  double min_gain = 1e-9;
};

struct GreedyResult {
  std::vector<double> x;
  double omega = 0.0;
  std::int64_t steps = 0;
};

/// Water-filling: while some agent serving the worst party has resource
/// slack, raise the one with the best benefit-per-congestion ratio.
GreedyResult greedy_waterfill(const Instance& instance,
                              const GreedyOptions& options = {});

/// Session-API variant of greedy_waterfill (identical output).
GreedyResult greedy_waterfill_with(engine::Session& session,
                                   const GreedyOptions& options = {});

}  // namespace mmlp

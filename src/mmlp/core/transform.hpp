// Instance transformations and the solution laws they obey.
//
// These are the algebraic tools the paper's arguments use implicitly:
// Section 4 restricts S to an induced subinstance S′; the identifier
// model (Section 1.5) implies algorithm outputs are equivariant under
// agent relabelling; and the LP structure gives exact scaling laws
// (halving all a_iv doubles ω*, scaling all c_kv scales ω* likewise).
// Tests assert each law against the solvers.
#pragma once

#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

/// Relabel agents: new id of agent v is permutation[v]. Resources and
/// parties keep their indices; support lists are re-sorted.
Instance relabel_agents(const Instance& instance,
                        const std::vector<AgentId>& permutation);

/// Push a solution vector through the same relabelling (x'[perm[v]] = x[v]).
std::vector<double> relabel_solution(const std::vector<double>& x,
                                     const std::vector<AgentId>& permutation);

/// Multiply every a_iv by `factor` (> 0): resources become tighter
/// (factor > 1) or looser. ω* scales by exactly 1/factor.
Instance scale_usages(const Instance& instance, double factor);

/// Multiply every c_kv by `factor` (> 0). ω* scales by exactly factor.
Instance scale_benefits(const Instance& instance, double factor);

/// Disjoint union: agents/resources/parties of `b` are appended after
/// those of `a`. ω*(union) = min(ω*(a), ω*(b)).
Instance disjoint_union(const Instance& a, const Instance& b);

/// Induced subinstance on a sorted agent subset: keeps the resources and
/// parties whose support is fully inside the subset (the S′ operation of
/// Section 4.3 in general form). Every kept agent must retain at least
/// one resource; callers choose closed subsets (e.g. unions of balls).
struct InducedSubinstance {
  Instance instance;
  std::vector<AgentId> global_agents;      ///< local -> original agent id
  std::vector<ResourceId> global_resources;
  std::vector<PartyId> global_parties;
};
InducedSubinstance induce(const Instance& instance,
                          const std::vector<AgentId>& sorted_agents);

}  // namespace mmlp

// The safe algorithm (Papadimitriou–Yannakakis; Section 3/4, eq. (2)).
//
//   x_v = min_{i ∈ I_v} 1 / (a_iv · |V_i|)
//
// Horizon r = 1: agent v needs only its own resources, their coefficients
// and their support sizes. The solution is always feasible (each resource
// i receives ≤ |V_i| · a_iv · 1/(a_iv|V_i|) = 1 in total) and is a
// Δ_I^V-approximation of (1) (Section 4, first display).
#pragma once

#include <span>
#include <vector>

#include "mmlp/core/incremental.hpp"
#include "mmlp/core/instance.hpp"

namespace mmlp {

namespace engine {
class Session;  // engine/session.hpp
}

/// The safe solution for the whole instance. The hot loop reads the CSR
/// blocks directly (I_v scan plus O(1) |V_i| offset lookups) and performs
/// no per-agent allocation.
std::vector<double> safe_solution(const Instance& instance);

struct SafeOptions {
  /// Evaluate eq. (2) once per distinct radius-1 profile instead of once
  /// per agent: x_v depends only on the multiset {(a_iv, |V_i|) : i∈I_v},
  /// so agents with equal profiles provably compute the same value —
  /// bitwise, since min over a multiset is order-independent. Note this
  /// is an API-uniformity knob, not a speedup: building a profile reads
  /// the same entries the rule itself reads, so expect parity at best
  /// (eq. (2) is the one solver cheaper than any grouping of it). The
  /// LP-backed solvers are where deduplication pays (LocalAveragingOptions).
  bool deduplicate = false;
};

/// Warm-session variant: identical output, run on the session's worker
/// pool. The safe rule derives no cacheable state (horizon 1 reads the
/// CSR blocks directly), so warm and cold cost the same — the overload
/// exists so every registered solver speaks the Session API.
std::vector<double> safe_solution_with(engine::Session& session,
                                       const SafeOptions& options = {});

/// Incremental re-solve against the session's edit log: re-evaluates
/// eq. (2) only for agents the deltas since the last safe solve could
/// have reached (the touched set itself — the rule reads radius-1 data,
/// and an edit's touched closure already contains every agent whose
/// a_iv or |V_i| inputs moved) and splices them into the memoized
/// previous solution. Falls back to a full solve on the first call, on
/// id remaps, or when no memo exists; either way the result is bitwise
/// identical to safe_solution on the mutated instance.
std::vector<double> safe_solution_incremental(engine::Session& session,
                                              const SafeOptions& options = {},
                                              IncrementalStats* stats = nullptr);

/// The single-agent rule, usable from per-agent (distributed) code:
/// needs I_v with coefficients and |V_i| for each i ∈ I_v.
double safe_choice(CoefSpan agent_resources,
                   std::span<const std::size_t> support_sizes);

}  // namespace mmlp

// Local views and the set machinery of Section 5 (Figure 2).
//
// For an agent u with horizon parameter R:
//   V^u   = B_H(u, R)                       (the agents u can see)
//   K^u   = {k ∈ K : V_k ⊆ V^u}             (parties fully visible to u)
//   V^u_i = V_i ∩ V^u
//   I^u   = {i ∈ I : V^u_i ≠ ∅}             (resources touching the view)
// and the local LP (9):
//   maximise ω^u = min_{k∈K^u} Σ_{v∈V_k} c_kv x^u_v
//   s.t. Σ_{v∈V^u_i} a_iv x^u_v ≤ 1  ∀ i ∈ I^u,  x^u ≥ 0.
//
// For the feasibility/benefit analysis (and the β_j of eq. (10)):
//   S_k = ∩_{j∈V_k} V^j,  m_k = |S_k|,  M_k = max_{j∈V_k} |V^j|,
//   U_i = ∪_{j∈V_i} V^j,  N_i = |U_i|,  n_i = min_{j∈V_i} |V^j|,
//   β_j = min_{i∈I_j} n_i / N_i.
//
// A LocalView stores its per-resource/per-party entry lists in flat CSR
// form (one Coef array + offsets per side), mirroring Instance; the hot
// extraction path (one view per agent inside Theorem 3's algorithm) goes
// through extract_view_into + ViewScratch, which reuses an O(1)
// global→local stamp map and all intermediate buffers so a steady-state
// extraction performs no heap allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/lp/simplex.hpp"

namespace mmlp {

/// The subinstance visible to one agent.
struct LocalView {
  AgentId center = -1;
  std::int32_t radius = 0;

  std::vector<AgentId> agents;  ///< V^u, sorted global ids; local index = position

  std::vector<ResourceId> resources;  ///< I^u (global ids)
  std::vector<PartyId> parties;       ///< K^u (global ids)

  /// CSR entry storage: resource r of `resources` owns
  /// resource_data[resource_offsets[r] .. resource_offsets[r+1]) with
  /// (local agent, a_iv) pairs for v ∈ V^u_i; parties analogous with V_k.
  std::vector<std::int32_t> resource_offsets{0};
  std::vector<Coef> resource_data;
  std::vector<std::int32_t> party_offsets{0};
  std::vector<Coef> party_data;

  /// Entries of the r-th resource in `resources` (local agent ids).
  CoefSpan resource_entries(std::size_t r) const {
    return {resource_data.data() + resource_offsets[r],
            static_cast<std::size_t>(resource_offsets[r + 1] - resource_offsets[r])};
  }
  /// Entries of the p-th party in `parties` (local agent ids).
  CoefSpan party_entries(std::size_t p) const {
    return {party_data.data() + party_offsets[p],
            static_cast<std::size_t>(party_offsets[p + 1] - party_offsets[p])};
  }

  /// Local index of a global agent id, or −1 when outside the view.
  std::int32_t local_index(AgentId global) const;

  /// Reset to an empty view, keeping buffer capacity.
  void clear();
};

/// Reusable workspace for view extraction and view-LP solving. One per
/// worker thread; every buffer (including the global→local agent map,
/// kept all −1 between calls and reset via the touched list) survives
/// across agents so the per-agent loops of Theorem 3 do not allocate.
struct ViewScratch {
  std::vector<std::int32_t> agent_local;  ///< global agent -> local id, −1 outside
  std::vector<ResourceId> resource_ids;
  std::vector<PartyId> party_ids;
  LpProblem lp;                 ///< reused row storage for view_lp_into
  SimplexWorkspace simplex;     ///< reused tableau memory for solve_lp
};

/// Extract the view of `u` given its precomputed ball B_H(u, R)
/// (sorted). The ball must have been computed on the same hypergraph the
/// caller derived from `instance`.
LocalView extract_view(const Instance& instance, AgentId u, std::int32_t radius,
                       const std::vector<AgentId>& ball_of_u);

/// Convenience: compute the ball, then extract.
LocalView extract_view(const Instance& instance, const Hypergraph& h, AgentId u,
                       std::int32_t radius);

/// Allocation-free (steady state) extraction into a reused view.
void extract_view_into(const Instance& instance, AgentId u, std::int32_t radius,
                       const std::vector<AgentId>& ball_of_u, LocalView& view,
                       ViewScratch& scratch);

/// The local LP (9) of a view: variables are the view agents (local
/// order) plus ω^u at index |agents|.
LpProblem view_lp(const LocalView& view);

/// As view_lp, but reusing the row storage of `out` (capacity persists
/// across calls).
void view_lp_into(const LocalView& view, LpProblem& out);

/// Optimal x^u of (9) (indexed like view.agents). When K^u is empty the
/// objective "min over nothing" is vacuous and x^u = 0 is returned (the
/// Theorem 3 analysis only uses x^u for u ∈ S_k, which forces k ∈ K^u).
/// The reported omega is the LP value (0 when K^u is empty).
struct ViewLpSolution {
  std::vector<double> x;
  double omega = 0.0;
  LpStatus status = LpStatus::kOptimal;
};
ViewLpSolution solve_view_lp(const LocalView& view,
                             const SimplexOptions& options = {});

/// Hot-loop variant: builds the LP into scratch.lp and solves with
/// scratch.simplex, so repeated solves reuse all tableau memory.
ViewLpSolution solve_view_lp(const LocalView& view,
                             const SimplexOptions& options,
                             ViewScratch& scratch);

/// The Figure 2 quantities for a fixed R, over all parties/resources.
struct GrowthSets {
  std::vector<std::size_t> ball_size;  ///< |V^j| per agent j
  std::vector<std::size_t> m_k;        ///< |S_k| per party
  std::vector<std::size_t> M_k;        ///< max ball size over V_k
  std::vector<std::size_t> N_i;        ///< |U_i| per resource
  std::vector<std::size_t> n_i;        ///< min ball size over V_i
  std::vector<double> beta;            ///< β_j per agent

  /// max_k M_k/m_k (Theorem 3: ≤ γ(R−1)).
  double max_party_ratio() const;
  /// max_i N_i/n_i (Theorem 3: ≤ γ(R)).
  double max_resource_ratio() const;
  /// The proof's overall ratio max_k M_k/m_k · max_i N_i/n_i.
  double ratio_bound() const { return max_party_ratio() * max_resource_ratio(); }
};

/// Compute the sets from per-agent balls (as returned by all_balls(H, R)).
/// Requires every V_k to be a clique in the ball structure, which holds
/// when the balls come from the full hypergraph H (not the
/// collaboration-oblivious one) — then S_k ⊇ V_k is nonempty.
GrowthSets compute_growth_sets(const Instance& instance,
                               const std::vector<std::vector<AgentId>>& balls);

/// Surgical repair of a cached GrowthSets after an instance delta.
/// `balls` is the repaired ball cache of the same radius; `dirty` is the
/// sorted dirty region (every agent whose ball or incident support
/// membership changed — the multi_source_ball of the delta's touched set
/// at this radius). Only party/resource rows whose support intersects
/// `dirty` are recomputed, plus the β_j of agents adjacent to a
/// recomputed resource; all other entries are reused. The result is
/// element-for-element identical to compute_growth_sets on the mutated
/// instance. Entity additions grow the vectors (new rows are always
/// recomputed); removals need a from-scratch recompute instead.
void repair_growth_sets(const Instance& instance,
                        const std::vector<std::vector<AgentId>>& balls,
                        std::span<const AgentId> dirty, GrowthSets& sets);

}  // namespace mmlp

#include "mmlp/core/sublinear.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

double local_output_safe(const Instance& instance, AgentId v) {
  const auto& resources = instance.agent_resources(v);
  std::vector<std::size_t> sizes;
  sizes.reserve(resources.size());
  for (const Coef& entry : resources) {
    sizes.push_back(instance.resource_support(entry.id).size());
  }
  return safe_choice(resources, sizes);
}

double local_output_averaging(const Instance& instance, const Hypergraph& h,
                              AgentId v, const LocalAveragingOptions& options) {
  MMLP_CHECK_GE(options.R, 1);
  MMLP_CHECK(options.damping == AveragingDamping::kBetaPerAgent);
  BallCollector collector(h);
  const std::vector<AgentId> my_ball = collector.collect(v, options.R);

  // Σ_{u∈V^j} x^u_j via per-view LPs.
  double accumulated = 0.0;
  for (const AgentId u : my_ball) {
    const LocalView view =
        extract_view(instance, u, options.R, collector.collect(u, options.R));
    const ViewLpSolution solution = solve_view_lp(view, options.lp);
    const std::int32_t mine = view.local_index(v);
    MMLP_CHECK_GE(mine, 0);
    accumulated += solution.x[static_cast<std::size_t>(mine)];
  }

  // β_j = min over this agent's resources of n_i / N_i.
  double beta = std::numeric_limits<double>::infinity();
  for (const Coef& entry : instance.agent_resources(v)) {
    const auto& support = instance.resource_support(entry.id);
    std::vector<AgentId> union_set;
    std::size_t min_ball = std::numeric_limits<std::size_t>::max();
    for (const Coef& member : support) {
      const auto& ball_m = collector.collect(member.id, options.R);
      min_ball = std::min(min_ball, ball_m.size());
      std::vector<AgentId> merged;
      merged.reserve(union_set.size() + ball_m.size());
      std::set_union(union_set.begin(), union_set.end(), ball_m.begin(),
                     ball_m.end(), std::back_inserter(merged));
      union_set.swap(merged);
    }
    beta = std::min(beta, static_cast<double>(min_ball) /
                              static_cast<double>(union_set.size()));
  }
  return beta * accumulated / static_cast<double>(my_ball.size());
}

namespace {

SublinearEstimate estimate_impl(const Instance& instance, const Hypergraph& h,
                                const SublinearOptions& options) {
  MMLP_CHECK_GT(instance.num_parties(), 0);
  MMLP_CHECK_GT(options.samples, 0);
  MMLP_CHECK_GT(options.confidence, 0.0);
  MMLP_CHECK_LT(options.confidence, 1.0);

  // A-priori per-party benefit bound for Hoeffding: any feasible output
  // has x_v <= min_{i in I_v} 1/a_iv, so
  //   benefit_k <= Σ_{v in V_k} c_kv / max_{i} a_iv.
  // One linear pass over the coefficient data (not over balls).
  std::vector<double> x_cap(static_cast<std::size_t>(instance.num_agents()),
                            std::numeric_limits<double>::infinity());
  for (AgentId v = 0; v < instance.num_agents(); ++v) {
    for (const Coef& entry : instance.agent_resources(v)) {
      x_cap[static_cast<std::size_t>(v)] =
          std::min(x_cap[static_cast<std::size_t>(v)], 1.0 / entry.value);
    }
  }
  double value_bound = 0.0;
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    double bound = 0.0;
    for (const Coef& entry : instance.party_support(k)) {
      bound += entry.value * x_cap[static_cast<std::size_t>(entry.id)];
    }
    value_bound = std::max(value_bound, bound);
  }

  LocalAveragingOptions averaging;
  averaging.R = options.R;

  Rng rng(options.seed);
  SublinearEstimate estimate;
  estimate.samples = options.samples;
  estimate.value_bound = value_bound;

  // Memoise agent outputs across samples: repeated parties share agents.
  std::vector<double> cache(static_cast<std::size_t>(instance.num_agents()),
                            -1.0);
  auto output_of = [&](AgentId v) {
    double& slot = cache[static_cast<std::size_t>(v)];
    if (slot < 0.0) {
      ++estimate.agents_evaluated;
      slot = options.algorithm == LocalAlgorithmKind::kSafe
                 ? local_output_safe(instance, v)
                 : local_output_averaging(instance, h, v, averaging);
    }
    return slot;
  };

  double total = 0.0;
  for (std::int32_t s = 0; s < options.samples; ++s) {
    const auto k = static_cast<PartyId>(
        rng.next_below(static_cast<std::uint64_t>(instance.num_parties())));
    double benefit = 0.0;
    for (const Coef& entry : instance.party_support(k)) {
      benefit += entry.value * output_of(entry.id);
    }
    total += benefit;
  }
  estimate.mean_benefit = total / static_cast<double>(options.samples);

  // Two-sided Hoeffding: P(|est − mean| >= t) <= 2 exp(−2 m t² / B²).
  const double failure = 1.0 - options.confidence;
  estimate.half_width =
      value_bound * std::sqrt(std::log(2.0 / failure) /
                              (2.0 * static_cast<double>(options.samples)));
  return estimate;
}

}  // namespace

SublinearEstimate estimate_mean_party_benefit(const Instance& instance,
                                              const SublinearOptions& options) {
  const Hypergraph h = instance.communication_graph();
  return estimate_impl(instance, h, options);
}

SublinearEstimate estimate_mean_party_benefit_with(
    engine::Session& session, const SublinearOptions& options) {
  // The averaging outputs read radius-R balls of the *full* hypergraph
  // (the estimator never runs collaboration-oblivious).
  return estimate_impl(session.instance(), session.graph(false), options);
}

}  // namespace mmlp

#include "mmlp/core/optimal.hpp"

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/lp/maxmin_reduction.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {

OptimalResult solve_optimal(const Instance& instance,
                            const OptimalOptions& options) {
  MMLP_CHECK_GT(instance.num_parties(), 0);
  OptimalMethod method = options.method;
  if (method == OptimalMethod::kAuto) {
    method = instance.num_agents() <= options.simplex_agent_limit
                 ? OptimalMethod::kSimplex
                 : OptimalMethod::kMwu;
  }

  OptimalResult result;
  if (method == OptimalMethod::kSimplex) {
    const MaxMinLpResult lp = solve_maxmin_simplex(instance, options.simplex);
    MMLP_CHECK_MSG(lp.status == LpStatus::kOptimal,
                   "global max-min LP solve failed: " << to_string(lp.status));
    result.omega = lp.omega;
    result.x = lp.x;
    result.method_used = OptimalMethod::kSimplex;
    result.exact = true;
    return result;
  }

  const MwuResult mwu = solve_maxmin_mwu(instance, options.mwu);
  result.omega = mwu.omega;
  result.x = mwu.x;
  result.method_used = OptimalMethod::kMwu;
  result.exact = false;
  return result;
}

OptimalResult solve_optimal_with(engine::Session& session,
                                 const OptimalOptions& options) {
  return solve_optimal(session.instance(), options);
}

}  // namespace mmlp

#include "mmlp/core/safe.hpp"

#include <limits>

#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

double safe_choice(const std::vector<Coef>& agent_resources,
                   const std::vector<std::size_t>& support_sizes) {
  MMLP_CHECK(!agent_resources.empty());
  MMLP_CHECK_EQ(agent_resources.size(), support_sizes.size());
  double choice = std::numeric_limits<double>::infinity();
  for (std::size_t idx = 0; idx < agent_resources.size(); ++idx) {
    const double a = agent_resources[idx].value;
    const auto size = static_cast<double>(support_sizes[idx]);
    MMLP_CHECK_GT(a, 0.0);
    MMLP_CHECK_GT(size, 0.0);
    choice = std::min(choice, 1.0 / (a * size));
  }
  return choice;
}

std::vector<double> safe_solution(const Instance& instance) {
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);
  parallel_for(n, [&](std::size_t v) {
    const auto& resources = instance.agent_resources(static_cast<AgentId>(v));
    std::vector<std::size_t> sizes;
    sizes.reserve(resources.size());
    for (const Coef& entry : resources) {
      sizes.push_back(instance.resource_support(entry.id).size());
    }
    x[v] = safe_choice(resources, sizes);
  });
  return x;
}

}  // namespace mmlp

// eq. (2) in two shapes: safe_choice is the literal per-agent rule on
// explicit (I_v, |V_i|) inputs (the distributed path goes through it so
// the knowledge boundary stays visible); safe_solution is the fused
// whole-instance scan, which skips the per-entry invariant checks — the
// instance passed validate() at build, so a_iv > 0 and V_i ≠ ∅ hold.
#include "mmlp/core/safe.hpp"

#include <limits>

#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

std::vector<double> safe_solution_impl(const Instance& instance,
                                       ThreadPool* pool) {
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);
  parallel_for(
      n,
      [&](std::size_t v) {
        double choice = std::numeric_limits<double>::infinity();
        for (const Coef& entry :
             instance.agent_resources(static_cast<AgentId>(v))) {
          const auto size =
              static_cast<double>(instance.resource_support_size(entry.id));
          choice = std::min(choice, 1.0 / (entry.value * size));
        }
        x[v] = choice;
      },
      pool);
  return x;
}

}  // namespace

double safe_choice(CoefSpan agent_resources,
                   std::span<const std::size_t> support_sizes) {
  MMLP_CHECK(!agent_resources.empty());
  MMLP_CHECK_EQ(agent_resources.size(), support_sizes.size());
  double choice = std::numeric_limits<double>::infinity();
  for (std::size_t idx = 0; idx < agent_resources.size(); ++idx) {
    const double a = agent_resources[idx].value;
    const auto size = static_cast<double>(support_sizes[idx]);
    MMLP_CHECK_GT(a, 0.0);
    MMLP_CHECK_GT(size, 0.0);
    choice = std::min(choice, 1.0 / (a * size));
  }
  return choice;
}

std::vector<double> safe_solution(const Instance& instance) {
  return safe_solution_impl(instance, nullptr);
}

std::vector<double> safe_solution_with(engine::Session& session) {
  return safe_solution_impl(session.instance(), session.pool());
}

}  // namespace mmlp

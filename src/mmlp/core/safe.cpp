// eq. (2) in two shapes: safe_choice is the literal per-agent rule on
// explicit (I_v, |V_i|) inputs (the distributed path goes through it so
// the knowledge boundary stays visible); safe_solution is the fused
// whole-instance scan, which skips the per-entry invariant checks — the
// instance passed validate() at build, so a_iv > 0 and V_i ≠ ∅ hold.
#include "mmlp/core/safe.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

double safe_choice_unchecked(const Instance& instance, AgentId v) {
  double choice = std::numeric_limits<double>::infinity();
  for (const Coef& entry : instance.agent_resources(v)) {
    const auto size =
        static_cast<double>(instance.resource_support_size(entry.id));
    choice = std::min(choice, 1.0 / (entry.value * size));
  }
  return choice;
}

std::vector<double> safe_solution_impl(const Instance& instance,
                                       ThreadPool* pool) {
  obs::ObsSpan span("safe.solve", "core");
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);
  parallel_for(
      n, [&](std::size_t v) { x[v] = safe_choice_unchecked(
                                  instance, static_cast<AgentId>(v)); },
      pool);
  return x;
}

/// Dedup path: group agents by their sorted (a_iv bits, |V_i|) profile —
/// the entire radius-1 knowledge eq. (2) reads — and evaluate each
/// profile once. min over a multiset is order-independent, so the
/// grouped evaluation is bitwise equal to the per-agent one.
std::vector<double> safe_solution_dedup(const Instance& instance,
                                        ThreadPool* pool) {
  obs::ObsSpan span("safe.solve_dedup", "core");
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);
  if (n == 0) {
    return x;
  }
  std::vector<std::string> profiles(n);
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
        for (std::size_t v = begin; v < end; ++v) {
          pairs.clear();
          for (const Coef& entry :
               instance.agent_resources(static_cast<AgentId>(v))) {
            std::uint64_t bits = 0;
            std::memcpy(&bits, &entry.value, sizeof bits);
            pairs.emplace_back(
                bits, static_cast<std::uint64_t>(
                          instance.resource_support_size(entry.id)));
          }
          std::sort(pairs.begin(), pairs.end());
          std::string& profile = profiles[v];
          profile.reserve(pairs.size() * 16);
          for (const auto& [bits, size] : pairs) {
            char bytes[16];
            std::memcpy(bytes, &bits, 8);
            std::memcpy(bytes + 8, &size, 8);
            profile.append(bytes, sizeof bytes);
          }
        }
      },
      pool);
  std::unordered_map<std::string_view, double> value_of;
  value_of.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto [it, inserted] =
        value_of.try_emplace(std::string_view(profiles[v]), 0.0);
    if (inserted) {
      it->second = safe_choice_unchecked(instance, static_cast<AgentId>(v));
    }
    x[v] = it->second;
  }
  return x;
}

}  // namespace

double safe_choice(CoefSpan agent_resources,
                   std::span<const std::size_t> support_sizes) {
  MMLP_CHECK(!agent_resources.empty());
  MMLP_CHECK_EQ(agent_resources.size(), support_sizes.size());
  double choice = std::numeric_limits<double>::infinity();
  for (std::size_t idx = 0; idx < agent_resources.size(); ++idx) {
    const double a = agent_resources[idx].value;
    const auto size = static_cast<double>(support_sizes[idx]);
    MMLP_CHECK_GT(a, 0.0);
    MMLP_CHECK_GT(size, 0.0);
    choice = std::min(choice, 1.0 / (a * size));
  }
  return choice;
}

std::vector<double> safe_solution(const Instance& instance) {
  return safe_solution_impl(instance, nullptr);
}

std::vector<double> safe_solution_with(engine::Session& session,
                                       const SafeOptions& options) {
  return options.deduplicate
             ? safe_solution_dedup(session.instance(), session.pool())
             : safe_solution_impl(session.instance(), session.pool());
}

std::vector<double> safe_solution_incremental(engine::Session& session,
                                              const SafeOptions& options,
                                              IncrementalStats* stats) {
  const Instance& instance = session.instance();
  const auto n = static_cast<std::size_t>(instance.num_agents());
  // One memo regardless of the dedup knob: the dedup path is bitwise
  // equal to the per-agent one, so their solutions are interchangeable.
  engine::SolutionMemo& memo = session.solution_memo("safe");
  IncrementalStats accounting;

  // Radius 0: eq. (2) for agent u reads a_iu for i ∈ I_u and |V_i|, and
  // every delta's touched closure contains each agent one of those
  // inputs changed for (the edited agent; all members of a
  // membership-edited row).
  std::optional<std::vector<AgentId>> dirty;
  if (memo.valid) {
    dirty = session.dirty_since(memo.revision, 0, false);
  }
  const bool splice = memo.valid && dirty.has_value();
  // Invalidate before any in-place mutation: if the splice below is
  // abandoned mid-way (cancellation, a thrown check), the memo must not
  // pass itself off as a coherent solution — the next request then
  // falls back to a full solve instead of serving half-spliced bits.
  memo.valid = false;
  if (splice) {
    memo.x.resize(n, 0.0);  // added agents are always in the dirty set
    for (const AgentId v : *dirty) {
      memo.x[static_cast<std::size_t>(v)] =
          safe_choice_unchecked(instance, v);
    }
    accounting.incremental = true;
    accounting.dirty_agents = dirty->size();
    accounting.resolved_agents = dirty->size();
  } else {
    memo.x = safe_solution_with(session, options);
    accounting.dirty_agents = n;
    accounting.resolved_agents = n;
  }
  memo.revision = session.revision();
  memo.valid = true;
  if (stats != nullptr) {
    *stats = accounting;
  }
  return memo.x;
}

}  // namespace mmlp

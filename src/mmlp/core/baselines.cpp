#include "mmlp/core/baselines.hpp"

#include <algorithm>
#include <limits>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {

std::vector<double> uniform_solution(const Instance& instance) {
  double max_row_sum = 0.0;
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    double row = 0.0;
    for (const Coef& entry : instance.resource_support(i)) {
      row += entry.value;
    }
    max_row_sum = std::max(max_row_sum, row);
  }
  MMLP_CHECK_GT(max_row_sum, 0.0);
  return std::vector<double>(static_cast<std::size_t>(instance.num_agents()),
                             1.0 / max_row_sum);
}

GreedyResult greedy_waterfill(const Instance& instance,
                              const GreedyOptions& options) {
  MMLP_CHECK_GT(instance.num_parties(), 0);
  MMLP_CHECK_GT(options.step_fraction, 0.0);
  MMLP_CHECK_LE(options.step_fraction, 1.0);

  GreedyResult result;
  const auto n = static_cast<std::size_t>(instance.num_agents());
  result.x.assign(n, 0.0);

  std::vector<double> load(static_cast<std::size_t>(instance.num_resources()), 0.0);
  std::vector<double> benefit(static_cast<std::size_t>(instance.num_parties()), 0.0);

  for (; result.steps < options.max_steps; ++result.steps) {
    // Worst party.
    PartyId worst = 0;
    for (PartyId k = 1; k < instance.num_parties(); ++k) {
      if (benefit[static_cast<std::size_t>(k)] <
          benefit[static_cast<std::size_t>(worst)]) {
        worst = k;
      }
    }
    // Best agent for it: maximise c_kv / (congestion cost), where the
    // cost is the inverse headroom min_i (1 − load_i)/a_iv.
    AgentId best_agent = -1;
    double best_score = 0.0;
    double best_headroom = 0.0;
    for (const Coef& entry : instance.party_support(worst)) {
      const AgentId v = entry.id;
      double headroom = std::numeric_limits<double>::infinity();
      for (const Coef& usage : instance.agent_resources(v)) {
        headroom = std::min(headroom,
                            (1.0 - load[static_cast<std::size_t>(usage.id)]) /
                                usage.value);
      }
      if (headroom <= 0.0) {
        continue;  // this agent is walled in
      }
      const double score = entry.value * std::min(headroom, 1.0);
      if (score > best_score) {
        best_score = score;
        best_agent = v;
        best_headroom = headroom;
      }
    }
    if (best_agent < 0) {
      break;  // the worst party cannot be helped any further
    }
    const double delta = best_headroom * options.step_fraction;
    const double gain = instance.benefit(worst, best_agent) * delta;
    if (gain < options.min_gain) {
      break;
    }
    result.x[static_cast<std::size_t>(best_agent)] += delta;
    for (const Coef& usage : instance.agent_resources(best_agent)) {
      load[static_cast<std::size_t>(usage.id)] += usage.value * delta;
    }
    for (const Coef& gain_entry : instance.agent_parties(best_agent)) {
      benefit[static_cast<std::size_t>(gain_entry.id)] +=
          gain_entry.value * delta;
    }
  }

  // Numerical safety: the loads were tracked incrementally; rescale if
  // drift pushed anything over the wall.
  scale_to_feasible(instance, result.x);
  result.omega = objective_omega(instance, result.x);
  return result;
}

std::vector<double> uniform_solution_with(engine::Session& session) {
  return uniform_solution(session.instance());
}

GreedyResult greedy_waterfill_with(engine::Session& session,
                                   const GreedyOptions& options) {
  return greedy_waterfill(session.instance(), options);
}

}  // namespace mmlp

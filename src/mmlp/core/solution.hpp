// Solution vectors and their evaluation against an Instance.
#pragma once

#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

/// Default feasibility tolerance used across the library.
inline constexpr double kFeasTol = 1e-7;

/// Evaluation of a candidate x against eq. (1).
struct Evaluation {
  double omega = 0.0;            ///< min_k Σ_v c_kv x_v (benefit of the worst party)
  double worst_violation = 0.0;  ///< max over resources of (a_i x − 1)+ and over v of (−x_v)+
  PartyId argmin_party = -1;     ///< a party attaining ω (−1 if K is empty)
  ResourceId argmax_resource = -1;  ///< a resource attaining max a_i x

  bool feasible(double tol = kFeasTol) const { return worst_violation <= tol; }
};

/// Benefit of party k under x: Σ_{v∈V_k} c_kv x_v.
double party_benefit(const Instance& instance, const std::vector<double>& x,
                     PartyId k);

/// Load of resource i under x: Σ_{v∈V_i} a_iv x_v.
double resource_load(const Instance& instance, const std::vector<double>& x,
                     ResourceId i);

/// ω(x) = min_k benefit; +infinity when the instance has no parties.
double objective_omega(const Instance& instance, const std::vector<double>& x);

/// Full evaluation (objective + feasibility in one pass).
Evaluation evaluate(const Instance& instance, const std::vector<double>& x);

/// As above; when `party_benefits` is non-null it is filled with the
/// per-party benefits the omega scan computes anyway (one pass, no
/// second benefit sweep for callers that want both).
Evaluation evaluate(const Instance& instance, const std::vector<double>& x,
                    std::vector<double>* party_benefits);

/// Scale x down (if needed) so that every resource constraint holds
/// exactly; returns the scale factor applied (1 when already feasible).
/// Negative entries are clamped to zero first.
double scale_to_feasible(const Instance& instance, std::vector<double>& x);

/// ω*/ω(x) with conventions: 1 if both are zero, +inf if ω(x)=0 < ω*.
double approximation_ratio(double optimal_omega, double achieved_omega);

}  // namespace mmlp

#include "mmlp/core/local_averaging.hpp"

#include <algorithm>

#include "mmlp/core/solution.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

LocalAveragingResult local_averaging(const Instance& instance,
                                     const LocalAveragingOptions& options) {
  MMLP_CHECK_GE(options.R, 1);
  const auto n = static_cast<std::size_t>(instance.num_agents());
  LocalAveragingResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    return result;
  }

  const Hypergraph h =
      instance.communication_graph(options.collaboration_oblivious);
  const auto balls = all_balls(h, options.R);

  // Solve the local LP (9) of every agent, in parallel.
  std::vector<std::vector<double>> view_x(n);
  result.view_omega.assign(n, 0.0);
  parallel_for(n, [&](std::size_t u) {
    const LocalView view = extract_view(
        instance, static_cast<AgentId>(u), options.R, balls[u]);
    ViewLpSolution solution = solve_view_lp(view, options.lp);
    result.view_omega[u] = solution.omega;
    view_x[u] = std::move(solution.x);
  });

  // β_j from the growth sets (Figure 2 machinery).
  const GrowthSets sets = compute_growth_sets(instance, balls);
  result.beta = sets.beta;
  result.ball_size = sets.ball_size;
  result.ratio_bound = sets.ratio_bound();

  // x̃_j = (β_j / |V^j|) Σ_{u∈V^j} x^u_j. Accumulate over views: each
  // view u contributes x^u_j to every member j. u ∈ V^j ⇔ j ∈ V^u
  // (balls are symmetric), so iterating members of V^u covers exactly
  // the sums of eq. (10).
  std::vector<double> accumulated(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    const auto& members = balls[u];
    const auto& x_u = view_x[u];
    MMLP_CHECK_EQ(members.size(), x_u.size());
    for (std::size_t local = 0; local < members.size(); ++local) {
      accumulated[static_cast<std::size_t>(members[local])] += x_u[local];
    }
  }
  double beta_global = 1.0;
  for (const double beta : result.beta) {
    beta_global = std::min(beta_global, beta);
  }
  for (std::size_t j = 0; j < n; ++j) {
    MMLP_CHECK_GT(result.ball_size[j], 0u);
    const double average =
        accumulated[j] / static_cast<double>(result.ball_size[j]);
    switch (options.damping) {
      case AveragingDamping::kBetaPerAgent:
        result.x[j] = result.beta[j] * average;
        break;
      case AveragingDamping::kBetaGlobal:
        result.x[j] = beta_global * average;
        break;
      case AveragingDamping::kNone:
      case AveragingDamping::kNoneThenScale:
        result.x[j] = average;
        break;
    }
  }
  if (options.damping == AveragingDamping::kNoneThenScale) {
    scale_to_feasible(instance, result.x);
  }
  return result;
}

}  // namespace mmlp

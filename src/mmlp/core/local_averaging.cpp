// Theorem 3 / Section 5.1: solve every agent's view LP (9), then damp
// the ball average by β_j (eq. (10)). The per-agent loop is chunked so
// each worker amortises one ViewScratch — view extraction, LP rows and
// the simplex tableau all reuse the same memory across the agents of a
// chunk; the outputs (view_omega, view_x) are per-agent slots, so the
// result is identical to the serial run.
//
// The implementation lives in local_averaging_with: every expensive
// derived structure (communication graph, balls, growth sets, worker
// scratch) is pulled from an engine::Session, and the classic free
// function simply runs against a session that lives for one call.
#include "mmlp/core/local_averaging.hpp"

#include <algorithm>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

LocalAveragingResult local_averaging(const Instance& instance,
                                     const LocalAveragingOptions& options) {
  engine::Session session(instance);
  return local_averaging_with(session, options);
}

LocalAveragingResult local_averaging_with(engine::Session& session,
                                          const LocalAveragingOptions& options) {
  MMLP_CHECK_GE(options.R, 1);
  const Instance& instance = session.instance();
  const auto n = static_cast<std::size_t>(instance.num_agents());
  LocalAveragingResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    return result;
  }

  const std::vector<std::vector<AgentId>>& balls =
      session.balls(options.R, options.collaboration_oblivious);

  // Solve the local LP (9) of every agent, in parallel; chunked so each
  // task leases one scratch workspace from the session pool.
  std::vector<std::vector<double>> view_x(n);
  result.view_omega.assign(n, 0.0);
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        auto scratch = session.view_scratch().acquire();
        LocalView view;
        for (std::size_t u = begin; u < end; ++u) {
          extract_view_into(instance, static_cast<AgentId>(u), options.R,
                            balls[u], view, *scratch);
          ViewLpSolution solution = solve_view_lp(view, options.lp, *scratch);
          result.view_omega[u] = solution.omega;
          view_x[u] = std::move(solution.x);
        }
      },
      session.pool());

  // β_j from the growth sets (Figure 2 machinery).
  const GrowthSets& sets =
      session.growth_sets(options.R, options.collaboration_oblivious);
  result.beta = sets.beta;
  result.ball_size = sets.ball_size;
  result.ratio_bound = sets.ratio_bound();

  // x̃_j = (β_j / |V^j|) Σ_{u∈V^j} x^u_j. Accumulate over views: each
  // view u contributes x^u_j to every member j. u ∈ V^j ⇔ j ∈ V^u
  // (balls are symmetric), so iterating members of V^u covers exactly
  // the sums of eq. (10).
  std::vector<double> accumulated(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    const auto& members = balls[u];
    const auto& x_u = view_x[u];
    MMLP_CHECK_EQ(members.size(), x_u.size());
    for (std::size_t local = 0; local < members.size(); ++local) {
      accumulated[static_cast<std::size_t>(members[local])] += x_u[local];
    }
  }
  double beta_global = 1.0;
  for (const double beta : result.beta) {
    beta_global = std::min(beta_global, beta);
  }
  for (std::size_t j = 0; j < n; ++j) {
    MMLP_CHECK_GT(result.ball_size[j], 0u);
    const double average =
        accumulated[j] / static_cast<double>(result.ball_size[j]);
    switch (options.damping) {
      case AveragingDamping::kBetaPerAgent:
        result.x[j] = result.beta[j] * average;
        break;
      case AveragingDamping::kBetaGlobal:
        result.x[j] = beta_global * average;
        break;
      case AveragingDamping::kNone:
      case AveragingDamping::kNoneThenScale:
        result.x[j] = average;
        break;
    }
  }
  if (options.damping == AveragingDamping::kNoneThenScale) {
    scale_to_feasible(instance, result.x);
  }
  return result;
}

}  // namespace mmlp

// Theorem 3 / Section 5.1: solve every agent's view LP (9), then damp
// the ball average by β_j (eq. (10)). The per-agent loop is chunked so
// each worker amortises one ViewScratch — view extraction, LP rows and
// the simplex tableau all reuse the same memory across the agents of a
// chunk; the outputs (view_omega, view_x) are per-agent slots, so the
// result is identical to the serial run.
//
// With options.deduplicate the LP loop runs over view-class
// representatives instead of agents (view_class.hpp): the view LP is a
// pure function of the view's local structure, so agents in the same
// class provably solve the same LP, and the representative's solution
// is reused for every member (copied verbatim for exact-structure
// orbits, permuted through the canonical labeling in kCanonical mode).
//
// The eq. (10) accumulation is a parallel *gather*: agent j sums
// x^u_j over u ∈ V^j in ascending u, which is exactly the addition
// order of the former serial scatter loop (u ∈ V^j ⇔ j ∈ V^u, and the
// scatter visited u ascending) — so the parallel result is bitwise
// identical to the serial one for any thread count. A scatter with
// per-worker partial buffers could not offer that: merging per-chunk
// partial sums regroups the additions, which changes the rounding.
//
// The implementation lives in local_averaging_with: every expensive
// derived structure (communication graph, balls, growth sets, view
// classes, worker scratch) is pulled from an engine::Session, and the
// classic free function simply runs against a session that lives for
// one call.
#include "mmlp/core/local_averaging.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

LocalAveragingResult local_averaging_impl(
    engine::Session& session, const LocalAveragingOptions& options,
    std::vector<std::vector<double>>* keep_view_x);

}  // namespace

LocalAveragingResult local_averaging(const Instance& instance,
                                     const LocalAveragingOptions& options) {
  engine::Session session(instance);
  return local_averaging_with(session, options);
}

LocalAveragingResult local_averaging_with(engine::Session& session,
                                          const LocalAveragingOptions& options) {
  return local_averaging_impl(session, options, nullptr);
}

namespace {

/// The full algorithm; `keep_view_x` (optional) receives every agent's
/// view-LP solution so an incremental memo can splice later edits.
LocalAveragingResult local_averaging_impl(
    engine::Session& session, const LocalAveragingOptions& options,
    std::vector<std::vector<double>>* keep_view_x) {
  MMLP_CHECK_GE(options.R, 1);
  const Instance& instance = session.instance();
  const auto n = static_cast<std::size_t>(instance.num_agents());
  LocalAveragingResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    return result;
  }

  const std::vector<std::vector<AgentId>>& balls =
      session.balls(options.R, options.collaboration_oblivious);

  // Solve the local LP (9) — once per agent, or once per view class
  // when deduplicating. Parallel loops are chunked so each task leases
  // one scratch workspace from the session pool.
  std::vector<std::vector<double>> view_x(n);
  result.view_omega.assign(n, 0.0);
  const auto solve_all_agents = [&] {
    obs::ObsSpan stage("averaging.view_lps", "solver");
    chunked_parallel_for(
        n,
        [&](std::size_t begin, std::size_t end) {
          obs::ObsSpan chunk("averaging.view_lp.chunk", "solver");
          auto scratch = session.view_scratch().acquire();
          LocalView view;
          for (std::size_t u = begin; u < end; ++u) {
            // One view LP per iteration: poll the cancel token here so
            // deadlines fire promptly even on a single-thread pool.
            cancel::checkpoint();
            extract_view_into(instance, static_cast<AgentId>(u), options.R,
                              balls[u], view, *scratch);
            ViewLpSolution solution = solve_view_lp(view, options.lp, *scratch);
            result.view_omega[u] = solution.omega;
            view_x[u] = std::move(solution.x);
          }
        },
        session.pool());
  };
  if (!options.deduplicate) {
    result.lp_solves = n;
    solve_all_agents();
  } else {
    const ViewClassIndex& classes =
        session.view_classes(options.R, options.collaboration_oblivious);
    const bool canonical = options.dedup_scatter == DedupScatter::kCanonical;
    const std::vector<AgentId>& reps =
        canonical ? classes.class_rep : classes.orbit_rep;
    result.lp_solves = reps.size();
    result.view_classes = classes.num_classes();
    result.dedup_ratio = classes.dedup_ratio(options.dedup_scatter);
    if (reps.size() == n) {
      // Every group is a singleton (no symmetry to exploit — typical on
      // random instances): representatives ARE the agents in ascending
      // order, so the plain per-agent loop produces bitwise the same
      // result while skipping the rep_x staging and the scatter pass.
      // This is the early-bail that keeps dedup from ever being a loss
      // (ROADMAP item 3; bench case dedup_warm_nosym proves parity).
      solve_all_agents();
    } else {
      // One representative LP per group, solved exactly as the per-agent
      // path would solve it (same extraction, same scratch, same simplex).
      std::vector<std::vector<double>> rep_x(reps.size());
      std::vector<double> rep_omega(reps.size(), 0.0);
      {
        obs::ObsSpan stage("averaging.rep_lps", "solver");
        chunked_parallel_for(
            reps.size(),
            [&](std::size_t begin, std::size_t end) {
              obs::ObsSpan chunk("averaging.rep_lp.chunk", "solver");
              auto scratch = session.view_scratch().acquire();
              LocalView view;
              for (std::size_t g = begin; g < end; ++g) {
                cancel::checkpoint();
                const auto u = static_cast<std::size_t>(reps[g]);
                extract_view_into(instance, reps[g], options.R, balls[u], view,
                                  *scratch);
                ViewLpSolution solution =
                    solve_view_lp(view, options.lp, *scratch);
                rep_omega[g] = solution.omega;
                rep_x[g] = std::move(solution.x);
              }
            },
            session.pool());
      }

      // Scatter each representative solution to its members. Members of
      // the representative's own orbit share its exact local structure,
      // so a verbatim copy is the bitwise per-agent result; the remaining
      // members (kCanonical only) receive the solution permuted through
      // local -> canonical -> local, which is exactly optimal for their
      // relabeled — identical — LP.
      const std::vector<std::int32_t>& group_sizes =
          canonical ? classes.class_size : classes.orbit_size;
      obs::ObsSpan stage("averaging.scatter", "solver");
      chunked_parallel_for(
          n,
          [&](std::size_t begin, std::size_t end) {
            obs::ObsSpan chunk("averaging.scatter.chunk", "solver");
            for (std::size_t u = begin; u < end; ++u) {
              const std::int32_t g = canonical
                                         ? classes.class_of[u]
                                         : classes.orbit_of[u];
              const AgentId rep = reps[static_cast<std::size_t>(g)];
              result.view_omega[u] = rep_omega[static_cast<std::size_t>(g)];
              std::vector<double>& source = rep_x[static_cast<std::size_t>(g)];
              if (group_sizes[static_cast<std::size_t>(g)] == 1) {
                // Singleton group: u is its only member (and its rep), so
                // the solution can move — no-symmetry instances then pay
                // no copy overhead over the per-agent path.
                view_x[u] = std::move(source);
                continue;
              }
              if (!canonical ||
                  classes.orbit_of[u] ==
                      classes.orbit_of[static_cast<std::size_t>(rep)]) {
                view_x[u] = source;
                continue;
              }
              const std::span<const std::int32_t> perm_u =
                  classes.perm(static_cast<AgentId>(u));
              const std::span<const std::int32_t> perm_rep = classes.perm(rep);
              MMLP_CHECK_EQ(perm_u.size(), source.size());
              std::vector<double>& target = view_x[u];
              target.resize(source.size());
              for (std::size_t c = 0; c < perm_u.size(); ++c) {
                target[static_cast<std::size_t>(perm_u[c])] =
                    source[static_cast<std::size_t>(perm_rep[c])];
              }
            }
          },
          session.pool());
    }
  }

  // β_j from the growth sets (Figure 2 machinery).
  const GrowthSets& sets =
      session.growth_sets(options.R, options.collaboration_oblivious);
  result.beta = sets.beta;
  result.ball_size = sets.ball_size;
  result.ratio_bound = sets.ratio_bound();

  // x̃_j = (β_j / |V^j|) Σ_{u∈V^j} x^u_j, gathered in parallel: agent j
  // owns its own sum and reads x^u_j for u ∈ V^j (u ∈ V^j ⇔ j ∈ V^u —
  // balls are symmetric — so j's local index inside V^u exists and is
  // found by binary search in the sorted ball). Adding in ascending u is
  // the exact addition order of the former serial scatter loop, so the
  // result is bitwise identical to it regardless of the thread count.
  std::vector<double> accumulated(n, 0.0);
  obs::ObsSpan gather_stage("averaging.gather", "solver");
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        obs::ObsSpan chunk("averaging.gather.chunk", "solver");
        for (std::size_t j = begin; j < end; ++j) {
          // The shape check rides inside the chunk (it used to be a
          // serial O(n) pre-scan ahead of the parallel region).
          MMLP_CHECK_EQ(balls[j].size(), view_x[j].size());
          const AgentId self = static_cast<AgentId>(j);
          double sum = 0.0;
          for (const AgentId u : balls[j]) {
            const auto& ball_u = balls[static_cast<std::size_t>(u)];
            const auto it =
                std::lower_bound(ball_u.begin(), ball_u.end(), self);
            MMLP_CHECK(it != ball_u.end() && *it == self);
            sum += view_x[static_cast<std::size_t>(u)]
                         [static_cast<std::size_t>(it - ball_u.begin())];
          }
          accumulated[j] = sum;
        }
      },
      session.pool());
  // β_min is a serial O(n) fold (cheap, and the min must be global);
  // the damping tail itself writes per-agent slots only, so it runs as
  // one more parallel pass instead of the former serial loop.
  double beta_global = 1.0;
  for (const double beta : result.beta) {
    beta_global = std::min(beta_global, beta);
  }
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          MMLP_CHECK_GT(result.ball_size[j], 0u);
          const double average =
              accumulated[j] / static_cast<double>(result.ball_size[j]);
          switch (options.damping) {
            case AveragingDamping::kBetaPerAgent:
              result.x[j] = result.beta[j] * average;
              break;
            case AveragingDamping::kBetaGlobal:
              result.x[j] = beta_global * average;
              break;
            case AveragingDamping::kNone:
            case AveragingDamping::kNoneThenScale:
              result.x[j] = average;
              break;
          }
        }
      },
      session.pool());
  if (options.damping == AveragingDamping::kNoneThenScale) {
    scale_to_feasible(instance, result.x);
  }
  if (keep_view_x != nullptr) {
    *keep_view_x = std::move(view_x);
  }
  return result;
}

/// Everything the memoized state depends on. deduplicate is excluded on
/// purpose: the exact scatter is bitwise equal to dedup-off, so their
/// memos are interchangeable (kCanonical never reaches the memo).
std::string averaging_fingerprint(const LocalAveragingOptions& options) {
  std::ostringstream key;
  key << "averaging|R=" << options.R
      << "|oblivious=" << options.collaboration_oblivious
      << "|damping=" << static_cast<int>(options.damping)
      << "|lp=" << fingerprint(options.lp);
  return key.str();
}

}  // namespace

LocalAveragingResult local_averaging_incremental(
    engine::Session& session, const LocalAveragingOptions& options,
    IncrementalStats* stats) {
  MMLP_CHECK_GE(options.R, 1);
  const Instance& instance = session.instance();
  const auto n = static_cast<std::size_t>(instance.num_agents());
  IncrementalStats accounting;
  accounting.dirty_agents = n;
  accounting.resolved_agents = n;

  // Splicing needs per-agent locality. kBetaGlobal couples every output
  // to the global β minimum and kNoneThenScale rescales through a global
  // feasibility factor — one edit can move every coordinate, so those
  // run the full algorithm. The kCanonical scatter is only equal up to
  // degenerate-optimum freedom, so re-solving a dirty member per-agent
  // would not splice bitwise; it is excluded the same way.
  const bool spliceable =
      (options.damping == AveragingDamping::kBetaPerAgent ||
       options.damping == AveragingDamping::kNone) &&
      !(options.deduplicate &&
        options.dedup_scatter == DedupScatter::kCanonical);
  if (!spliceable) {
    LocalAveragingResult result = local_averaging_impl(session, options, nullptr);
    if (stats != nullptr) {
      *stats = accounting;
    }
    return result;
  }

  engine::AveragingMemo& memo =
      session.averaging_memo(averaging_fingerprint(options));
  std::optional<std::vector<AgentId>> dirty_view;
  std::optional<std::vector<AgentId>> dirty_gather;
  if (memo.valid) {
    dirty_view = session.dirty_since(memo.revision, options.R,
                                     options.collaboration_oblivious);
    if (dirty_view.has_value()) {
      dirty_gather = session.dirty_since(memo.revision, 2 * options.R,
                                         options.collaboration_oblivious);
    }
  }
  if (!memo.valid || !dirty_view.has_value()) {
    memo.result = local_averaging_impl(session, options, &memo.view_x);
    memo.revision = session.revision();
    memo.valid = true;
    if (stats != nullptr) {
      *stats = accounting;
    }
    return memo.result;
  }

  // Invalidate before any in-place mutation: an abandoned splice
  // (cancellation, deadline, a thrown check) must leave the memo marked
  // stale so the next request falls back to a full solve instead of
  // serving half-spliced state.
  memo.valid = false;
  const std::vector<std::vector<AgentId>>& balls =
      session.balls(options.R, options.collaboration_oblivious);
  const GrowthSets& sets =
      session.growth_sets(options.R, options.collaboration_oblivious);
  // Added agents are always inside the dirty region, so growing the
  // memoized vectors leaves no stale slot unrepaired.
  memo.view_x.resize(n);
  memo.result.view_omega.resize(n, 0.0);
  memo.result.x.resize(n, 0.0);

  // 1. Re-solve the view LPs of B(T, R) — same extraction, scratch and
  //    simplex as the full loop, so a re-solved unchanged view
  //    reproduces its previous bits exactly.
  const std::vector<AgentId>& resolve = *dirty_view;
  obs::ObsSpan incremental_span("averaging.incremental", "solver");
  chunked_parallel_for(
      resolve.size(),
      [&](std::size_t begin, std::size_t end) {
        obs::ObsSpan chunk("averaging.incremental.view_lp.chunk", "solver");
        auto scratch = session.view_scratch().acquire();
        LocalView view;
        for (std::size_t idx = begin; idx < end; ++idx) {
          cancel::checkpoint();
          const AgentId u = resolve[idx];
          const auto uu = static_cast<std::size_t>(u);
          extract_view_into(instance, u, options.R, balls[uu], view, *scratch);
          ViewLpSolution solution = solve_view_lp(view, options.lp, *scratch);
          memo.result.view_omega[uu] = solution.omega;
          memo.view_x[uu] = std::move(solution.x);
        }
      },
      session.pool());

  // 2. The growth-derived fields were repaired in place by apply();
  //    mirror them into the memoized result.
  memo.result.beta = sets.beta;
  memo.result.ball_size = sets.ball_size;
  memo.result.ratio_bound = sets.ratio_bound();

  // 3. Re-gather eq. (10) over B(T, 2R): the same ascending-u addition
  //    order as the full gather, over the spliced view solutions.
  const std::vector<AgentId>& regather = *dirty_gather;
  chunked_parallel_for(
      regather.size(),
      [&](std::size_t begin, std::size_t end) {
        obs::ObsSpan chunk("averaging.incremental.gather.chunk", "solver");
        for (std::size_t idx = begin; idx < end; ++idx) {
          const AgentId j = regather[idx];
          const auto jj = static_cast<std::size_t>(j);
          double sum = 0.0;
          for (const AgentId u : balls[jj]) {
            const auto& ball_u = balls[static_cast<std::size_t>(u)];
            const auto it = std::lower_bound(ball_u.begin(), ball_u.end(), j);
            MMLP_CHECK(it != ball_u.end() && *it == j);
            sum += memo.view_x[static_cast<std::size_t>(u)]
                              [static_cast<std::size_t>(it - ball_u.begin())];
          }
          MMLP_CHECK_GT(memo.result.ball_size[jj], 0u);
          const double average =
              sum / static_cast<double>(memo.result.ball_size[jj]);
          memo.result.x[jj] = options.damping == AveragingDamping::kBetaPerAgent
                                  ? memo.result.beta[jj] * average
                                  : average;
        }
      },
      session.pool());

  memo.result.lp_solves = resolve.size();
  memo.result.view_classes = 0;
  memo.result.dedup_ratio = 0.0;
  memo.revision = session.revision();
  memo.valid = true;
  accounting.incremental = true;
  accounting.dirty_agents = resolve.size();
  accounting.resolved_agents = regather.size();
  if (stats != nullptr) {
    *stats = accounting;
  }
  return memo.result;
}

}  // namespace mmlp

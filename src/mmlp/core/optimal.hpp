// Global optimum ω* of (1): solver facade.
//
// Experiments need the global optimum as the denominator of every
// approximation ratio. Small and medium instances are solved exactly via
// the LP formulation (Section 1.3) and the dense simplex; large instances
// fall back to the MWU scheme with a reported (validated) objective.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/lp/mwu.hpp"
#include "mmlp/lp/simplex.hpp"

namespace mmlp {

namespace engine {
class Session;  // engine/session.hpp
}

enum class OptimalMethod : std::uint8_t { kAuto, kSimplex, kMwu };

struct OptimalOptions {
  OptimalMethod method = OptimalMethod::kAuto;
  /// kAuto uses the simplex up to this many agents (tableau cost grows as
  /// roughly (|I|+|K|)^2 · |V| per pivot).
  AgentId simplex_agent_limit = 800;
  SimplexOptions simplex;
  MwuOptions mwu;
};

struct OptimalResult {
  double omega = 0.0;
  std::vector<double> x;
  OptimalMethod method_used = OptimalMethod::kSimplex;
  bool exact = false;  ///< true when the simplex proved optimality
};

/// Compute (or tightly lower-bound, for MWU) the optimum of (1).
OptimalResult solve_optimal(const Instance& instance,
                            const OptimalOptions& options = {});

/// Session-API variant (identical output; the global LP derives no
/// session-cacheable state).
OptimalResult solve_optimal_with(engine::Session& session,
                                 const OptimalOptions& options = {});

}  // namespace mmlp

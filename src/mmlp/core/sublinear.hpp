// Sublinear-time estimation from local algorithms (Section 1.1).
//
// The paper observes (citing Parnas–Ron) that a local approximation
// algorithm yields a sublinear-time estimator of the solution value,
// tolerating an additive error and a failure probability. Concretely:
// the output x_v of the safe or averaging algorithm for one agent is
// computable from a constant-radius ball, so the benefit of one sampled
// party costs O(ball volume) work — independent of n. Sampling parties
// uniformly estimates the *mean* party benefit with a Hoeffding
// confidence interval (the minimum ω is not estimable from samples; the
// additive-error regime of the reduction is about aggregate values).
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"

namespace mmlp {

enum class LocalAlgorithmKind : std::uint8_t { kSafe, kAveraging };

struct SublinearOptions {
  LocalAlgorithmKind algorithm = LocalAlgorithmKind::kSafe;
  std::int32_t samples = 64;
  std::int32_t R = 1;            ///< averaging radius (kAveraging only)
  double confidence = 0.95;      ///< two-sided Hoeffding level
  std::uint64_t seed = 1;
};

struct SublinearEstimate {
  double mean_benefit = 0.0;   ///< estimate of (1/|K|) Σ_k benefit_k
  double half_width = 0.0;     ///< Hoeffding half-width at the confidence level
  double value_bound = 0.0;    ///< a-priori per-party benefit bound used by Hoeffding
  std::int64_t agents_evaluated = 0;  ///< total x_v computations (work ∝ samples, not n)
  std::int32_t samples = 0;
};

/// Compute the local algorithm's output for a single agent, touching only
/// the agent's horizon ball. Bitwise equal to the corresponding
/// coordinate of the full run (same formulas, same deterministic solver).
double local_output_safe(const Instance& instance, AgentId v);
double local_output_averaging(const Instance& instance, const Hypergraph& h,
                              AgentId v, const LocalAveragingOptions& options);

/// Estimate the mean party benefit of the chosen algorithm's solution by
/// sampling parties with replacement.
SublinearEstimate estimate_mean_party_benefit(const Instance& instance,
                                              const SublinearOptions& options);

/// Warm-session variant: the communication hypergraph the per-agent
/// averaging outputs walk comes from the session cache instead of being
/// rebuilt per estimate. Identical output for identical options.
SublinearEstimate estimate_mean_party_benefit_with(
    engine::Session& session, const SublinearOptions& options);

}  // namespace mmlp

#include "mmlp/graph/regular_bipartite.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

// Find some cycle strictly shorter than `bound` and return its vertices in
// order, or an empty vector. Depth-limited BFS from every vertex: a cycle
// of length L < bound is detected from any of its vertices with depth
// <= bound/2. Paths to the closing edge may share a prefix; taking the
// walk up to the lowest common ancestor yields a genuine (possibly even
// shorter) cycle, which is fine for repair purposes.
std::vector<std::int32_t> find_cycle_shorter_than(const SimpleGraph& g,
                                                  std::int32_t bound) {
  const std::int32_t depth_cap = bound / 2;
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()));
  std::vector<std::int32_t> parent(static_cast<std::size_t>(g.num_vertices()));
  for (std::int32_t source = 0; source < g.num_vertices(); ++source) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(parent.begin(), parent.end(), -1);
    std::queue<std::int32_t> frontier;
    dist[static_cast<std::size_t>(source)] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
      const std::int32_t v = frontier.front();
      frontier.pop();
      if (dist[static_cast<std::size_t>(v)] >= depth_cap) {
        continue;
      }
      for (const std::int32_t u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] == -1) {
          dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
          parent[static_cast<std::size_t>(u)] = v;
          frontier.push(u);
        } else if (u != parent[static_cast<std::size_t>(v)]) {
          const std::int32_t len = dist[static_cast<std::size_t>(v)] +
                                   dist[static_cast<std::size_t>(u)] + 1;
          if (len >= bound) {
            continue;
          }
          // Reconstruct the closed walk v..source..u + edge (u, v), then
          // cut at the lowest common ancestor.
          std::vector<std::int32_t> path_v{v};
          for (std::int32_t x = v; parent[static_cast<std::size_t>(x)] != -1;) {
            x = parent[static_cast<std::size_t>(x)];
            path_v.push_back(x);
          }
          std::vector<std::int32_t> path_u{u};
          for (std::int32_t x = u; parent[static_cast<std::size_t>(x)] != -1;) {
            x = parent[static_cast<std::size_t>(x)];
            path_u.push_back(x);
          }
          // Strip the common suffix (both paths end at `source`).
          while (path_v.size() > 1 && path_u.size() > 1 &&
                 path_v[path_v.size() - 2] == path_u[path_u.size() - 2]) {
            path_v.pop_back();
            path_u.pop_back();
          }
          std::vector<std::int32_t> cycle = path_v;  // v .. lca
          for (std::size_t idx = path_u.size() - 1; idx-- > 0;) {
            cycle.push_back(path_u[idx]);  // lca-child .. u
          }
          return cycle;
        }
      }
    }
  }
  return {};
}

}  // namespace

std::optional<RegularBipartiteResult> random_regular_bipartite(
    const RegularBipartiteConfig& config, Rng& rng) {
  const std::int32_t n = config.nodes_per_side;
  const std::int32_t deg = config.degree;
  MMLP_CHECK_GT(n, 0);
  MMLP_CHECK_GT(deg, 0);
  MMLP_CHECK_LE(deg, n);
  MMLP_CHECK_GE(config.min_girth, 4);
  MMLP_CHECK_EQ(config.min_girth % 2, 0);  // bipartite graphs have even cycles

  for (std::int32_t attempt = 1; attempt <= config.max_attempts; ++attempt) {
    // matchings[m][u] = right partner (0-based within the right side).
    std::vector<std::vector<std::int32_t>> matchings;
    matchings.reserve(static_cast<std::size_t>(deg));
    for (std::int32_t m = 0; m < deg; ++m) {
      matchings.push_back(rng.permutation(n));
    }

    SimpleGraph graph(2 * n);
    // Insert matchings one by one. Duplicate pairs across matchings are
    // resolved *before* insertion by random 2-opt swaps inside the new
    // matching until it is conflict-free against everything inserted so
    // far (a swap can introduce a new conflict, but with deg << n the
    // expected conflict count is tiny and the loop converges fast).
    bool attempt_failed = false;
    for (std::int32_t m = 0; m < deg && !attempt_failed; ++m) {
      auto& row = matchings[static_cast<std::size_t>(m)];
      bool clean = false;
      for (std::int32_t trial = 0; trial < 256 && !clean; ++trial) {
        clean = true;
        for (std::int32_t u = 0; u < n; ++u) {
          if (graph.has_edge(u, n + row[static_cast<std::size_t>(u)])) {
            clean = false;
            const auto other = static_cast<std::int32_t>(
                rng.next_below(static_cast<std::uint64_t>(n)));
            std::swap(row[static_cast<std::size_t>(u)],
                      row[static_cast<std::size_t>(other)]);
          }
        }
      }
      if (!clean) {
        attempt_failed = true;
        break;
      }
      for (std::int32_t u = 0; u < n; ++u) {
        graph.add_edge(u, n + row[static_cast<std::size_t>(u)]);
      }
    }
    if (attempt_failed) {
      continue;
    }

    // Short-cycle repair: 2-opt swaps along shortest offending cycles.
    std::int64_t steps = 0;
    while (steps < config.max_repair_steps) {
      const auto cycle = find_cycle_shorter_than(graph, config.min_girth);
      if (cycle.empty()) {
        RegularBipartiteResult result{std::move(graph), attempt, steps};
        MMLP_CHECK(check_regular_bipartite(result.graph, n, deg,
                                           config.min_girth));
        return result;
      }
      ++steps;
      // Pick a random edge (a, b) on the cycle with `a` on the left side.
      const auto pick = static_cast<std::size_t>(
          rng.next_below(cycle.size()));
      std::int32_t a = cycle[pick];
      std::int32_t b = cycle[(pick + 1) % cycle.size()];
      if (a >= n) {
        std::swap(a, b);
      }
      MMLP_CHECK(a < n && b >= n);
      // Locate the matching that owns (a, b).
      std::int32_t owner = -1;
      for (std::int32_t m = 0; m < deg; ++m) {
        if (matchings[static_cast<std::size_t>(m)][static_cast<std::size_t>(a)] ==
            b - n) {
          owner = m;
          break;
        }
      }
      MMLP_CHECK_GE(owner, 0);
      // Try a few random swap partners; skip ones that would duplicate.
      bool swapped = false;
      for (int tries = 0; tries < 16 && !swapped; ++tries) {
        const auto u = static_cast<std::int32_t>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        if (u == a) {
          continue;
        }
        auto& row = matchings[static_cast<std::size_t>(owner)];
        const std::int32_t c = row[static_cast<std::size_t>(u)];  // u's partner
        // New edges would be (a, n+c) and (u, n+(b-n)).
        if (graph.has_edge(a, n + c) || graph.has_edge(u, b)) {
          continue;
        }
        graph.remove_edge(a, b);
        graph.remove_edge(u, n + c);
        graph.add_edge(a, n + c);
        graph.add_edge(u, b);
        row[static_cast<std::size_t>(a)] = c;
        row[static_cast<std::size_t>(u)] = b - n;
        swapped = true;
      }
      if (!swapped) {
        break;  // stuck; restart the attempt
      }
    }
  }
  return std::nullopt;
}

bool is_prime(std::int32_t value) {
  if (value < 2) {
    return false;
  }
  for (std::int32_t factor = 2;
       static_cast<std::int64_t>(factor) * factor <= value; ++factor) {
    if (value % factor == 0) {
      return false;
    }
  }
  return true;
}

SimpleGraph projective_plane_incidence(std::int32_t q) {
  MMLP_CHECK(is_prime(q));
  // Canonical homogeneous coordinates over GF(q): [1, a, b], [0, 1, a],
  // [0, 0, 1] — q² + q + 1 points; lines use the same enumeration (the
  // plane is self-dual) and incidence is a zero dot product mod q.
  std::vector<std::array<std::int32_t, 3>> coords;
  coords.reserve(static_cast<std::size_t>(q) * q + q + 1);
  for (std::int32_t a = 0; a < q; ++a) {
    for (std::int32_t b = 0; b < q; ++b) {
      coords.push_back({1, a, b});
    }
  }
  for (std::int32_t a = 0; a < q; ++a) {
    coords.push_back({0, 1, a});
  }
  coords.push_back({0, 0, 1});
  const auto n = static_cast<std::int32_t>(coords.size());
  MMLP_CHECK_EQ(n, q * q + q + 1);

  SimpleGraph graph(2 * n);
  for (std::int32_t point = 0; point < n; ++point) {
    for (std::int32_t line = 0; line < n; ++line) {
      const std::int64_t dot =
          static_cast<std::int64_t>(coords[static_cast<std::size_t>(point)][0]) *
              coords[static_cast<std::size_t>(line)][0] +
          static_cast<std::int64_t>(coords[static_cast<std::size_t>(point)][1]) *
              coords[static_cast<std::size_t>(line)][1] +
          static_cast<std::int64_t>(coords[static_cast<std::size_t>(point)][2]) *
              coords[static_cast<std::size_t>(line)][2];
      if (dot % q == 0) {
        graph.add_edge(point, n + line);
      }
    }
  }
  MMLP_CHECK(check_regular_bipartite(graph, n, q + 1, 6));
  return graph;
}

std::optional<RegularBipartiteResult> high_girth_bipartite(
    std::int32_t degree, std::int32_t min_girth,
    std::int32_t fallback_nodes_per_side, Rng& rng) {
  MMLP_CHECK_GE(degree, 1);
  if (min_girth <= 6 && degree >= 3 && is_prime(degree - 1)) {
    RegularBipartiteResult result;
    result.graph = projective_plane_incidence(degree - 1);
    return result;
  }
  RegularBipartiteConfig config;
  config.degree = degree;
  config.min_girth = min_girth;
  if (fallback_nodes_per_side > 0) {
    config.nodes_per_side = fallback_nodes_per_side;
  } else {
    // Repair needs the per-swap cycle-creation rate Δ^(g/2−1)/n^(g/2−2)
    // to stay below 1; for girth 6 that is n >> Δ³ (capped for sanity).
    const std::int64_t wanted =
        4 * static_cast<std::int64_t>(degree) * degree * degree;
    config.nodes_per_side = static_cast<std::int32_t>(
        std::clamp<std::int64_t>(wanted, 64, 20000));
  }
  config.nodes_per_side = std::max(config.nodes_per_side, degree);
  return random_regular_bipartite(config, rng);
}

bool check_regular_bipartite(const SimpleGraph& g, std::int32_t nodes_per_side,
                             std::int32_t degree, std::int32_t min_girth) {
  if (g.num_vertices() != 2 * nodes_per_side) {
    return false;
  }
  if (!g.is_regular(static_cast<std::size_t>(degree))) {
    return false;
  }
  // Sides must not mix: every edge goes left (< n) to right (>= n).
  for (std::int32_t v = 0; v < nodes_per_side; ++v) {
    for (const std::int32_t u : g.neighbors(v)) {
      if (u < nodes_per_side) {
        return false;
      }
    }
  }
  const auto girth = g.girth();
  return !girth.has_value() || *girth >= min_girth;
}

}  // namespace mmlp

// Simple undirected graph, used for the template graph Q of Section 4.2.
//
// Q must be a Δ-regular bipartite graph with no cycle shorter than
// 4r + 2; this class provides the structural predicates the lower-bound
// construction relies on (regularity, bipartiteness, girth, local
// acyclicity).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace mmlp {

class SimpleGraph {
 public:
  explicit SimpleGraph(std::int32_t num_vertices = 0);

  std::int32_t num_vertices() const { return static_cast<std::int32_t>(adj_.size()); }
  std::int64_t num_undirected_edges() const { return num_edges_; }

  /// Add edge {u, v}; parallel edges and self-loops are rejected.
  void add_edge(std::int32_t u, std::int32_t v);

  /// Remove edge {u, v}; the edge must exist.
  void remove_edge(std::int32_t u, std::int32_t v);

  bool has_edge(std::int32_t u, std::int32_t v) const;

  const std::vector<std::int32_t>& neighbors(std::int32_t v) const;
  std::size_t degree(std::int32_t v) const { return neighbors(v).size(); }

  /// Every vertex has degree exactly d.
  bool is_regular(std::size_t d) const;

  /// Two-colourability; returns the colouring if bipartite.
  std::optional<std::vector<std::int8_t>> bipartition() const;

  /// Length of the shortest cycle; nullopt if the graph is a forest.
  /// O(V * E) BFS-based computation (exact for girth in simple graphs).
  std::optional<std::int32_t> girth() const;

  /// BFS cycle-length candidate from vertex v (nullopt if the component of
  /// v is a tree). An upper bound on the shortest cycle through v; the
  /// minimum over all v equals the girth.
  std::optional<std::int32_t> shortest_cycle_through(std::int32_t v) const;

  /// True if the subgraph induced by B(v, radius) contains no cycle.
  bool ball_is_acyclic(std::int32_t v, std::int32_t radius) const;

  /// Vertices within BFS distance `radius` of v (sorted).
  std::vector<std::int32_t> ball(std::int32_t v, std::int32_t radius) const;

  /// Distances from source (-1 unreachable), optionally radius-capped.
  std::vector<std::int32_t> bfs(std::int32_t v, std::int32_t max_radius = -1) const;

 private:
  void check_vertex(std::int32_t v) const;

  std::vector<std::vector<std::int32_t>> adj_;
  std::int64_t num_edges_ = 0;
};

}  // namespace mmlp

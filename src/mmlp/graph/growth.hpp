// Relative neighbourhood growth (Section 5).
//
//   γ(r) = max_{v∈V} |B_H(v, r+1)| / |B_H(v, r)|
//
// Theorem 3 bounds the local-averaging approximation ratio by
// γ(R−1)·γ(R); these helpers compute γ and related profiles so that
// experiments can report both the a-priori bound and the measured ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/graph/hypergraph.hpp"

namespace mmlp {

/// |B(v, r)| for r = 0..max_radius, for one node.
std::vector<std::size_t> ball_size_profile(const Hypergraph& h, NodeId v,
                                           std::int32_t max_radius);

/// γ(r) for a single r (maximised over all nodes). Computed in parallel
/// over nodes.
double growth_gamma(const Hypergraph& h, std::int32_t r);

/// γ(0..max_radius) in one pass (one BFS per node, shared across radii).
std::vector<double> growth_profile(const Hypergraph& h, std::int32_t max_radius);

/// The Theorem 3 a-priori ratio bound γ(R−1)·γ(R) for horizon parameter R ≥ 1.
double theorem3_bound(const Hypergraph& h, std::int32_t R);

}  // namespace mmlp

#include "mmlp/graph/simple_graph.hpp"

#include <algorithm>
#include <queue>

#include "mmlp/util/check.hpp"

namespace mmlp {

SimpleGraph::SimpleGraph(std::int32_t num_vertices)
    : adj_(static_cast<std::size_t>(num_vertices)) {
  MMLP_CHECK_GE(num_vertices, 0);
}

void SimpleGraph::check_vertex(std::int32_t v) const {
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_LT(v, num_vertices());
}

void SimpleGraph::add_edge(std::int32_t u, std::int32_t v) {
  check_vertex(u);
  check_vertex(v);
  MMLP_CHECK_MSG(u != v, "self-loop rejected");
  MMLP_CHECK_MSG(!has_edge(u, v), "parallel edge rejected: " << u << "-" << v);
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
}

void SimpleGraph::remove_edge(std::int32_t u, std::int32_t v) {
  check_vertex(u);
  check_vertex(v);
  auto erase_one = [](std::vector<std::int32_t>& list, std::int32_t target) {
    const auto it = std::find(list.begin(), list.end(), target);
    MMLP_CHECK_MSG(it != list.end(), "edge to remove does not exist");
    list.erase(it);
  };
  erase_one(adj_[static_cast<std::size_t>(u)], v);
  erase_one(adj_[static_cast<std::size_t>(v)], u);
  --num_edges_;
}

bool SimpleGraph::has_edge(std::int32_t u, std::int32_t v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& list = adj_[static_cast<std::size_t>(u)];
  return std::find(list.begin(), list.end(), v) != list.end();
}

const std::vector<std::int32_t>& SimpleGraph::neighbors(std::int32_t v) const {
  check_vertex(v);
  return adj_[static_cast<std::size_t>(v)];
}

bool SimpleGraph::is_regular(std::size_t d) const {
  for (const auto& list : adj_) {
    if (list.size() != d) {
      return false;
    }
  }
  return true;
}

std::optional<std::vector<std::int8_t>> SimpleGraph::bipartition() const {
  std::vector<std::int8_t> color(adj_.size(), -1);
  std::queue<std::int32_t> frontier;
  for (std::int32_t start = 0; start < num_vertices(); ++start) {
    if (color[static_cast<std::size_t>(start)] != -1) {
      continue;
    }
    color[static_cast<std::size_t>(start)] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::int32_t v = frontier.front();
      frontier.pop();
      for (const std::int32_t u : adj_[static_cast<std::size_t>(v)]) {
        auto& cu = color[static_cast<std::size_t>(u)];
        if (cu == -1) {
          cu = static_cast<std::int8_t>(1 - color[static_cast<std::size_t>(v)]);
          frontier.push(u);
        } else if (cu == color[static_cast<std::size_t>(v)]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

std::optional<std::int32_t> SimpleGraph::shortest_cycle_through(
    std::int32_t source) const {
  // BFS from `source`; the first non-tree edge closes a candidate cycle of
  // length dist[x] + dist[u] + 1. The minimum candidate is an upper bound
  // on the shortest cycle through `source`; minimised over all sources it
  // is exactly the girth (standard O(VE) algorithm).
  check_vertex(source);
  std::vector<std::int32_t> dist(adj_.size(), -1);
  std::vector<std::int32_t> parent(adj_.size(), -1);
  std::queue<std::int32_t> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  std::optional<std::int32_t> best;
  while (!frontier.empty()) {
    const std::int32_t v = frontier.front();
    frontier.pop();
    // Nodes at depth >= best/2 cannot improve the candidate.
    if (best.has_value() && 2 * dist[static_cast<std::size_t>(v)] + 1 >= *best) {
      continue;
    }
    for (const std::int32_t u : adj_[static_cast<std::size_t>(v)]) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(u)] = v;
        frontier.push(u);
      } else if (u != parent[static_cast<std::size_t>(v)]) {
        const std::int32_t candidate = dist[static_cast<std::size_t>(v)] +
                                       dist[static_cast<std::size_t>(u)] + 1;
        if (!best.has_value() || candidate < *best) {
          best = candidate;
        }
      }
    }
  }
  return best;
}

std::optional<std::int32_t> SimpleGraph::girth() const {
  std::optional<std::int32_t> best;
  for (std::int32_t v = 0; v < num_vertices(); ++v) {
    const auto candidate = shortest_cycle_through(v);
    if (candidate.has_value() && (!best.has_value() || *candidate < *best)) {
      best = candidate;
    }
  }
  return best;
}

bool SimpleGraph::ball_is_acyclic(std::int32_t v, std::int32_t radius) const {
  // The induced subgraph on B(v, radius) is a forest iff
  // |edges| <= |vertices| - #components; check via edge counting on the
  // induced vertex set (exact).
  const auto members = ball(v, radius);
  std::vector<std::int8_t> in_ball(adj_.size(), 0);
  for (const std::int32_t u : members) {
    in_ball[static_cast<std::size_t>(u)] = 1;
  }
  std::int64_t induced_edges = 0;
  for (const std::int32_t u : members) {
    for (const std::int32_t w : adj_[static_cast<std::size_t>(u)]) {
      if (w > u && in_ball[static_cast<std::size_t>(w)]) {
        ++induced_edges;
      }
    }
  }
  // The ball is connected by construction, so forest <=> edges == n - 1.
  return induced_edges == static_cast<std::int64_t>(members.size()) - 1;
}

std::vector<std::int32_t> SimpleGraph::ball(std::int32_t v,
                                            std::int32_t radius) const {
  const auto dist = bfs(v, radius);
  std::vector<std::int32_t> members;
  for (std::int32_t u = 0; u < num_vertices(); ++u) {
    if (dist[static_cast<std::size_t>(u)] >= 0) {
      members.push_back(u);
    }
  }
  return members;
}

std::vector<std::int32_t> SimpleGraph::bfs(std::int32_t v,
                                           std::int32_t max_radius) const {
  check_vertex(v);
  std::vector<std::int32_t> dist(adj_.size(), -1);
  dist[static_cast<std::size_t>(v)] = 0;
  std::queue<std::int32_t> frontier;
  frontier.push(v);
  while (!frontier.empty()) {
    const std::int32_t x = frontier.front();
    frontier.pop();
    if (max_radius >= 0 && dist[static_cast<std::size_t>(x)] >= max_radius) {
      continue;
    }
    for (const std::int32_t u : adj_[static_cast<std::size_t>(x)]) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(x)] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

}  // namespace mmlp

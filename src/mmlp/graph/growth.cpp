#include "mmlp/graph/growth.hpp"

#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

std::vector<std::size_t> ball_size_profile(const Hypergraph& h, NodeId v,
                                           std::int32_t max_radius) {
  MMLP_CHECK_GE(max_radius, 0);
  const auto dist = bfs_distances(h, v, max_radius);
  std::vector<std::size_t> counts(static_cast<std::size_t>(max_radius) + 1, 0);
  for (const std::int32_t d : dist) {
    if (d >= 0 && d <= max_radius) {
      ++counts[static_cast<std::size_t>(d)];
    }
  }
  // Prefix-sum sphere sizes into ball sizes.
  for (std::size_t r = 1; r < counts.size(); ++r) {
    counts[r] += counts[r - 1];
  }
  return counts;
}

std::vector<double> growth_profile(const Hypergraph& h, std::int32_t max_radius) {
  MMLP_CHECK_GE(max_radius, 0);
  const auto n = static_cast<std::size_t>(h.num_nodes());
  MMLP_CHECK_GT(n, 0u);
  // Per-node profiles computed in parallel; the max-reduction is serial.
  std::vector<std::vector<std::size_t>> profiles(n);
  parallel_for(n, [&](std::size_t v) {
    profiles[v] =
        ball_size_profile(h, static_cast<NodeId>(v), max_radius + 1);
  });
  std::vector<double> gamma(static_cast<std::size_t>(max_radius) + 1, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::int32_t r = 0; r <= max_radius; ++r) {
      const double ratio =
          static_cast<double>(profiles[v][static_cast<std::size_t>(r) + 1]) /
          static_cast<double>(profiles[v][static_cast<std::size_t>(r)]);
      gamma[static_cast<std::size_t>(r)] =
          std::max(gamma[static_cast<std::size_t>(r)], ratio);
    }
  }
  return gamma;
}

double growth_gamma(const Hypergraph& h, std::int32_t r) {
  MMLP_CHECK_GE(r, 0);
  return growth_profile(h, r)[static_cast<std::size_t>(r)];
}

double theorem3_bound(const Hypergraph& h, std::int32_t R) {
  MMLP_CHECK_GE(R, 1);
  const auto profile = growth_profile(h, R);
  return profile[static_cast<std::size_t>(R) - 1] *
         profile[static_cast<std::size_t>(R)];
}

}  // namespace mmlp

#include "mmlp/graph/hypertree.hpp"

#include "mmlp/util/check.hpp"

namespace mmlp {

Hypertree Hypertree::complete(std::int32_t d, std::int32_t D,
                              std::int32_t height) {
  MMLP_CHECK_GE(d, 1);
  MMLP_CHECK_GE(D, 1);
  MMLP_CHECK_GE(height, 0);
  Hypertree tree;
  tree.d_ = d;
  tree.D_ = D;
  tree.height_ = height;
  tree.nodes_by_level_.resize(static_cast<std::size_t>(height) + 1);

  // Root.
  tree.level_.push_back(0);
  tree.nodes_by_level_[0].push_back(0);

  for (std::int32_t h = 1; h <= height; ++h) {
    const std::int32_t parent_level = h - 1;
    const bool type_one = (parent_level % 2 == 0);
    const std::int32_t fanout = type_one ? d : D;
    for (const std::int32_t parent : tree.nodes_by_level_[static_cast<std::size_t>(parent_level)]) {
      HypertreeEdge edge;
      edge.type = type_one ? HyperedgeType::kTypeI : HyperedgeType::kTypeII;
      edge.parent = parent;
      edge.children.reserve(static_cast<std::size_t>(fanout));
      for (std::int32_t c = 0; c < fanout; ++c) {
        const auto node = static_cast<std::int32_t>(tree.level_.size());
        tree.level_.push_back(h);
        tree.nodes_by_level_[static_cast<std::size_t>(h)].push_back(node);
        edge.children.push_back(node);
      }
      tree.edges_.push_back(std::move(edge));
    }
  }

  // Sanity: levels match the closed form.
  for (std::int32_t l = 0; l <= height; ++l) {
    MMLP_CHECK_EQ(
        static_cast<std::int64_t>(tree.nodes_by_level_[static_cast<std::size_t>(l)].size()),
        expected_level_size(d, D, l));
  }
  return tree;
}

const std::vector<std::int32_t>& Hypertree::nodes_at_level(std::int32_t level) const {
  MMLP_CHECK_GE(level, 0);
  MMLP_CHECK_LE(level, height_);
  return nodes_by_level_[static_cast<std::size_t>(level)];
}

std::int64_t Hypertree::expected_level_size(std::int32_t d, std::int32_t D,
                                            std::int32_t level) {
  std::int64_t size = 1;
  if (level % 2 == 0) {
    for (std::int32_t j = 0; j < level / 2; ++j) {
      size *= static_cast<std::int64_t>(d) * D;
    }
  } else {
    for (std::int32_t j = 0; j < (level - 1) / 2; ++j) {
      size *= static_cast<std::int64_t>(d) * D;
    }
    size *= d;
  }
  return size;
}

}  // namespace mmlp

#include "mmlp/graph/hypergraph.hpp"

#include <algorithm>
#include <queue>

#include "mmlp/util/check.hpp"

namespace mmlp {

Hypergraph Hypergraph::from_edges(NodeId num_nodes,
                                  const std::vector<std::vector<NodeId>>& edges) {
  MMLP_CHECK_GE(num_nodes, 0);
  Hypergraph h;
  h.num_nodes_ = num_nodes;

  std::size_t total_members = 0;
  for (const auto& members : edges) {
    MMLP_CHECK_MSG(!members.empty(), "hyperedges must be nonempty");
    total_members += members.size();
  }

  h.edge_offsets_.clear();
  h.edge_offsets_.reserve(edges.size() + 1);
  h.edge_offsets_.push_back(0);
  h.edge_nodes_.reserve(total_members);
  for (const auto& members : edges) {
    std::vector<NodeId> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    MMLP_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                   "hyperedge contains a duplicate node");
    for (const NodeId v : sorted) {
      MMLP_CHECK_GE(v, 0);
      MMLP_CHECK_LT(v, num_nodes);
      h.edge_nodes_.push_back(v);
    }
    h.edge_offsets_.push_back(static_cast<std::int64_t>(h.edge_nodes_.size()));
  }

  // Transpose: counting sort of (node, edge) incidences.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const NodeId v : h.edge_nodes_) {
    ++counts[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 1; v < counts.size(); ++v) {
    counts[v] += counts[v - 1];
  }
  h.node_offsets_ = counts;
  h.node_edges_.assign(h.edge_nodes_.size(), 0);
  std::vector<std::int64_t> cursor = h.node_offsets_;
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    for (const NodeId v : h.edge(e)) {
      h.node_edges_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = e;
    }
  }
  return h;
}

std::span<const NodeId> Hypergraph::edge(EdgeId e) const {
  MMLP_CHECK_GE(e, 0);
  MMLP_CHECK_LT(e, num_edges());
  const auto begin = static_cast<std::size_t>(edge_offsets_[static_cast<std::size_t>(e)]);
  const auto end = static_cast<std::size_t>(edge_offsets_[static_cast<std::size_t>(e) + 1]);
  return {edge_nodes_.data() + begin, end - begin};
}

std::span<const EdgeId> Hypergraph::edges_of(NodeId v) const {
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_LT(v, num_nodes_);
  const auto begin = static_cast<std::size_t>(node_offsets_[static_cast<std::size_t>(v)]);
  const auto end = static_cast<std::size_t>(node_offsets_[static_cast<std::size_t>(v) + 1]);
  return {node_edges_.data() + begin, end - begin};
}

std::vector<NodeId> Hypergraph::neighbors(NodeId v) const {
  std::vector<NodeId> out;
  for (const EdgeId e : edges_of(v)) {
    for (const NodeId u : edge(e)) {
      if (u != v) {
        out.push_back(u);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Hypergraph::max_edge_size() const {
  std::size_t best = 0;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    best = std::max(best, edge_size(e));
  }
  return best;
}

std::size_t Hypergraph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

std::vector<std::int32_t> Hypergraph::components() const {
  std::vector<std::int32_t> comp(static_cast<std::size_t>(num_nodes_), -1);
  std::int32_t next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < num_nodes_; ++start) {
    if (comp[static_cast<std::size_t>(start)] != -1) {
      continue;
    }
    comp[static_cast<std::size_t>(start)] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const EdgeId e : edges_of(v)) {
        for (const NodeId u : edge(e)) {
          if (comp[static_cast<std::size_t>(u)] == -1) {
            comp[static_cast<std::size_t>(u)] = next;
            frontier.push(u);
          }
        }
      }
    }
    ++next;
  }
  return comp;
}

bool Hypergraph::connected() const {
  if (num_nodes_ <= 1) {
    return true;
  }
  const auto comp = components();
  return std::all_of(comp.begin(), comp.end(),
                     [](std::int32_t c) { return c == 0; });
}

bool Hypergraph::adjacent(NodeId u, NodeId v) const {
  if (u == v) {
    return false;
  }
  for (const EdgeId e : edges_of(u)) {
    const auto members = edge(e);
    if (std::binary_search(members.begin(), members.end(), v)) {
      return true;
    }
  }
  return false;
}

}  // namespace mmlp

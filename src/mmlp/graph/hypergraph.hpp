// Communication hypergraph H = (V, E) of Section 1.4.
//
// Nodes are agents; hyperedges are the support sets V_i (resources) and
// V_k (beneficiary parties). Two agents are adjacent iff they share a
// hyperedge. Storage is CSR in both directions (edge -> member nodes and
// node -> incident edges) so BFS over the agent graph and over incident
// hyperedges are both cache-friendly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmlp {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Build from explicit member lists. Each edge must be nonempty and
  /// contain valid, distinct node ids. Member lists are stored sorted.
  static Hypergraph from_edges(NodeId num_nodes,
                               const std::vector<std::vector<NodeId>>& edges);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edge_offsets_.size()) - 1; }

  /// Member nodes of hyperedge e (sorted).
  std::span<const NodeId> edge(EdgeId e) const;

  /// Hyperedges incident to node v (sorted).
  std::span<const EdgeId> edges_of(NodeId v) const;

  std::size_t edge_size(EdgeId e) const { return edge(e).size(); }
  std::size_t degree(NodeId v) const { return edges_of(v).size(); }

  /// Distinct neighbours of v (nodes sharing a hyperedge with v,
  /// excluding v itself), sorted.
  std::vector<NodeId> neighbors(NodeId v) const;

  std::size_t max_edge_size() const;
  std::size_t max_degree() const;

  /// Connected-component id per node (0-based, BFS order).
  std::vector<std::int32_t> components() const;
  bool connected() const;

  /// True if u and v share at least one hyperedge (u != v).
  bool adjacent(NodeId u, NodeId v) const;

 private:
  NodeId num_nodes_ = 0;
  // CSR edge -> nodes.
  std::vector<std::int64_t> edge_offsets_{0};
  std::vector<NodeId> edge_nodes_;
  // CSR node -> edges.
  std::vector<std::int64_t> node_offsets_;
  std::vector<EdgeId> node_edges_;
};

}  // namespace mmlp

// Complete (d, D)-ary hypertrees (Section 4.2, Figure 1(b)).
//
// Built inductively: height 0 is a single node at level 0; for h > 0,
// every node v at level h−1 gains a new hyperedge containing v plus
//   * d new nodes if h−1 is even  (a "type I" hyperedge — a resource), or
//   * D new nodes if h−1 is odd   (a "type II" hyperedge — a party).
// New nodes sit at level h. Level ℓ holds (dD)^(ℓ/2) nodes for even ℓ and
// d·(dD)^((ℓ−1)/2) for odd ℓ; the leaves of a height-(2R−1) hypertree
// number d^R·D^(R−1).
#pragma once

#include <cstdint>
#include <vector>

namespace mmlp {

enum class HyperedgeType : std::uint8_t {
  kTypeI,   ///< resource edge: 1 parent + d children, created from even levels
  kTypeII,  ///< party edge: 1 parent + D children, created from odd levels
};

struct HypertreeEdge {
  HyperedgeType type;
  std::int32_t parent;                 ///< the level-(h−1) node
  std::vector<std::int32_t> children;  ///< the d or D level-h nodes
};

class Hypertree {
 public:
  /// Build the complete (d, D)-ary hypertree of the given height.
  static Hypertree complete(std::int32_t d, std::int32_t D, std::int32_t height);

  std::int32_t d() const { return d_; }
  std::int32_t D() const { return D_; }
  std::int32_t height() const { return height_; }

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(level_.size()); }
  const std::vector<HypertreeEdge>& edges() const { return edges_; }

  /// Level of a node (root is level 0).
  std::int32_t level(std::int32_t node) const { return level_[static_cast<std::size_t>(node)]; }

  /// Nodes at a given level, in creation order.
  const std::vector<std::int32_t>& nodes_at_level(std::int32_t level) const;

  /// The leaf nodes (level == height).
  const std::vector<std::int32_t>& leaves() const { return nodes_at_level(height_); }

  /// Closed-form level cardinality from the paper:
  /// (dD)^(ℓ/2) for even ℓ, d·(dD)^((ℓ−1)/2) for odd ℓ.
  static std::int64_t expected_level_size(std::int32_t d, std::int32_t D,
                                          std::int32_t level);

 private:
  std::int32_t d_ = 0;
  std::int32_t D_ = 0;
  std::int32_t height_ = 0;
  std::vector<std::int32_t> level_;
  std::vector<std::vector<std::int32_t>> nodes_by_level_;
  std::vector<HypertreeEdge> edges_;
};

}  // namespace mmlp

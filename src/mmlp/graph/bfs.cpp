#include "mmlp/graph/bfs.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {
/// Count once per call, outside the parallel loop — per-node atomics in
/// the BFS hot path would cost more than the expansion itself.
void count_ball_expansions(std::size_t n) {
  static obs::Counter& counter =
      obs::Registry::global().counter("bfs.ball_expansions");
  counter.add(static_cast<std::int64_t>(n));
}
}  // namespace

std::vector<std::int32_t> bfs_distances(const Hypergraph& h, NodeId source,
                                        std::int32_t max_radius) {
  MMLP_CHECK_GE(source, 0);
  MMLP_CHECK_LT(source, h.num_nodes());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(h.num_nodes()), -1);
  dist[static_cast<std::size_t>(source)] = 0;
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::int32_t level = 0;
  while (!frontier.empty() && (max_radius < 0 || level < max_radius)) {
    next.clear();
    for (const NodeId v : frontier) {
      for (const EdgeId e : h.edges_of(v)) {
        for (const NodeId u : h.edge(e)) {
          if (dist[static_cast<std::size_t>(u)] == -1) {
            dist[static_cast<std::size_t>(u)] = level + 1;
            next.push_back(u);
          }
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return dist;
}

std::vector<NodeId> ball(const Hypergraph& h, NodeId v, std::int32_t radius) {
  BallCollector collector(h);
  return collector.collect(v, radius);
}

std::size_t ball_size(const Hypergraph& h, NodeId v, std::int32_t radius) {
  MMLP_CHECK_GE(radius, 0);
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_LT(v, h.num_nodes());
  // Counting-only BFS: same traversal as BallCollector::collect, but no
  // membership vector is built and nothing is sorted.
  std::vector<bool> seen(static_cast<std::size_t>(h.num_nodes()), false);
  std::vector<NodeId> frontier{v};
  std::vector<NodeId> next;
  seen[static_cast<std::size_t>(v)] = true;
  std::size_t count = 1;
  for (std::int32_t level = 0; level < radius && !frontier.empty(); ++level) {
    next.clear();
    for (const NodeId w : frontier) {
      for (const EdgeId e : h.edges_of(w)) {
        for (const NodeId u : h.edge(e)) {
          if (!seen[static_cast<std::size_t>(u)]) {
            seen[static_cast<std::size_t>(u)] = true;
            ++count;
            next.push_back(u);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return count;
}

BallCollector::BallCollector(const Hypergraph& h)
    : h_(&h), dist_(static_cast<std::size_t>(h.num_nodes()), -1) {}

const std::vector<NodeId>& BallCollector::collect(NodeId v, std::int32_t radius) {
  MMLP_CHECK_GE(radius, 0);
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_LT(v, h_->num_nodes());
  // Reset only the entries touched by the previous call.
  for (const NodeId u : touched_) {
    dist_[static_cast<std::size_t>(u)] = -1;
  }
  touched_.clear();
  result_.clear();
  frontier_.clear();
  next_frontier_.clear();

  dist_[static_cast<std::size_t>(v)] = 0;
  touched_.push_back(v);
  result_.push_back(v);
  frontier_.push_back(v);
  for (std::int32_t level = 0; level < radius && !frontier_.empty(); ++level) {
    next_frontier_.clear();
    for (const NodeId w : frontier_) {
      for (const EdgeId e : h_->edges_of(w)) {
        for (const NodeId u : h_->edge(e)) {
          if (dist_[static_cast<std::size_t>(u)] == -1) {
            dist_[static_cast<std::size_t>(u)] = level + 1;
            touched_.push_back(u);
            result_.push_back(u);
            next_frontier_.push_back(u);
          }
        }
      }
    }
    frontier_.swap(next_frontier_);
  }
  std::sort(result_.begin(), result_.end());
  return result_;
}

std::int32_t BallCollector::last_distance(NodeId u) const {
  MMLP_CHECK_GE(u, 0);
  MMLP_CHECK_LT(u, h_->num_nodes());
  return dist_[static_cast<std::size_t>(u)];
}

std::vector<std::vector<NodeId>> all_balls(const Hypergraph& h,
                                           std::int32_t radius,
                                           ThreadPool* pool) {
  const auto n = static_cast<std::size_t>(h.num_nodes());
  std::vector<std::vector<NodeId>> balls(n);
  if (n == 0) {
    return balls;
  }
  obs::ObsSpan span("bfs.all_balls", "graph");
  count_ball_expansions(n);
  // Chunk the node range so each task amortises one BallCollector.
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        BallCollector collector(h);
        for (std::size_t v = begin; v < end; ++v) {
          balls[v] = collector.collect(static_cast<NodeId>(v), radius);
        }
      },
      pool);
  return balls;
}

std::vector<std::vector<NodeId>> expand_balls(
    const Hypergraph& h, const std::vector<std::vector<NodeId>>& from_balls,
    std::int32_t from_radius,
    const std::vector<std::vector<NodeId>>* inner_balls, std::int32_t to_radius,
    ThreadPool* pool) {
  MMLP_CHECK_GE(from_radius, 0);
  MMLP_CHECK_GE(to_radius, from_radius);
  const auto n = static_cast<std::size_t>(h.num_nodes());
  MMLP_CHECK_EQ(from_balls.size(), n);
  if (inner_balls != nullptr) {
    MMLP_CHECK_EQ(inner_balls->size(), n);
  }
  std::vector<std::vector<NodeId>> balls(n);
  if (n == 0) {
    return balls;
  }
  obs::ObsSpan span("bfs.expand_balls", "graph");
  count_ball_expansions(n);
  chunked_parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        // Per-worker membership stamp (plain bytes — vector<bool> bit
        // masking costs more than the BFS itself at small radii), reset
        // via the result itself.
        std::vector<char> member(n, 0);
        std::vector<NodeId> frontier;
        std::vector<NodeId> next;
        for (std::size_t v = begin; v < end; ++v) {
          std::vector<NodeId>& result = balls[v];
          result = from_balls[v];  // grow in place from the cached ball
          for (const NodeId u : result) {
            member[static_cast<std::size_t>(u)] = 1;
          }
          // First step: the exact distance-from_radius frontier when the
          // inner ball is known, otherwise the whole cached ball
          // (interior nodes only rediscover members).
          frontier.clear();
          if (inner_balls != nullptr) {
            std::set_difference(from_balls[v].begin(), from_balls[v].end(),
                                (*inner_balls)[v].begin(),
                                (*inner_balls)[v].end(),
                                std::back_inserter(frontier));
          } else {
            frontier = from_balls[v];
          }
          for (std::int32_t level = from_radius;
               level < to_radius && !frontier.empty(); ++level) {
            next.clear();
            for (const NodeId w : frontier) {
              for (const EdgeId e : h.edges_of(w)) {
                for (const NodeId u : h.edge(e)) {
                  if (member[static_cast<std::size_t>(u)] == 0) {
                    member[static_cast<std::size_t>(u)] = 1;
                    result.push_back(u);
                    next.push_back(u);
                  }
                }
              }
            }
            frontier.swap(next);
          }
          for (const NodeId u : result) {
            member[static_cast<std::size_t>(u)] = 0;
          }
          std::sort(result.begin(), result.end());
        }
      },
      pool);
  return balls;
}

std::vector<NodeId> multi_source_ball(const Hypergraph& h,
                                      std::span<const NodeId> sources,
                                      std::int32_t radius) {
  MMLP_CHECK_GE(radius, 0);
  std::vector<char> seen(static_cast<std::size_t>(h.num_nodes()), 0);
  std::vector<NodeId> result;
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    MMLP_CHECK_GE(s, 0);
    MMLP_CHECK_LT(s, h.num_nodes());
    if (seen[static_cast<std::size_t>(s)] == 0) {
      seen[static_cast<std::size_t>(s)] = 1;
      result.push_back(s);
      frontier.push_back(s);
    }
  }
  std::vector<NodeId> next;
  for (std::int32_t level = 0; level < radius && !frontier.empty(); ++level) {
    next.clear();
    for (const NodeId w : frontier) {
      for (const EdgeId e : h.edges_of(w)) {
        for (const NodeId u : h.edge(e)) {
          if (seen[static_cast<std::size_t>(u)] == 0) {
            seen[static_cast<std::size_t>(u)] = 1;
            result.push_back(u);
            next.push_back(u);
          }
        }
      }
    }
    frontier.swap(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void repair_balls(const Hypergraph& h, std::int32_t radius,
                  std::span<const NodeId> dirty,
                  std::vector<std::vector<NodeId>>& balls,
                  ThreadPool* pool) {
  MMLP_CHECK_GE(radius, 0);
  const auto n = static_cast<std::size_t>(h.num_nodes());
  MMLP_CHECK_MSG(balls.size() <= n,
                 "repair_balls: cache has " << balls.size() << " balls but the "
                                            << "hypergraph has " << n
                                            << " nodes (node removal needs a "
                                               "full rebuild)");
  balls.resize(n);
  if (dirty.empty()) {
    return;
  }
  obs::ObsSpan span("bfs.repair_balls", "graph");
  count_ball_expansions(dirty.size());
  // Chunk over the dirty list only; each task amortises one collector,
  // exactly like all_balls.
  chunked_parallel_for(
      dirty.size(),
      [&](std::size_t begin, std::size_t end) {
        BallCollector collector(h);
        for (std::size_t idx = begin; idx < end; ++idx) {
          const NodeId v = dirty[idx];
          MMLP_CHECK_GE(v, 0);
          MMLP_CHECK_LT(v, h.num_nodes());
          balls[static_cast<std::size_t>(v)] = collector.collect(v, radius);
        }
      },
      pool);
}

std::int32_t hypergraph_distance(const Hypergraph& h, NodeId u, NodeId v) {
  const auto dist = bfs_distances(h, u);
  return dist[static_cast<std::size_t>(v)];
}

std::int32_t eccentricity(const Hypergraph& h, NodeId v) {
  const auto dist = bfs_distances(h, v);
  std::int32_t ecc = 0;
  for (const std::int32_t d : dist) {
    ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace mmlp

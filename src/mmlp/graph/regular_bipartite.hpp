// Random Δ-regular bipartite graphs with a girth floor (Section 4.2).
//
// The lower-bound construction needs a template graph Q that is
// d^R·D^(R−1)-regular, bipartite, and has no cycle shorter than 4r + 2.
// The paper cites McKay–Wormald–Wysocka for existence via the random
// regular model; here Q is sampled constructively as the union of Δ
// random perfect matchings between the two sides, followed by a
// short-cycle repair loop: while some cycle is shorter than the girth
// floor, a random edge on a shortest cycle is 2-opt-swapped with another
// edge of the same matching (which preserves both regularity and the
// matching decomposition).
#pragma once

#include <cstdint>
#include <optional>

#include "mmlp/graph/simple_graph.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

struct RegularBipartiteConfig {
  std::int32_t nodes_per_side = 0;  ///< n: vertices on each side
  std::int32_t degree = 0;          ///< Δ: must satisfy Δ <= n
  std::int32_t min_girth = 6;       ///< reject cycles shorter than this
  std::int64_t max_repair_steps = 200000;
  std::int32_t max_attempts = 32;   ///< full resamples before giving up
};

/// Result: left vertices are 0..n-1, right vertices are n..2n-1.
struct RegularBipartiteResult {
  SimpleGraph graph;
  std::int32_t attempts_used = 0;
  std::int64_t repair_steps_used = 0;
};

/// Sample a graph per the config; nullopt if the girth floor could not be
/// met within the step/attempt budget (the caller should enlarge n).
std::optional<RegularBipartiteResult> random_regular_bipartite(
    const RegularBipartiteConfig& config, Rng& rng);

/// Structural check used by callers and tests: Δ-regular, bipartite with
/// the expected sides, girth >= min_girth (or forest).
bool check_regular_bipartite(const SimpleGraph& g, std::int32_t nodes_per_side,
                             std::int32_t degree, std::int32_t min_girth);

/// Incidence graph of the projective plane PG(2, q), q prime: a
/// (q+1)-regular bipartite graph with q²+q+1 vertices per side and girth
/// exactly 6 — the minimal deterministic witness for the girth-6 regular
/// bipartite graphs the Section 4 construction needs (random sampling
/// requires n = Ω(Δ³) to repair, since the expected 4-cycle count is
/// (Δ−1)⁴/4 independently of n). Left vertices 0..q²+q are points, right
/// vertices are lines.
SimpleGraph projective_plane_incidence(std::int32_t q);

bool is_prime(std::int32_t value);

/// Best available Δ-regular bipartite graph with girth ≥ min_girth:
/// projective plane when min_girth ≤ 6 and Δ−1 is prime, otherwise the
/// random sampler at `fallback_nodes_per_side` (0 = heuristic size).
std::optional<RegularBipartiteResult> high_girth_bipartite(
    std::int32_t degree, std::int32_t min_girth,
    std::int32_t fallback_nodes_per_side, Rng& rng);

}  // namespace mmlp

// Breadth-first search over the agent graph induced by a hypergraph.
//
// Distances follow Section 1.4: d_H(u, v) is the shortest-path distance
// where u, v are adjacent iff they share a hyperedge. B_H(v, r) is the
// radius-r ball of eq. (Section 1.5). BallCollector keeps scratch arrays
// alive across calls so ball enumeration inside the Theorem 3 algorithm
// (one ball per agent) does not allocate per call.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mmlp/graph/hypergraph.hpp"

namespace mmlp {

class ThreadPool;  // util/parallel.hpp

/// Distances from `source` to every node; -1 for unreachable.
/// If max_radius >= 0, the search stops expanding past that radius
/// (farther nodes keep -1).
std::vector<std::int32_t> bfs_distances(const Hypergraph& h, NodeId source,
                                        std::int32_t max_radius = -1);

/// B_H(v, r): all nodes within distance r of v, sorted ascending.
std::vector<NodeId> ball(const Hypergraph& h, NodeId v, std::int32_t radius);

/// |B_H(v, r)| via a counting-only traversal: no result vector is
/// materialised and nothing is sorted.
std::size_t ball_size(const Hypergraph& h, NodeId v, std::int32_t radius);

/// Reusable-buffer ball enumerator for hot loops.
class BallCollector {
 public:
  explicit BallCollector(const Hypergraph& h);

  /// Collect B_H(v, r), sorted. The returned reference is valid until the
  /// next collect() call.
  const std::vector<NodeId>& collect(NodeId v, std::int32_t radius);

  /// Distance (within the last collected ball) of node u, or -1.
  std::int32_t last_distance(NodeId u) const;

 private:
  const Hypergraph* h_;
  std::vector<std::int32_t> dist_;    // -1 = untouched this round
  std::vector<NodeId> touched_;       // nodes whose dist_ entry is set
  std::vector<NodeId> result_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_frontier_;
};

/// B_H(v, r) for every node v, computed in parallel (chunked so each
/// worker reuses one BallCollector). `pool` follows the parallel_for
/// convention: nullptr = the process-global pool.
std::vector<std::vector<NodeId>> all_balls(const Hypergraph& h,
                                           std::int32_t radius,
                                           ThreadPool* pool = nullptr);

/// Incremental variant of all_balls: grow every B_H(v, from_radius) —
/// given in `from_balls` — out to `to_radius` by continuing the BFS from
/// the cached membership instead of re-running it from scratch. When
/// `inner_balls` (the radius from_radius−1 balls) is provided, the first
/// expansion step starts from the exact frontier
/// from_balls[v] \ inner_balls[v], so only the boundary is rescanned;
/// without it the first step conservatively rescans the whole cached
/// ball (interior nodes discover nothing new). The result is identical
/// — element for element — to all_balls(h, to_radius): membership is a
/// set and the output is sorted. engine::Session uses this to turn its
/// radius-keyed ball cache into an incremental one.
std::vector<std::vector<NodeId>> expand_balls(
    const Hypergraph& h, const std::vector<std::vector<NodeId>>& from_balls,
    std::int32_t from_radius,
    const std::vector<std::vector<NodeId>>* inner_balls, std::int32_t to_radius,
    ThreadPool* pool = nullptr);

/// ∪_{s∈sources} B_H(s, radius): every node within distance `radius` of
/// some source, sorted ascending. One multi-source BFS, not |sources|
/// single-source ones. This is the dirty-region primitive of the update
/// pipeline: the agents whose radius-`radius` knowledge an edit with
/// touched-set `sources` can reach.
std::vector<NodeId> multi_source_ball(const Hypergraph& h,
                                      std::span<const NodeId> sources,
                                      std::int32_t radius);

/// Dirty-region repair of an all_balls cache after the hypergraph
/// changed: recompute B_H(v, radius) from scratch only for v ∈ `dirty`
/// (sorted ascending), keep every other cached ball. `balls` is resized
/// to h.num_nodes() — newly added nodes must therefore be listed dirty.
/// Sound whenever `dirty` contains every node whose ball differs between
/// the old and new hypergraph (the caller derives it via
/// multi_source_ball from a touched set in which every changed adjacency
/// has both endpoints); the repaired cache is then element-for-element
/// identical to all_balls(h, radius).
void repair_balls(const Hypergraph& h, std::int32_t radius,
                  std::span<const NodeId> dirty,
                  std::vector<std::vector<NodeId>>& balls,
                  ThreadPool* pool = nullptr);

/// Shortest-path distance between two nodes (-1 if disconnected).
std::int32_t hypergraph_distance(const Hypergraph& h, NodeId u, NodeId v);

/// Eccentricity of v (max distance to any reachable node).
std::int32_t eccentricity(const Hypergraph& h, NodeId v);

}  // namespace mmlp

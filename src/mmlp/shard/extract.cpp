#include "mmlp/shard/extract.hpp"

#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"

namespace mmlp::shard {

namespace {

std::int32_t lookup(const std::vector<std::int32_t>& sorted,
                    std::int32_t global) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), global);
  if (it == sorted.end() || *it != global) {
    return -1;
  }
  return static_cast<std::int32_t>(it - sorted.begin());
}

}  // namespace

AgentId ShardInstance::local_agent(AgentId global) const {
  return lookup(agents, global);
}

ResourceId ShardInstance::local_resource(ResourceId global) const {
  return lookup(resources, global);
}

PartyId ShardInstance::local_party(PartyId global) const {
  return lookup(parties, global);
}

ShardInstance extract_shard(const Instance& global, const Hypergraph& graph,
                            std::vector<AgentId> core,
                            std::int32_t halo_radius) {
  obs::ObsSpan span("shard.extract", "engine.shard");
  MMLP_CHECK_MSG(!core.empty(), "shard core must be nonempty");
  MMLP_CHECK_GE(halo_radius, 1);
  MMLP_CHECK(std::is_sorted(core.begin(), core.end()));
  MMLP_CHECK_GE(core.front(), 0);
  MMLP_CHECK_LT(core.back(), global.num_agents());
  MMLP_CHECK_EQ(graph.num_nodes(), global.num_agents());

  ShardInstance shard;
  shard.halo_radius = halo_radius;
  shard.core = std::move(core);

  // Core ∪ halo in one multi-source BFS; result is sorted, so the
  // local ids assigned below preserve global order.
  shard.agents = multi_source_ball(graph, shard.core, halo_radius);

  // Dense global -> local agent map for the scatter loops (transient;
  // the public lookups binary-search the sorted maps instead).
  std::vector<AgentId> agent_local(
      static_cast<std::size_t>(global.num_agents()), -1);
  for (std::size_t local = 0; local < shard.agents.size(); ++local) {
    agent_local[static_cast<std::size_t>(shard.agents[local])] =
        static_cast<AgentId>(local);
  }
  shard.core_local.reserve(shard.core.size());
  for (const AgentId v : shard.core) {
    const AgentId local = agent_local[static_cast<std::size_t>(v)];
    MMLP_CHECK_GE(local, 0);  // a core agent is always inside its own ball
    shard.core_local.push_back(local);
  }

  // Incident resources/parties: collect over included agents' rows, then
  // sort+unique — ids come out ascending, keeping the relabeling
  // monotone in every direction.
  std::size_t usage_entries = 0;
  std::size_t benefit_entries = 0;
  for (const AgentId v : shard.agents) {
    const CoefSpan res = global.agent_resources(v);
    usage_entries += res.size();
    for (const Coef& entry : res) {
      shard.resources.push_back(entry.id);
    }
    const CoefSpan par = global.agent_parties(v);
    benefit_entries += par.size();
    for (const Coef& entry : par) {
      shard.parties.push_back(entry.id);
    }
  }
  std::sort(shard.resources.begin(), shard.resources.end());
  shard.resources.erase(
      std::unique(shard.resources.begin(), shard.resources.end()),
      shard.resources.end());
  std::sort(shard.parties.begin(), shard.parties.end());
  shard.parties.erase(std::unique(shard.parties.begin(), shard.parties.end()),
                      shard.parties.end());

  // Scatter the restricted rows through the Builder (same counting-sort
  // path as a from-scratch build, so the blocks are canonical).
  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(shard.agents.size()),
                  static_cast<ResourceId>(shard.resources.size()),
                  static_cast<PartyId>(shard.parties.size()));
  builder.reserve_nonzeros(usage_entries, benefit_entries);
  for (std::size_t local = 0; local < shard.resources.size(); ++local) {
    for (const Coef& entry : global.resource_support(shard.resources[local])) {
      const AgentId agent = agent_local[static_cast<std::size_t>(entry.id)];
      if (agent >= 0) {
        builder.set_usage(static_cast<ResourceId>(local), agent, entry.value);
      }
    }
  }
  for (std::size_t local = 0; local < shard.parties.size(); ++local) {
    for (const Coef& entry : global.party_support(shard.parties[local])) {
      const AgentId agent = agent_local[static_cast<std::size_t>(entry.id)];
      if (agent >= 0) {
        builder.set_benefit(static_cast<PartyId>(local), agent, entry.value);
      }
    }
  }
  shard.instance = std::move(builder).build();
  return shard;
}

}  // namespace mmlp::shard

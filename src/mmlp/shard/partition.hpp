// Agent partitioning for sharded solving (ROADMAP item 4).
//
// A Partition assigns every agent to exactly one shard — the shard that
// *owns* the agent's output. Ownership is total and disjoint, so the
// stitched result vector of a sharded solve covers each agent exactly
// once; the halo overlap that makes the per-shard solves exact lives one
// layer up (shard/extract.hpp), not here.
//
// Two strategies:
//
//   * kContiguous — shard s owns the contiguous id range
//     [s*n/S, (s+1)*n/S). Deterministic, free, and aligned with how the
//     generators lay out ids (grid rows, BFS order), so ranges are
//     usually spatially coherent already.
//
//   * kBfsRegions — S seed agents are drawn with a seeded Rng, then a
//     round-based multi-source BFS over the communication graph grows
//     all regions in lockstep: a node joins the region of the first
//     frontier node that reaches it (frontier scanned in ascending
//     order, so ties break deterministically). Nodes unreachable from
//     every seed fall back to round-robin by id. Regions hug the graph
//     metric, which is what minimizes halo volume.
//
// Both strategies are pure functions of their inputs — the same
// (instance, options) always yields the same Partition, which the
// differential tests rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/graph/hypergraph.hpp"

namespace mmlp::shard {

enum class PartitionStrategy {
  kContiguous,  ///< contiguous id ranges
  kBfsRegions,  ///< seeded multi-source BFS regions over H
};

std::string to_string(PartitionStrategy strategy);
/// Parses "contiguous" / "bfs"; throws CheckError on anything else.
PartitionStrategy partition_strategy_from_string(const std::string& name);

struct PartitionOptions {
  std::int32_t shards = 2;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  std::uint64_t seed = 1;  ///< BFS seed selection (kBfsRegions only)
};

/// A total, disjoint assignment of agents to shards. Every agent appears
/// in exactly one core list; core lists are sorted ascending.
struct Partition {
  std::int32_t num_shards = 0;
  std::vector<std::int32_t> shard_of;     ///< agent id -> owning shard
  std::vector<std::vector<AgentId>> core; ///< shard -> owned agents, sorted

  /// Check the cover/disjoint/sorted invariants; throws CheckError.
  void validate() const;
};

/// Shard s owns [s*n/S, (s+1)*n/S); every shard nonempty (requires
/// 1 <= shards <= num_agents).
Partition contiguous_partition(AgentId num_agents, std::int32_t shards);

/// Seeded BFS regions over the communication graph (see file comment).
/// Every shard is nonempty (it owns at least its seed).
Partition bfs_partition(const Hypergraph& graph, std::int32_t shards,
                        std::uint64_t seed);

/// Dispatch on options.strategy.
Partition make_partition(const Hypergraph& graph,
                         const PartitionOptions& options);

}  // namespace mmlp::shard

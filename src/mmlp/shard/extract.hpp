// Halo extraction: materialize one shard as a standalone sub-Instance.
//
// The paper's locality theorem is what makes sharding exact: the output
// of every local algorithm at agent j is a function of j's radius-r
// knowledge ball only. So a shard that owns core agents C can be solved
// on the induced sub-instance over B_H(C, halo_radius) — the core plus a
// halo of `halo_radius` graph hops — and its core outputs are bitwise
// identical to the monolithic solve, provided the halo covers the
// algorithm's knowledge horizon:
//
//   * safe / distributed-safe read I_v plus |V_i| per incident resource:
//     horizon 1.
//   * averaging / distributed-averaging at radius R gather x^u over
//     u ∈ B(j, R); each view LP reads B(u, R) and the full support of
//     every party meeting it (members are one hop away in full-H mode),
//     and β_j reads the balls of B(j, 1): horizon 2R+1.
//
// Why the sub-solve is bitwise equal and not merely close: the id maps
// are monotone (global order preserved), so every CSR row of the
// sub-instance is the order-preserving restriction of the global row,
// every ball enumeration visits the same agents in the same order, every
// view LP is the identical double matrix fed to the deterministic
// simplex, and the eq. (10) gather folds in the identical order. Nothing
// is approximated, so no floating-point difference can appear.
//
// The extraction reuses the repo's bulk machinery: one multi-source BFS
// (graph/bfs) for the halo ball and the Builder counting-sort scatter
// for the CSR blocks.
//
// Caveat: the horizon argument above needs party hyperedges in H
// (full-collaboration mode). Under collaboration_oblivious a party's
// members can be arbitrarily far apart, a truncated party row would
// make the view's K^u membership test spuriously true, and the sub-solve
// would diverge — ShardedSession therefore rejects oblivious requests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/graph/hypergraph.hpp"

namespace mmlp::shard {

/// One shard: a standalone sub-Instance over core ∪ halo, plus the
/// monotone local<->global id maps the router and stitcher need.
struct ShardInstance {
  Instance instance;  ///< validates on its own; ids are shard-local

  std::int32_t halo_radius = 0;
  std::vector<AgentId> core;  ///< owned agents, global ids, sorted

  /// local -> global maps; all sorted ascending (monotone relabeling).
  std::vector<AgentId> agents;        ///< core ∪ halo
  std::vector<ResourceId> resources;  ///< resources incident to `agents`
  std::vector<PartyId> parties;       ///< parties incident to `agents`

  /// Local ids of the core agents, ascending (positions of `core` inside
  /// `agents`); stitching reads instance-local x at these indices.
  std::vector<AgentId> core_local;

  /// global -> local id lookups (binary search; -1 when not included).
  AgentId local_agent(AgentId global) const;
  ResourceId local_resource(ResourceId global) const;
  PartyId local_party(PartyId global) const;

  std::size_t halo_agents() const { return agents.size() - core.size(); }
};

/// Extract the sub-instance over B_H(core, halo_radius). `graph` must be
/// the full-collaboration communication graph of `global` (see the file
/// comment for why oblivious mode is out of scope); `core` must be
/// sorted, nonempty, and in range.
ShardInstance extract_shard(const Instance& global, const Hypergraph& graph,
                            std::vector<AgentId> core,
                            std::int32_t halo_radius);

}  // namespace mmlp::shard

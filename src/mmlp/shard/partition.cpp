#include "mmlp/shard/partition.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp::shard {

std::string to_string(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kBfsRegions:
      return "bfs";
  }
  MMLP_CHECK_MSG(false, "unknown PartitionStrategy");
  return {};
}

PartitionStrategy partition_strategy_from_string(const std::string& name) {
  if (name == "contiguous") {
    return PartitionStrategy::kContiguous;
  }
  if (name == "bfs") {
    return PartitionStrategy::kBfsRegions;
  }
  MMLP_CHECK_MSG(false, "unknown partition strategy '"
                            << name << "' (known: contiguous, bfs)");
  return PartitionStrategy::kContiguous;
}

void Partition::validate() const {
  MMLP_CHECK_GE(num_shards, 1);
  MMLP_CHECK_EQ(static_cast<std::size_t>(num_shards), core.size());
  std::size_t covered = 0;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    MMLP_CHECK_MSG(!core[static_cast<std::size_t>(s)].empty(),
                   "shard " << s << " owns no agents");
    const std::vector<AgentId>& owned = core[static_cast<std::size_t>(s)];
    MMLP_CHECK_MSG(std::is_sorted(owned.begin(), owned.end()),
                   "shard " << s << " core is not sorted");
    for (const AgentId v : owned) {
      MMLP_CHECK_GE(v, 0);
      MMLP_CHECK_LT(static_cast<std::size_t>(v), shard_of.size());
      MMLP_CHECK_EQ(shard_of[static_cast<std::size_t>(v)], s);
    }
    covered += owned.size();
  }
  MMLP_CHECK_EQ(covered, shard_of.size());  // disjoint + total
}

namespace {

/// Build the core lists from a complete shard_of labelling. Iterating
/// agents in id order keeps every core sorted.
Partition from_labels(std::int32_t num_shards,
                      std::vector<std::int32_t> shard_of) {
  Partition partition;
  partition.num_shards = num_shards;
  partition.core.resize(static_cast<std::size_t>(num_shards));
  for (std::size_t v = 0; v < shard_of.size(); ++v) {
    partition.core[static_cast<std::size_t>(shard_of[v])].push_back(
        static_cast<AgentId>(v));
  }
  partition.shard_of = std::move(shard_of);
  partition.validate();
  return partition;
}

}  // namespace

Partition contiguous_partition(AgentId num_agents, std::int32_t shards) {
  MMLP_CHECK_GE(shards, 1);
  MMLP_CHECK_MSG(shards <= num_agents, "cannot cut " << num_agents
                                                     << " agents into "
                                                     << shards << " shards");
  std::vector<std::int32_t> shard_of(static_cast<std::size_t>(num_agents));
  const auto n = static_cast<std::int64_t>(num_agents);
  const auto s64 = static_cast<std::int64_t>(shards);
  for (std::int32_t s = 0; s < shards; ++s) {
    const auto begin = static_cast<std::size_t>(s * n / s64);
    const auto end = static_cast<std::size_t>((s + 1) * n / s64);
    std::fill(shard_of.begin() + static_cast<std::ptrdiff_t>(begin),
              shard_of.begin() + static_cast<std::ptrdiff_t>(end), s);
  }
  return from_labels(shards, std::move(shard_of));
}

Partition bfs_partition(const Hypergraph& graph, std::int32_t shards,
                        std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  MMLP_CHECK_GE(shards, 1);
  MMLP_CHECK_MSG(shards <= n, "cannot cut " << n << " agents into " << shards
                                            << " shards");
  std::vector<std::int32_t> label(static_cast<std::size_t>(n), -1);

  // Draw S distinct seeds; rejection sampling terminates fast because
  // shards <= n and in practice shards << n.
  Rng rng(seed);
  std::vector<NodeId> frontier;
  frontier.reserve(static_cast<std::size_t>(shards));
  for (std::int32_t s = 0; s < shards; ++s) {
    NodeId pick = 0;
    do {
      pick = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
    } while (label[static_cast<std::size_t>(pick)] != -1);
    label[static_cast<std::size_t>(pick)] = s;
    frontier.push_back(pick);
  }

  // Lockstep multi-source BFS: all regions advance one hop per round;
  // within a round the frontier is scanned in ascending node order so
  // contested nodes resolve deterministically.
  std::vector<NodeId> next_frontier;
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    next_frontier.clear();
    for (const NodeId v : frontier) {
      const std::int32_t region = label[static_cast<std::size_t>(v)];
      for (const EdgeId e : graph.edges_of(v)) {
        for (const NodeId w : graph.edge(e)) {
          if (label[static_cast<std::size_t>(w)] == -1) {
            label[static_cast<std::size_t>(w)] = region;
            next_frontier.push_back(w);
          }
        }
      }
    }
    frontier.swap(next_frontier);
  }

  // Components unreachable from every seed: round-robin by id.
  for (std::size_t v = 0; v < label.size(); ++v) {
    if (label[v] == -1) {
      label[v] = static_cast<std::int32_t>(v % static_cast<std::size_t>(shards));
    }
  }
  return from_labels(shards, std::move(label));
}

Partition make_partition(const Hypergraph& graph,
                         const PartitionOptions& options) {
  switch (options.strategy) {
    case PartitionStrategy::kContiguous:
      return contiguous_partition(graph.num_nodes(), options.shards);
    case PartitionStrategy::kBfsRegions:
      return bfs_partition(graph, options.shards, options.seed);
  }
  MMLP_CHECK_MSG(false, "unknown PartitionStrategy");
  return {};
}

}  // namespace mmlp::shard

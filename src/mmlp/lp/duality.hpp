// Packing/covering LP duality (Section 1.3).
//
// The |K| = 1 special case of (1) is the fractional packing LP
//   max c·x  s.t.  A x ≤ b,  x ≥ 0        (A, b, c nonnegative)
// whose dual is the covering LP
//   min b·y  s.t.  Aᵀ y ≥ c,  y ≥ 0.
// These helpers build the dual (of any ≤-form max LP, packing or not),
// extract the packing LP of a single-party instance, and verify weak
// duality; strong duality is exercised via the simplex in tests.
#pragma once

#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/lp/simplex.hpp"

namespace mmlp {

/// True iff the problem is max-form with only ≤ rows (the shape whose
/// dual is a pure min/≥ program); packing additionally requires
/// nonnegative data.
bool is_le_form(const LpProblem& problem);
bool is_packing_lp(const LpProblem& problem);

/// Dual of a ≤-form max LP, expressed again as a max LP:
///   primal max c·x, Ax ≤ b, x ≥ 0
///   dual   max −b·y, −Aᵀy ≤ −c, y ≥ 0      (value = −(min b·y))
/// For a finite primal optimum, solve_lp(dual).objective == −primal value.
LpProblem dual_of_le_form(const LpProblem& primal);

/// The packing LP of a single-party instance: max Σ c_kv x_v s.t. Ax ≤ 1.
/// Requires instance.num_parties() == 1.
LpProblem packing_from_instance(const Instance& instance);

/// The covering LP dual of the same instance (in max form; negate the
/// objective to read the covering optimum).
LpProblem covering_from_instance(const Instance& instance);

/// Weak duality certificate: for feasible primal x and dual y,
/// c·x ≤ b·y. Returns b·y − c·x (≥ −tol for genuinely feasible pairs).
double duality_gap(const LpProblem& primal, const std::vector<double>& x,
                   const std::vector<double>& y);

}  // namespace mmlp

#include "mmlp/lp/mwu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

/// State of one feasibility test: is there x ≥ 0 with Ax ≤ 1, Cx ≥ λ·1?
class FeasibilityTest {
 public:
  FeasibilityTest(const Instance& instance, double lambda, double epsilon,
                  std::vector<double> x0)
      : instance_(instance),
        lambda_(lambda),
        epsilon_(epsilon),
        x_(std::move(x0)) {
    const auto n = static_cast<std::size_t>(instance.num_agents());
    if (x_.size() != n) {
      x_.assign(n, 0.0);
    }
    const double m = static_cast<double>(instance.num_resources() +
                                         instance.num_parties());
    eta_ = std::log(std::max(2.0, m)) / epsilon_;
    // Per-phase steps must keep every row's change ≤ ε/η even when all
    // agents of the row move simultaneously.
    const DegreeBounds bounds = instance.degree_bounds();
    row_span_ = static_cast<double>(
        std::max<std::size_t>(1, std::max(bounds.delta_V_of_I, bounds.delta_V_of_K)));
    recompute_rows();
  }

  /// Run up to `max_phases` phases; true iff every covering row reached 1.
  bool run(std::int64_t max_phases, std::int64_t* phases_used) {
    const auto n = static_cast<std::size_t>(instance_.num_agents());
    std::vector<double> rho(n, 0.0);
    std::int64_t phase = 0;
    for (; phase < max_phases; ++phase) {
      if (min_cov_ >= 1.0) {
        break;  // success
      }
      if (max_pack_ > 1.0 + 3.0 * epsilon_) {
        break;  // packing budget exhausted before coverage: treat as infeasible
      }
      // Normalised weights: p_i = exp(η(load_i − max_load)),
      // q_k = exp(η(min_cov − cov_k)) for active rows (cov_k < 1).
      const double pack_shift = max_pack_;
      const double cov_shift = min_cov_;
      parallel_for(n, [&](std::size_t v) {
        const auto agent = static_cast<AgentId>(v);
        double numer = 0.0;
        for (const Coef& entry : instance_.agent_parties(agent)) {
          const double cov = cov_value_[static_cast<std::size_t>(entry.id)];
          if (cov >= 1.0) {
            continue;  // this party is already served
          }
          numer += (entry.value / lambda_) *
                   std::exp(eta_ * (cov_shift - cov));
        }
        double denom = 0.0;
        for (const Coef& entry : instance_.agent_resources(agent)) {
          denom += entry.value *
                   std::exp(eta_ * (pack_value_[static_cast<std::size_t>(entry.id)] -
                                    pack_shift));
        }
        rho[v] = denom > 0.0 ? numer / denom : 0.0;
      });
      const double rho_best = *std::max_element(rho.begin(), rho.end());
      if (rho_best <= 0.0) {
        break;  // nobody can contribute to an unserved party
      }
      const double rho_cut = rho_best / (1.0 + epsilon_);
      // Increment every near-best agent. Serial update: supports are
      // bounded-degree so this is O(#incremented).
      bool any = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (rho[v] < rho_cut) {
          continue;
        }
        const auto agent = static_cast<AgentId>(v);
        double scale = 0.0;  // max row coefficient for this agent
        for (const Coef& entry : instance_.agent_resources(agent)) {
          scale = std::max(scale, entry.value);
        }
        for (const Coef& entry : instance_.agent_parties(agent)) {
          scale = std::max(scale, entry.value / lambda_);
        }
        if (scale <= 0.0) {
          continue;
        }
        const double delta = epsilon_ / (eta_ * scale * row_span_);
        x_[v] += delta;
        any = true;
        for (const Coef& entry : instance_.agent_resources(agent)) {
          pack_value_[static_cast<std::size_t>(entry.id)] += entry.value * delta;
        }
        for (const Coef& entry : instance_.agent_parties(agent)) {
          cov_value_[static_cast<std::size_t>(entry.id)] +=
              (entry.value / lambda_) * delta;
        }
      }
      if (!any) {
        break;
      }
      refresh_extrema();
    }
    if (phases_used != nullptr) {
      *phases_used = phase;
    }
    return min_cov_ >= 1.0;
  }

  const std::vector<double>& x() const { return x_; }

 private:
  void recompute_rows() {
    pack_value_.assign(static_cast<std::size_t>(instance_.num_resources()), 0.0);
    cov_value_.assign(static_cast<std::size_t>(instance_.num_parties()), 0.0);
    for (AgentId v = 0; v < instance_.num_agents(); ++v) {
      const double xv = x_[static_cast<std::size_t>(v)];
      if (xv == 0.0) {
        continue;
      }
      for (const Coef& entry : instance_.agent_resources(v)) {
        pack_value_[static_cast<std::size_t>(entry.id)] += entry.value * xv;
      }
      for (const Coef& entry : instance_.agent_parties(v)) {
        cov_value_[static_cast<std::size_t>(entry.id)] +=
            (entry.value / lambda_) * xv;
      }
    }
    refresh_extrema();
  }

  void refresh_extrema() {
    max_pack_ = 0.0;
    for (const double value : pack_value_) {
      max_pack_ = std::max(max_pack_, value);
    }
    min_cov_ = std::numeric_limits<double>::infinity();
    for (const double value : cov_value_) {
      min_cov_ = std::min(min_cov_, value);
    }
    if (cov_value_.empty()) {
      min_cov_ = 1.0;
    }
  }

  const Instance& instance_;
  double lambda_;
  double epsilon_;
  double eta_;
  double row_span_;
  std::vector<double> x_;
  std::vector<double> pack_value_;  // (Ax)_i
  std::vector<double> cov_value_;   // (Cx)_k / λ
  double max_pack_ = 0.0;
  double min_cov_ = 0.0;
};

}  // namespace

MwuResult solve_maxmin_mwu(const Instance& instance, const MwuOptions& options) {
  MMLP_CHECK_GT(instance.num_parties(), 0);
  MMLP_CHECK_GT(options.epsilon, 0.0);
  MMLP_CHECK_LT(options.epsilon, 1.0);

  MwuResult result;

  // Bracket [lo, hi]: the safe solution gives a feasible lower bound and
  // (by the Δ_I^V-approximation guarantee of Section 4) ω* ≤ Δ_I^V · ω_safe.
  std::vector<double> best_x = safe_solution(instance);
  double lo = objective_omega(instance, best_x);
  MMLP_CHECK_GT(lo, 0.0);  // safe x is strictly positive, supports nonempty
  const double delta = static_cast<double>(instance.degree_bounds().delta_V_of_I);
  double hi = lo * std::max(1.0, delta);

  std::vector<double> warm;  // carried across probes when warm_start
  while (result.bisection_steps < options.max_bisection_steps &&
         hi > lo * (1.0 + options.epsilon)) {
    ++result.bisection_steps;
    const double mid = std::sqrt(lo * hi);
    FeasibilityTest test(instance, mid, options.epsilon,
                         options.warm_start ? warm : std::vector<double>{});
    std::int64_t phases = 0;
    const bool feasible = test.run(options.max_phases, &phases);
    result.total_phases += phases;
    if (feasible) {
      best_x = test.x();
      if (options.warm_start) {
        // Leave packing headroom so the next (higher-λ) probe does not
        // start at the packing budget and get misjudged infeasible.
        warm = test.x();
        for (double& value : warm) {
          value *= 1.0 - options.epsilon;
        }
      }
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.converged = hi <= lo * (1.0 + options.epsilon);

  // Validate: whatever happened above, return an exactly feasible x and
  // its true objective.
  scale_to_feasible(instance, best_x);
  result.omega = objective_omega(instance, best_x);
  result.x = std::move(best_x);
  return result;
}

}  // namespace mmlp

// The LP formulation of Section 1.3.
//
// A finite max-min LP (1) is the linear program
//
//   maximise ω   s.t.   A x ≤ 1,   C x − ω·1 ≥ 0,   x ≥ 0, ω ≥ 0,
//
// whose constraint matrix is no longer nonnegative (the −ω column). This
// module builds that LP from an Instance and solves it exactly with the
// simplex substrate.
#pragma once

#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/lp/simplex.hpp"

namespace mmlp {

/// Build the LP; variables are x_0..x_{n−1} followed by ω at index n.
LpProblem maxmin_to_lp(const Instance& instance);

struct MaxMinLpResult {
  LpStatus status = LpStatus::kIterLimit;
  double omega = 0.0;
  std::vector<double> x;  ///< size num_agents
  std::int64_t iterations = 0;
};

/// Solve (1) exactly. An instance with no parties has ω unbounded; this
/// is reported as LpStatus::kUnbounded.
MaxMinLpResult solve_maxmin_simplex(const Instance& instance,
                                    const SimplexOptions& options = {});

}  // namespace mmlp

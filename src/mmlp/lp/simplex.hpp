// Two-phase dense simplex solver, implemented from scratch.
//
// Solves   maximise c^T x   subject to   a_i x {<=,=,>=} b_i,  x >= 0.
//
// This is the exact-solution substrate the paper's algorithms rely on:
// the per-agent local LPs (9) of Theorem 3, and global optima ω* for the
// experiment harnesses. The tableau is dense (local LPs are small by the
// bounded-growth assumption); pricing is Dantzig with an automatic switch
// to Bland's rule after a degeneracy window, which guarantees
// termination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmlp/lp/matrix.hpp"

namespace mmlp {

enum class ConstraintSense : std::uint8_t { kLe, kEq, kGe };

/// One constraint row in sparse form: sum coeff_j * x_{var_j} sense rhs.
struct LpRow {
  std::vector<std::int32_t> vars;
  std::vector<double> coeffs;
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0.0;
};

/// maximise objective^T x subject to rows, x >= 0.
struct LpProblem {
  std::int32_t num_vars = 0;
  std::vector<double> objective;  ///< size num_vars
  std::vector<LpRow> rows;

  /// Convenience mutators used by builders and tests.
  void set_objective(std::int32_t var, double coeff);
  LpRow& add_row(ConstraintSense sense, double rhs);
  void validate() const;
};

enum class LpStatus : std::uint8_t { kOptimal, kInfeasible, kUnbounded, kIterLimit };

const char* to_string(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< size num_vars when status == kOptimal
  std::int64_t iterations = 0;
};

struct SimplexOptions {
  double pivot_tol = 1e-9;       ///< entries smaller than this are zero
  double feas_tol = 1e-7;        ///< phase-1 residual considered feasible
  std::int64_t max_iterations = 200000;
  /// After this many consecutive non-improving (degenerate) pivots,
  /// switch from Dantzig to Bland pricing to break cycles.
  std::int64_t degeneracy_window = 64;
};

/// Stable serialization of every SimplexOptions field that can change
/// solver output. The incremental-solve memo fingerprints
/// (engine::Session) embed it, so two option sets that could pivot
/// differently never share a memoized solution — keep it in sync with
/// the struct when fields are added.
std::string fingerprint(const SimplexOptions& options);

/// Reusable tableau memory for solve_lp. Passing the same workspace to
/// consecutive solves recycles every internal buffer (the dense tableau,
/// the pricing row, basis bookkeeping), which matters when millions of
/// small per-agent LPs are solved in a loop. The workspace carries no
/// state between calls — results are bitwise identical with or without
/// it — it only donates capacity.
struct SimplexWorkspace {
  DenseMatrix table;
  std::vector<double> zrow;
  std::vector<double> cost;
  std::vector<double> objective;
  std::vector<std::int64_t> basis;
  std::vector<std::uint8_t> banned;
};

/// Solve with the two-phase dense simplex method.
LpResult solve_lp(const LpProblem& problem, const SimplexOptions& options = {});

/// As above, borrowing all scratch memory from `workspace`.
LpResult solve_lp(const LpProblem& problem, const SimplexOptions& options,
                  SimplexWorkspace& workspace);

/// Check x against the rows of `problem` with tolerance `tol`;
/// returns the worst violation (0 when feasible).
double max_violation(const LpProblem& problem, const std::vector<double>& x,
                     double tol = 0.0);

}  // namespace mmlp

#include "mmlp/lp/duality.hpp"

#include "mmlp/util/check.hpp"

namespace mmlp {

bool is_le_form(const LpProblem& problem) {
  for (const LpRow& row : problem.rows) {
    if (row.sense != ConstraintSense::kLe) {
      return false;
    }
  }
  return true;
}

bool is_packing_lp(const LpProblem& problem) {
  if (!is_le_form(problem)) {
    return false;
  }
  for (const double c : problem.objective) {
    if (c < 0.0) {
      return false;
    }
  }
  for (const LpRow& row : problem.rows) {
    if (row.rhs < 0.0) {
      return false;
    }
    for (const double a : row.coeffs) {
      if (a < 0.0) {
        return false;
      }
    }
  }
  return true;
}

LpProblem dual_of_le_form(const LpProblem& primal) {
  primal.validate();
  MMLP_CHECK_MSG(is_le_form(primal), "dual_of_le_form needs all-<= rows");
  LpProblem dual;
  dual.num_vars = static_cast<std::int32_t>(primal.rows.size());
  dual.objective.assign(static_cast<std::size_t>(dual.num_vars), 0.0);
  for (std::size_t i = 0; i < primal.rows.size(); ++i) {
    dual.objective[i] = -primal.rows[i].rhs;  // max −b·y
  }
  // One dual row per primal variable: −(Aᵀ y)_j ≤ −c_j.
  std::vector<LpRow> rows(static_cast<std::size_t>(primal.num_vars));
  std::vector<double> objective = primal.objective;
  objective.resize(static_cast<std::size_t>(primal.num_vars), 0.0);
  for (std::size_t j = 0; j < rows.size(); ++j) {
    rows[j].sense = ConstraintSense::kLe;
    rows[j].rhs = -objective[j];
  }
  for (std::size_t i = 0; i < primal.rows.size(); ++i) {
    const LpRow& row = primal.rows[i];
    for (std::size_t idx = 0; idx < row.vars.size(); ++idx) {
      auto& dual_row = rows[static_cast<std::size_t>(row.vars[idx])];
      dual_row.vars.push_back(static_cast<std::int32_t>(i));
      dual_row.coeffs.push_back(-row.coeffs[idx]);
    }
  }
  dual.rows = std::move(rows);
  return dual;
}

LpProblem packing_from_instance(const Instance& instance) {
  MMLP_CHECK_EQ(instance.num_parties(), 1);
  LpProblem lp;
  lp.num_vars = instance.num_agents();
  lp.objective.assign(static_cast<std::size_t>(lp.num_vars), 0.0);
  for (const Coef& entry : instance.party_support(0)) {
    lp.objective[static_cast<std::size_t>(entry.id)] = entry.value;
  }
  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    LpRow& row = lp.add_row(ConstraintSense::kLe, 1.0);
    for (const Coef& entry : instance.resource_support(i)) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
  }
  MMLP_CHECK(is_packing_lp(lp));
  return lp;
}

LpProblem covering_from_instance(const Instance& instance) {
  return dual_of_le_form(packing_from_instance(instance));
}

double duality_gap(const LpProblem& primal, const std::vector<double>& x,
                   const std::vector<double>& y) {
  MMLP_CHECK(is_le_form(primal));
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(primal.num_vars));
  MMLP_CHECK_EQ(y.size(), primal.rows.size());
  double primal_value = 0.0;
  for (std::size_t j = 0; j < x.size() && j < primal.objective.size(); ++j) {
    primal_value += primal.objective[j] * x[j];
  }
  double dual_value = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    dual_value += primal.rows[i].rhs * y[i];
  }
  return dual_value - primal_value;
}

}  // namespace mmlp

// Small dense matrix used by the simplex tableau and by tests.
#pragma once

#include <cstddef>
#include <vector>

#include "mmlp/util/check.hpp"

namespace mmlp {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Re-shape in place, reusing the existing allocation when it is large
  /// enough; every entry is set to `fill`. Lets hot loops (one simplex
  /// tableau per agent) recycle one matrix instead of reallocating.
  void reset(std::size_t rows, std::size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    MMLP_CHECK_LT(r, rows_);
    MMLP_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    MMLP_CHECK_LT(r, rows_);
    MMLP_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (for tight pivot loops).
  double* row(std::size_t r) {
    MMLP_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* row(std::size_t r) const {
    MMLP_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// y = A x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A^T x.
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  DenseMatrix transpose() const;

  /// Max |a_ij|.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mmlp

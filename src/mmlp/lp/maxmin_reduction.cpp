#include "mmlp/lp/maxmin_reduction.hpp"

#include "mmlp/util/check.hpp"

namespace mmlp {

LpProblem maxmin_to_lp(const Instance& instance) {
  LpProblem problem;
  const AgentId n = instance.num_agents();
  problem.num_vars = n + 1;  // x plus ω
  problem.objective.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
  problem.objective.back() = 1.0;  // maximise ω

  for (ResourceId i = 0; i < instance.num_resources(); ++i) {
    LpRow& row = problem.add_row(ConstraintSense::kLe, 1.0);
    for (const Coef& entry : instance.resource_support(i)) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
  }
  for (PartyId k = 0; k < instance.num_parties(); ++k) {
    LpRow& row = problem.add_row(ConstraintSense::kGe, 0.0);
    for (const Coef& entry : instance.party_support(k)) {
      row.vars.push_back(entry.id);
      row.coeffs.push_back(entry.value);
    }
    row.vars.push_back(n);  // −ω
    row.coeffs.push_back(-1.0);
  }
  return problem;
}

MaxMinLpResult solve_maxmin_simplex(const Instance& instance,
                                    const SimplexOptions& options) {
  const LpProblem problem = maxmin_to_lp(instance);
  const LpResult lp = solve_lp(problem, options);
  MaxMinLpResult result;
  result.status = lp.status;
  result.iterations = lp.iterations;
  if (lp.status == LpStatus::kOptimal) {
    result.omega = lp.objective;
    result.x.assign(lp.x.begin(),
                    lp.x.begin() + instance.num_agents());
  }
  return result;
}

}  // namespace mmlp

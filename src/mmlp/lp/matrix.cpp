#include "mmlp/lp/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mmlp {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  MMLP_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += a[c] * x[c];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::multiply_transpose(
    const std::vector<double>& x) const {
  MMLP_CHECK_EQ(x.size(), rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      y[c] += a[c] * xr;
    }
  }
  return y;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

double DenseMatrix::max_abs() const {
  double best = 0.0;
  for (const double v : data_) {
    best = std::max(best, std::abs(v));
  }
  return best;
}

}  // namespace mmlp

#include "mmlp/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "mmlp/lp/matrix.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"

namespace mmlp {

void LpProblem::set_objective(std::int32_t var, double coeff) {
  MMLP_CHECK_GE(var, 0);
  MMLP_CHECK_LT(var, num_vars);
  if (objective.size() != static_cast<std::size_t>(num_vars)) {
    objective.assign(static_cast<std::size_t>(num_vars), 0.0);
  }
  objective[static_cast<std::size_t>(var)] = coeff;
}

LpRow& LpProblem::add_row(ConstraintSense sense, double rhs) {
  rows.push_back(LpRow{{}, {}, sense, rhs});
  return rows.back();
}

void LpProblem::validate() const {
  MMLP_CHECK_GE(num_vars, 0);
  MMLP_CHECK(objective.empty() ||
             objective.size() == static_cast<std::size_t>(num_vars));
  for (const auto& row : rows) {
    MMLP_CHECK_EQ(row.vars.size(), row.coeffs.size());
    for (const auto var : row.vars) {
      MMLP_CHECK_GE(var, 0);
      MMLP_CHECK_LT(var, num_vars);
    }
  }
}

std::string fingerprint(const SimplexOptions& options) {
  std::ostringstream oss;
  oss.precision(17);
  oss << options.pivot_tol << ',' << options.feas_tol << ','
      << options.max_iterations << ',' << options.degeneracy_window;
  return oss.str();
}

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterLimit:
      return "iteration-limit";
  }
  return "unknown";
}

double max_violation(const LpProblem& problem, const std::vector<double>& x,
                     double tol) {
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(problem.num_vars));
  double worst = 0.0;
  for (const double value : x) {
    worst = std::max(worst, -value);  // x >= 0
  }
  for (const auto& row : problem.rows) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < row.vars.size(); ++j) {
      lhs += row.coeffs[j] * x[static_cast<std::size_t>(row.vars[j])];
    }
    double violation = 0.0;
    switch (row.sense) {
      case ConstraintSense::kLe:
        violation = lhs - row.rhs;
        break;
      case ConstraintSense::kGe:
        violation = row.rhs - lhs;
        break;
      case ConstraintSense::kEq:
        violation = std::abs(lhs - row.rhs);
        break;
    }
    worst = std::max(worst, violation);
  }
  return std::max(0.0, worst - tol);
}

namespace {

/// Dense tableau state for the two-phase method. All heavy buffers live
/// in the caller's SimplexWorkspace so consecutive solves reuse them;
/// every buffer is fully re-initialised here, so results do not depend
/// on what a previous solve left behind.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options,
          SimplexWorkspace& ws)
      : options_(options),
        num_structural_(problem.num_vars),
        table_(ws.table),
        zrow_(ws.zrow),
        basis_(ws.basis),
        banned_(ws.banned) {
    const std::size_t m = problem.rows.size();

    // Column layout: [structural | slack/surplus | artificial].
    num_slack_ = 0;
    num_artificial_ = 0;
    for (const auto& row : problem.rows) {
      // Rows are normalised to rhs >= 0 below; the *effective* sense after
      // normalisation decides the auxiliary columns.
      const bool flip = row.rhs < 0.0;
      ConstraintSense sense = row.sense;
      if (flip) {
        if (sense == ConstraintSense::kLe) {
          sense = ConstraintSense::kGe;
        } else if (sense == ConstraintSense::kGe) {
          sense = ConstraintSense::kLe;
        }
      }
      switch (sense) {
        case ConstraintSense::kLe:
          ++num_slack_;
          break;
        case ConstraintSense::kGe:
          ++num_slack_;
          ++num_artificial_;
          break;
        case ConstraintSense::kEq:
          ++num_artificial_;
          break;
      }
    }
    num_cols_ = static_cast<std::size_t>(num_structural_) + num_slack_ + num_artificial_;

    table_.reset(m, num_cols_ + 1, 0.0);
    basis_.assign(m, -1);
    banned_.assign(num_cols_, 0);

    std::size_t slack_cursor = static_cast<std::size_t>(num_structural_);
    std::size_t art_cursor = static_cast<std::size_t>(num_structural_) + num_slack_;
    artificial_start_ = art_cursor;

    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = problem.rows[i];
      const double sign = row.rhs < 0.0 ? -1.0 : 1.0;
      ConstraintSense sense = row.sense;
      if (sign < 0.0) {
        if (sense == ConstraintSense::kLe) {
          sense = ConstraintSense::kGe;
        } else if (sense == ConstraintSense::kGe) {
          sense = ConstraintSense::kLe;
        }
      }
      double* t = table_.row(i);
      for (std::size_t j = 0; j < row.vars.size(); ++j) {
        t[static_cast<std::size_t>(row.vars[j])] += sign * row.coeffs[j];
      }
      t[num_cols_] = sign * row.rhs;
      switch (sense) {
        case ConstraintSense::kLe:
          t[slack_cursor] = 1.0;
          basis_[i] = static_cast<std::int64_t>(slack_cursor);
          ++slack_cursor;
          break;
        case ConstraintSense::kGe:
          t[slack_cursor] = -1.0;
          ++slack_cursor;
          t[art_cursor] = 1.0;
          basis_[i] = static_cast<std::int64_t>(art_cursor);
          ++art_cursor;
          break;
        case ConstraintSense::kEq:
          t[art_cursor] = 1.0;
          basis_[i] = static_cast<std::int64_t>(art_cursor);
          ++art_cursor;
          break;
      }
    }
    MMLP_CHECK_EQ(slack_cursor, static_cast<std::size_t>(num_structural_) + num_slack_);
    MMLP_CHECK_EQ(art_cursor, num_cols_);
  }

  /// Run both phases. Returns the final status; on kOptimal the solution
  /// can be read with extract(). `cost_scratch` provides the cost-vector
  /// buffer for both phases (reused from the workspace).
  LpStatus run(const std::vector<double>& objective,
               std::vector<double>& cost_scratch) {
    // ---- Phase 1: maximise -(sum of artificials). ----
    if (num_artificial_ > 0) {
      std::vector<double>& phase1_cost = cost_scratch;
      phase1_cost.assign(num_cols_, 0.0);
      for (std::size_t j = artificial_start_; j < num_cols_; ++j) {
        phase1_cost[j] = -1.0;
      }
      init_zrow(phase1_cost);
      // Phase 1 is done the moment its objective hits zero; without this
      // early exit an already-feasible start (common: all artificial rows
      // have rhs 0) grinds through thousands of degenerate pivots whose
      // accumulated roundoff can corrupt the tableau.
      phase1_early_exit_ = true;
      const LpStatus status = iterate(phase1_cost);
      phase1_early_exit_ = false;
      if (status != LpStatus::kOptimal) {
        // Phase 1 is bounded below (>= -sum b), so unbounded cannot occur;
        // propagate an iteration-limit verdict.
        return status == LpStatus::kUnbounded ? LpStatus::kIterLimit : status;
      }
      if (phase1_objective() < -options_.feas_tol) {
        return LpStatus::kInfeasible;
      }
      purge_artificials();
      for (std::size_t j = artificial_start_; j < num_cols_; ++j) {
        banned_[j] = 1;
      }
    }

    // ---- Phase 2: original objective over structural columns. ----
    std::vector<double>& phase2_cost = cost_scratch;
    phase2_cost.assign(num_cols_, 0.0);
    for (std::size_t j = 0;
         j < static_cast<std::size_t>(num_structural_) && j < objective.size();
         ++j) {
      phase2_cost[j] = objective[j];
    }
    init_zrow(phase2_cost);
    return iterate(phase2_cost);
  }

  std::vector<double> extract() const {
    std::vector<double> x(static_cast<std::size_t>(num_structural_), 0.0);
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const std::int64_t var = basis_[i];
      if (var >= 0 && var < num_structural_) {
        x[static_cast<std::size_t>(var)] =
            std::max(0.0, table_(i, num_cols_));
      }
    }
    return x;
  }

  std::int64_t iterations() const { return iterations_; }

 private:
  double phase1_objective() const {
    // c_B^T b with phase-1 costs: -(sum of basic artificial values).
    double z = 0.0;
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (basis_[i] >= static_cast<std::int64_t>(artificial_start_)) {
        z -= table_(i, num_cols_);
      }
    }
    return z;
  }

  void init_zrow(const std::vector<double>& cost) {
    zrow_.assign(num_cols_ + 1, 0.0);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      zrow_[j] = -cost[j];
    }
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const double cb = cost[static_cast<std::size_t>(basis_[i])];
      if (cb == 0.0) {
        continue;
      }
      const double* t = table_.row(i);
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        zrow_[j] += cb * t[j];
      }
    }
  }

  /// Price, ratio-test, pivot until optimal/unbounded/limit.
  LpStatus iterate(const std::vector<double>& cost) {
    (void)cost;
    std::int64_t degenerate_streak = 0;
    while (true) {
      if (phase1_early_exit_ && zrow_[num_cols_] >= -options_.feas_tol) {
        return LpStatus::kOptimal;  // no infeasibility left to price out
      }
      if (iterations_ >= options_.max_iterations) {
        return LpStatus::kIterLimit;
      }
      const bool bland = degenerate_streak > options_.degeneracy_window;
      // Entering column.
      std::int64_t enter = -1;
      double best = -options_.pivot_tol;
      for (std::size_t j = 0; j < num_cols_; ++j) {
        if (banned_[j]) {
          continue;
        }
        if (zrow_[j] < best) {
          enter = static_cast<std::int64_t>(j);
          if (bland) {
            break;  // first eligible index
          }
          best = zrow_[j];
        }
      }
      if (enter < 0) {
        return LpStatus::kOptimal;
      }
      // Leaving row: min ratio; ties by smallest basis variable (Bland).
      std::int64_t leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < basis_.size(); ++i) {
        const double a = table_(i, static_cast<std::size_t>(enter));
        if (a <= options_.pivot_tol) {
          continue;
        }
        const double ratio = table_(i, num_cols_) / a;
        if (ratio < best_ratio - options_.pivot_tol ||
            (ratio < best_ratio + options_.pivot_tol &&
             (leave < 0 || basis_[i] < basis_[static_cast<std::size_t>(leave)]))) {
          best_ratio = ratio;
          leave = static_cast<std::int64_t>(i);
        }
      }
      if (leave < 0) {
        return LpStatus::kUnbounded;
      }
      degenerate_streak =
          best_ratio <= options_.pivot_tol ? degenerate_streak + 1 : 0;
      pivot(static_cast<std::size_t>(leave), static_cast<std::size_t>(enter));
      ++iterations_;
    }
  }

  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    double* pr = table_.row(pivot_row);
    const double pivot_value = pr[pivot_col];
    MMLP_CHECK_GT(std::abs(pivot_value), 0.0);
    const double inv = 1.0 / pivot_value;
    for (std::size_t j = 0; j <= num_cols_; ++j) {
      pr[j] *= inv;
    }
    pr[pivot_col] = 1.0;  // kill roundoff
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (i == pivot_row) {
        continue;
      }
      double* t = table_.row(i);
      const double factor = t[pivot_col];
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        t[j] -= factor * pr[j];
      }
      t[pivot_col] = 0.0;
    }
    const double zfactor = zrow_[pivot_col];
    if (zfactor != 0.0) {
      for (std::size_t j = 0; j <= num_cols_; ++j) {
        zrow_[j] -= zfactor * pr[j];
      }
      zrow_[pivot_col] = 0.0;
    }
    basis_[pivot_row] = static_cast<std::int64_t>(pivot_col);
    // Clamp tiny negative rhs introduced by elimination.
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      double& rhs = table_(i, num_cols_);
      if (rhs < 0.0 && rhs > -options_.feas_tol) {
        rhs = 0.0;
      }
    }
  }

  /// After phase 1, pivot basic artificials (value ~0) out of the basis,
  /// or detect redundant rows (left basic at zero with a banned column,
  /// which phase 2 then never moves).
  void purge_artificials() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (basis_[i] < static_cast<std::int64_t>(artificial_start_)) {
        continue;
      }
      const double* t = table_.row(i);
      std::size_t enter = num_cols_;
      for (std::size_t j = 0; j < artificial_start_; ++j) {
        if (std::abs(t[j]) > options_.pivot_tol) {
          enter = j;
          break;
        }
      }
      if (enter < num_cols_) {
        pivot(i, enter);
      }
      // else: the row is 0 = 0 (redundant); the artificial stays basic at
      // value zero and its column is banned, so it never re-enters.
    }
  }

  SimplexOptions options_;
  std::int32_t num_structural_ = 0;
  std::size_t num_slack_ = 0;
  std::size_t num_artificial_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t artificial_start_ = 0;
  DenseMatrix& table_;
  std::vector<double>& zrow_;
  std::vector<std::int64_t>& basis_;
  std::vector<std::uint8_t>& banned_;
  std::int64_t iterations_ = 0;
  bool phase1_early_exit_ = false;
};

}  // namespace

LpResult solve_lp(const LpProblem& problem, const SimplexOptions& options,
                  SimplexWorkspace& workspace) {
  problem.validate();
  LpResult result;
  if (problem.rows.empty()) {
    // Without constraints the optimum is 0 iff no objective coefficient is
    // positive (x >= 0), else unbounded.
    result.x.assign(static_cast<std::size_t>(problem.num_vars), 0.0);
    for (const double c : problem.objective) {
      if (c > 0.0) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
    }
    result.status = LpStatus::kOptimal;
    result.objective = 0.0;
    return result;
  }

  Tableau tableau(problem, options, workspace);
  std::vector<double>& objective = workspace.objective;
  objective.assign(problem.objective.begin(), problem.objective.end());
  objective.resize(static_cast<std::size_t>(problem.num_vars), 0.0);
  result.status = tableau.run(objective, workspace.cost);
  result.iterations = tableau.iterations();
  // Registry lookups resolve once; two relaxed adds per LP solve is
  // noise next to a single pivot.
  static obs::Counter& lp_solves =
      obs::Registry::global().counter("simplex.solves");
  static obs::Counter& lp_pivots =
      obs::Registry::global().counter("simplex.pivots");
  lp_solves.increment();
  lp_pivots.add(result.iterations);
  if (result.status == LpStatus::kOptimal) {
    result.x = tableau.extract();
    double z = 0.0;
    for (std::size_t j = 0; j < result.x.size(); ++j) {
      z += objective[j] * result.x[j];
    }
    result.objective = z;
  }
  return result;
}

LpResult solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  SimplexWorkspace workspace;
  return solve_lp(problem, options, workspace);
}

}  // namespace mmlp

// Approximate max-min LP solver for instances beyond the dense simplex.
//
// Solves  max ω : Ax ≤ 1, Cx ≥ ω·1, x ≥ 0  to a (1±ε) guarantee target by
// geometric bisection on ω. Each candidate ω is tested with a
// multiplicative-weights mixed packing/covering feasibility routine in the
// style of Young (2001) / Luby–Nisan: packing rows carry weights
// exp(+η·load), covering rows exp(−η·benefit); every phase increments all
// agents whose benefit/cost weight ratio is within (1+ε) of the best, with
// steps sized so no row changes by more than ε per phase. Phases are
// embarrassingly parallel over agents (the HPC-relevant property: this is
// the variant that parallelises, unlike the sequential greedy).
//
// The routine is *validating*: the returned x is always scaled to exact
// feasibility and ω is re-measured against the instance, so the result is
// a true lower bound on ω* regardless of early stopping. `converged`
// reports whether the bisection bracket shrank below 1+ε.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

struct MwuOptions {
  double epsilon = 0.05;           ///< target relative error
  std::int64_t max_phases = 50000; ///< per feasibility test
  std::int32_t max_bisection_steps = 24;
  bool warm_start = true;          ///< reuse x across bisection probes
};

struct MwuResult {
  double omega = 0.0;        ///< measured ω of the returned feasible x
  std::vector<double> x;     ///< feasible solution (scaled exactly)
  bool converged = false;    ///< bracket shrank below (1+ε)
  std::int64_t total_phases = 0;
  std::int32_t bisection_steps = 0;
};

/// Approximately solve (1). Requires at least one party.
MwuResult solve_maxmin_mwu(const Instance& instance, const MwuOptions& options = {});

}  // namespace mmlp

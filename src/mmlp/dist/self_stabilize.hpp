// Self-stabilizing flooding (the Section 1.1 claim that local
// algorithms yield self-stabilizing algorithms with constant
// stabilization time).
//
// Every agent maintains a table of (origin, hop distance) entries with
// distances bounded by the horizon. A synchronous step recomputes each
// table *from scratch* out of the neighbours' tables:
//
//   table_v ← {(v, 0)} ∪ min-merge{ (o, d+1) : (o, d) ∈ table_u,
//                                   u neighbour of v, d + 1 ≤ horizon }
//
// Because nothing of the old local state survives a step, the rule is
// self-stabilizing: after one round every distance-0 entry is a true
// self entry, and inductively after k rounds every entry with d < k is
// correct while corrupted "ghost" entries can only age (their distance
// grows each round) until they exceed the horizon and vanish. From ANY
// state the legitimate state — table_v = {(o, d_H(v,o)) : d ≤ horizon},
// the fixed point of the rule — is reached within horizon + 1 rounds,
// a constant independent of the network size.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/graph/hypergraph.hpp"
#include "mmlp/util/fault.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

class SelfStabilizingFlood {
 public:
  /// Starts in the legitimate state for the given knowledge horizon.
  SelfStabilizingFlood(const Instance& instance, std::int32_t horizon,
                       bool collaboration_oblivious = false);

  std::int32_t horizon() const { return horizon_; }
  const Hypergraph& graph() const { return graph_; }

  /// Cold start: erase every table (the all-empty transient state).
  void clear();

  /// Jump directly to the legitimate state.
  void reset_legitimate();

  /// Adversarial corruption: apply `entries` random table mutations
  /// (overwrite an (origin, distance) entry or delete one), driven by
  /// the caller's rng for reproducibility.
  void corrupt(Rng& rng, std::int32_t entries);

  /// Maximal adversarial corruption: replace EVERY table with a fully
  /// random one (random size, random in-range origins and distances) —
  /// nothing of the legitimate state survives. The strongest transient
  /// state the stabilization contract must recover from.
  void corrupt_all(Rng& rng);

  /// One synchronous round of the recompute rule. Returns the number of
  /// agents whose table changed (0 ⇔ a fixed point, i.e. legitimacy).
  std::int32_t step();

  /// One synchronous round exchanged through `faults` as round `round`
  /// of its plan (nullptr = fault-free, identical to step()). Crash and
  /// state-corruption events rewrite the victim's table at round start;
  /// message fates apply per (receiver, sender) packet during the
  /// recompute merge; delay delivers the sender's start-of-previous-
  /// round table. Deterministic on any thread count: all fault
  /// randomness comes from the injector's per-event derived streams.
  std::int32_t step(FaultInjector* faults, std::int32_t round);

  /// Step until a round changes nothing, executing at most `max_rounds`
  /// rounds. Returns the number of rounds executed.
  std::int32_t run_until_stable(std::int32_t max_rounds);

  /// True iff every table equals the legitimate table.
  bool is_legitimate() const;

  /// The origins agent v currently knows, sorted ascending.
  std::vector<AgentId> knowledge(AgentId v) const;

  /// The safe solution (eq. (2)) computed from the current tables via
  /// per-agent contexts; equals safe_solution() in the legitimate state.
  std::vector<double> safe_output() const;

 private:
  struct Entry {
    AgentId origin = -1;
    std::int32_t dist = 0;

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  using Table = std::vector<Entry>;  // sorted by origin

  const Instance* instance_;
  Hypergraph graph_;
  std::int32_t horizon_ = 0;
  std::vector<Table> tables_;
  std::vector<Table> legitimate_;  // the fixed point, precomputed once
  /// Start-of-previous-round tables, maintained only across faulty
  /// steps whose plan contains delay events (what a delayed packet
  /// delivers).
  std::vector<Table> stale_;
};

}  // namespace mmlp

// The LOCAL model of Section 1.1 as an executable runtime.
//
// LocalRuntime simulates synchronous flooding over the communication
// hypergraph H (full or collaboration-oblivious): in every round each
// agent sends one packet per incident hyperedge — its current knowledge
// set — and merges what arrives. After r rounds agent v knows exactly
// B_H(v, r), which is the defining property of a horizon-r local
// algorithm (the simulator is tested against graph/bfs ball()).
//
// AgentContext is the knowledge boundary. Distributed algorithms read
// Instance data only through a context, and every accessor throws
// CheckError when the request reaches outside the agent's horizon, so a
// per-agent algorithm is *structurally* unable to use information a real
// message-passing execution would not have. materialize() converts the
// horizon into a standalone sub-Instance (the agent's "world") on which
// the centralized machinery (views, LPs, balls) can run unchanged; the
// materialize_into + MaterializeArena variant lets a worker loop reuse
// one arena (global→local stamp map, id buffers, coefficient staging)
// across all the agents it processes.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/graph/hypergraph.hpp"
#include "mmlp/util/fault.hpp"

namespace mmlp {

/// Synchronous round-based flooding simulator over H.
class LocalRuntime {
 public:
  /// Derives the communication graph from the instance hypergraph
  /// (resource hyperedges only when `collaboration_oblivious`).
  explicit LocalRuntime(const Instance& instance,
                        bool collaboration_oblivious = false);

  const Hypergraph& graph() const { return graph_; }
  bool collaboration_oblivious() const { return collaboration_oblivious_; }

  /// Run `rounds` flooding rounds from the initial state where every
  /// agent knows only itself. Returns the per-agent knowledge sets
  /// (sorted agent ids); knowledge[v] == ball(graph(), v, rounds).
  std::vector<std::vector<AgentId>> flood(std::int32_t rounds) const;

  /// As flood(rounds), exchanging every per-round message through
  /// `faults` (nullptr = fault-free, bitwise identical to the overload
  /// above). Message drops/duplicates/corruptions/delays are applied
  /// per (receiver, sender) packet; a crashed agent restarts the round
  /// knowing only itself; state corruption mutates the victim's
  /// knowledge set in place. Every mutation draws from the injector's
  /// per-event deterministic streams, so a fault schedule replays
  /// bitwise on any thread count.
  std::vector<std::vector<AgentId>> flood(std::int32_t rounds,
                                          FaultInjector* faults) const;

  /// Bandwidth accounting for flood(rounds): one message per
  /// (agent, incident hyperedge, round), i.e. rounds · Σ_v deg(v).
  std::int64_t message_count(std::int32_t rounds) const;

 private:
  Hypergraph graph_;
  bool collaboration_oblivious_ = false;
  std::int64_t degree_sum_ = 0;
};

/// A standalone copy of everything inside one agent's horizon — see
/// AgentContext::materialize(). Local ids are positions in the sorted
/// global id lists, so relative order (and hence the deterministic
/// solver pivoting on the materialized world) matches the global
/// instance exactly.
struct LocalWorld {
  Instance instance;  ///< the truncated sub-instance; passes validate()

  std::vector<AgentId> global_agents;       ///< sorted; local id = position
  std::vector<ResourceId> global_resources; ///< sorted; local id = position
  std::vector<PartyId> global_parties;      ///< sorted; local id = position
  std::int32_t self_local = -1;             ///< local id of the owning agent

  /// Local id of a global agent, or -1 when outside the horizon.
  std::int32_t local_of(AgentId global) const;
};

/// Reusable scratch for AgentContext::materialize_into. One per worker:
/// the global→local stamp map stays allocated (all −1 between calls), so
/// truncating supports to the horizon is O(1) per coefficient; reusing
/// the destination LocalWorld across agents keeps its id-buffer capacity
/// as well, leaving only the world's own instance to allocate.
struct MaterializeArena {
  std::vector<std::int32_t> agent_local;  ///< global agent -> local id, −1 outside
};

/// Knowledge-boundary-enforcing view of an Instance.
class AgentContext {
 public:
  /// `knowledge` is the set of agents within the horizon (as produced by
  /// LocalRuntime::flood); it must contain `self` and only valid ids.
  AgentContext(const Instance& instance, AgentId self,
               std::vector<AgentId> knowledge);

  AgentId self() const { return self_; }
  const std::vector<AgentId>& knowledge() const { return knowledge_; }
  bool knows(AgentId v) const;

  /// I_v with coefficients; throws CheckError unless v is known.
  CoefSpan agent_resources(AgentId v) const;
  /// K_v with coefficients; throws CheckError unless v is known.
  CoefSpan agent_parties(AgentId v) const;

  /// V_i with coefficients. A hyperedge is visible through any known
  /// member (its member list is part of that member's packet), so this
  /// throws CheckError only when no member of V_i is known.
  CoefSpan resource_support(ResourceId i) const;
  /// V_k with coefficients; same visibility rule as resource_support.
  CoefSpan party_support(PartyId k) const;

  /// Build the agent's world: all known agents, every resource of every
  /// known agent (support truncated to known members), and exactly the
  /// parties whose support is fully known (a truncated party would
  /// misstate its benefit row, so partial parties are dropped).
  LocalWorld materialize() const;

  /// As materialize(), reusing `world`'s buffers and the worker's arena.
  void materialize_into(LocalWorld& world, MaterializeArena& arena) const;

 private:
  const Instance* instance_;
  AgentId self_;
  std::vector<AgentId> knowledge_;
};

}  // namespace mmlp

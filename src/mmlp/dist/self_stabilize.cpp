// Self-stabilizing knowledge maintenance (the Section 1.1 remark that
// constant-horizon local algorithms yield self-stabilizing algorithms
// with constant stabilization time): every round each agent recomputes
// its radius-h knowledge purely from its neighbours' current claims plus
// itself, so any corrupted state is flushed after at most horizon + 1
// synchronous rounds and the safe/averaging outputs derived from the
// stabilized knowledge coincide with the fault-free execution.
#include "mmlp/dist/self_stabilize.hpp"

#include <algorithm>

#include "mmlp/dist/algorithms.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

SelfStabilizingFlood::SelfStabilizingFlood(const Instance& instance,
                                           std::int32_t horizon,
                                           bool collaboration_oblivious)
    : instance_(&instance),
      graph_(instance.communication_graph(collaboration_oblivious)),
      horizon_(horizon) {
  MMLP_CHECK_GE(horizon, 0);
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  legitimate_.resize(n);
  parallel_for(n, [&](std::size_t v) {
    const auto dist =
        bfs_distances(graph_, static_cast<NodeId>(v), horizon_);
    Table& table = legitimate_[v];
    for (std::size_t o = 0; o < dist.size(); ++o) {
      if (dist[o] >= 0) {
        table.push_back({static_cast<AgentId>(o), dist[o]});
      }
    }
  });
  tables_ = legitimate_;
}

void SelfStabilizingFlood::clear() {
  for (Table& table : tables_) {
    table.clear();
  }
}

void SelfStabilizingFlood::reset_legitimate() { tables_ = legitimate_; }

void SelfStabilizingFlood::corrupt(Rng& rng, std::int32_t entries) {
  const auto n = static_cast<std::uint64_t>(tables_.size());
  if (n == 0) {
    return;
  }
  for (std::int32_t e = 0; e < entries; ++e) {
    Table& table = tables_[rng.next_below(n)];
    if (!table.empty() && rng.bernoulli(0.25)) {
      table.erase(table.begin() +
                  static_cast<std::ptrdiff_t>(rng.next_below(table.size())));
      continue;
    }
    const Entry ghost{static_cast<AgentId>(rng.next_below(n)),
                      static_cast<std::int32_t>(
                          rng.uniform_int(0, std::max(horizon_, 0)))};
    const auto it = std::lower_bound(
        table.begin(), table.end(), ghost.origin,
        [](const Entry& entry, AgentId o) { return entry.origin < o; });
    if (it != table.end() && it->origin == ghost.origin) {
      it->dist = ghost.dist;
    } else {
      table.insert(it, ghost);
    }
  }
}

void SelfStabilizingFlood::corrupt_all(Rng& rng) {
  const auto n = static_cast<std::uint64_t>(tables_.size());
  for (Table& table : tables_) {
    table.clear();
    // Random size up to about twice a plausible ball, random in-range
    // origins and distances, deduplicated by origin — a table with no
    // relation to the legitimate one (the self entry included only by
    // chance).
    const std::uint64_t entries = rng.next_below(2 * std::max<std::uint64_t>(
                                                         1, horizon_ + 2) +
                                                 1);
    for (std::uint64_t e = 0; e < entries; ++e) {
      const Entry ghost{static_cast<AgentId>(rng.next_below(n)),
                        static_cast<std::int32_t>(
                            rng.uniform_int(0, std::max(horizon_, 0)))};
      const auto it = std::lower_bound(
          table.begin(), table.end(), ghost.origin,
          [](const Entry& entry, AgentId o) { return entry.origin < o; });
      if (it != table.end() && it->origin == ghost.origin) {
        it->dist = ghost.dist;
      } else {
        table.insert(it, ghost);
      }
    }
  }
}

std::int32_t SelfStabilizingFlood::step() { return step(nullptr, 0); }

std::int32_t SelfStabilizingFlood::step(FaultInjector* faults,
                                        std::int32_t round) {
  const auto n = static_cast<std::size_t>(tables_.size());
  bool track_stale = false;
  if (faults != nullptr) {
    faults->begin_round(round);
    track_stale = std::any_of(
        faults->plan().events.begin(), faults->plan().events.end(),
        [](const FaultEvent& event) {
          return event.kind == FaultKind::kDelayMessage;
        });
    if (track_stale && stale_.size() != n) {
      stale_ = tables_;  // first faulty round: no older state exists
    }
    // State-level faults rewrite tables serially before anyone reads
    // them: a crashed agent restarts cold (empty table — the recompute
    // rule regrows its self entry this very round), a state corruption
    // applies the injector's per-event mutation stream.
    for (std::size_t v = 0; v < n; ++v) {
      const auto agent = static_cast<AgentId>(v);
      if (faults->crashed(agent)) {
        tables_[v].clear();
      }
      if (faults->state_corrupted(agent)) {
        Rng rng = faults->event_rng(agent);
        Table& table = tables_[v];
        const std::uint64_t mutations = 1 + rng.next_below(4);
        for (std::uint64_t m = 0; m < mutations; ++m) {
          if (!table.empty() && rng.bernoulli(0.5)) {
            table.erase(
                table.begin() +
                static_cast<std::ptrdiff_t>(rng.next_below(table.size())));
          } else {
            const Entry ghost{
                static_cast<AgentId>(rng.next_below(n)),
                static_cast<std::int32_t>(
                    rng.uniform_int(0, std::max(horizon_, 0)))};
            const auto it = std::lower_bound(
                table.begin(), table.end(), ghost.origin,
                [](const Entry& entry, AgentId o) { return entry.origin < o; });
            if (it != table.end() && it->origin == ghost.origin) {
              it->dist = ghost.dist;
            } else {
              table.insert(it, ghost);
            }
          }
        }
      }
    }
  }
  std::vector<Table> next(n);
  std::vector<std::uint8_t> changed(n, 0);
  parallel_for(n, [&](std::size_t v) {
    // Recompute from scratch: self entry plus aged neighbour entries,
    // keeping the minimum distance per origin. Message faults apply per
    // (receiver, sender) packet; all their randomness comes from
    // derived per-event streams, so the faulty round is deterministic
    // on any thread count.
    Table merged;
    merged.push_back({static_cast<AgentId>(v), 0});
    for (const EdgeId e : graph_.edges_of(static_cast<NodeId>(v))) {
      for (const NodeId u : graph_.edge(e)) {
        if (u == static_cast<NodeId>(v)) {
          continue;
        }
        FaultInjector::MessageFate fate;
        if (faults != nullptr) {
          fate = faults->message_fate(static_cast<AgentId>(v),
                                      static_cast<AgentId>(u));
        }
        if (fate.copies == 0) {
          continue;  // dropped in flight
        }
        const Table& payload =
            fate.delay && track_stale ? stale_[static_cast<std::size_t>(u)]
                                      : tables_[static_cast<std::size_t>(u)];
        Rng rng = faults != nullptr && fate.corrupt
                      ? faults->event_rng(static_cast<AgentId>(v),
                                          static_cast<AgentId>(u))
                      : Rng(0);
        for (std::int32_t c = 0; c < fate.copies; ++c) {
          for (const Entry& entry : payload) {
            Entry delivered = entry;
            if (fate.corrupt && rng.bernoulli(0.25)) {
              if (rng.bernoulli(0.5)) {
                delivered.origin = static_cast<AgentId>(rng.next_below(n));
              } else {
                delivered.dist = static_cast<std::int32_t>(
                    rng.uniform_int(0, std::max(horizon_, 0)));
              }
            }
            if (delivered.dist + 1 <= horizon_) {
              merged.push_back({delivered.origin, delivered.dist + 1});
            }
          }
        }
      }
    }
    std::sort(merged.begin(), merged.end(), [](const Entry& a, const Entry& b) {
      return a.origin < b.origin || (a.origin == b.origin && a.dist < b.dist);
    });
    Table& table = next[v];
    for (const Entry& entry : merged) {
      if (table.empty() || table.back().origin != entry.origin) {
        table.push_back(entry);
      }
    }
    // The self entry wins any ghost claiming distance 0 to v.
    changed[v] = (table != tables_[v]) ? 1 : 0;
  });
  std::int32_t num_changed = 0;
  for (const std::uint8_t flag : changed) {
    num_changed += flag;
  }
  if (track_stale) {
    stale_ = tables_;  // start-of-this-round state for the next delay
  }
  tables_.swap(next);
  return num_changed;
}

std::int32_t SelfStabilizingFlood::run_until_stable(std::int32_t max_rounds) {
  std::int32_t rounds = 0;
  while (rounds < max_rounds) {
    ++rounds;
    if (step() == 0) {
      break;
    }
  }
  return rounds;
}

bool SelfStabilizingFlood::is_legitimate() const {
  return tables_ == legitimate_;
}

std::vector<AgentId> SelfStabilizingFlood::knowledge(AgentId v) const {
  MMLP_CHECK_GE(v, 0);
  MMLP_CHECK_LT(static_cast<std::size_t>(v), tables_.size());
  std::vector<AgentId> origins;
  const Table& table = tables_[static_cast<std::size_t>(v)];
  origins.reserve(table.size());
  for (const Entry& entry : table) {
    origins.push_back(entry.origin);
  }
  return origins;
}

std::vector<double> SelfStabilizingFlood::safe_output() const {
  const auto n = static_cast<std::size_t>(tables_.size());
  std::vector<double> x(n, 0.0);
  parallel_for(n, [&](std::size_t v) {
    const AgentContext ctx(*instance_, static_cast<AgentId>(v),
                           knowledge(static_cast<AgentId>(v)));
    x[v] = safe_from_context(ctx);
  });
  return x;
}

}  // namespace mmlp

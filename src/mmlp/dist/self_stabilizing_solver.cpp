// Self-stabilizing safe/averaging executions: the knowledge substrate
// is SelfStabilizingFlood (recompute-from-neighbours each round, faults
// applied through the injector), and output() runs the same per-agent
// decision pipelines as the fault-free distributed solvers on whatever
// the tables currently claim — so once the tables reach the legitimate
// fixed point, the outputs are bit-for-bit the fault-free ones.
#include "mmlp/dist/self_stabilizing_solver.hpp"

#include "mmlp/dist/algorithms.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

namespace {

std::int32_t horizon_for(SelfStabilizingSolver::Algorithm algorithm,
                         const LocalAveragingOptions& options) {
  if (algorithm == SelfStabilizingSolver::Algorithm::kSafe) {
    return 1;
  }
  MMLP_CHECK_GE(options.R, 1);
  return 2 * options.R + 1;
}

}  // namespace

SelfStabilizingSolver::SelfStabilizingSolver(
    const Instance& instance, Algorithm algorithm,
    const LocalAveragingOptions& options)
    : instance_(&instance),
      algorithm_(algorithm),
      options_(options),
      flood_(instance, horizon_for(algorithm, options),
             options.collaboration_oblivious) {
  if (algorithm_ == Algorithm::kAveraging) {
    MMLP_CHECK_MSG(options_.damping == AveragingDamping::kBetaPerAgent,
                   "only the per-agent damping of eq. (10) is a local rule");
  }
}

std::int32_t SelfStabilizingSolver::run_plan(FaultInjector& faults) {
  const std::int32_t rounds = faults.plan().rounds();
  for (std::int32_t round = 0; round < rounds; ++round) {
    flood_.step(&faults, round);
  }
  return rounds;
}

std::int32_t SelfStabilizingSolver::stabilize(std::int32_t max_rounds) {
  return flood_.run_until_stable(max_rounds);
}

std::vector<double> SelfStabilizingSolver::output() const {
  if (algorithm_ == Algorithm::kSafe) {
    return flood_.safe_output();
  }
  const auto n = static_cast<std::size_t>(instance_->num_agents());
  std::vector<double> x(n, 0.0);
  // Chunked like distributed_local_averaging_with (dedup off): each
  // worker carries one materialization/view/LP bundle across all its
  // agents; the per-agent pipeline is the shared pure function, so the
  // legitimate-state output matches the session path bitwise.
  chunked_parallel_for(n, [&](std::size_t begin, std::size_t end) {
    engine::DistScratch scratch;
    for (std::size_t j = begin; j < end; ++j) {
      const auto agent = static_cast<AgentId>(j);
      x[j] = averaging_pipeline(*instance_, agent, flood_.knowledge(agent),
                                options_, scratch);
    }
  });
  return x;
}

}  // namespace mmlp

// Flooding (== ball growth: after r rounds agent v knows B_H(v, r)) and
// the knowledge-boundary machinery. The flood loop double-buffers the
// per-agent knowledge sets and reuses the receive-side vectors across
// rounds, so a full 2R+1-round flood allocates only what the final balls
// occupy; materialize_into scatters the horizon into a stamp map so
// truncating supports to known members is O(1) per coefficient.
#include "mmlp/dist/runtime.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/stamp_guard.hpp"

namespace mmlp {

LocalRuntime::LocalRuntime(const Instance& instance,
                           bool collaboration_oblivious)
    : graph_(instance.communication_graph(collaboration_oblivious)),
      collaboration_oblivious_(collaboration_oblivious) {
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    degree_sum_ += static_cast<std::int64_t>(graph_.degree(v));
  }
}

std::vector<std::vector<AgentId>> LocalRuntime::flood(
    std::int32_t rounds) const {
  return flood(rounds, nullptr);
}

std::vector<std::vector<AgentId>> LocalRuntime::flood(
    std::int32_t rounds, FaultInjector* faults) const {
  MMLP_CHECK_GE(rounds, 0);
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  std::vector<std::vector<AgentId>> knowledge(n);
  for (std::size_t v = 0; v < n; ++v) {
    knowledge[v] = {static_cast<AgentId>(v)};
  }
  // Delay faults deliver the sender's start-of-previous-round state;
  // track that snapshot only when the plan can ask for it.
  const bool track_stale =
      faults != nullptr &&
      std::any_of(faults->plan().events.begin(), faults->plan().events.end(),
                  [](const FaultEvent& event) {
                    return event.kind == FaultKind::kDelayMessage;
                  });
  std::vector<std::vector<AgentId>> stale;
  if (track_stale) {
    stale = knowledge;
  }
  std::vector<std::vector<AgentId>> received(n);
  for (std::int32_t round = 0; round < rounds; ++round) {
    if (faults != nullptr) {
      faults->begin_round(round);
      // State-level faults apply serially at round start, before the
      // exchange reads anyone's knowledge.
      for (std::size_t v = 0; v < n; ++v) {
        const auto agent = static_cast<AgentId>(v);
        if (faults->crashed(agent)) {
          knowledge[v] = {agent};  // restart with cleared state
        }
        if (faults->state_corrupted(agent)) {
          Rng rng = faults->event_rng(agent);
          auto& own = knowledge[v];
          const std::uint64_t mutations = 1 + rng.next_below(3);
          for (std::uint64_t m = 0; m < mutations; ++m) {
            if (!own.empty() && rng.bernoulli(0.5)) {
              own.erase(own.begin() +
                        static_cast<std::ptrdiff_t>(rng.next_below(own.size())));
            } else {
              own.push_back(static_cast<AgentId>(rng.next_below(n)));
            }
          }
          std::sort(own.begin(), own.end());
          own.erase(std::unique(own.begin(), own.end()), own.end());
        }
      }
    }
    // Synchronous round: every agent reads the packet each hyperedge
    // member broadcast at the end of the previous round and merges.
    // Writes go only to received[v] (whose buffer is recycled from two
    // rounds ago by the swap below), so the round is parallel over v.
    // Fault fates are pure lookups plus per-event derived rngs, so the
    // faulty round stays deterministic under parallel execution.
    parallel_for(n, [&](std::size_t v) {
      std::vector<AgentId>& merged = received[v];
      merged.clear();
      const auto& own = knowledge[v];
      merged.insert(merged.end(), own.begin(), own.end());
      for (const EdgeId e : graph_.edges_of(static_cast<NodeId>(v))) {
        for (const NodeId u : graph_.edge(e)) {
          if (u == static_cast<NodeId>(v)) {
            continue;
          }
          const auto& packet = knowledge[static_cast<std::size_t>(u)];
          if (faults == nullptr) {
            merged.insert(merged.end(), packet.begin(), packet.end());
            continue;
          }
          const FaultInjector::MessageFate fate = faults->message_fate(
              static_cast<AgentId>(v), static_cast<AgentId>(u));
          if (fate.copies == 0) {
            continue;  // dropped in flight
          }
          const auto& payload =
              fate.delay && track_stale ? stale[static_cast<std::size_t>(u)]
                                        : packet;
          // Duplicates are idempotent under the union-merge, but insert
          // both copies anyway — the exchange models the channel, not
          // the merge's tolerance of it.
          for (std::int32_t c = 0; c < fate.copies; ++c) {
            if (!fate.corrupt) {
              merged.insert(merged.end(), payload.begin(), payload.end());
              continue;
            }
            Rng rng = faults->event_rng(static_cast<AgentId>(v),
                                        static_cast<AgentId>(u));
            for (const AgentId id : payload) {
              if (rng.bernoulli(0.25)) {
                merged.push_back(static_cast<AgentId>(rng.next_below(n)));
              } else {
                merged.push_back(id);
              }
            }
          }
        }
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    });
    if (track_stale) {
      stale = knowledge;
    }
    knowledge.swap(received);
  }
  return knowledge;
}

std::int64_t LocalRuntime::message_count(std::int32_t rounds) const {
  MMLP_CHECK_GE(rounds, 0);
  return static_cast<std::int64_t>(rounds) * degree_sum_;
}

std::int32_t LocalWorld::local_of(AgentId global) const {
  const auto it =
      std::lower_bound(global_agents.begin(), global_agents.end(), global);
  if (it != global_agents.end() && *it == global) {
    return static_cast<std::int32_t>(it - global_agents.begin());
  }
  return -1;
}

AgentContext::AgentContext(const Instance& instance, AgentId self,
                           std::vector<AgentId> knowledge)
    : instance_(&instance), self_(self), knowledge_(std::move(knowledge)) {
  std::sort(knowledge_.begin(), knowledge_.end());
  knowledge_.erase(std::unique(knowledge_.begin(), knowledge_.end()),
                   knowledge_.end());
  MMLP_CHECK_MSG(!knowledge_.empty() && knowledge_.front() >= 0 &&
                     knowledge_.back() < instance.num_agents(),
                 "knowledge set contains invalid agent ids");
  MMLP_CHECK_MSG(knows(self_),
                 "agent " << self_ << " missing from its own knowledge set");
}

bool AgentContext::knows(AgentId v) const {
  return std::binary_search(knowledge_.begin(), knowledge_.end(), v);
}

CoefSpan AgentContext::agent_resources(AgentId v) const {
  MMLP_CHECK_MSG(knows(v), "agent " << self_ << " cannot see agent " << v);
  return instance_->agent_resources(v);
}

CoefSpan AgentContext::agent_parties(AgentId v) const {
  MMLP_CHECK_MSG(knows(v), "agent " << self_ << " cannot see agent " << v);
  return instance_->agent_parties(v);
}

CoefSpan AgentContext::resource_support(ResourceId i) const {
  const CoefSpan support = instance_->resource_support(i);
  for (const Coef& entry : support) {
    if (knows(entry.id)) {
      return support;
    }
  }
  detail::check_failed("resource visible", __FILE__, __LINE__,
                       "agent " + std::to_string(self_) +
                           " knows no member of resource " + std::to_string(i));
}

CoefSpan AgentContext::party_support(PartyId k) const {
  const CoefSpan support = instance_->party_support(k);
  for (const Coef& entry : support) {
    if (knows(entry.id)) {
      return support;
    }
  }
  detail::check_failed("party visible", __FILE__, __LINE__,
                       "agent " + std::to_string(self_) +
                           " knows no member of party " + std::to_string(k));
}

void AgentContext::materialize_into(LocalWorld& world,
                                    MaterializeArena& arena) const {
  world.global_agents.assign(knowledge_.begin(), knowledge_.end());
  world.global_resources.clear();
  world.global_parties.clear();

  // Stamp the horizon into the persistent global→local map (−1 outside).
  // The ids were validated in the constructor; the guard restores the
  // all-−1 invariant on every exit path, including a thrown CheckError.
  auto& local_of = arena.agent_local;
  if (local_of.size() < static_cast<std::size_t>(instance_->num_agents())) {
    local_of.assign(static_cast<std::size_t>(instance_->num_agents()), -1);
  }
  const StampGuard guard(local_of, world.global_agents);
  for (std::size_t idx = 0; idx < world.global_agents.size(); ++idx) {
    local_of[static_cast<std::size_t>(world.global_agents[idx])] =
        static_cast<std::int32_t>(idx);
  }
  world.self_local = local_of[static_cast<std::size_t>(self_)];

  // Every resource and party touching a known agent, each counted once.
  std::size_t num_usages = 0;
  std::size_t num_benefits = 0;
  for (const AgentId v : knowledge_) {
    for (const Coef& entry : instance_->agent_resources(v)) {
      world.global_resources.push_back(entry.id);
      ++num_usages;
    }
    for (const Coef& entry : instance_->agent_parties(v)) {
      world.global_parties.push_back(entry.id);
      ++num_benefits;
    }
  }
  std::sort(world.global_resources.begin(), world.global_resources.end());
  world.global_resources.erase(std::unique(world.global_resources.begin(),
                                           world.global_resources.end()),
                               world.global_resources.end());
  std::sort(world.global_parties.begin(), world.global_parties.end());
  world.global_parties.erase(
      std::unique(world.global_parties.begin(), world.global_parties.end()),
      world.global_parties.end());

  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(knowledge_.size()), 0, 0);
  builder.reserve_nonzeros(num_usages, num_benefits);
  for (const ResourceId i : world.global_resources) {
    const ResourceId local = builder.add_resource();
    for (const Coef& entry : instance_->resource_support(i)) {
      const std::int32_t member = local_of[static_cast<std::size_t>(entry.id)];
      if (member >= 0) {
        builder.set_usage(local, member, entry.value);
      }
    }
  }
  // Keep only fully known parties; a truncated benefit row would lie.
  std::size_t kept = 0;
  for (const PartyId k : world.global_parties) {
    const CoefSpan support = instance_->party_support(k);
    const bool full = std::all_of(
        support.begin(), support.end(), [&](const Coef& entry) {
          return local_of[static_cast<std::size_t>(entry.id)] >= 0;
        });
    if (!full) {
      continue;
    }
    const PartyId local = builder.add_party();
    for (const Coef& entry : support) {
      builder.set_benefit(local, local_of[static_cast<std::size_t>(entry.id)],
                          entry.value);
    }
    world.global_parties[kept++] = k;
  }
  world.global_parties.resize(kept);
  world.instance = std::move(builder).build();
}

LocalWorld AgentContext::materialize() const {
  LocalWorld world;
  MaterializeArena arena;
  materialize_into(world, arena);
  return world;
}

}  // namespace mmlp

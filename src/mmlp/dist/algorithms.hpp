// Per-agent re-derivations of the paper's algorithms in the LOCAL model.
//
// Each function floods the exact horizon the algorithm needs, then runs
// every agent's decision rule on an AgentContext (so out-of-horizon
// reads are impossible by construction) and returns the assembled
// solution vector. Both are required — and tested — to match their
// centralized counterparts bit for bit: the per-agent views reproduce
// the same LPs in the same row/column order, and the deterministic
// simplex then pivots identically.
//
//   distributed_safe              horizon 1      (Theorem 2, eq. (2))
//   distributed_local_averaging   horizon 2R+1   (Theorem 3, Section 5.1)
//
// The 2R+1 horizon is what agent j needs to recompute x^u for every
// u ∈ V^j = B(j, R): each view LP reads B(u, R) plus the supports of the
// resources touching it, which reach one hop further — all within
// B(j, 2R+1). The per-agent work is fanned out through util/parallel.
#pragma once

#include <vector>

#include "mmlp/core/incremental.hpp"
#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/dist/runtime.hpp"

namespace mmlp {

namespace engine {
struct DistScratch;
}  // namespace engine

/// One agent's eq. (2) decision computed purely from its context
/// (needs radius 1: own resources and their support sizes). Shared by
/// distributed_safe and SelfStabilizingFlood::safe_output.
double safe_from_context(const AgentContext& ctx);

/// One agent's full Section 5.1 pipeline: materialize the radius-(2R+1)
/// world from its knowledge set, then run the averaging rule inside it.
/// A pure function of (instance, j, knowledge_j, options): the full
/// loop, the incremental dirty-region loop, and the self-stabilizing
/// solver all call it, so every path produces the same bits for the
/// same knowledge.
double averaging_pipeline(const Instance& instance, AgentId j,
                          const std::vector<AgentId>& knowledge_j,
                          const LocalAveragingOptions& options,
                          engine::DistScratch& scratch);

/// The safe algorithm run distributedly: flood 1 round, then every agent
/// applies eq. (2) to its own resources. The safe rule reads only
/// resource data, so it works (and matches) in both hypergraph modes.
std::vector<double> distributed_safe(const Instance& instance,
                                     bool collaboration_oblivious = false);

/// Warm-session variant: the radius-1 knowledge sets come from the
/// session's ball cache (flood(r) is defined — and tested — to equal
/// B_H(v, r), so the cached balls ARE the flooded knowledge). Output is
/// bitwise identical to distributed_safe(); the free function is a thin
/// wrapper over a throwaway session.
std::vector<double> distributed_safe_with(engine::Session& session,
                                          bool collaboration_oblivious = false);

/// The Theorem 3 averaging algorithm run distributedly: flood 2R+1
/// rounds, then every agent j materializes its world, re-solves the view
/// LP of every u ∈ V^j with the same deterministic simplex, and applies
/// eq. (10) with its locally computed β_j. Only the per-agent damping is
/// a local rule, so options.damping must be kBetaPerAgent.
std::vector<double> distributed_local_averaging(
    const Instance& instance, const LocalAveragingOptions& options = {});

/// Dedup accounting of a distributed_local_averaging_with run;
/// decisions == n and the rest zero when options.deduplicate was off.
struct DistAveragingStats {
  std::size_t view_classes = 0;  ///< canonical isomorphism classes
  std::size_t decisions = 0;     ///< full per-agent pipelines actually run
  double dedup_ratio = 0.0;      ///< 1 − decisions/n
};

/// Warm-session variant: the radius-(2R+1) knowledge sets come from the
/// session's ball cache and the per-worker materialization/view/LP
/// bundles from its scratch pool. Bitwise identical to
/// distributed_local_averaging().
///
/// options.deduplicate short-circuits the per-agent re-derivation
/// through the session's radius-(2R+1) view classes: agent j's decision
/// x̃_j is a pure function of its world — which AgentContext::materialize
/// builds from exactly the structure the radius-(2R+1) LocalView records
/// (truncated resource rows plus fully visible parties; a party touching
/// any inner-ball agent is always fully visible) — so agents whose
/// worlds are bit-identical local structures (exact orbits) provably
/// make the bitwise-same scalar decision, and only one member per orbit
/// runs the full materialize-and-solve pipeline. kCanonical widens the
/// sharing to relabeled-isomorphic worlds, whose decisions agree as
/// reals but may differ within the degenerate-optimum freedom.
/// `stats`, when given, receives the dedup accounting.
std::vector<double> distributed_local_averaging_with(
    engine::Session& session, const LocalAveragingOptions& options = {},
    DistAveragingStats* stats = nullptr);

/// Incremental re-solve against the session's edit log: agent j's
/// decision is a pure function of its radius-(2R+1) world, so only
/// agents inside B(T, 2R+1) of the edits' touched set T re-run the
/// materialize-and-solve pipeline; everyone else keeps the memoized
/// previous decision. Bitwise identical to distributed_local_averaging
/// on the mutated instance. Falls back to the full algorithm on the
/// first call, after id remaps, or with the kCanonical scatter (whose
/// outputs are only equal up to degenerate-optimum freedom).
/// `stats->decisions` then reports the pipelines actually run.
std::vector<double> distributed_local_averaging_incremental(
    engine::Session& session, const LocalAveragingOptions& options = {},
    DistAveragingStats* stats = nullptr, IncrementalStats* inc_stats = nullptr);

}  // namespace mmlp

// Per-agent executions of eq. (2) and the Section 5.1 averaging rule on
// AgentContext worlds. The distributed averaging loop is chunked so each
// worker carries one MaterializeArena + LocalWorld + ViewScratch across
// all its agents: world materialization, view extraction and the view-LP
// tableau then recycle the same memory agent after agent, while the
// decisions themselves stay bit-for-bit equal to the centralized run
// (same balls, same LP rows in the same order, same deterministic
// simplex pivoting).
#include "mmlp/dist/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp {

double safe_from_context(const AgentContext& ctx) {
  const CoefSpan resources = ctx.agent_resources(ctx.self());
  std::vector<std::size_t> sizes;
  sizes.reserve(resources.size());
  for (const Coef& entry : resources) {
    sizes.push_back(ctx.resource_support(entry.id).size());
  }
  return safe_choice(resources, sizes);
}

std::vector<double> distributed_safe(const Instance& instance,
                                     bool collaboration_oblivious) {
  engine::Session session(instance);
  return distributed_safe_with(session, collaboration_oblivious);
}

std::vector<double> distributed_safe_with(engine::Session& session,
                                          bool collaboration_oblivious) {
  const Instance& instance = session.instance();
  // flood(1) produces exactly B_H(v, 1) per agent (the LocalRuntime
  // simulator is tested against ball()), so the session's ball cache IS
  // the flooded knowledge.
  const std::vector<std::vector<AgentId>>& knowledge =
      session.balls(1, collaboration_oblivious);
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);
  parallel_for(
      n,
      [&](std::size_t v) {
        const AgentContext ctx(instance, static_cast<AgentId>(v), knowledge[v]);
        x[v] = safe_from_context(ctx);
      },
      session.pool());
  return x;
}

namespace {

/// One agent's execution of the Section 5.1 algorithm on its world.
/// `scratch` is the owning worker's reusable view/LP workspace.
double averaging_decision(const LocalWorld& world, const Hypergraph& h,
                          const LocalAveragingOptions& options,
                          ViewScratch& scratch) {
  BallCollector collector(h);
  const std::vector<AgentId> my_ball =  // copy: the collector is reused
      collector.collect(world.self_local, options.R);

  // Σ_{u∈V^j} x^u_j, accumulated in ascending agent order — the same
  // addition sequence as the centralized eq. (10) accumulation.
  double sum = 0.0;
  LocalView view;
  for (const AgentId u : my_ball) {
    const auto& ball_u = collector.collect(u, options.R);
    extract_view_into(world.instance, u, options.R, ball_u, view, scratch);
    const ViewLpSolution solution = solve_view_lp(view, options.lp, scratch);
    const std::int32_t self_in_view = view.local_index(world.self_local);
    MMLP_CHECK_GE(self_in_view, 0);  // u ∈ V^j ⇔ j ∈ V^u
    sum += solution.x[static_cast<std::size_t>(self_in_view)];
  }

  // β_j = min_{i∈I_j} n_i / N_i over the agent's own resources; V_i is
  // fully known (one hop) and the members' balls lie inside the world.
  double beta = std::numeric_limits<double>::infinity();
  std::vector<AgentId> union_set;
  std::vector<AgentId> next;
  for (const Coef& entry : world.instance.agent_resources(world.self_local)) {
    const CoefSpan support = world.instance.resource_support(entry.id);
    union_set.clear();
    std::size_t min_ball = std::numeric_limits<std::size_t>::max();
    for (const Coef& member : support) {
      const auto& ball_m = collector.collect(member.id, options.R);
      min_ball = std::min(min_ball, ball_m.size());
      next.clear();
      std::set_union(union_set.begin(), union_set.end(), ball_m.begin(),
                     ball_m.end(), std::back_inserter(next));
      union_set.swap(next);
    }
    beta = std::min(beta, static_cast<double>(min_ball) /
                              static_cast<double>(union_set.size()));
  }

  const double average = sum / static_cast<double>(my_ball.size());
  return beta * average;
}

}  // namespace

double averaging_pipeline(const Instance& instance, AgentId j,
                          const std::vector<AgentId>& knowledge_j,
                          const LocalAveragingOptions& options,
                          engine::DistScratch& scratch) {
  const AgentContext ctx(instance, j, knowledge_j);
  ctx.materialize_into(scratch.world, scratch.arena);
  const Hypergraph h = scratch.world.instance.communication_graph(
      options.collaboration_oblivious);
  return averaging_decision(scratch.world, h, options, scratch.view);
}

std::vector<double> distributed_local_averaging(
    const Instance& instance, const LocalAveragingOptions& options) {
  engine::Session session(instance);
  return distributed_local_averaging_with(session, options);
}

std::vector<double> distributed_local_averaging_with(
    engine::Session& session, const LocalAveragingOptions& options,
    DistAveragingStats* stats) {
  MMLP_CHECK_GE(options.R, 1);
  MMLP_CHECK_MSG(options.damping == AveragingDamping::kBetaPerAgent,
                 "only the per-agent damping of eq. (10) is a local rule");
  const Instance& instance = session.instance();
  const std::int32_t horizon = 2 * options.R + 1;
  // flood(2R+1) == B_H(v, 2R+1): serve the knowledge sets from the
  // session ball cache (see distributed_safe_with).
  const std::vector<std::vector<AgentId>>& knowledge =
      session.balls(horizon, options.collaboration_oblivious);
  const auto n = static_cast<std::size_t>(instance.num_agents());
  std::vector<double> x(n, 0.0);

  // Which agents run the full materialize-and-solve pipeline: everyone,
  // or one representative per radius-(2R+1) view class (the world an
  // agent materializes is exactly the structure its horizon view
  // records, so the scalar decision is shared across a class — see the
  // header comment on the dedup contract).
  const ViewClassIndex* classes = nullptr;
  const std::vector<AgentId>* reps = nullptr;
  if (options.deduplicate) {
    classes =
        &session.view_classes(horizon, options.collaboration_oblivious);
    reps = options.dedup_scatter == DedupScatter::kCanonical
               ? &classes->class_rep
               : &classes->orbit_rep;
  }
  const std::size_t worker_count = reps != nullptr ? reps->size() : n;
  if (stats != nullptr) {
    *stats = DistAveragingStats{};
    stats->decisions = worker_count;
    if (classes != nullptr) {
      stats->view_classes = classes->num_classes();
      stats->dedup_ratio = classes->dedup_ratio(options.dedup_scatter);
    }
  }
  if (reps != nullptr && reps->size() == n) {
    // Every group is a singleton: the representatives are the agents
    // themselves in ascending order, so the per-agent loop is bitwise
    // identical and the scatter pass below becomes pure overhead — drop
    // to the dedup-off path (diagnostics above already recorded the
    // dedup attempt).
    reps = nullptr;
  }

  // Chunked so each worker leases one materialization arena and one
  // view/LP scratch for all its agents; leases come from the session
  // pool so the buffers stay warm across solves.
  chunked_parallel_for(
      worker_count,
      [&](std::size_t begin, std::size_t end) {
        auto scratch = session.dist_scratch().acquire();
        for (std::size_t task = begin; task < end; ++task) {
          // Per-agent cancellation poll: each iteration is a full
          // materialize-and-solve pipeline, coarse enough that chunk
          // boundaries alone would let a deadline overshoot badly.
          cancel::checkpoint();
          const std::size_t j =
              reps != nullptr ? static_cast<std::size_t>((*reps)[task]) : task;
          x[j] = averaging_pipeline(instance, static_cast<AgentId>(j),
                                    knowledge[j], options, *scratch);
        }
      },
      session.pool());

  if (reps != nullptr) {
    const bool canonical = options.dedup_scatter == DedupScatter::kCanonical;
    parallel_for(
        n,
        [&](std::size_t j) {
          const std::int32_t g = canonical ? classes->class_of[j]
                                           : classes->orbit_of[j];
          const auto rep =
              static_cast<std::size_t>((*reps)[static_cast<std::size_t>(g)]);
          if (j != rep) {  // representatives already hold their decision
            x[j] = x[rep];
          }
        },
        session.pool());
  }
  return x;
}

std::vector<double> distributed_local_averaging_incremental(
    engine::Session& session, const LocalAveragingOptions& options,
    DistAveragingStats* stats, IncrementalStats* inc_stats) {
  MMLP_CHECK_GE(options.R, 1);
  MMLP_CHECK_MSG(options.damping == AveragingDamping::kBetaPerAgent,
                 "only the per-agent damping of eq. (10) is a local rule");
  const Instance& instance = session.instance();
  const auto n = static_cast<std::size_t>(instance.num_agents());
  IncrementalStats accounting;
  accounting.dirty_agents = n;
  accounting.resolved_agents = n;

  // The kCanonical scatter is only equal up to degenerate-optimum
  // freedom, so a per-agent re-solve of a dirty member would not splice
  // bitwise into it; dedup-off and the exact scatter are
  // interchangeable and share the memo.
  const bool spliceable = !(options.deduplicate &&
                            options.dedup_scatter == DedupScatter::kCanonical);
  if (!spliceable) {
    std::vector<double> x =
        distributed_local_averaging_with(session, options, stats);
    if (inc_stats != nullptr) {
      *inc_stats = accounting;
    }
    return x;
  }

  std::ostringstream key;
  key << "dist-averaging|R=" << options.R
      << "|oblivious=" << options.collaboration_oblivious
      << "|lp=" << fingerprint(options.lp);
  engine::SolutionMemo& memo = session.solution_memo(key.str());

  const std::int32_t horizon = 2 * options.R + 1;
  std::optional<std::vector<AgentId>> dirty;
  if (memo.valid) {
    dirty = session.dirty_since(memo.revision, horizon,
                                options.collaboration_oblivious);
  }
  const bool splice = memo.valid && dirty.has_value();
  // Invalidate before any in-place mutation (see safe_solution_
  // incremental): an abandoned splice — cancellation, deadline — must
  // leave the memo marked stale, not half-spliced and "valid".
  memo.valid = false;
  if (splice) {
    const std::vector<std::vector<AgentId>>& knowledge =
        session.balls(horizon, options.collaboration_oblivious);
    memo.x.resize(n, 0.0);  // added agents are always in the dirty region
    const std::vector<AgentId>& resolve = *dirty;
    chunked_parallel_for(
        resolve.size(),
        [&](std::size_t begin, std::size_t end) {
          auto scratch = session.dist_scratch().acquire();
          for (std::size_t idx = begin; idx < end; ++idx) {
            cancel::checkpoint();
            const AgentId j = resolve[idx];
            memo.x[static_cast<std::size_t>(j)] = averaging_pipeline(
                instance, j, knowledge[static_cast<std::size_t>(j)], options,
                *scratch);
          }
        },
        session.pool());
    accounting.incremental = true;
    accounting.dirty_agents = resolve.size();
    accounting.resolved_agents = resolve.size();
    if (stats != nullptr) {
      *stats = DistAveragingStats{};
      stats->decisions = resolve.size();
    }
  } else {
    memo.x = distributed_local_averaging_with(session, options, stats);
  }
  memo.revision = session.revision();
  memo.valid = true;
  if (inc_stats != nullptr) {
    *inc_stats = accounting;
  }
  return memo.x;
}

}  // namespace mmlp

// Self-stabilizing executions of the paper's actual solvers.
//
// Section 1.1's remark — every constant-horizon local algorithm yields
// a self-stabilizing algorithm with constant stabilization time — is
// realized here for the two local solvers, not just the flooding
// primitive: each agent maintains only its bounded-radius knowledge
// table (SelfStabilizingFlood), recomputes it from its neighbours'
// tables every synchronous round, and derives its output purely from
// the current table:
//
//   kSafe       horizon 1      output = eq. (2) on the known supports
//   kAveraging  horizon 2R+1   output = the Section 5.1 pipeline on the
//                              materialized knowledge world
//
// Because a round keeps nothing of the old state, the executable
// guarantee is: from ANY corrupted state — including every table fully
// randomized and any replayable FaultPlan applied during the faulty
// prefix — after horizon + 1 fault-free rounds the tables are the
// legitimate fixed point and output() is bitwise-equal to the
// fault-free execution (distributed_safe / distributed_local_averaging
// with dedup off). tests/test_selfstab_solver.cpp property-tests the
// bar across scenarios × R × seeded plans.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/dist/self_stabilize.hpp"
#include "mmlp/util/fault.hpp"

namespace mmlp {

class SelfStabilizingSolver {
 public:
  enum class Algorithm : std::uint8_t {
    kSafe,       ///< eq. (2); knowledge horizon 1
    kAveraging,  ///< Section 5.1; knowledge horizon 2R+1
  };

  /// Starts in the legitimate state. `options` is read by kAveraging
  /// only (R, collaboration_oblivious, lp); its damping must be the
  /// per-agent rule, matching distributed_local_averaging.
  SelfStabilizingSolver(const Instance& instance, Algorithm algorithm,
                        const LocalAveragingOptions& options = {});

  Algorithm algorithm() const { return algorithm_; }
  std::int32_t horizon() const { return flood_.horizon(); }

  /// The underlying knowledge tables — exposed so tests and the fault
  /// replay path can corrupt or inspect them directly.
  SelfStabilizingFlood& knowledge() { return flood_; }
  const SelfStabilizingFlood& knowledge() const { return flood_; }

  /// Execute every round of `faults`' plan (rounds 0..plan.rounds()-1),
  /// exchanging each round's messages through the injector. Returns the
  /// number of rounds executed.
  std::int32_t run_plan(FaultInjector& faults);

  /// Fault-free rounds until a round changes no table (the fixed
  /// point), executing at most `max_rounds`. Returns rounds executed —
  /// the stabilization contract bounds it by horizon() + 1 from any
  /// state.
  std::int32_t stabilize(std::int32_t max_rounds);

  bool is_legitimate() const { return flood_.is_legitimate(); }

  /// Every agent's decision derived from its CURRENT table (legitimate
  /// or not) — the output recomputes from knowledge each round, nothing
  /// is carried over. In the legitimate state this is bitwise-equal to
  /// the fault-free distributed execution. May throw CheckError from a
  /// transient state whose tables violate the knowledge invariants
  /// (e.g. an agent that lost its own self entry); one clean round
  /// restores them.
  std::vector<double> output() const;

 private:
  const Instance* instance_;
  Algorithm algorithm_;
  LocalAveragingOptions options_;
  SelfStabilizingFlood flood_;
};

}  // namespace mmlp

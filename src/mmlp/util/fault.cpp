// FaultPlan serialization/parsing and the round-cursor injector. The
// grammar is deliberately a single token with no whitespace so a plan
// survives every transport the repo has (JSONL string values, CLI
// flags, bench-case names) without escaping.
#include "mmlp/util/fault.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

constexpr std::string_view kKindNames[] = {
    "drop", "dup", "corrupt", "delay", "crash", "state",
};

bool kind_is_message(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropMessage:
    case FaultKind::kDuplicateMessage:
    case FaultKind::kCorruptMessage:
    case FaultKind::kDelayMessage:
      return true;
    case FaultKind::kCrashAgent:
    case FaultKind::kCorruptState:
      return false;
  }
  return false;
}

FaultKind parse_kind(std::string_view token) {
  for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
    if (token == kKindNames[k]) {
      return static_cast<FaultKind>(k);
    }
  }
  detail::check_failed("known fault kind", __FILE__, __LINE__,
                       "unknown fault kind '" + std::string(token) +
                           "' (expected drop|dup|corrupt|delay|crash|state)");
}

std::int64_t parse_number(std::string_view token, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  MMLP_CHECK_MSG(ec == std::errc{} && ptr == token.data() + token.size(),
                 "fault plan: non-numeric " << what << " '" << token << "'");
  return value;
}

/// Split `text` on `sep`, invoking fn(part) per (possibly empty) part.
template <typename Fn>
void for_each_split(std::string_view text, char sep, Fn&& fn) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = std::min(text.find(sep, begin), text.size());
    fn(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  MMLP_CHECK_LT(index, std::size(kKindNames));
  return kKindNames[index];
}

std::int32_t FaultPlan::rounds() const {
  std::int32_t max_round = -1;
  for (const FaultEvent& event : events) {
    max_round = std::max(max_round, event.round);
  }
  return max_round + 1;
}

void FaultPlan::normalize() {
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.round, a.agent, a.peer, a.kind) <
                     std::tie(b.round, b.agent, b.peer, b.kind);
            });
}

std::string FaultPlan::serialize() const {
  std::ostringstream out;
  out << 's' << seed;
  for (const FaultEvent& event : events) {
    out << ';' << event.round << ':' << fault_kind_name(event.kind) << ':'
        << event.agent;
    if (kind_is_message(event.kind)) {
      out << ':' << event.peer;
    }
  }
  return out.str();
}

FaultPlan FaultPlan::parse(std::string_view text) {
  MMLP_CHECK_MSG(!text.empty() && text.front() == 's',
                 "fault plan must start with 's<seed>', got '"
                     << std::string(text.substr(0, 32)) << "'");
  FaultPlan plan;
  bool first = true;
  for_each_split(text, ';', [&](std::string_view part) {
    if (first) {
      first = false;
      const std::string_view seed_token = part.substr(1);
      const std::int64_t seed = parse_number(seed_token, "seed");
      MMLP_CHECK_MSG(seed >= 0, "fault plan: negative seed");
      plan.seed = static_cast<std::uint64_t>(seed);
      return;
    }
    // <round>:<kind>:<agent>[:<peer>]
    std::vector<std::string_view> fields;
    for_each_split(part, ':',
                   [&](std::string_view field) { fields.push_back(field); });
    MMLP_CHECK_MSG(fields.size() == 3 || fields.size() == 4,
                   "fault plan: malformed event '" << std::string(part)
                                                   << "'");
    FaultEvent event;
    const std::int64_t round = parse_number(fields[0], "round");
    MMLP_CHECK_MSG(round >= 0, "fault plan: negative round");
    event.round = static_cast<std::int32_t>(round);
    event.kind = parse_kind(fields[1]);
    const std::int64_t agent = parse_number(fields[2], "agent");
    MMLP_CHECK_MSG(agent >= 0, "fault plan: negative agent id");
    event.agent = static_cast<AgentId>(agent);
    if (kind_is_message(event.kind)) {
      MMLP_CHECK_MSG(fields.size() == 4,
                     "fault plan: message fault '"
                         << fault_kind_name(event.kind)
                         << "' requires a peer field");
      const std::int64_t peer = parse_number(fields[3], "peer");
      MMLP_CHECK_MSG(peer >= 0, "fault plan: negative peer id");
      event.peer = static_cast<AgentId>(peer);
    } else {
      MMLP_CHECK_MSG(fields.size() == 3,
                     "fault plan: agent fault '" << fault_kind_name(event.kind)
                                                 << "' takes no peer field");
    }
    plan.events.push_back(event);
  });
  plan.normalize();
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::int32_t rounds,
                            std::int32_t num_agents, std::int32_t count) {
  MMLP_CHECK_GT(rounds, 0);
  MMLP_CHECK_GT(num_agents, 0);
  MMLP_CHECK_GE(count, 0);
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  plan.events.reserve(static_cast<std::size_t>(count));
  for (std::int32_t e = 0; e < count; ++e) {
    FaultEvent event;
    event.round = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(rounds)));
    event.kind = static_cast<FaultKind>(rng.next_below(6));
    event.agent = static_cast<AgentId>(
        rng.next_below(static_cast<std::uint64_t>(num_agents)));
    if (kind_is_message(event.kind)) {
      event.peer = static_cast<AgentId>(
          rng.next_below(static_cast<std::uint64_t>(num_agents)));
      if (event.peer == event.agent && num_agents > 1) {
        event.peer = static_cast<AgentId>((event.peer + 1) % num_agents);
      }
    }
    plan.events.push_back(event);
  }
  plan.normalize();
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.normalize();
}

void FaultInjector::begin_round(std::int32_t round) {
  round_ = round;
  const auto lower = std::lower_bound(
      plan_.events.begin(), plan_.events.end(), round,
      [](const FaultEvent& event, std::int32_t r) { return event.round < r; });
  const auto upper = std::upper_bound(
      plan_.events.begin(), plan_.events.end(), round,
      [](std::int32_t r, const FaultEvent& event) { return r < event.round; });
  round_begin_ = static_cast<std::size_t>(lower - plan_.events.begin());
  round_end_ = static_cast<std::size_t>(upper - plan_.events.begin());
  // Crash/state events fire unconditionally when their round is
  // entered; message events are counted as their fates are served.
  std::int64_t entered = 0;
  for (std::size_t i = round_begin_; i < round_end_; ++i) {
    if (!kind_is_message(plan_.events[i].kind)) {
      ++entered;
    }
  }
  injected_.fetch_add(entered, std::memory_order_relaxed);
}

bool FaultInjector::round_has_delay() const {
  for (std::size_t i = round_begin_; i < round_end_; ++i) {
    if (plan_.events[i].kind == FaultKind::kDelayMessage) {
      return true;
    }
  }
  return false;
}

FaultInjector::MessageFate FaultInjector::message_fate(AgentId receiver,
                                                       AgentId sender) const {
  MessageFate fate;
  std::int64_t hits = 0;
  for (std::size_t i = round_begin_; i < round_end_; ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.agent != receiver || event.peer != sender) {
      continue;
    }
    switch (event.kind) {
      case FaultKind::kDropMessage:
        fate.copies = 0;
        ++hits;
        break;
      case FaultKind::kDuplicateMessage:
        // Drop beats duplicate when both target the same packet,
        // regardless of event order within the round.
        if (fate.copies != 0) {
          fate.copies = 2;
        }
        ++hits;
        break;
      case FaultKind::kCorruptMessage:
        fate.corrupt = true;
        ++hits;
        break;
      case FaultKind::kDelayMessage:
        fate.delay = true;
        ++hits;
        break;
      case FaultKind::kCrashAgent:
      case FaultKind::kCorruptState:
        break;
    }
  }
  // Drop beats duplicate when both target the same packet.
  if (fate.copies == 0) {
    fate.corrupt = false;
    fate.delay = false;
  }
  if (hits > 0) {
    injected_.fetch_add(hits, std::memory_order_relaxed);
  }
  return fate;
}

bool FaultInjector::crashed(AgentId agent) const {
  for (std::size_t i = round_begin_; i < round_end_; ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind == FaultKind::kCrashAgent && event.agent == agent) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::state_corrupted(AgentId agent) const {
  for (std::size_t i = round_begin_; i < round_end_; ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind == FaultKind::kCorruptState && event.agent == agent) {
      return true;
    }
  }
  return false;
}

Rng FaultInjector::event_rng(AgentId agent, AgentId peer) const {
  // Hash (seed, round, agent, peer) through splitmix64 so every event
  // owns an independent, replayable stream regardless of the order the
  // parallel exchange consults the injector.
  std::uint64_t state = plan_.seed;
  state ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(round_ + 1);
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(agent) + 1)
           << 17;
  splitmix64(state);
  state ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(peer) + 2)
           << 29;
  return Rng(splitmix64(state));
}

}  // namespace mmlp

// Checked assertions that stay on in release builds.
//
// Library invariants are enforced with MMLP_CHECK and friends rather than
// <cassert> so that experiment binaries built with -O2 still validate the
// paper-level invariants (feasibility, degree bounds, ...). Failures throw
// mmlp::CheckError carrying the expression, location and an optional
// formatted message, which tests can assert on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mmlp {

/// Error thrown when a runtime invariant check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace detail

}  // namespace mmlp

/// Abort (by throwing mmlp::CheckError) when `expr` is false.
#define MMLP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::mmlp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                 \
  } while (false)

/// As MMLP_CHECK, with a streamed message: MMLP_CHECK_MSG(x > 0, "x=" << x).
#define MMLP_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream mmlp_check_oss_;                               \
      mmlp_check_oss_ << msg; /* NOLINT */                              \
      ::mmlp::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   mmlp_check_oss_.str());              \
    }                                                                   \
  } while (false)

/// Convenience comparison checks that report both operands.
#define MMLP_CHECK_EQ(a, b) MMLP_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define MMLP_CHECK_NE(a, b) MMLP_CHECK_MSG((a) != (b), "lhs=" << (a) << " rhs=" << (b))
#define MMLP_CHECK_LT(a, b) MMLP_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define MMLP_CHECK_LE(a, b) MMLP_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define MMLP_CHECK_GT(a, b) MMLP_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define MMLP_CHECK_GE(a, b) MMLP_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))

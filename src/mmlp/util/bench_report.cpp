#include "mmlp/util/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "mmlp/util/check.hpp"
#include "mmlp/util/cli.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/timer.hpp"

namespace mmlp::bench {

namespace {

void append_escaped(std::ostringstream& oss, const std::string& text) {
  oss << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // JSON strings may not contain raw control characters.
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          oss << buffer;
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

void append_number(std::ostringstream& oss, double value) {
  // JSON has no inf/nan; reject non-finite metrics loudly instead of
  // emitting an unparsable token.
  MMLP_CHECK_MSG(std::isfinite(value), "non-finite benchmark metric: " << value);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  oss << buffer;
}

}  // namespace

Report::Report(std::string name, std::string scale)
    : name_(std::move(name)), scale_(std::move(scale)) {}

CaseResult& Report::run_case(const std::string& scenario, std::int64_t agents,
                             int reps, const std::function<void()>& fn) {
  MMLP_CHECK_GE(reps, 1);
  MMLP_CHECK_GT(agents, 0);
  double best_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    fn();
    best_ms = std::min(best_ms, timer.milliseconds());
  }
  CaseResult result;
  result.scenario = scenario;
  result.agents = agents;
  result.repetitions = reps;
  result.wall_ms = best_ms;
  result.ns_per_agent = best_ms * 1e6 / static_cast<double>(agents);
  return add_case(std::move(result));
}

CaseResult& Report::add_case(CaseResult result) {
  cases_.push_back(std::move(result));
  return cases_.back();
}

std::string Report::to_json() const {
  std::ostringstream oss;
  oss << "{\n  \"schema\": ";
  append_escaped(oss, kSchemaId);
  oss << ",\n  \"name\": ";
  append_escaped(oss, name_);
  oss << ",\n  \"scale\": ";
  append_escaped(oss, scale_);
  if (threads_ > 0) {
    oss << ",\n  \"threads\": " << threads_;
  }
  oss << ",\n  \"cases\": [";
  for (std::size_t idx = 0; idx < cases_.size(); ++idx) {
    const CaseResult& entry = cases_[idx];
    oss << (idx == 0 ? "\n" : ",\n") << "    {\"scenario\": ";
    append_escaped(oss, entry.scenario);
    oss << ", \"agents\": " << entry.agents
        << ", \"repetitions\": " << entry.repetitions << ", \"wall_ms\": ";
    append_number(oss, entry.wall_ms);
    oss << ", \"ns_per_agent\": ";
    append_number(oss, entry.ns_per_agent);
    oss << ", \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : entry.counters) {
      if (!first) {
        oss << ", ";
      }
      first = false;
      append_escaped(oss, key);
      oss << ": ";
      append_number(oss, value);
    }
    oss << "}}";
  }
  oss << "\n  ]\n}\n";
  return oss.str();
}

void Report::write(const std::string& path) const {
  std::ofstream out(path);
  MMLP_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << to_json();
  out.flush();
  MMLP_CHECK_MSG(out.good(), "failed writing benchmark report to " << path);
}

int bench_main(int argc, const char* const* argv, const std::string& name,
               const std::function<void(Report& report, const std::string& scale,
                                        int reps)>& body) {
  ArgParser parser("mmlp benchmark '" + name +
                   "'; writes a mmlp-bench-v1 JSON report");
  parser.add_flag("out", "output JSON path", "BENCH_" + name + ".json");
  parser.add_flag("scale", "problem sizes: smoke | small | full", "full");
  parser.add_flag("reps", "timed repetitions per case (min is kept)", "3");
  parser.add_flag("threads",
                  "worker threads (0 = MMLP_THREADS env, else hardware)", "0");
  if (!parser.parse(argc, argv)) {
    return 1;
  }
  const std::string scale = parser.get_string("scale");
  if (scale != "smoke" && scale != "small" && scale != "full") {
    std::fprintf(stderr, "unknown --scale '%s' (want smoke|small|full)\n",
                 scale.c_str());
    return 1;
  }
  const auto reps = static_cast<int>(parser.get_int("reps"));
  if (reps < 1) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 1;
  }

  // Size the global pool before any timed code touches it: the flag
  // wins, then the MMLP_THREADS environment override, then hardware
  // concurrency. The resolved count lands in the report so runs from
  // differently sized pools are never compared by accident.
  std::int64_t threads = parser.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 1;
  }
  if (threads == 0) {
    if (const char* env = std::getenv("MMLP_THREADS");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      threads = std::strtol(env, &end, 10);
      if (end == nullptr || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "invalid MMLP_THREADS '%s'\n", env);
        return 1;
      }
    }
  }
  set_global_thread_count(static_cast<std::size_t>(threads));

  Report report(name, scale);
  report.set_threads(static_cast<std::int64_t>(ThreadPool::global().size()));
  body(report, scale, reps);

  const std::string out = parser.get_string("out");
  report.write(out);
  for (const CaseResult& entry : report.cases()) {
    std::printf("%-24s %-20s n=%-8lld %10.3f ms  %8.1f ns/agent\n",
                name.c_str(), entry.scenario.c_str(),
                static_cast<long long>(entry.agents), entry.wall_ms,
                entry.ns_per_agent);
  }
  std::printf("wrote %s (%zu cases)\n", out.c_str(), report.cases().size());
  return 0;
}

}  // namespace mmlp::bench

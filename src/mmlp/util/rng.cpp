#include "mmlp/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mmlp {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four consecutive zeros, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MMLP_CHECK_GT(bound, 0ULL);
  // Lemire's unbiased method with rejection on the low word.
  while (true) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
    // low < bound: accept only if above the bias threshold.
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MMLP_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MMLP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 is kept away from 0 for a finite log.
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

std::vector<std::int32_t> Rng::permutation(std::int32_t n) {
  MMLP_CHECK_GE(n, 0);
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  shuffle(perm);
  return perm;
}

std::vector<std::int32_t> Rng::sample_without_replacement(std::int32_t n,
                                                          std::int32_t count) {
  MMLP_CHECK_GE(count, 0);
  MMLP_CHECK_LE(count, n);
  // Partial Fisher-Yates over an index vector; O(n) but simple and exact.
  std::vector<std::int32_t> pool(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    pool[static_cast<std::size_t>(i)] = i;
  }
  for (std::int32_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        i + static_cast<std::int32_t>(next_below(
                static_cast<std::uint64_t>(n - i))));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace mmlp

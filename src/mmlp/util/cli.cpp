#include "mmlp/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "mmlp/util/check.hpp"

namespace mmlp {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_switch("help", "show this help text");
}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  MMLP_CHECK_MSG(!flags_.contains(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, /*is_switch=*/false, false};
}

void ArgParser::add_switch(const std::string& name, const std::string& help) {
  MMLP_CHECK_MSG(!flags_.contains(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, "0", /*is_switch=*/true, false};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "prog";
  for (int a = 1; a < argc; ++a) {
    std::string token = argv[a];
    if (token.rfind("--", 0) != 0) {
      std::cerr << "error: unexpected positional argument '" << token << "'\n";
      return false;
    }
    token = token.substr(2);
    std::string name = token;
    std::optional<std::string> inline_value;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::cerr << "error: unknown flag --" << name << "\n"
                << help_text();
      return false;
    }
    Flag& flag = it->second;
    flag.seen = true;
    if (flag.is_switch) {
      flag.value = inline_value.value_or("1");
    } else if (inline_value.has_value()) {
      flag.value = *inline_value;
    } else {
      if (a + 1 >= argc) {
        std::cerr << "error: flag --" << name << " expects a value\n";
        return false;
      }
      flag.value = argv[++a];
    }
  }
  if (get_bool("help")) {
    std::cout << help_text();
    return false;
  }
  return true;
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  MMLP_CHECK_MSG(it != flags_.end(), "flag --" << name << " was not registered");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& value = find(name).value;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  MMLP_CHECK_MSG(end != value.c_str() && *end == '\0',
                 "flag --" << name << " is not an integer: " << value);
  return parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& value = find(name).value;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  MMLP_CHECK_MSG(end != value.c_str() && *end == '\0',
                 "flag --" << name << " is not a number: " << value);
  return parsed;
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string& value = find(name).value;
  return value == "1" || value == "true" || value == "yes";
}

std::string ArgParser::help_text() const {
  std::ostringstream oss;
  oss << description_ << "\n\nusage: " << program_name_ << " [--flag value]...\n";
  for (const auto& [name, flag] : flags_) {
    oss << "  --" << name;
    if (!flag.is_switch) {
      oss << " <value> (default: " << flag.value << ")";
    }
    oss << "\n      " << flag.help << '\n';
  }
  return oss.str();
}

}  // namespace mmlp

// Shared-memory parallel execution substrate.
//
// The LOCAL-model simulator and the per-agent algorithm loops are
// embarrassingly parallel over agents; this module provides a small
// thread pool and a deterministic parallel_for built on it. Tasks write
// only to their own output slots (message-passing discipline — no shared
// mutable state between iterations), so parallel execution is bitwise
// reproducible regardless of the thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mmlp {

/// Fixed-size worker pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Process-wide pool, sized to the hardware. Lazily constructed.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Execute fn(i) for i in [0, count) across the pool, in chunks.
/// Blocks until all iterations complete. fn must only write to
/// per-index state. `grain` bounds the chunk size (0 = auto).
/// If fn throws, remaining chunks are abandoned and the first
/// exception is rethrown in the caller once the pool drains, so a
/// CheckError inside a parallel loop stays catchable.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 0);

/// Serial fallback used by tests to compare against parallel runs.
void serial_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace mmlp

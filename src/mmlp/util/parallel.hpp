// Shared-memory parallel execution substrate.
//
// The LOCAL-model simulator and the per-agent algorithm loops are
// embarrassingly parallel over agents; this module provides a worker
// pool and a deterministic parallel_for built on it. Tasks write only
// to their own output slots (message-passing discipline — no shared
// mutable state between iterations), so parallel execution is bitwise
// reproducible regardless of the thread count.
//
// Scheduler design (the ROADMAP item 3 multi-core push):
//
//   * submit() path — one deque per worker with work stealing. A
//     submitted task lands on one worker's queue (round-robin); idle
//     workers steal from the back of their peers' queues. No global
//     task queue, so submissions never serialize every worker on one
//     lock.
//
//   * bulk path (run_bulk, what parallel_for / chunked_parallel_for
//     compile to) — a BulkJob descriptor lives on the caller's stack:
//     an atomic cursor over [0, count), a trampoline function pointer
//     and a context pointer. The caller registers the job (one mutex
//     acquisition), wakes the workers, and then claims and executes
//     chunks itself alongside them; every executor claims disjoint
//     [begin, end) ranges via compare-and-swap on the cursor. There is
//     no per-chunk allocation, no per-chunk lock, and no per-chunk
//     std::function — the scheduler costs one mutex acquisition per
//     participant per parallel region, not per chunk.
//
//   * chunk sizing is guided and cost-adaptive: a claim takes
//     remaining/(4·(workers+1)) items, shrunk once the measured
//     per-item cost is known so one chunk targets ~200 µs — long
//     enough to amortise the claim, short enough that stragglers
//     rebalance.
//
//   * nesting — a parallel_for from inside a worker registers its job
//     like any other caller and participates in it; idle workers help.
//     Nested regions therefore run in parallel (they used to fall back
//     to serial), and there is no deadlock because a bulk caller never
//     blocks on a resource another bulk caller holds.
//
// Determinism is unaffected by any of this: chunk boundaries and claim
// order vary run to run, but bodies write per-index slots only, and
// every ordered floating-point fold (the eq. (10) gather) is per-agent
// in a fixed ascending order. tests/test_thread_invariance.cpp pins
// bitwise equality across pool sizes on every registered solver.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "mmlp/util/cancel.hpp"

namespace mmlp {

/// Fixed-size worker pool: per-worker task deques with stealing, plus
/// the allocation-free bulk-dispatch path for chunked loops.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means the MMLP_THREADS
  /// environment override, falling back to
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Cumulative per-worker activity since pool construction. busy_ns is
  /// time spent inside submitted tasks and bulk chunks, idle_ns time
  /// blocked waiting for work, tasks the number of submitted tasks
  /// executed, chunks the number of bulk chunks executed, steals the
  /// number of tasks taken from another worker's queue. The
  /// observability surface for ROADMAP item 3: a scaling-efficiency
  /// loss shows up directly as idle_ns growing faster than busy_ns on
  /// some workers, and a submit-path imbalance as a high steal count.
  struct WorkerStats {
    std::uint64_t busy_ns = 0;
    std::uint64_t idle_ns = 0;
    std::uint64_t tasks = 0;
    std::uint64_t chunks = 0;
    std::uint64_t steals = 0;
  };

  /// Snapshot of every worker's stats, indexed by worker. Relaxed reads
  /// — concurrent with running tasks, values are monotone but may lag.
  std::vector<WorkerStats> worker_stats() const;

  /// Submitted-but-not-yet-started tasks across all worker queues (a
  /// point-in-time snapshot; surfaced by the wire `stats` op so a
  /// serving backlog is observable in production).
  std::size_t queue_depth() const;

  /// Enqueue a task. CONTRACT: tasks must not let exceptions escape — a
  /// throw from a raw submitted task crosses the worker's noexcept
  /// boundary and std::terminates the process. Callers that need
  /// exception propagation must go through parallel_for /
  /// chunked_parallel_for, which wrap every body invocation, abandon the
  /// remaining chunks, and rethrow the first exception in the caller
  /// (contract tested in tests/test_parallel.cpp).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Covers the submit()
  /// path only; bulk regions complete before run_bulk returns. Must not
  /// be called from inside a pool task.
  void wait_idle();

  /// The bulk-dispatch body: executes indices [begin, end) against the
  /// caller-owned context. A plain function pointer so the fast path
  /// never materialises a std::function.
  using BulkBody = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// Execute body over [0, count) in dynamically sized chunks, using
  /// the calling thread plus every idle worker. Blocks until all
  /// indices completed (or a body threw — remaining chunks are then
  /// abandoned and the first exception rethrown here). `min_grain`
  /// bounds the chunk size from below (0 = auto). Reentrant: may be
  /// called concurrently from several threads and from inside pool
  /// workers (nested regions run in parallel). Performs no heap
  /// allocation. Honors the caller's active CancelToken
  /// (cancel::current_token()): once the token expires, executors stop
  /// claiming chunks and run_bulk rethrows CancelledError — already
  /// running chunk bodies complete normally first, so per-index output
  /// slots are never left half-written.
  void run_bulk(std::size_t count, std::size_t min_grain, BulkBody body,
                void* ctx);

  /// Process-wide pool. Lazily constructed on first use, sized by
  /// set_global_thread_count() when that was called earlier, otherwise
  /// by MMLP_THREADS, otherwise to the hardware.
  static ThreadPool& global();

 private:
  // Padded so two workers bumping their own counters never share a
  // cache line; written only by the owning worker, read by anyone.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> steals{0};
  };

  /// One bulk parallel region. Lives on the run_bulk caller's stack;
  /// workers reach it through the pool's job list and are accounted in
  /// `attached` (guarded by sched_mutex_) so the caller can wait for
  /// every executor to leave before the frame dies.
  struct BulkJob {
    std::atomic<std::size_t> cursor{0};
    std::size_t count = 0;
    std::size_t min_grain = 1;
    BulkBody body = nullptr;
    void* ctx = nullptr;
    /// Rolling per-item cost estimate (ns), updated after each chunk;
    /// drives the adaptive chunk sizing. 0 = not yet measured.
    std::atomic<std::uint64_t> ns_per_item{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first exception; guarded by error_mutex
    std::mutex error_mutex;
    int attached = 0;  // executors inside the claim loop; sched_mutex_
    /// Cooperative cancellation: snapshot of the run_bulk caller's
    /// active CancelToken (cancel::current_token()). Checked in the
    /// claim loop before each chunk, and re-installed around the body
    /// so workers and nested regions observe the caller's token. An
    /// expired token marks the job failed through the same
    /// poison-the-cursor path as a thrown body exception.
    const CancelToken* cancel = nullptr;
  };

  struct alignas(64) TaskQueue {
    mutable std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t worker_index);
  bool try_run_task(std::size_t worker_index);
  std::size_t chunk_size(const BulkJob& job, std::size_t cur) const;
  /// Claim-and-execute chunks of `job` until it is drained or failed.
  void execute_chunks(BulkJob& job, WorkerCounters* counters);

  std::vector<WorkerCounters> counters_;
  std::vector<TaskQueue> queues_;
  std::vector<std::thread> workers_;

  // Scheduler state: job registry, sleep/wake and completion signals.
  std::mutex sched_mutex_;
  std::condition_variable cv_work_;  // workers sleeping for work
  std::condition_variable cv_done_;  // bulk callers + wait_idle callers
  std::vector<BulkJob*> jobs_;       // active bulk regions (registered order)
  std::atomic<std::size_t> queued_tasks_{0};  // submitted, not yet started
  std::atomic<std::size_t> in_flight_{0};     // submitted, not yet finished
  std::atomic<std::size_t> next_queue_{0};    // round-robin submit target
  bool stop_ = false;  // guarded by sched_mutex_
};

/// Execute fn(i) for i in [0, count) across the pool, in chunks.
/// Blocks until all iterations complete. fn must only write to
/// per-index state. `grain` bounds the chunk size from below (0 =
/// auto). If fn throws, remaining chunks are abandoned and the first
/// exception is rethrown in the caller, so a CheckError inside a
/// parallel loop stays catchable.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 0);

/// Serial fallback used by tests to compare against parallel runs.
void serial_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Configure the worker count of ThreadPool::global() before its first
/// use (0 = MMLP_THREADS env, else hardware concurrency). Throws
/// CheckError when the global pool already exists with a different size
/// — the pool cannot be resized once workers hold references to it.
/// Used by the bench harness's --threads flag / MMLP_THREADS override.
void set_global_thread_count(std::size_t num_threads);

/// Chunked variant for loops whose bodies amortise per-worker scratch
/// (ball collectors, view/LP workspaces, materialization arenas):
/// body(begin, end) is called once per dynamically sized chunk. The
/// body must only write per-index state, exactly as with parallel_for;
/// count == 0 returns without invoking the body. On a pool of one
/// worker (or fewer) the body runs once over the whole range on the
/// calling thread. Exceptions thrown inside the body follow the
/// parallel_for contract: remaining chunks are abandoned and the first
/// exception is rethrown in the caller — including when the throw
/// happens in the last chunk or when count is smaller than the worker
/// count (tested edge cases in tests/test_parallel.cpp). The dispatch
/// itself performs zero heap allocations: the body is reached through
/// a function-pointer trampoline, never a std::function.
template <typename Body>
void chunked_parallel_for(std::size_t count, Body&& body,
                          ThreadPool* pool = nullptr) {
  if (count == 0) {
    return;
  }
  ThreadPool& target = pool != nullptr ? *pool : ThreadPool::global();
  if (target.size() <= 1 || count == 1) {
    // Serial fallback: one checkpoint before the body — long bodies are
    // expected to call cancel::checkpoint() themselves at natural
    // boundaries (the per-view-class LP loop does).
    cancel::checkpoint();
    body(std::size_t{0}, count);
    return;
  }
  using BodyType = std::remove_reference_t<Body>;
  target.run_bulk(
      count, /*min_grain=*/0,
      [](void* ctx, std::size_t begin, std::size_t end) {
        (*static_cast<BodyType*>(ctx))(begin, end);
      },
      const_cast<std::remove_const_t<BodyType>*>(&body));
}

}  // namespace mmlp

// Shared-memory parallel execution substrate.
//
// The LOCAL-model simulator and the per-agent algorithm loops are
// embarrassingly parallel over agents; this module provides a small
// thread pool and a deterministic parallel_for built on it. Tasks write
// only to their own output slots (message-passing discipline — no shared
// mutable state between iterations), so parallel execution is bitwise
// reproducible regardless of the thread count.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mmlp {

/// Fixed-size worker pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Cumulative per-worker activity since pool construction. busy_ns is
  /// time spent inside submitted tasks, idle_ns time blocked waiting for
  /// work, tasks the number executed. The observability surface for
  /// ROADMAP item 3: a scaling-efficiency loss shows up directly as
  /// idle_ns growing faster than busy_ns on some workers.
  struct WorkerStats {
    std::uint64_t busy_ns = 0;
    std::uint64_t idle_ns = 0;
    std::uint64_t tasks = 0;
  };

  /// Snapshot of every worker's stats, indexed by worker. Relaxed reads
  /// — concurrent with running tasks, values are monotone but may lag.
  std::vector<WorkerStats> worker_stats() const;

  /// Enqueue a task. CONTRACT: tasks must not let exceptions escape — a
  /// throw from a raw submitted task crosses the worker's noexcept
  /// boundary and std::terminates the process. Callers that need
  /// exception propagation must go through parallel_for /
  /// chunked_parallel_for, which wrap every body invocation, abandon the
  /// remaining chunks, and rethrow the first exception in the caller
  /// (contract tested in tests/test_parallel.cpp).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Process-wide pool. Lazily constructed on first use, sized by
  /// set_global_thread_count() when that was called earlier, otherwise to
  /// the hardware.
  static ThreadPool& global();

 private:
  // Padded so two workers bumping their own counters never share a
  // cache line; written only by the owning worker, read by anyone.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  void worker_loop(std::size_t worker_index);

  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Execute fn(i) for i in [0, count) across the pool, in chunks.
/// Blocks until all iterations complete. fn must only write to
/// per-index state. `grain` bounds the chunk size (0 = auto).
/// If fn throws, remaining chunks are abandoned and the first
/// exception is rethrown in the caller once the pool drains, so a
/// CheckError inside a parallel loop stays catchable.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 0);

/// Serial fallback used by tests to compare against parallel runs.
void serial_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Configure the worker count of ThreadPool::global() before its first
/// use (0 = hardware concurrency). Throws CheckError when the global
/// pool already exists with a different size — the pool cannot be
/// resized once workers hold references to it. Used by the bench
/// harness's --threads flag / MMLP_THREADS override.
void set_global_thread_count(std::size_t num_threads);

/// Chunked variant for loops whose bodies amortise per-worker scratch
/// (ball collectors, view/LP workspaces, materialization arenas):
/// body(begin, end) is called once per chunk, with the range [0, count)
/// split into ~8 chunks per pool worker. The body must only write
/// per-index state, exactly as with parallel_for; count == 0 returns
/// without invoking the body. Exceptions thrown inside the body follow
/// the parallel_for contract: remaining chunks are abandoned and the
/// first exception is rethrown in the caller — including when the throw
/// happens in the last chunk or when count is smaller than the worker
/// count (tested edge cases in tests/test_parallel.cpp).
template <typename Body>
void chunked_parallel_for(std::size_t count, Body&& body,
                          ThreadPool* pool = nullptr) {
  if (count == 0) {
    return;
  }
  const std::size_t workers =
      (pool != nullptr ? *pool : ThreadPool::global()).size();
  const std::size_t target_chunks = std::min(count, workers * 8);
  const std::size_t chunk = (count + target_chunks - 1) / target_chunks;
  // Re-derive the chunk count from the rounded-up size so no trailing
  // task sees an empty (begin >= count) range.
  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  parallel_for(
      num_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(count, begin + chunk);
        body(begin, end);
      },
      pool);
}

}  // namespace mmlp

// Exception-safe reset for persistent stamp maps.
//
// The hot per-agent loops (view extraction, world materialization) keep
// a global→local index map alive across calls with the invariant "all
// entries are −1 between calls" and restore it by re-walking the keys
// they stamped. CheckError is catchable, so the restore must run on the
// throw path too — otherwise a caller that catches and reuses the
// scratch silently reads stale indices. StampGuard does the restore in
// its destructor; construct it only after every key has been validated
// to be a legal map index.
#pragma once

#include <cstdint>
#include <vector>

namespace mmlp {

/// Resets map[key] = -1 for every key on destruction.
class StampGuard {
 public:
  StampGuard(std::vector<std::int32_t>& map,
             const std::vector<std::int32_t>& keys)
      : map_(map), keys_(keys) {}
  ~StampGuard() {
    for (const std::int32_t key : keys_) {
      map_[static_cast<std::size_t>(key)] = -1;
    }
  }
  StampGuard(const StampGuard&) = delete;
  StampGuard& operator=(const StampGuard&) = delete;

 private:
  std::vector<std::int32_t>& map_;
  const std::vector<std::int32_t>& keys_;
};

}  // namespace mmlp

// Deterministic, replayable fault injection for the LOCAL-model
// runtime and the self-stabilizing solvers.
//
// A FaultPlan is data, not behaviour: a seed plus an explicit list of
// fault events, each pinned to a synchronous round. The same plan
// applied to the same instance produces the same faulty execution bit
// for bit — on any thread count — because every random choice a fault
// makes (which ghost id a corrupted packet gains, which entries a state
// corruption rewrites) is derived by hashing (seed, round, agent, peer)
// rather than drawn from a shared stream. That makes a fault schedule a
// first-class test vector: serialize() renders it as one compact token
// (`s<seed>;<round>:<kind>:<agent>[:<peer>];...`) that travels through
// the JSONL wire, `mmlp_batch --fault-plan`, and bench configs, and
// parse() reproduces it exactly.
//
// Fault taxonomy (docs/ARCHITECTURE.md "Fault model & recovery"):
//
//   drop     message from peer→agent in round r is lost
//   dup      the same message is delivered twice
//   corrupt  the message payload is adversarially mutated in flight
//   delay    the receiver gets the sender's *previous* round state
//   crash    agent restarts at round r with cleared local state
//   state    agent's local state is adversarially mutated at round r
//
// The injector is consulted by the per-round message exchange
// (LocalRuntime::flood, SelfStabilizingFlood::step): message fates are
// pure lookups (parallel-safe), state-level faults are applied serially
// at round start. Counters report what was actually injected.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

enum class FaultKind : std::uint8_t {
  kDropMessage = 0,
  kDuplicateMessage,
  kCorruptMessage,
  kDelayMessage,
  kCrashAgent,
  kCorruptState,
};

/// Stable token for a kind (the serialization / wire vocabulary).
std::string_view fault_kind_name(FaultKind kind);

/// One scheduled fault. Message faults name the receiving `agent` and
/// the sending `peer`; crash/state faults name only the victim `agent`
/// (peer = -1).
struct FaultEvent {
  std::int32_t round = 0;
  FaultKind kind = FaultKind::kDropMessage;
  AgentId agent = 0;
  AgentId peer = -1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A complete, replayable fault schedule.
struct FaultPlan {
  std::uint64_t seed = 0;          ///< drives all corruption randomness
  std::vector<FaultEvent> events;  ///< normalized: sorted by round

  bool empty() const { return events.empty(); }

  /// Rounds the plan spans: 1 + max event round (0 when empty). A
  /// faulty execution runs at least this many rounds so every scheduled
  /// event fires.
  std::int32_t rounds() const;

  /// Sort events by (round, agent, peer, kind) — parse/random emit
  /// normalized plans already; call after hand-building one.
  void normalize();

  /// Compact single-token form: `s<seed>` followed by
  /// `;<round>:<kind>:<agent>` or `;<round>:<kind>:<agent>:<peer>` per
  /// event, e.g. "s42;0:drop:5:2;1:crash:7;2:state:3". Stable under
  /// parse ∘ serialize.
  std::string serialize() const;

  /// Inverse of serialize(). Throws CheckError on malformed input
  /// (unknown kind, missing peer on a message fault, non-numeric
  /// fields, negative rounds/agents).
  static FaultPlan parse(std::string_view text);

  /// A random plan: `count` events over `rounds` rounds against
  /// `num_agents` agents, kinds drawn uniformly from the full taxonomy.
  /// Message faults pick peer != agent when num_agents > 1. Fully
  /// determined by (seed, rounds, num_agents, count).
  static FaultPlan random(std::uint64_t seed, std::int32_t rounds,
                          std::int32_t num_agents, std::int32_t count);
};

/// Executes a FaultPlan against a synchronous round loop. The runtime
/// calls begin_round(r) once per round (serial), then consults the
/// per-message / per-agent queries from its (possibly parallel) merge
/// loop. All queries are pure functions of (plan, round, ids), so a
/// parallel exchange stays deterministic.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Position the injector on round `r` and count the round's
  /// crash/state events as injected. Rounds may be revisited (the
  /// cursor is recomputed, not advanced).
  void begin_round(std::int32_t round);

  std::int32_t round() const { return round_; }

  /// True when the current round has any delay event (the exchange then
  /// needs the previous round's state snapshot).
  bool round_has_delay() const;

  /// What happens to the packet sender→receiver this round. copies: 0
  /// (dropped), 1 (normal), 2 (duplicated); corrupt/delay flag payload
  /// mutation / stale delivery. Counts message faults as injected
  /// (atomically — callers run in parallel loops).
  struct MessageFate {
    std::int32_t copies = 1;
    bool corrupt = false;
    bool delay = false;
  };
  MessageFate message_fate(AgentId receiver, AgentId sender) const;

  /// Crash-and-restart scheduled for `agent` at the current round: the
  /// runtime must reset the agent's local state to its cold-start value
  /// before the exchange.
  bool crashed(AgentId agent) const;

  /// Adversarial state corruption scheduled for `agent` at the current
  /// round.
  bool state_corrupted(AgentId agent) const;

  /// Deterministic per-event randomness: a generator seeded by hashing
  /// (plan seed, round, agent, peer). Two calls with the same triple
  /// yield identical streams, so corruption values are replayable and
  /// thread-invariant.
  Rng event_rng(AgentId agent, AgentId peer = -1) const;

  /// Total faults injected so far (events whose round was entered, plus
  /// message fates actually served with a fault).
  std::int64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::int32_t round_ = -1;
  std::size_t round_begin_ = 0;  // events_[round_begin_, round_end_)
  std::size_t round_end_ = 0;
  mutable std::atomic<std::int64_t> injected_{0};
};

}  // namespace mmlp

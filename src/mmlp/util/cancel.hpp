// Cooperative cancellation and deadlines for solver execution.
//
// A CancelToken is a tiny shared flag + optional steady-clock deadline.
// The party that wants to stop work calls cancel() (or arms a deadline
// up front); the parties doing the work poll expired() at natural
// checkpoints and unwind by throwing CancelledError. Nothing is
// preempted: a chunk that is already executing runs to completion, so
// the per-index write discipline of the parallel substrate is never
// interrupted mid-slot and caches stay structurally valid.
//
// Propagation is scope-based rather than parameter-based: engine::solve
// installs the request's token with a CancelScope, and every layer below
// — the bulk scheduler's claim loop, the serial parallel_for fallback,
// explicit cancel::checkpoint() calls in long per-agent loops — reads
// the active token through current_cancel_token(). ThreadPool::run_bulk
// snapshots the caller's active token into the BulkJob at registration
// and re-installs it around each chunk body, so worker threads and
// nested bulk regions observe the same token as the caller.
//
// CancelledError deliberately does NOT derive from CheckError: a
// deadline is not a contract violation, and the wire layer maps it to
// its own `timeout` / `cancelled` error codes (engine/wire.cpp) instead
// of the generic `validate`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace mmlp {

/// Why a unit of work was abandoned.
enum class CancelReason : std::uint8_t {
  kCancelled,  // explicit cancel() call
  kDeadline,   // armed deadline passed
};

/// Thrown from a cancellation checkpoint once the active token has
/// expired. Caught by engine::solve and converted into the
/// SolveStatus::kTimeout / kCancelled result taxonomy; it should not
/// normally escape to callers of the engine API.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "deadline exceeded"
                               : "operation cancelled"),
        reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// Shared cancel flag + optional deadline. Thread-safe: cancel() and
/// the polling side may race freely. A token is one-shot — once
/// expired it stays expired (there is no reset; make a new token per
/// request).
class CancelToken {
 public:
  using clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Request cooperative cancellation. Idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Arm a deadline `ms` milliseconds from now. ms == 0 leaves the
  /// token without a deadline (the wire convention: deadline_ms 0 =
  /// unlimited).
  void set_deadline_after_ms(std::int64_t ms) noexcept {
    if (ms <= 0) {
      return;
    }
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            (clock::now() + std::chrono::milliseconds(ms)).time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_passed() const noexcept {
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    if (deadline == 0) {
      return false;
    }
    return clock::now().time_since_epoch().count() >= deadline;
  }

  /// True once the token is cancelled or its deadline has passed.
  bool expired() const noexcept {
    return cancel_requested() || deadline_passed();
  }

  /// An explicit cancel wins over a deadline when both hold — the
  /// caller's intent is the stronger signal.
  CancelReason reason() const noexcept {
    return cancel_requested() ? CancelReason::kCancelled
                              : CancelReason::kDeadline;
  }

  /// Throw CancelledError when expired; no-op otherwise.
  void raise_if_expired() const {
    if (cancel_requested()) {
      throw CancelledError(CancelReason::kCancelled);
    }
    if (deadline_passed()) {
      throw CancelledError(CancelReason::kDeadline);
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  // Deadline as steady-clock nanoseconds since epoch; 0 = none.
  std::atomic<std::int64_t> deadline_ns_{0};
};

namespace cancel {

/// The token installed for the current thread (nullptr when none).
const CancelToken* current_token() noexcept;

/// Cancellation checkpoint: throws CancelledError when the current
/// thread's active token has expired. Cheap when no token is installed
/// (one thread-local read). Long serial loops — per-view-class LP
/// solves, per-round stabilization steps — call this so deadlines fire
/// even on a single-thread pool where the bulk scheduler's per-chunk
/// check never runs.
void checkpoint();

/// RAII scope installing `token` as the current thread's active token;
/// restores the previous token on destruction. Passing nullptr is a
/// no-op scope (useful for unconditioned call sites).
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

}  // namespace cancel

}  // namespace mmlp

// Streaming and batch statistics used by experiments and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace mmlp {

/// Welford-style online accumulator: mean/variance/min/max in one pass.
class OnlineStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
};

/// Compute a Summary; copies and sorts internally.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolation percentile of a sample, q in [0, 1].
/// The input need not be sorted.
double percentile(std::vector<double> values, double q);

/// Geometric mean; every element must be positive.
double geometric_mean(const std::vector<double>& values);

}  // namespace mmlp

// mmlp::obs — structured tracing and metrics for every hot layer.
//
// Two instruments, both process-global and thread-safe:
//
//   * A span-based tracer. An ObsSpan is an RAII scope carrying a
//     static name and category; on destruction it records a complete
//     event (start, duration, thread) into a per-thread ring buffer.
//     Buffers are single-writer (the owning thread) and registered with
//     the tracer under a mutex once per thread, so the hot path takes
//     no lock. Tracer::to_chrome_json() exports everything as Chrome
//     Trace Event JSON ("traceEvents" of "ph":"X" complete events),
//     loadable by chrome://tracing and Perfetto — a warm averaging
//     solve renders as a flame of build/solve stages per worker thread.
//
//     Overhead contract: while tracing is disabled (the default) a span
//     costs ONE relaxed atomic load and branch at construction and one
//     at destruction — no clock reads, no stores. The bench-regression
//     CI gate runs with tracing disabled and holds the warm averaging
//     path to its baseline, which pins the contract.
//
//   * A metrics registry of named counters, gauges and fixed-bucket
//     log-scale histograms. Counters/gauges are relaxed atomics —
//     always on, never locked after creation; instrumentation sites
//     hold a `static Counter&` so the name lookup happens once.
//     Histograms bucket positive values on a logarithmic grid (8
//     buckets per decade across 1e-6..1e6, clamped at the ends) and
//     extract p50/p90/p99 by geometric interpolation inside the
//     containing bucket — the quantile error is bounded by one bucket
//     width (~33% relative), which is what a latency distribution
//     needs; exact quantiles stay the job of util/stats.hpp.
//
// Registry::global() names in use (see docs/ARCHITECTURE.md for the
// taxonomy): simplex.{solves,pivots}, bfs.ball_expansions,
// view_class.{canonicalizations,prehash_skips},
// session.{graph,balls,growth,view_classes}.{hits,misses,entries},
// session.{deltas,solution_memos,averaging_memos,edit_log_records},
// scratch.leases, engine.requests, and the engine.request_ms latency
// histogram.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mmlp::obs {

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

namespace detail {
/// The global trace switch. A plain inline atomic (not behind a
/// function call) so the disabled-span fast path is exactly one relaxed
/// load + branch.
inline std::atomic<bool> g_tracing{false};
}  // namespace detail

/// Is the tracer currently recording? (relaxed; instrumentation only)
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// One completed span. Names/categories must be string literals (or
/// otherwise outlive the tracer) — events store the pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< since the process-start anchor
  std::uint64_t dur_ns = 0;
};

/// The process-global tracer: per-thread ring buffers + export.
class Tracer {
 public:
  /// Events each thread can hold; older events are kept, new ones are
  /// dropped (and counted) once the ring is full — a trace is a window,
  /// not an unbounded log.
  static constexpr std::size_t kBufferCapacity = 1 << 16;

  static Tracer& instance();

  /// Start/stop recording. Stopping does not clear collected events.
  void set_enabled(bool enabled) {
    detail::g_tracing.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return tracing_enabled(); }

  /// Drop every collected event (all threads) and the drop counters.
  void clear();

  /// Record one completed span on the calling thread. Called by ObsSpan;
  /// callable directly for externally timed phases.
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Snapshot of every thread's events, as (thread_index, event) pairs
  /// in per-thread recording order. Call after parallel work quiesced —
  /// concurrent recording may miss the newest events but never tears.
  std::vector<std::pair<std::uint32_t, TraceEvent>> events() const;

  /// Events dropped because a ring filled up.
  std::uint64_t dropped() const;

  /// Chrome Trace Event JSON: {"traceEvents": [...], ...}; "ts"/"dur"
  /// are microseconds as the format requires. Loadable by Perfetto /
  /// chrome://tracing. Same quiescence caveat as events().
  std::string to_chrome_json() const;

  /// Nanoseconds since the process-start anchor (steady clock).
  static std::uint64_t now_ns();

 private:
  struct ThreadBuffer {
    std::uint32_t thread_index = 0;
    std::vector<TraceEvent> ring;            // capacity kBufferCapacity
    std::atomic<std::size_t> size{0};        // published with release
    std::atomic<std::uint64_t> dropped{0};
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();

  mutable std::mutex mutex_;  // guards buffers_ registration + export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> generation_{0};  // bumped by clear()
};

/// RAII tracing scope. Construction checks the global switch once;
/// a disabled span does nothing else (see the overhead contract above).
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* category = "mmlp")
      : name_(name), category_(category), active_(tracing_enabled()) {
    if (active_) {
      start_ns_ = Tracer::now_ns();
    }
  }
  ~ObsSpan() {
    if (active_) {
      const std::uint64_t end_ns = Tracer::now_ns();
      Tracer::instance().record(name_, category_, start_ns_,
                                end_ns - start_ns_);
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  std::uint64_t start_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter. Relaxed adds; cache-line padded so unrelated hot
/// counters never false-share.
class alignas(64) Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (cache entry counts, memo sizes).
class alignas(64) Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale histogram for positive samples (latencies in
/// ms, sizes, ...). Thread-safe: every field is a relaxed atomic, so
/// concurrent observe() calls from a parallel loop lose nothing.
class Histogram {
 public:
  /// 8 buckets per decade across [1e-6, 1e6): bucket b covers
  /// [10^(b/8 - 6), 10^((b+1)/8 - 6)). Samples below/above the range
  /// clamp into the first/last bucket; non-positive samples count into
  /// bucket 0.
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 12;
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades;
  static constexpr double kMinValue = 1e-6;

  void observe(double value);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double min() const;
  double max() const;

  /// Quantile q in [0, 1] by geometric interpolation inside the bucket
  /// where the cumulative count crosses q·count. Exact at the recorded
  /// min/max (q touching the ends returns them); elsewhere the error is
  /// bounded by the bucket width. 0 when empty.
  double percentile(double q) const;

  /// Lower bound of bucket b (exposed for tests and validators).
  static double bucket_lower(int b);

  /// Snapshot of the raw bucket counts (size kNumBuckets).
  std::vector<std::int64_t> bucket_counts() const;

 private:
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every registered metric, for diffing around a
/// request (engine::solve does this to attribute counter deltas).
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
};

/// Name-keyed metric store. Lookup takes a mutex and is intended to run
/// once per site (hold a `static Counter& c = Registry::global()...`);
/// the returned references live as long as the registry (metrics are
/// never removed — reset() zeroes values, it does not unregister).
class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// One JSON object (no trailing newline):
  /// {"counters": {...}, "gauges": {...}, "histograms": {"name":
  ///   {"count": N, "sum": S, "min": m, "max": M, "p50": ..,
  ///    "p90": .., "p99": ..}, ...}}
  std::string to_json_line() const;

  /// Zero every counter/gauge and clear every histogram (tests and
  /// per-batch metric dumps; the objects stay registered so cached
  /// references remain valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mmlp::obs

// mmlp::bench — the measured-trajectory harness behind the bench_*
// binaries.
//
// Every benchmark run produces a machine-readable BENCH_<name>.json
// (schema "mmlp-bench-v1", documented in docs/BENCHMARKS.md) so that
// successive PRs land on a comparable series instead of eyeballed
// human-text output. A Report collects one CaseResult per
// (scenario, size) pair; run_case() times a callable `reps` times and
// records the *minimum* wall time (the least-noise estimator on a shared
// machine) both as total wall_ms and normalised ns_per_agent. Arbitrary
// extra metrics — messages per round, peak support sizes, simplex
// iterations — ride along in the per-case `counters` map.
//
// bench_main() is the shared CLI shell: it parses
//   --out PATH    (default BENCH_<name>.json)
//   --scale SIZE  (smoke | small | full; default full)
//   --reps N      (default 3)
//   --threads N   (default 0 = MMLP_THREADS env, else hardware)
// sizes the global worker pool, runs the benchmark body, writes the
// JSON (recording the resolved thread count so runs stay comparable),
// and prints a one-line human summary per case to stdout.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mmlp::bench {

/// Identifier of the JSON layout emitted by Report::to_json.
inline constexpr const char* kSchemaId = "mmlp-bench-v1";

/// One timed configuration of one benchmark.
struct CaseResult {
  std::string scenario;            ///< generator family, e.g. "grid_torus"
  std::int64_t agents = 0;         ///< problem size the times are normalised by
  std::int64_t repetitions = 0;    ///< how many timed runs wall_ms is the min of
  double wall_ms = 0.0;            ///< minimum single-run wall time
  double ns_per_agent = 0.0;       ///< wall_ms · 1e6 / agents
  std::map<std::string, double> counters;  ///< extra metrics (sorted keys)
};

/// Accumulates cases and serialises them to the BENCH JSON schema.
class Report {
 public:
  explicit Report(std::string name, std::string scale = "full");

  const std::string& name() const { return name_; }
  const std::string& scale() const { return scale_; }
  const std::vector<CaseResult>& cases() const { return cases_; }

  /// Worker threads the timed code ran on; recorded as a top-level JSON
  /// field when set (> 0), so BENCH series from differently sized pools
  /// are never compared by accident. bench_main() fills this with the
  /// resolved --threads / MMLP_THREADS / hardware value.
  void set_threads(std::int64_t threads) { threads_ = threads; }
  std::int64_t threads() const { return threads_; }

  /// Time fn() `reps` times (reps >= 1) and append a case with the
  /// minimum wall time. Returns the stored case so the caller can attach
  /// counters; the reference is invalidated by the next
  /// run_case/add_case call, so attach counters before adding more cases.
  CaseResult& run_case(const std::string& scenario, std::int64_t agents,
                       int reps, const std::function<void()>& fn);

  /// Append a pre-filled case (for externally timed measurements). The
  /// returned reference follows the same invalidation rule as run_case.
  CaseResult& add_case(CaseResult result);

  std::string to_json() const;

  /// Write to_json() to `path`; throws CheckError when the file cannot
  /// be written.
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::string scale_;
  std::int64_t threads_ = 0;
  std::vector<CaseResult> cases_;
};

/// Shared main() for bench binaries: parse the standard flags, run
/// `body`, write the report, print the summary. Returns a process exit
/// code.
int bench_main(int argc, const char* const* argv, const std::string& name,
               const std::function<void(Report& report, const std::string& scale,
                                        int reps)>& body);

}  // namespace mmlp::bench

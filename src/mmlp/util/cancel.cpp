#include "mmlp/util/cancel.hpp"

namespace mmlp {
namespace cancel {

namespace {
thread_local const CancelToken* active_token = nullptr;
}  // namespace

const CancelToken* current_token() noexcept { return active_token; }

void checkpoint() {
  if (active_token != nullptr) {
    active_token->raise_if_expired();
  }
}

CancelScope::CancelScope(const CancelToken* token) noexcept
    : previous_(active_token) {
  if (token != nullptr) {
    active_token = token;
  }
}

CancelScope::~CancelScope() { active_token = previous_; }

}  // namespace cancel
}  // namespace mmlp
